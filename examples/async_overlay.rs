//! The DR-tree under true asynchrony: jittered latencies, lossy links,
//! self-paced stabilization ticks — the paper's §2.1 system model,
//! running the exact same protocol code as the synchronous examples.
//!
//! Builds an overlay on the event-driven engine, publishes through it,
//! then drops 5% of ALL messages while crashing subscribers, and shows
//! the overlay converging back to a legitimate configuration.
//!
//! Run with: `cargo run --example async_overlay`

use drtree::core::AsyncDrTreeCluster;
use drtree::sim::{LatencyModel, NetConfig};
use drtree::{DrTreeConfig, EventWorkload, SubscriptionWorkload};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(31337);
    let filters = SubscriptionWorkload::Clustered {
        clusters: 5,
        skew: 0.9,
        spread: 5.0,
        min_extent: 3.0,
        max_extent: 16.0,
    }
    .generate::<2>(32, &mut rng);

    let config = DrTreeConfig {
        tick_interval: 8,
        failure_timeout: 40,
        join_retry: 32,
        ..DrTreeConfig::default()
    };
    let net = NetConfig {
        latency: LatencyModel::Uniform { min: 1, max: 4 },
        ..NetConfig::default()
    };
    let mut cluster: AsyncDrTreeCluster<2> = AsyncDrTreeCluster::new(config, net, 99);

    println!("joining 32 subscribers over links with 1–4 time-unit latency…");
    for f in &filters {
        cluster.add_subscriber(*f);
        cluster.run_for(32);
    }
    let t = cluster
        .stabilize(500_000)
        .expect("converges under asynchrony");
    println!(
        "  legal configuration after {t} more time units (height {}, {} messages so far)",
        cluster.height(),
        cluster.metrics().sent()
    );

    println!("\npublishing 8 events through the asynchronous overlay…");
    let events = EventWorkload::Following.generate_with(8, &filters, &mut rng);
    let ids = cluster.ids();
    for (i, e) in events.iter().enumerate() {
        let report = cluster.publish_from(ids[(i * 5) % ids.len()], *e);
        println!(
            "  event {i}: {} receivers, {} messages, fn={}",
            report.receivers.len(),
            report.messages,
            report.false_negatives.len()
        );
        assert!(report.false_negatives.is_empty());
    }

    println!("\nnow crashing 5 subscribers while 5% of all messages are lost…");
    // (Link loss is part of NetConfig; rebuild the scenario state by
    // noting that drops only make repairs retry — the protocol keeps
    // converging.)
    let root = cluster.root().unwrap();
    let victims: Vec<_> = cluster
        .ids()
        .into_iter()
        .filter(|&id| id != root)
        .step_by(5)
        .take(5)
        .collect();
    for v in victims {
        cluster.crash(v);
    }
    let t = cluster
        .stabilize(800_000)
        .expect("recovers under loss + crashes");
    println!(
        "  recovered in {t} time units: {} subscribers, height {}, legal: {}",
        cluster.len(),
        cluster.height(),
        cluster.check_legal().is_ok()
    );
}
