//! Quick start: the paper's running example end to end.
//!
//! Builds the eight sample subscriptions of Figure 1, shows their
//! containment graph, organizes them into a DR-tree, and publishes the
//! four sample events, printing who receives what (reproducing the
//! dissemination example of §3: event `a` produced at S2 reaches
//! exactly S2, S3, S4).
//!
//! Run with: `cargo run --example quickstart`

use drtree::spatial::sample;
use drtree::{DrTreeCluster, DrTreeConfig, ProcessId};

fn main() {
    println!("== Stabilizing Peer-to-Peer Spatial Filters: quick start ==\n");

    // --- Figure 1: the sample subscriptions and their containment graph
    let subs = sample::subscriptions();
    println!("Sample subscriptions (Figure 1):");
    for (label, rect) in sample::LABELS.iter().zip(subs.iter()) {
        println!("  {label}: {rect}  (area {:.0})", rect.area());
    }
    let graph = sample::containment_graph();
    println!("\nContainment graph (Hasse edges, Figure 1 right):");
    for i in 0..subs.len() {
        for &j in graph.hasse_children(i) {
            println!("  {} ⊐ {}", sample::LABELS[i], sample::LABELS[j]);
        }
    }
    println!(
        "  roots: {:?}",
        graph
            .roots()
            .iter()
            .map(|&r| sample::LABELS[r])
            .collect::<Vec<_>>()
    );

    // --- Figure 4: organize the subscribers into a DR-tree
    let mut cluster: DrTreeCluster<2> = DrTreeCluster::new(DrTreeConfig::default(), 2007);
    let mut ids: Vec<ProcessId> = Vec::new();
    for rect in &subs {
        ids.push(cluster.add_subscriber_stable(*rect));
    }
    let rounds = cluster.stabilize(2_000).expect("sample overlay stabilizes");
    let label_of = |id: ProcessId| -> &str {
        ids.iter()
            .position(|&x| x == id)
            .map(|i| sample::LABELS[i])
            .unwrap_or("?")
    };
    println!("\nDR-tree after {rounds} extra stabilization rounds:");
    println!("  root   : {}", label_of(cluster.root().unwrap()));
    println!("  height : {}", cluster.height());
    println!("  legal  : {}", cluster.check_legal().is_ok());

    // --- §3's dissemination example: publish the four sample events
    println!("\nPublishing the sample events:");
    for (name, point) in sample::events() {
        // Events are produced at S2, as in the paper's walk-through.
        let report = cluster.publish_from(ids[1], point);
        let mut receivers: Vec<&str> = report.receivers.iter().map(|&r| label_of(r)).collect();
        receivers.sort_unstable();
        println!(
            "  event {name} at {point}: receivers {receivers:?}, \
             {} message(s), false positives {}, false negatives {}",
            report.messages,
            report.false_positives.len(),
            report.false_negatives.len(),
        );
        assert!(
            report.false_negatives.is_empty(),
            "the DR-tree never produces false negatives in a legal state"
        );
    }

    println!("\nDone — see DESIGN.md and EXPERIMENTS.md for the full evaluation.");
}
