//! A realistic content-based pub/sub scenario: a stock-ticker feed.
//!
//! Traders subscribe with conjunctions of range predicates over
//! `(price, volume)` — exactly the filter language of the paper's §2.1
//! — and quotes are published as attribute/value events. The example
//! shows subscription containment at work (a broad "market watcher"
//! contains specialized traders), prints per-event deliveries, and
//! finishes with the aggregated routing statistics.
//!
//! Run with: `cargo run --example news_pubsub`

use drtree::{Broker, DrTreeConfig, Event, FilterExpr, Op, ProcessId, Schema};

fn range(attr: &str, lo: f64, hi: f64) -> FilterExpr {
    FilterExpr::new()
        .and(attr, Op::Ge, lo)
        .and(attr, Op::Le, hi)
}

fn both(a: FilterExpr, b: FilterExpr) -> FilterExpr {
    let mut out = a;
    for p in b.predicates() {
        out = out.and(p.attr.clone(), p.op, p.value);
    }
    out
}

fn main() {
    let schema = Schema::new(["price", "volume"]);
    let mut broker: Broker<2> =
        Broker::new(schema, DrTreeConfig::default(), 99).expect("schema matches dimensions");

    // --- subscriptions -----------------------------------------------------
    let mut names: Vec<(ProcessId, &str)> = Vec::new();
    let mut subscribe = |broker: &mut Broker<2>, name: &'static str, f: FilterExpr| {
        let id = broker.subscribe(&f).expect("filter compiles");
        names.push((id, name));
        id
    };

    // A market-wide watcher: contains every other subscription.
    let watcher = subscribe(
        &mut broker,
        "market-watcher",
        both(range("price", 0.0, 1_000.0), range("volume", 0.0, 1e9)),
    );
    // Penny-stock hunter: cheap, any volume.
    subscribe(
        &mut broker,
        "penny-hunter",
        both(range("price", 0.0, 5.0), range("volume", 0.0, 1e9)),
    );
    // Block-trade desk: any price, huge volume.
    subscribe(
        &mut broker,
        "block-desk",
        both(range("price", 0.0, 1_000.0), range("volume", 1e6, 1e9)),
    );
    // Mid-cap momentum trader.
    subscribe(
        &mut broker,
        "midcap-momentum",
        both(range("price", 20.0, 80.0), range("volume", 1e4, 1e6)),
    );
    // Narrow arbitrage bot: tight price band, moderate volume.
    subscribe(
        &mut broker,
        "arb-bot",
        both(range("price", 49.0, 51.0), range("volume", 1e4, 1e5)),
    );

    broker.stabilize(2_000).expect("overlay stabilizes");
    let cluster = broker.cluster();
    println!(
        "overlay: {} subscribers, height {}, legal: {}",
        cluster.len(),
        cluster.height(),
        cluster.check_legal().is_ok()
    );
    let name_of = |id: ProcessId| {
        names
            .iter()
            .find(|(i, _)| *i == id)
            .map(|(_, n)| *n)
            .unwrap_or("?")
    };

    // --- publications ------------------------------------------------------
    let quotes = [
        ("ACME @ 2.50 × 1,000", 2.50, 1_000.0),
        ("BIGCO @ 50.00 × 50,000", 50.0, 50_000.0),
        ("MEGA @ 120.00 × 5,000,000", 120.0, 5_000_000.0),
        ("ODD @ 999.00 × 3", 999.0, 3.0),
    ];
    for (desc, price, volume) in quotes {
        let event = Event::new().with("price", price).with("volume", volume);
        // The watcher doubles as the feed gateway: it publishes quotes.
        let report = broker.publish(watcher, &event).expect("event compiles");
        let mut interested: Vec<&str> = report.matching.iter().map(|&m| name_of(m)).collect();
        interested.sort_unstable();
        println!(
            "{desc}: delivered to {interested:?} with {} messages (fp {}, fn {})",
            report.messages,
            report.false_positives.len(),
            report.false_negatives.len(),
        );
        assert!(report.false_negatives.is_empty());
    }

    println!("\naggregate: {}", broker.stats());
}
