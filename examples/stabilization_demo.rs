//! Watching the stabilization modules work, step by step.
//!
//! A small overlay is corrupted in a precisely chosen way, then the
//! example traces the Definition-3.1 violations round by round as the
//! CHECK_* modules repair the structure — making the paper's proofs
//! (Lemmas 3.5/3.6) tangible. Finishes by printing the final tree.
//!
//! Run with: `cargo run --example stabilization_demo`

use drtree::core::TreeView;
use drtree::corruption::CorruptionKind;
use drtree::{DrTreeCluster, DrTreeConfig, SubscriptionWorkload};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn print_tree(cluster: &DrTreeCluster<2>) {
    let view = TreeView::build(&cluster.snapshot());
    for line in view.render().lines() {
        println!("  {line}");
    }
}

fn main() {
    let mut rng = StdRng::seed_from_u64(77);
    let filters = SubscriptionWorkload::Uniform {
        min_extent: 4.0,
        max_extent: 25.0,
    }
    .generate::<2>(16, &mut rng);

    let mut cluster = DrTreeCluster::build(DrTreeConfig::default(), 4242, &filters);
    println!(
        "legal DR-tree over 16 subscribers (height {}):",
        cluster.height()
    );
    print_tree(&cluster);

    // Corrupt: scramble MBRs on some processes, forge children on
    // others, randomize one node's parents.
    let ids = cluster.ids();
    cluster.corrupt(ids[3], CorruptionKind::ScrambleOwnMbrs);
    cluster.corrupt(ids[5], CorruptionKind::ForgeChildren);
    cluster.corrupt(ids[7], CorruptionKind::RandomParents);
    cluster.corrupt(ids[9], CorruptionKind::Wipe);
    println!("\ncorrupted p3 (MBRs), p5 (forged children), p7 (parents), p9 (wiped).");

    println!("\nround-by-round repair:");
    let mut round = 0u64;
    loop {
        let violations = cluster.check_legal().err().map(|v| v.len()).unwrap_or(0);
        println!("  round {round:>3}: {violations:>3} violation(s)");
        if violations == 0 {
            break;
        }
        if round >= 200 {
            // Show what is left, then bail out loudly.
            if let Err(v) = cluster.check_legal() {
                for violation in v.iter().take(8) {
                    println!("    - {violation}");
                }
            }
            panic!("did not converge within 200 rounds");
        }
        cluster.run_round();
        round += 1;
    }

    println!("\nlegitimate configuration restored (Lemma 3.6). Final tree:");
    print_tree(&cluster);
}
