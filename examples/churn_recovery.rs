//! Self-stabilization under churn and memory corruption.
//!
//! Builds a 64-subscriber DR-tree, then batters it: a wave of crash
//! failures (uncontrolled departures), a round of controlled leaves,
//! and adversarial memory corruption of a third of the processes — the
//! fault model of the paper's §2.1 — measuring the rounds each time
//! until the overlay is again a legitimate configuration
//! (Definition 3.2) and verifying that dissemination stays sound.
//!
//! Run with: `cargo run --example churn_recovery`

use drtree::corruption::CorruptionKind;
use drtree::{DrTreeCluster, DrTreeConfig, EventWorkload, Point, SubscriptionWorkload};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn check_dissemination(cluster: &mut DrTreeCluster<2>, rng: &mut StdRng, label: &str) {
    let subs: Vec<_> = cluster
        .ids()
        .iter()
        .filter_map(|&id| cluster.node(id).map(|n| n.filter()))
        .collect();
    let events: Vec<Point<2>> = EventWorkload::Following.generate_with(10, &subs, rng);
    let ids = cluster.ids();
    let mut fns = 0usize;
    let mut msgs = 0u64;
    for (i, e) in events.iter().enumerate() {
        let report = cluster.publish_from(ids[i % ids.len()], *e);
        fns += report.false_negatives.len();
        msgs += report.messages;
    }
    println!(
        "  [{label}] 10 events: {} false negatives, {:.1} messages/event",
        fns,
        msgs as f64 / events.len() as f64
    );
    assert_eq!(fns, 0, "false negatives after stabilization");
}

fn main() {
    let mut rng = StdRng::seed_from_u64(1234);
    let workload = SubscriptionWorkload::Clustered {
        clusters: 6,
        skew: 0.8,
        spread: 5.0,
        min_extent: 2.0,
        max_extent: 15.0,
    };
    let filters = workload.generate::<2>(64, &mut rng);

    println!("building a 64-subscriber DR-tree…");
    let mut cluster = DrTreeCluster::build(DrTreeConfig::default(), 2024, &filters);
    println!(
        "  built: height {}, legal: {}",
        cluster.height(),
        cluster.check_legal().is_ok()
    );
    check_dissemination(&mut cluster, &mut rng, "fresh");

    // --- wave 1: crash failures -------------------------------------------
    let root = cluster.root().unwrap();
    let victims: Vec<_> = cluster
        .ids()
        .into_iter()
        .filter(|&id| id != root)
        .step_by(7)
        .take(8)
        .collect();
    println!(
        "\ncrashing {} subscribers (uncontrolled departures)…",
        victims.len()
    );
    for v in victims {
        cluster.crash(v);
    }
    let rounds = cluster.stabilize(5_000).expect("recovers from crashes");
    println!("  re-stabilized in {rounds} rounds (Lemma 3.5)");
    check_dissemination(&mut cluster, &mut rng, "after crashes");

    // --- wave 2: controlled leaves ------------------------------------------
    let root = cluster.root().unwrap();
    let leavers: Vec<_> = cluster
        .ids()
        .into_iter()
        .filter(|&id| id != root)
        .step_by(9)
        .take(5)
        .collect();
    println!("\n{} controlled departures (Fig. 9)…", leavers.len());
    for v in leavers {
        cluster.controlled_leave(v);
    }
    let rounds = cluster.stabilize(5_000).expect("recovers from leaves");
    println!("  re-stabilized in {rounds} rounds (Lemma 3.4)");
    check_dissemination(&mut cluster, &mut rng, "after leaves");

    // --- wave 3: memory corruption ------------------------------------------
    println!("\ncorrupting the memory of a third of the processes (Lemma 3.6)…");
    let ids = cluster.ids();
    for (i, &id) in ids.iter().enumerate() {
        if i % 3 == 0 {
            let kind = CorruptionKind::ALL[i % CorruptionKind::ALL.len()];
            cluster.corrupt(id, kind);
        }
    }
    let rounds = cluster.stabilize(8_000).expect("recovers from corruption");
    println!("  re-stabilized in {rounds} rounds");
    check_dissemination(&mut cluster, &mut rng, "after corruption");

    println!(
        "\nfinal overlay: {} subscribers, height {}, max degree {} — still legal: {}",
        cluster.len(),
        cluster.height(),
        cluster.max_degree_observed(),
        cluster.check_legal().is_ok()
    );
}
