//! Cross-crate integration: workloads → overlay → broker → baselines,
//! audited by the centralized R-tree oracle.

use drtree::{
    baselines::{Baseline, ContainmentTreeOverlay, FloodingOverlay, PerDimensionOverlay},
    Broker, DrTreeCluster, DrTreeConfig, EventWorkload, Point, RTree, RTreeConfig, Schema,
    SubscriptionWorkload,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn workload_to_broker_pipeline_has_exact_matching() {
    let mut rng = StdRng::seed_from_u64(2112);
    let filters = SubscriptionWorkload::Clustered {
        clusters: 5,
        skew: 1.0,
        spread: 4.0,
        min_extent: 3.0,
        max_extent: 15.0,
    }
    .generate::<2>(40, &mut rng);

    let schema = Schema::new(["a", "b"]);
    let mut broker: Broker<2> = Broker::new(schema, DrTreeConfig::default(), 3).unwrap();
    let ids: Vec<_> = filters.iter().map(|f| broker.subscribe_rect(*f)).collect();
    broker.stabilize(3_000).expect("stabilizes");

    // Mirror into a centralized R-tree and replay events through both.
    let mut oracle: RTree<usize, 2> = RTree::new(RTreeConfig::default());
    for (i, f) in filters.iter().enumerate() {
        oracle.insert(i, *f);
    }
    let events: Vec<Point<2>> = EventWorkload::Following.generate_with(25, &filters, &mut rng);
    for (k, e) in events.iter().enumerate() {
        let publisher = ids[k % ids.len()];
        let report = broker.publish_point(publisher, *e).unwrap();
        let mut expected: Vec<_> = oracle
            .search_point(e)
            .into_iter()
            .map(|&i| ids[i])
            .filter(|&id| id != publisher)
            .collect();
        expected.sort_unstable();
        let mut got = report.matching.clone();
        got.sort_unstable();
        assert_eq!(got, expected, "event {k} matching set");
        assert!(report.false_negatives.is_empty());
    }
    assert_eq!(broker.stats().false_negatives(), 0);
}

#[test]
fn baselines_and_drtree_agree_on_matching_sets() {
    let mut rng = StdRng::seed_from_u64(31);
    let filters = SubscriptionWorkload::Containment {
        chains: 5,
        shrink: 0.7,
    }
    .generate::<2>(30, &mut rng);
    let events: Vec<Point<2>> = EventWorkload::Following.generate_with(20, &filters, &mut rng);

    let containment = ContainmentTreeOverlay::build(&filters);
    let per_dim = PerDimensionOverlay::build(&filters);
    let flooding = FloodingOverlay::build(&filters, 4);

    let mut cluster = DrTreeCluster::build(DrTreeConfig::default(), 13, &filters);
    let ids = cluster.ids();

    for (k, e) in events.iter().enumerate() {
        let exact = filters.iter().filter(|f| f.contains_point(e)).count();
        for outcome in [containment.route(e), per_dim.route(e), flooding.route(e)] {
            assert_eq!(outcome.matching, exact, "event {k}");
            assert_eq!(outcome.false_negatives, 0, "event {k}");
        }
        let publisher = ids[k % ids.len()];
        let report = cluster.publish_from(publisher, *e);
        let publisher_matches = cluster
            .node(publisher)
            .is_some_and(|n| n.filter().contains_point(e));
        let expected = exact - usize::from(publisher_matches);
        assert_eq!(report.matching.len(), expected, "event {k} (drtree)");
        assert!(report.false_negatives.is_empty());
    }
}

#[test]
fn drtree_stays_balanced_where_containment_tree_degenerates() {
    // 24 nested filters: one chain. The containment tree's depth is 24;
    // the DR-tree remains logarithmic (Lemma 3.1) thanks to height
    // balancing, at the cost of occasionally breaking strong containment
    // awareness (Property 3.2's caveat).
    let mut filters = Vec::new();
    for i in 0..24 {
        let pad = f64::from(i) * 2.0;
        filters.push(drtree::Rect::new([pad, pad], [100.0 - pad, 100.0 - pad]));
    }
    let containment = ContainmentTreeOverlay::build(&filters);
    assert_eq!(containment.depth(), 24);

    let cluster = DrTreeCluster::build(DrTreeConfig::default(), 17, &filters);
    assert!(cluster.height() <= 6, "height {}", cluster.height());
    cluster.check_legal().expect("legal");
}

#[test]
fn churn_schedule_drives_overlay_and_it_recovers() {
    let mut rng = StdRng::seed_from_u64(41);
    let filters = SubscriptionWorkload::Uniform {
        min_extent: 3.0,
        max_extent: 18.0,
    }
    .generate::<2>(30, &mut rng);
    let mut cluster = DrTreeCluster::build(DrTreeConfig::default(), 19, &filters);

    let schedule = drtree::PoissonChurn {
        lambda_join: 0.4,
        lambda_leave: 0.4,
    }
    .schedule(25.0, &mut rng);

    let mut spare = SubscriptionWorkload::Uniform {
        min_extent: 3.0,
        max_extent: 18.0,
    }
    .generate::<2>(schedule.len(), &mut rng)
    .into_iter();

    for ev in &schedule {
        match ev.op {
            drtree::workloads::ChurnOp::Join => {
                if let Some(f) = spare.next() {
                    cluster.add_subscriber(f);
                }
            }
            drtree::workloads::ChurnOp::Leave => {
                let ids = cluster.ids();
                if ids.len() > 3 {
                    let victim = ids[(ev.at * 997.0) as usize % ids.len()];
                    cluster.crash(victim);
                }
            }
        }
        cluster.run_rounds(2); // churn faster than full stabilization
    }
    let rounds = cluster.stabilize(8_000);
    assert!(rounds.is_some(), "did not recover after churn burst");
}
