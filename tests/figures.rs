//! Reproduction of the paper's structural figures (1–6) as assertions.

use drtree::spatial::sample;
use drtree::{
    ContainmentGraph, DrTreeCluster, DrTreeConfig, RTree, RTreeConfig, Rect, SplitMethod,
};

const S1: usize = 0;
const S2: usize = 1;
const S3: usize = 2;
const S4: usize = 3;
const S5: usize = 4;
const S6: usize = 5;
const S7: usize = 6;
const S8: usize = 7;

/// Figure 1 (right): the containment graph of the sample subscriptions.
#[test]
fn fig1_containment_graph() {
    let g: ContainmentGraph = sample::containment_graph();
    // The diamond called out in §3.1: S4 under both S2 and S3.
    assert_eq!(g.hasse_parents(S4), vec![S2, S3]);
    // Chains: S2 ⊐ S1 ⊐ S7 and S3 ⊐ S5 ⊐ S6.
    assert!(g.contains(S2, S1) && g.contains(S1, S7));
    assert!(g.contains(S3, S5) && g.contains(S5, S6));
    assert!(g.contains(S3, S8));
    assert_eq!(g.roots(), &[S2, S3]);
}

/// Figures 2–3: the centralized R-tree over the sample subscriptions —
/// all subscriptions in leaves, interior nodes only carry MBRs, height
/// balanced with the paper's m=1..2, M=3 flavor of grouping.
#[test]
fn fig2_rtree_over_sample() {
    let mut tree: RTree<usize, 2> =
        RTree::new(RTreeConfig::new(1, 3, SplitMethod::Quadratic).unwrap());
    for (i, s) in sample::subscriptions().iter().enumerate() {
        tree.insert(i, *s);
    }
    tree.validate().expect("valid R-tree");
    assert_eq!(tree.len(), 8);
    // 8 entries with M = 3 ⇒ at least 3 leaves ⇒ height ≥ 2 (balanced).
    assert!(tree.height() >= 2);
    // Every event matches exactly its Figure-1 subscription set.
    for (_, event) in sample::events() {
        let mut got: Vec<usize> = tree.search_point(&event).into_iter().copied().collect();
        got.sort_unstable();
        assert_eq!(got, sample::matching(&event));
    }
}

/// Figures 4–5: the DR-tree organization of the sample — S3 (largest
/// MBR) is elected root, every subscriber appears as a leaf, and the
/// containment-awareness property 3.1 holds.
#[test]
fn fig4_drtree_over_sample() {
    let subs = sample::subscriptions();
    let cluster = DrTreeCluster::build(DrTreeConfig::default(), 2007, subs.as_ref());
    cluster.check_legal().expect("legal configuration");
    let ids = cluster.ids();
    // Fig. 4: the logical tree has a single virtual root — S3.
    assert_eq!(cluster.root(), Some(ids[S3]), "S3 has the largest area");

    // Property 3.1 (weak containment awareness): a containee is never an
    // ancestor of its container. Check every containment pair.
    let g = sample::containment_graph();
    let snapshot = cluster.snapshot();
    let is_ancestor = |a: drtree::ProcessId, b: drtree::ProcessId| -> bool {
        // does a appear strictly above b's topmost instance?
        let mut cur = b;
        let mut hops = 0;
        loop {
            let st = &snapshot[&cur];
            let parent = st.level(st.top()).map(|l| l.parent).unwrap_or(cur);
            if parent == cur || hops > snapshot.len() {
                return false;
            }
            if parent == a {
                return true;
            }
            cur = parent;
            hops += 1;
        }
    };
    for container in 0..subs.len() {
        for &containee in g.descendants(container) {
            assert!(
                !is_ancestor(ids[containee], ids[container]),
                "containee S{} is an ancestor of its container S{}",
                containee + 1,
                container + 1
            );
        }
    }
}

/// Figure 6: the root-election principle on its three cases —
/// containment, intersecting MBRs, disjoint MBRs. "In all cases, S1 is
/// the best candidate to be elected as root."
#[test]
fn fig6_root_election_cases() {
    // In each case the filters are chosen so s1 has the largest MBR.
    let cases: [(&str, [Rect<2>; 3]); 3] = [
        (
            "containment",
            [
                Rect::new([0.0, 0.0], [30.0, 30.0]), // s1 contains both
                Rect::new([2.0, 2.0], [12.0, 12.0]),
                Rect::new([15.0, 15.0], [28.0, 28.0]),
            ],
        ),
        (
            "intersecting",
            [
                Rect::new([0.0, 0.0], [30.0, 20.0]),  // s1: area 600
                Rect::new([20.0, 5.0], [40.0, 18.0]), // overlaps s1
                Rect::new([25.0, 10.0], [42.0, 22.0]),
            ],
        ),
        (
            "disjoint",
            [
                Rect::new([0.0, 0.0], [25.0, 25.0]), // s1: area 625
                Rect::new([40.0, 0.0], [55.0, 15.0]),
                Rect::new([70.0, 40.0], [85.0, 58.0]),
            ],
        ),
    ];
    for (name, filters) in cases {
        let cluster = DrTreeCluster::build(DrTreeConfig::default(), 6, filters.as_ref());
        let ids = cluster.ids();
        assert_eq!(
            cluster.root(),
            Some(ids[0]),
            "case {name}: S1 must be elected root"
        );
    }
}
