//! Soak test: continuous publishing *while* churn batters the overlay.
//!
//! The paper's availability story is exactly this regime — "continuous
//! service has to be guaranteed despite high churn" (§4). During the
//! storm transient false negatives are possible (subtrees are detached
//! mid-repair); the test asserts (a) the system never wedges, (b) it
//! returns to a legitimate configuration, and (c) once legal, delivery
//! is exact again.

use drtree::{DrTreeCluster, DrTreeConfig, EventWorkload, SubscriptionWorkload};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

#[test]
fn publishing_through_a_churn_storm() {
    let mut rng = StdRng::seed_from_u64(0xD3_7EE);
    let workload = SubscriptionWorkload::Clustered {
        clusters: 6,
        skew: 0.9,
        spread: 5.0,
        min_extent: 2.0,
        max_extent: 16.0,
    };
    let filters = workload.generate::<2>(48, &mut rng);
    let mut cluster = DrTreeCluster::build(DrTreeConfig::default(), 0xBEE5, &filters);
    let mut spare = workload.generate::<2>(64, &mut rng).into_iter();

    let mut transient_fns = 0usize;
    let mut published = 0usize;
    for step in 0..30 {
        // Churn: every step crashes or adds someone (no settling time).
        let ids = cluster.ids();
        match step % 3 {
            0 if ids.len() > 8 => {
                let victim = ids[rng.gen_range(1..ids.len())];
                if Some(victim) != cluster.root() {
                    cluster.crash(victim);
                }
            }
            1 => {
                if let Some(f) = spare.next() {
                    cluster.add_subscriber(f);
                }
            }
            _ => {
                let ids = cluster.ids();
                let victim = ids[rng.gen_range(0..ids.len())];
                if Some(victim) != cluster.root() {
                    cluster.controlled_leave(victim);
                }
            }
        }
        // Publish mid-churn; count (but tolerate) transient misses.
        let ids = cluster.ids();
        let publisher = ids[rng.gen_range(0..ids.len())];
        let point = drtree::Point::new([rng.gen_range(0.0..100.0), rng.gen_range(0.0..100.0)]);
        let report = cluster.publish_from(publisher, point);
        transient_fns += report.false_negatives.len();
        published += 1;
        cluster.run_rounds(3);
    }
    assert_eq!(published, 30);

    // The storm ends: the overlay must return to a legal configuration…
    let rounds = cluster
        .stabilize(10_000)
        .expect("storm survivors stabilize");
    // …and delivery must be exact again.
    let survivors: Vec<_> = cluster
        .ids()
        .iter()
        .filter_map(|&id| cluster.node(id).map(|n| n.filter()))
        .collect();
    let events = EventWorkload::Following.generate_with(12, &survivors, &mut rng);
    let ids = cluster.ids();
    for (i, e) in events.iter().enumerate() {
        let report = cluster.publish_from(ids[i % ids.len()], *e);
        assert!(
            report.false_negatives.is_empty(),
            "post-storm event {i} missed {:?}",
            report.false_negatives
        );
    }
    // Diagnostic: the storm itself may have caused transient misses;
    // print them so soak logs show the magnitude (typically small).
    println!(
        "storm: {transient_fns} transient false negatives across 30 mid-churn publishes; \
         re-stabilized in {rounds} rounds with {} survivors",
        cluster.len()
    );
}
