//! High-level harness: a whole DR-tree overlay in one value.
//!
//! [`DrTreeCluster`] wraps the synchronous round engine with everything
//! an experiment needs: subscribing/leaving/crashing processes,
//! publishing events with delivery accounting, the contact oracle, the
//! Definition-3.1 legality check, and structural statistics (height,
//! degrees, memory). Rounds are the paper's "steps": every process runs
//! its periodic checks once per round and messages take one round per
//! hop.

use std::collections::BTreeMap;

use rand::rngs::StdRng;

use drtree_sim::{Metrics, ProcessId, RoundNetwork};
use drtree_spatial::{Point, Rect};

use crate::config::DrTreeConfig;
use crate::corruption::CorruptionKind;
use crate::legal::{self, Snapshot, Violation};
use crate::message::{DrtMessage, DrtTimer, PubEvent};
use crate::protocol::node::DrtNode;
use crate::state::NodeState;

/// Outcome of a single published event (the measurement unit of the
/// false-positive/false-negative experiments).
#[derive(Debug, Clone)]
pub struct PublishReport {
    /// The event id assigned by the cluster.
    pub event_id: u64,
    /// Every process that received the event (publisher excluded).
    pub receivers: Vec<ProcessId>,
    /// Subscribers whose filter matches the event (publisher excluded).
    pub matching: Vec<ProcessId>,
    /// Receivers whose filter does not match (§2.3 false positives).
    pub false_positives: Vec<ProcessId>,
    /// Matching subscribers that did not receive the event (§2.3 false
    /// negatives — zero in legitimate configurations).
    pub false_negatives: Vec<ProcessId>,
    /// `PubDown`/`PubUp` messages spent on this event.
    pub messages: u64,
    /// Rounds the dissemination was given to complete.
    pub rounds: u64,
}

impl PublishReport {
    /// False-positive rate among receivers (0 when nobody received).
    pub fn false_positive_rate(&self) -> f64 {
        if self.receivers.is_empty() {
            return 0.0;
        }
        self.false_positives.len() as f64 / self.receivers.len() as f64
    }
}

/// A complete simulated DR-tree overlay (round-based engine).
///
/// See the [crate documentation](crate) for a quick-start example.
#[derive(Clone)]
pub struct DrTreeCluster<const D: usize> {
    net: RoundNetwork<DrtNode<D>>,
    config: DrTreeConfig,
    next_event_id: u64,
    /// Every id ever allocated (for adversarial corruption universes).
    all_ids: Vec<ProcessId>,
}

impl<const D: usize> DrTreeCluster<D> {
    /// Creates an empty overlay with deterministic seed.
    pub fn new(config: DrTreeConfig, seed: u64) -> Self {
        Self {
            net: RoundNetwork::with_tick(seed, DrtTimer::Tick),
            config,
            next_event_id: 0,
            all_ids: Vec::new(),
        }
    }

    /// The overlay configuration.
    pub fn config(&self) -> &DrTreeConfig {
        &self.config
    }

    /// Number of live subscribers.
    pub fn len(&self) -> usize {
        self.net.len()
    }

    /// `true` when no subscriber is live.
    pub fn is_empty(&self) -> bool {
        self.net.is_empty()
    }

    /// Ids of live subscribers.
    pub fn ids(&self) -> Vec<ProcessId> {
        self.net.ids()
    }

    /// Rounds executed so far.
    pub fn round(&self) -> u64 {
        self.net.round()
    }

    /// Message metrics of the underlying network.
    pub fn metrics(&self) -> &Metrics {
        self.net.metrics()
    }

    /// Resets message metrics (between experiment phases).
    pub fn reset_metrics(&mut self) {
        self.net.reset_metrics();
    }

    /// Deterministic randomness for harness decisions.
    pub fn rng(&mut self) -> &mut StdRng {
        self.net.rng()
    }

    /// Shared view of one subscriber process.
    pub fn node(&self, id: ProcessId) -> Option<&DrtNode<D>> {
        self.net.process(id)
    }

    /// Adds a subscriber with `filter`. It joins the overlay through the
    /// contact oracle during the following rounds.
    pub fn add_subscriber(&mut self, filter: Rect<D>) -> ProcessId {
        let node = DrtNode::new(self.config, filter);
        let id = self.net.add_process(node);
        self.all_ids.push(id);
        let contact = self.contact();
        if let Some(n) = self.net.process_mut(id) {
            n.set_contact_hint(contact.or(Some(id)));
        }
        id
    }

    /// Adds a subscriber and runs rounds until it is attached to the
    /// main tree (or `max_rounds` elapse). Returns the id.
    pub fn add_subscriber_stable(&mut self, filter: Rect<D>) -> ProcessId {
        let id = self.add_subscriber(filter);
        let max_rounds = 40 + 4 * (self.height() as u64 + 2) + self.config.join_retry;
        for _ in 0..max_rounds {
            let contact = self.contact();
            let joined = self
                .node(id)
                .is_some_and(|n| !n.believes_root() || contact == Some(id));
            if joined {
                break;
            }
            self.run_round();
        }
        id
    }

    /// Builds an overlay over `filters`, one stable join at a time, and
    /// stabilizes it. Panics if the overlay cannot reach a legal
    /// configuration — construction from a quiescent state always can.
    pub fn build(config: DrTreeConfig, seed: u64, filters: &[Rect<D>]) -> Self {
        let mut cluster = Self::new(config, seed);
        for f in filters {
            cluster.add_subscriber_stable(*f);
        }
        cluster
            .stabilize(10_000 + 50 * filters.len() as u64)
            .expect("freshly built overlay stabilizes");
        cluster
    }

    /// Suspends or resumes the periodic stabilization tick (the ∆
    /// windows of Lemma 3.7 are simulated by suspending it).
    pub fn set_stabilization_enabled(&mut self, enabled: bool) {
        self.net.set_tick(enabled.then_some(DrtTimer::Tick));
    }

    /// Executes one round (refreshing the contact oracle first).
    pub fn run_round(&mut self) {
        let contact = self.contact();
        let ids = self.net.ids();
        for id in ids {
            if let Some(n) = self.net.process_mut(id) {
                n.set_contact_hint(contact.or(Some(id)));
            }
        }
        self.net.run_round();
    }

    /// Executes `n` rounds.
    pub fn run_rounds(&mut self, n: u64) {
        for _ in 0..n {
            self.run_round();
        }
    }

    /// Runs until the configuration is legitimate (Definition 3.2).
    /// Returns the number of rounds needed, or `None` on timeout.
    pub fn stabilize(&mut self, max_rounds: u64) -> Option<u64> {
        for executed in 0..=max_rounds {
            if self.check_legal().is_ok() {
                return Some(executed);
            }
            if executed == max_rounds {
                break;
            }
            self.run_round();
        }
        None
    }

    /// Checks Definition 3.1/3.2 on the current global state.
    ///
    /// # Errors
    ///
    /// Returns every violated condition.
    pub fn check_legal(&self) -> Result<(), Vec<Violation>> {
        let v = legal::check_legal(&self.snapshot(), &self.config);
        if v.is_empty() {
            Ok(())
        } else {
            Err(v)
        }
    }

    /// Clones the state of every live process.
    pub fn snapshot(&self) -> Snapshot<D> {
        self.net
            .iter()
            .map(|(id, n)| (id, n.state().clone()))
            .collect()
    }

    /// The contact oracle (§3.2): the root of the largest tree
    /// component — "a subscriber already in the structure".
    pub fn contact(&self) -> Option<ProcessId> {
        let tops: BTreeMap<ProcessId, ProcessId> = self
            .net
            .iter()
            .map(|(id, n)| (id, n.parent_of(n.top())))
            .collect();
        let mut sizes: BTreeMap<ProcessId, usize> = BTreeMap::new();
        for &start in tops.keys() {
            let mut cur = start;
            let mut hops = 0;
            loop {
                let parent = tops.get(&cur).copied();
                match parent {
                    Some(p) if p != cur && tops.contains_key(&p) && hops <= tops.len() => {
                        cur = p;
                        hops += 1;
                    }
                    _ => break,
                }
            }
            *sizes.entry(cur).or_insert(0) += 1;
        }
        sizes
            .into_iter()
            .max_by(|a, b| a.1.cmp(&b.1).then(b.0.cmp(&a.0)))
            .map(|(root, _)| root)
    }

    /// The overlay root (the contact, in a legal configuration).
    pub fn root(&self) -> Option<ProcessId> {
        self.contact()
    }

    /// Height of the main tree: the root's topmost level (leaf-only
    /// root = 0). Lemma 3.1 bounds this by `O(log_m N)`.
    pub fn height(&self) -> u32 {
        self.root()
            .and_then(|r| self.node(r))
            .map_or(0, |n| n.top())
    }

    /// Controlled departure (Fig. 9): the subscriber announces `LEAVE`
    /// to its parent, then disconnects.
    pub fn controlled_leave(&mut self, id: ProcessId) {
        if !self.net.is_alive(id) {
            return;
        }
        self.net.send_external(id, DrtMessage::DepartRequest);
        // One round for the request to arrive and the LEAVE to be sent …
        self.run_round();
        self.run_round();
        // … then the process is gone.
        self.net.crash(id);
    }

    /// Uncontrolled departure (crash failure): the subscriber vanishes
    /// silently.
    pub fn crash(&mut self, id: ProcessId) {
        self.net.crash(id);
    }

    /// Applies an adversarial corruption to one subscriber's memory
    /// (Lemma 3.6's transient faults). Returns `false` if it is dead.
    pub fn corrupt(&mut self, id: ProcessId, kind: CorruptionKind) -> bool {
        let universe = self.all_ids.clone();
        self.net
            .corrupt(id, |node, rng| kind.apply(node.state_mut(), &universe, rng))
    }

    /// Direct mutable access to a subscriber's state for custom faults.
    pub fn corrupt_with(
        &mut self,
        id: ProcessId,
        f: impl FnOnce(&mut NodeState<D>, &mut StdRng),
    ) -> bool {
        self.net.corrupt(id, |node, rng| f(node.state_mut(), rng))
    }

    /// Publishes `point` from `publisher` and accounts the outcome.
    ///
    /// Runs enough rounds for the event to traverse the tree twice over
    /// (up and down) in a steady state.
    pub fn publish_from(&mut self, publisher: ProcessId, point: Point<D>) -> PublishReport {
        let event_id = self.next_event_id;
        self.next_event_id += 1;
        let event = PubEvent {
            id: event_id,
            point,
            publisher,
        };
        let down_before = self.metrics().label_count("pub-down");
        let up_before = self.metrics().label_count("pub-up");
        self.net
            .send_external(publisher, DrtMessage::PublishRequest { event });
        let rounds = 2 * (u64::from(self.height()) + 2) + 2;
        self.run_rounds(rounds);

        let mut receivers = Vec::new();
        let mut matching = Vec::new();
        let mut false_positives = Vec::new();
        let mut false_negatives = Vec::new();
        for (id, node) in self.net.iter() {
            if id == publisher {
                continue;
            }
            let received = node.pubsub().has_seen(event_id);
            let matches = node.filter().contains_point(&point);
            if received {
                receivers.push(id);
            }
            if matches {
                matching.push(id);
            }
            if received && !matches {
                false_positives.push(id);
            }
            if matches && !received {
                false_negatives.push(id);
            }
        }
        let messages = self.metrics().label_count("pub-down") - down_before
            + self.metrics().label_count("pub-up")
            - up_before;
        PublishReport {
            event_id,
            receivers,
            matching,
            false_positives,
            false_negatives,
            messages,
            rounds,
        }
    }

    /// Maximum and mean per-process memory entries (Lemma 3.1's
    /// `O(M log² N / log m)` quantity).
    pub fn memory_stats(&self) -> (usize, f64) {
        let mut max = 0usize;
        let mut total = 0usize;
        let mut count = 0usize;
        for (_, n) in self.net.iter() {
            let entries = n.state().memory_entries();
            max = max.max(entries);
            total += entries;
            count += 1;
        }
        let mean = if count == 0 {
            0.0
        } else {
            total as f64 / count as f64
        };
        (max, mean)
    }

    /// Maximum instance degree across the overlay.
    pub fn max_degree_observed(&self) -> usize {
        self.net
            .iter()
            .flat_map(|(_, n)| n.state().levels.values().map(|l| l.degree()))
            .max()
            .unwrap_or(0)
    }
}

impl<const D: usize> std::fmt::Debug for DrTreeCluster<D> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DrTreeCluster")
            .field("processes", &self.len())
            .field("round", &self.round())
            .field("height", &self.height())
            .finish()
    }
}
