//! High-level harness: a whole DR-tree overlay in one value.
//!
//! [`DrTreeCluster`] wraps the synchronous round engine with everything
//! an experiment needs: subscribing (the join protocol, Fig. 8),
//! controlled departures (Fig. 9) and crashes, publishing events with
//! delivery accounting (§2.3 dissemination), the contact oracle
//! (§3.2), the Definition-3.1/3.2 legality check driven by the
//! CHECK_\* stabilization modules (Figs. 10–14), and structural
//! statistics (height, degrees, memory — Lemma 3.1). Rounds are the
//! paper's "steps": every process runs its periodic checks once per
//! round and messages take one round per hop.
//!
//! Publishing comes in two shapes:
//!
//! * [`DrTreeCluster::publish_from`] — the paper's measurement unit:
//!   one event, drained to quiescence before the next may enter.
//! * [`DrTreeCluster::publish_pipeline`] — the scaling path: a sliding
//!   window of events disseminates concurrently, sharing rounds, while
//!   tagged message accounting keeps every per-event figure exact (see
//!   [`drtree_sim::MsgTag`]).

use std::collections::BTreeMap;

use rand::rngs::StdRng;

use drtree_sim::{Metrics, ProcessId, RoundNetwork};
use drtree_spatial::{Point, Rect};

use crate::config::DrTreeConfig;
use crate::corruption::CorruptionKind;
use crate::legal::{self, Snapshot, Violation};
use crate::message::{DrtMessage, DrtTimer, PubEvent};
use crate::protocol::node::DrtNode;
use crate::state::NodeState;

/// Outcome of a single published event (the measurement unit of the
/// false-positive/false-negative experiments).
#[derive(Debug, Clone)]
pub struct PublishReport {
    /// The event id assigned by the cluster.
    pub event_id: u64,
    /// Every process that received the event (publisher excluded).
    pub receivers: Vec<ProcessId>,
    /// Subscribers whose filter matches the event (publisher excluded).
    pub matching: Vec<ProcessId>,
    /// Receivers whose filter does not match (§2.3 false positives).
    pub false_positives: Vec<ProcessId>,
    /// Matching subscribers that did not receive the event (§2.3 false
    /// negatives — zero in legitimate configurations).
    pub false_negatives: Vec<ProcessId>,
    /// `PubDown`/`PubUp` messages spent on this event. Tag-scoped:
    /// exact for this event even when dissemination of several events
    /// overlaps in the network ([`DrTreeCluster::publish_pipeline`]).
    pub messages: u64,
    /// Rounds the dissemination took: the fixed drain budget for
    /// [`DrTreeCluster::publish_from`], the measured injection-to-
    /// quiescence span for [`DrTreeCluster::publish_pipeline`].
    pub rounds: u64,
}

impl PublishReport {
    /// False-positive rate among receivers (0 when nobody received).
    pub fn false_positive_rate(&self) -> f64 {
        if self.receivers.is_empty() {
            return 0.0;
        }
        self.false_positives.len() as f64 / self.receivers.len() as f64
    }
}

/// A complete simulated DR-tree overlay (round-based engine).
///
/// See the [crate documentation](crate) for a quick-start example.
///
/// # Example: sequential vs pipelined publish
///
/// ```
/// use drtree_core::{DrTreeCluster, DrTreeConfig};
/// use drtree_spatial::{Point, Rect};
///
/// let filters: Vec<Rect<2>> = (0..12)
///     .map(|i| {
///         let x = f64::from(i % 4) * 10.0;
///         let y = f64::from(i / 4) * 10.0;
///         Rect::new([x, y], [x + 12.0, y + 12.0])
///     })
///     .collect();
/// // `build_bulk` materializes a legal overlay without protocol joins.
/// let mut sequential: DrTreeCluster<2> =
///     DrTreeCluster::build_bulk(DrTreeConfig::default(), 7, &filters);
/// let mut pipelined = sequential.clone();
/// let ids = sequential.ids();
/// let events: Vec<_> = (0..6)
///     .map(|i| (ids[i], Point::new([3.0 * i as f64 + 1.0, 11.0])))
///     .collect();
///
/// // The paper's measurement mode: one event at a time, each drained
/// // to quiescence before the next enters the network.
/// let before = sequential.round();
/// let seq: Vec<_> = events
///     .iter()
///     .map(|&(publisher, point)| sequential.publish_from(publisher, point))
///     .collect();
/// let seq_rounds = sequential.round() - before;
///
/// // The scaling mode: a window of events shares dissemination rounds.
/// let before = pipelined.round();
/// let pipe = pipelined.publish_pipeline_from(&events, 4);
/// let pipe_rounds = pipelined.round() - before;
///
/// // Same deliveries and per-event message bills, fewer total rounds.
/// for (a, b) in seq.iter().zip(&pipe) {
///     assert_eq!(a.receivers, b.receivers);
///     assert_eq!(a.messages, b.messages);
/// }
/// assert!(pipe_rounds < seq_rounds);
/// ```
#[derive(Clone)]
pub struct DrTreeCluster<const D: usize> {
    pub(crate) net: RoundNetwork<DrtNode<D>>,
    config: DrTreeConfig,
    pub(crate) next_event_id: u64,
    /// Every id ever allocated (for adversarial corruption universes).
    all_ids: Vec<ProcessId>,
}

impl<const D: usize> DrTreeCluster<D> {
    /// Upper bound on the [`DrTreeCluster::publish_pipeline`] window.
    ///
    /// Delivery accounting reads each node's recently-seen event ring
    /// at quiescence time; a busy interior node (the root sees every
    /// event) observes up to roughly three windows of newer events
    /// before the oldest in-flight event is accounted, so the window
    /// must stay well below the ring capacity (1024 entries).
    pub const MAX_PUBLISH_WINDOW: usize = 256;

    /// Creates an empty overlay with deterministic seed.
    pub fn new(config: DrTreeConfig, seed: u64) -> Self {
        Self {
            net: RoundNetwork::with_tick(seed, DrtTimer::Tick),
            config,
            next_event_id: 0,
            all_ids: Vec::new(),
        }
    }

    /// The overlay configuration.
    pub fn config(&self) -> &DrTreeConfig {
        &self.config
    }

    /// Number of live subscribers.
    pub fn len(&self) -> usize {
        self.net.len()
    }

    /// `true` when no subscriber is live.
    pub fn is_empty(&self) -> bool {
        self.net.is_empty()
    }

    /// Ids of live subscribers.
    pub fn ids(&self) -> Vec<ProcessId> {
        self.net.ids()
    }

    /// Rounds executed so far.
    pub fn round(&self) -> u64 {
        self.net.round()
    }

    /// Message metrics of the underlying network.
    pub fn metrics(&self) -> &Metrics {
        self.net.metrics()
    }

    /// Resets message metrics (between experiment phases).
    pub fn reset_metrics(&mut self) {
        self.net.reset_metrics();
    }

    /// Deterministic randomness for harness decisions.
    pub fn rng(&mut self) -> &mut StdRng {
        self.net.rng()
    }

    /// Shared view of one subscriber process.
    pub fn node(&self, id: ProcessId) -> Option<&DrtNode<D>> {
        self.net.process(id)
    }

    /// Adds a subscriber with `filter`. It joins the overlay through the
    /// contact oracle during the following rounds.
    pub fn add_subscriber(&mut self, filter: Rect<D>) -> ProcessId {
        let node = DrtNode::new(self.config, filter);
        let id = self.net.add_process(node);
        self.all_ids.push(id);
        let contact = self.contact();
        if let Some(n) = self.net.process_mut(id) {
            n.set_contact_hint(contact.or(Some(id)));
        }
        id
    }

    /// Adds a subscriber and runs rounds until it is attached to the
    /// main tree (or `max_rounds` elapse). Returns the id.
    pub fn add_subscriber_stable(&mut self, filter: Rect<D>) -> ProcessId {
        let id = self.add_subscriber(filter);
        let max_rounds = 40 + 4 * (self.height() as u64 + 2) + self.config.join_retry;
        for _ in 0..max_rounds {
            let contact = self.contact();
            let joined = self
                .node(id)
                .is_some_and(|n| !n.believes_root() || contact == Some(id));
            if joined {
                break;
            }
            self.run_round();
        }
        id
    }

    /// Builds an overlay over `filters`, one stable join at a time, and
    /// stabilizes it. Panics if the overlay cannot reach a legal
    /// configuration — construction from a quiescent state always can.
    pub fn build(config: DrTreeConfig, seed: u64, filters: &[Rect<D>]) -> Self {
        let mut cluster = Self::new(config, seed);
        for f in filters {
            cluster.add_subscriber_stable(*f);
        }
        cluster
            .stabilize(10_000 + 50 * filters.len() as u64)
            .expect("freshly built overlay stabilizes");
        cluster
    }

    /// Builds an overlay over `filters` by materializing a legitimate
    /// configuration directly (Hilbert-ordered grouping, largest-MBR
    /// owners — see [`crate::bulk`]) instead of running one join
    /// protocol instance per subscriber.
    ///
    /// Protocol-equivalent from the outside: the result passes
    /// [`DrTreeCluster::check_legal`] (asserted), so every subsequent
    /// operation — publishes, churn, corruption, stabilization — runs
    /// the unmodified protocol on it. [`DrTreeCluster::build`] costs
    /// `O(N²)` simulation work and dominates large experiments; this
    /// path is `O(N log N)` and makes 10k+-subscriber benches
    /// practical.
    ///
    /// # Panics
    ///
    /// Panics if the materialized configuration is not legal (a bug,
    /// not an input condition: any finite filter set has one).
    pub fn build_bulk(config: DrTreeConfig, seed: u64, filters: &[Rect<D>]) -> Self {
        let mut cluster = Self::new(config, seed);
        let ids: Vec<ProcessId> = filters
            .iter()
            .map(|&f| {
                let id = cluster.net.add_process(DrtNode::new(config, f));
                cluster.all_ids.push(id);
                id
            })
            .collect();
        for (id, state) in crate::bulk::bulk_states(&config, &ids, filters) {
            if let Some(node) = cluster.net.process_mut(id) {
                *node.state_mut() = state;
            }
        }
        // Two rounds warm the heartbeat caches; on a legal state the
        // CHECK_* modules are no-ops.
        cluster.run_rounds(2);
        if let Err(v) = cluster.check_legal() {
            panic!("bulk-built overlay is not legal: {v:?}");
        }
        cluster
    }

    /// Suspends or resumes the periodic stabilization tick (the ∆
    /// windows of Lemma 3.7 are simulated by suspending it).
    pub fn set_stabilization_enabled(&mut self, enabled: bool) {
        self.net.set_tick(enabled.then_some(DrtTimer::Tick));
    }

    /// Executes one round (refreshing the contact oracle first).
    pub fn run_round(&mut self) {
        let contact = self.contact();
        let ids = self.net.ids();
        for id in ids {
            if let Some(n) = self.net.process_mut(id) {
                n.set_contact_hint(contact.or(Some(id)));
            }
        }
        self.net.run_round();
    }

    /// Executes `n` rounds.
    pub fn run_rounds(&mut self, n: u64) {
        for _ in 0..n {
            self.run_round();
        }
    }

    /// Runs until the configuration is legitimate (Definition 3.2).
    /// Returns the number of rounds needed, or `None` on timeout.
    pub fn stabilize(&mut self, max_rounds: u64) -> Option<u64> {
        for executed in 0..=max_rounds {
            if self.check_legal().is_ok() {
                return Some(executed);
            }
            if executed == max_rounds {
                break;
            }
            self.run_round();
        }
        None
    }

    /// Checks Definition 3.1/3.2 on the current global state.
    ///
    /// # Errors
    ///
    /// Returns every violated condition.
    pub fn check_legal(&self) -> Result<(), Vec<Violation>> {
        let v = legal::check_legal(&self.snapshot(), &self.config);
        if v.is_empty() {
            Ok(())
        } else {
            Err(v)
        }
    }

    /// Clones the state of every live process.
    pub fn snapshot(&self) -> Snapshot<D> {
        self.net
            .iter()
            .map(|(id, n)| (id, n.state().clone()))
            .collect()
    }

    /// The contact oracle (§3.2): the root of the largest tree
    /// component — "a subscriber already in the structure".
    pub fn contact(&self) -> Option<ProcessId> {
        let tops: BTreeMap<ProcessId, ProcessId> = self
            .net
            .iter()
            .map(|(id, n)| (id, n.parent_of(n.top())))
            .collect();
        let mut sizes: BTreeMap<ProcessId, usize> = BTreeMap::new();
        for &start in tops.keys() {
            let mut cur = start;
            let mut hops = 0;
            loop {
                let parent = tops.get(&cur).copied();
                match parent {
                    Some(p) if p != cur && tops.contains_key(&p) && hops <= tops.len() => {
                        cur = p;
                        hops += 1;
                    }
                    _ => break,
                }
            }
            *sizes.entry(cur).or_insert(0) += 1;
        }
        sizes
            .into_iter()
            .max_by(|a, b| a.1.cmp(&b.1).then(b.0.cmp(&a.0)))
            .map(|(root, _)| root)
    }

    /// The overlay root (the contact, in a legal configuration).
    pub fn root(&self) -> Option<ProcessId> {
        self.contact()
    }

    /// Height of the main tree: the root's topmost level (leaf-only
    /// root = 0). Lemma 3.1 bounds this by `O(log_m N)`.
    pub fn height(&self) -> u32 {
        self.root()
            .and_then(|r| self.node(r))
            .map_or(0, |n| n.top())
    }

    /// Controlled departure (Fig. 9): the subscriber announces `LEAVE`
    /// to its parent, then disconnects.
    pub fn controlled_leave(&mut self, id: ProcessId) {
        if !self.net.is_alive(id) {
            return;
        }
        self.net.send_external(id, DrtMessage::DepartRequest);
        // One round for the request to arrive and the LEAVE to be sent …
        self.run_round();
        self.run_round();
        // … then the process is gone.
        self.net.crash(id);
    }

    /// Uncontrolled departure (crash failure): the subscriber vanishes
    /// silently.
    pub fn crash(&mut self, id: ProcessId) {
        self.net.crash(id);
    }

    /// Applies an adversarial corruption to one subscriber's memory
    /// (Lemma 3.6's transient faults). Returns `false` if it is dead.
    pub fn corrupt(&mut self, id: ProcessId, kind: CorruptionKind) -> bool {
        let universe = self.all_ids.clone();
        self.net
            .corrupt(id, |node, rng| kind.apply(node.state_mut(), &universe, rng))
    }

    /// Replaces the network fault profile (message loss, duplication,
    /// reordering) at runtime — see [`drtree_sim::FaultProfile`]. The
    /// scripted fault windows of [`crate::adversary`] open and close
    /// through this.
    pub fn set_faults(&mut self, faults: drtree_sim::FaultProfile) {
        self.net.set_faults(faults);
    }

    /// Installs a network partition between the given groups (both
    /// directions of every cross-group link are cut; successive calls
    /// compose). See [`RoundNetwork::partition`].
    pub fn partition(&mut self, groups: &[Vec<ProcessId>]) {
        self.net.partition(groups);
    }

    /// Heals every partition cut. Manual [`DrTreeCluster::block_link`]
    /// blocks survive.
    pub fn heal(&mut self) {
        self.net.heal();
    }

    /// Blocks the directed link `from → to`.
    pub fn block_link(&mut self, from: ProcessId, to: ProcessId) {
        self.net.block_link(from, to);
    }

    /// Unblocks the directed link `from → to` (inverse of a single
    /// [`DrTreeCluster::block_link`]; also removes a partition cut on
    /// that link).
    pub fn unblock_link(&mut self, from: ProcessId, to: ProcessId) {
        self.net.unblock_link(from, to);
    }

    /// Removes all link blocks, manual and partition-installed.
    pub fn unblock_all(&mut self) {
        self.net.unblock_all();
    }

    /// Direct mutable access to a subscriber's state for custom faults.
    pub fn corrupt_with(
        &mut self,
        id: ProcessId,
        f: impl FnOnce(&mut NodeState<D>, &mut StdRng),
    ) -> bool {
        self.net.corrupt(id, |node, rng| f(node.state_mut(), rng))
    }

    /// Replaces a live subscriber's filter in place — the mobility
    /// command of the moving-subscription experiments. The filter is
    /// "constant non-corruptible data" in the paper's model (§3.2), so
    /// a move is modeled as atomically swapping that constant: the
    /// leaf instance's MBR is re-pinned to the new filter, and the
    /// stale ancestor MBR/filter caches repair through the regular
    /// heartbeat + `Compute_MBR` stabilization — exactly the machinery
    /// that absorbs a transient corruption (Lemma 3.6), which is why
    /// no new protocol is needed. Run [`DrTreeCluster::stabilize`]
    /// afterwards to let the repair converge before the next publish.
    /// Returns `false` if the subscriber is dead.
    pub fn move_subscriber(&mut self, id: ProcessId, filter: Rect<D>) -> bool {
        self.net.corrupt(id, |node, _| {
            let state = node.state_mut();
            state.filter = filter;
            if let Some(leaf) = state.level_mut(0) {
                leaf.mbr = filter;
            }
        })
    }

    /// Publishes `point` from `publisher` and accounts the outcome.
    ///
    /// Runs enough rounds for the event to traverse the tree twice over
    /// (up and down) in a steady state. The message bill is tag-scoped
    /// (exactly this event's `PubUp`/`PubDown` sends), so it stays
    /// correct even if traffic of an earlier event is still in flight.
    pub fn publish_from(&mut self, publisher: ProcessId, point: Point<D>) -> PublishReport {
        let event_id = self.inject(publisher, point);
        let rounds = 2 * (u64::from(self.height()) + 2) + 2;
        self.run_rounds(rounds);
        let report = self.finalize(publisher, point, event_id, rounds);
        // If the drain budget did not suffice (corrupted overlays),
        // retire the id so late traffic cannot re-create counters.
        self.net.retire_tags_below(self.next_event_id);
        report
    }

    /// Publishes a stream of events through a sliding window of
    /// `window` concurrently disseminating events — the pipelined
    /// counterpart of calling [`DrTreeCluster::publish_from`] in a
    /// loop. All events are published by `publisher`; see
    /// [`DrTreeCluster::publish_pipeline_from`] for per-event
    /// publishers.
    pub fn publish_pipeline(
        &mut self,
        publisher: ProcessId,
        points: &[Point<D>],
        window: usize,
    ) -> Vec<PublishReport> {
        let events: Vec<(ProcessId, Point<D>)> = points.iter().map(|&p| (publisher, p)).collect();
        self.publish_pipeline_from(&events, window)
    }

    /// Publishes `events` (publisher, point pairs) through a sliding
    /// window: up to `window` events disseminate concurrently, sharing
    /// rounds, their `PubUp`/`PubDown` traffic interleaved in the same
    /// inboxes. Per-event accounting stays exact: every message is
    /// tagged with its event id ([`drtree_sim::MsgTag`]), each event
    /// completes when its own tag has no messages in flight (per-tag
    /// quiescence instead of a whole-network drain), and its report
    /// charges only its own messages and its own injection-to-
    /// quiescence rounds.
    ///
    /// Reports are returned in input order. In a legitimate
    /// configuration the delivery sets equal a sequential
    /// [`DrTreeCluster::publish_from`] reference for every window size
    /// (property-tested); total rounds shrink by up to `min(window,
    /// rounds-per-event)` since the per-round simulation work is shared
    /// by every in-flight event.
    ///
    /// `window` is clamped to `1..=`[`DrTreeCluster::MAX_PUBLISH_WINDOW`].
    pub fn publish_pipeline_from(
        &mut self,
        events: &[(ProcessId, Point<D>)],
        window: usize,
    ) -> Vec<PublishReport> {
        let window = window.clamp(1, Self::MAX_PUBLISH_WINDOW);
        let mut reports: Vec<Option<PublishReport>> = Vec::new();
        reports.resize_with(events.len(), || None);
        // (input index, event id, injection round) per in-flight event.
        let mut live: Vec<(usize, u64, u64)> = Vec::with_capacity(window);
        let mut next = 0usize;
        // Dissemination is self-limiting (per-node dedup), so every tag
        // drains; the deadline only guards adversarially corrupted
        // configurations, force-finalizing whatever is still in flight.
        let per_event = 2 * (u64::from(self.height()) + 2) + 2;
        let deadline = self.round() + (events.len() as u64 + 1) * (per_event + 4) + 64;
        while next < events.len() || !live.is_empty() {
            while live.len() < window && next < events.len() {
                let (publisher, point) = events[next];
                let event_id = self.inject(publisher, point);
                live.push((next, event_id, self.round()));
                next += 1;
            }
            self.run_round();
            let expired = self.round() >= deadline;
            let mut i = 0;
            while i < live.len() {
                let (idx, event_id, injected) = live[i];
                if !expired && self.net.metrics().tag_inflight(event_id) > 0 {
                    i += 1;
                    continue;
                }
                let (publisher, point) = events[idx];
                let rounds = self.round() - injected;
                reports[idx] = Some(self.finalize(publisher, point, event_id, rounds));
                live.swap_remove(i);
            }
        }
        // Every tag this call allocated is finalized; retiring the id
        // range keeps traffic of force-finalized events that still
        // circulates in a corrupted overlay from re-creating per-tag
        // counter entries nobody would ever clear.
        self.net.retire_tags_below(self.next_event_id);
        reports
            .into_iter()
            .map(|r| r.expect("every event finalized"))
            .collect()
    }

    /// Allocates an event id and injects the publish request. Crate-
    /// visible so the adversary harness ([`crate::adversary`]) can
    /// drive its own pipeline loop interleaved with fault injection.
    pub(crate) fn inject(&mut self, publisher: ProcessId, point: Point<D>) -> u64 {
        let event_id = self.next_event_id;
        self.next_event_id += 1;
        let event = PubEvent {
            id: event_id,
            point,
            publisher,
        };
        self.net
            .send_external(publisher, DrtMessage::PublishRequest { event });
        event_id
    }

    /// Accounts one completed event: who received it, who should have,
    /// and its tag-scoped message bill (the tag is then forgotten).
    fn finalize(
        &mut self,
        publisher: ProcessId,
        point: Point<D>,
        event_id: u64,
        rounds: u64,
    ) -> PublishReport {
        let mut receivers = Vec::new();
        let mut matching = Vec::new();
        let mut false_positives = Vec::new();
        let mut false_negatives = Vec::new();
        for (id, node) in self.net.iter() {
            if id == publisher {
                continue;
            }
            let received = node.pubsub().has_seen(event_id);
            let matches = node.filter().contains_point(&point);
            if received {
                receivers.push(id);
            }
            if matches {
                matching.push(id);
            }
            if received && !matches {
                false_positives.push(id);
            }
            if matches && !received {
                false_negatives.push(id);
            }
        }
        let messages = self.net.metrics().tag_count(event_id);
        self.net.clear_tag(event_id);
        PublishReport {
            event_id,
            receivers,
            matching,
            false_positives,
            false_negatives,
            messages,
            rounds,
        }
    }

    /// Maximum and mean per-process memory entries (Lemma 3.1's
    /// `O(M log² N / log m)` quantity).
    pub fn memory_stats(&self) -> (usize, f64) {
        let mut max = 0usize;
        let mut total = 0usize;
        let mut count = 0usize;
        for (_, n) in self.net.iter() {
            let entries = n.state().memory_entries();
            max = max.max(entries);
            total += entries;
            count += 1;
        }
        let mean = if count == 0 {
            0.0
        } else {
            total as f64 / count as f64
        };
        (max, mean)
    }

    /// Maximum instance degree across the overlay.
    pub fn max_degree_observed(&self) -> usize {
        self.net
            .iter()
            .flat_map(|(_, n)| n.state().levels.values().map(|l| l.degree()))
            .max()
            .unwrap_or(0)
    }
}

impl<const D: usize> std::fmt::Debug for DrTreeCluster<D> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DrTreeCluster")
            .field("processes", &self.len())
            .field("round", &self.round())
            .field("height", &self.height())
            .finish()
    }
}
