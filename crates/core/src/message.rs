//! Protocol messages of the DR-tree overlay.
//!
//! Each variant corresponds to a message or remote procedure of the
//! paper's pseudo-code (Figures 8–14), translated to an explicitly
//! asynchronous message-passing style: where the pseudo-code reads a
//! neighbor's variable directly (shared-memory style), the protocol here
//! carries the same information in [`ChildSummary`] payloads refreshed by
//! periodic heartbeats.

use drtree_sim::{MessageLabel, MsgTag, ProcessId};
use drtree_spatial::{Point, Rect};

use crate::state::Level;

/// What a parent knows about one child instance: the child's cached MBR,
/// its (constant) filter, its degree and underloaded flag.
///
/// This is exactly the per-child state the pseudo-code reads remotely:
/// `mbr^{l+1}_q` (Figures 7/10/13), `underloaded^{l+1}_q` and
/// `|C^{l+1}_q|` (Figure 14), and `filter_q` (`Best_Set_Cover`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChildSummary<const D: usize> {
    /// The child process.
    pub id: ProcessId,
    /// MBR of the child instance (equals its filter for leaf instances).
    pub mbr: Rect<D>,
    /// The child's subscription filter (constant).
    pub filter: Rect<D>,
    /// Number of children of the child instance (0 for leaves).
    pub count: usize,
    /// The child instance's underloaded flag (Fig. 12).
    pub underloaded: bool,
}

/// One level taken over in an [`DrtMessage::AssumeRole`] transfer.
#[derive(Debug, Clone, PartialEq)]
pub struct LevelTransfer<const D: usize> {
    /// The level of the instance the receiver must create.
    pub level: Level,
    /// The children of that instance, *excluding* the receiver's own
    /// self-child entry (the receiver inserts that itself).
    pub children: Vec<ChildSummary<D>>,
}

/// A published event in flight.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PubEvent<const D: usize> {
    /// Harness-assigned unique id, used for delivery accounting and as a
    /// routing-loop guard while the structure is corrupted.
    pub id: u64,
    /// The event point (§2.1: an event is a point in attribute space).
    pub point: Point<D>,
    /// The producing subscriber.
    pub publisher: ProcessId,
}

/// Timers driving the periodic behavior of a DR-tree node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DrtTimer {
    /// The periodic stabilization tick: heartbeats plus the CHECK_MBR /
    /// CHECK_PARENT / CHECK_CHILDREN / CHECK_COVER / CHECK_STRUCTURE
    /// modules, exactly the events the paper triggers "periodically for
    /// each level where the subscriber is active" (§3.3).
    Tick,
}

/// Messages of the DR-tree protocol.
#[derive(Debug, Clone, PartialEq)]
pub enum DrtMessage<const D: usize> {
    /// Join request (Fig. 8 `JOIN`), also used to re-attach whole
    /// subtrees after failures (Fig. 11) and to merge trees. The joiner
    /// attaches the subtree rooted at its topmost instance (`top_level`;
    /// 0 for a fresh subscriber).
    Join {
        /// The joining process.
        joiner: ProcessId,
        /// Level of the joiner's topmost instance.
        top_level: Level,
        /// MBR of that instance.
        mbr: Rect<D>,
        /// The joiner's filter.
        filter: Rect<D>,
        /// Degree of the joiner's topmost instance.
        count: usize,
        /// `None`: route toward the root first (the paper: the request
        /// "is recursively redirected upward the tree until it reaches
        /// the root"). `Some(l)`: descend — handle at the receiver's
        /// instance at level `l`.
        descend: Option<Level>,
    },
    /// The receiving root's tree is shorter than the joining subtree;
    /// the joiner must dissolve its instance at `level` and let each
    /// child subtree rejoin on its own.
    JoinTooTall {
        /// The joiner instance level to dissolve.
        level: Level,
    },
    /// Ask the receiver to adopt `child` at the receiver's instance at
    /// `level + 1` (Fig. 8 `ADD_CHILD`).
    AddChild {
        /// Level of the child's topmost instance.
        level: Level,
        /// The child's summary.
        summary: ChildSummary<D>,
    },
    /// Parent → child: "you are now my child at `level`"
    /// (the `parent_q ← p` assignment of `Adjust_Children`, Fig. 7).
    Adopted {
        /// The child's instance level.
        level: Level,
    },
    /// Receiver must create the instances in `transfers` (contiguous,
    /// starting right above its current topmost instance). Used for the
    /// `Adjust_Parent` role exchange (Figs. 7/13), for handing the
    /// second half of a split to its elected leader, and for growing a
    /// new root. `parent == receiver` means the receiver becomes the
    /// root.
    AssumeRole {
        /// Levels to take over, ascending.
        transfers: Vec<LevelTransfer<D>>,
        /// Parent of the topmost transferred instance.
        parent: ProcessId,
        /// `true` when the transfer is a §3.2 false-positive-driven
        /// promotion: the receiver suspends its area-based CHECK_COVER
        /// for a cooldown so the two reorganization rules do not
        /// oscillate (see `FpReorgConfig::cover_cooldown`).
        fp_promotion: bool,
    },
    /// Your parent at `level` (your topmost instance) is now
    /// `new_parent` (children-set handover during splits/exchanges).
    ReparentTo {
        /// The receiver's instance level.
        level: Level,
        /// The new parent.
        new_parent: ProcessId,
    },
    /// In the receiver's instance at `level`, replace child `old` with
    /// the summarized child (role exchanges seen from the old parent).
    ReplaceChild {
        /// The receiver's instance level.
        level: Level,
        /// Child to remove.
        old: ProcessId,
        /// Child to insert instead.
        summary: ChildSummary<D>,
    },
    /// Periodic child → parent refresh (realizes the remote reads of the
    /// CHECK modules and the failure detector for uncontrolled leaves).
    Heartbeat {
        /// The sender's (child's) instance level.
        level: Level,
        /// Fresh summary of the sender's instance.
        summary: ChildSummary<D>,
    },
    /// Parent → child heartbeat acknowledgment. `still_child == false`
    /// triggers the CHECK_PARENT repair (Fig. 11): the child rejoins.
    HeartbeatAck {
        /// The child's instance level.
        level: Level,
        /// Whether the parent still lists the sender as child.
        still_child: bool,
    },
    /// Controlled departure (Fig. 9): the sender (child at `level`)
    /// leaves the system.
    Leave {
        /// The leaver's topmost instance level.
        level: Level,
    },
    /// Run the CHECK_STRUCTURE module now at the receiver's instance at
    /// `level` (sent by underloaded children, Fig. 9).
    CheckStructure {
        /// The receiver's instance level.
        level: Level,
    },
    /// Compaction (Fig. 14 `Compact`/`Merge_Children`): the receiver
    /// must dissolve its instance at `level` and hand its children to
    /// `into`.
    MergeInto {
        /// The receiver's instance level to dissolve.
        level: Level,
        /// The elected survivor.
        into: ProcessId,
    },
    /// Compaction companion: absorb these children into the receiver's
    /// instance at `level`.
    AdoptChildren {
        /// The receiver's instance level.
        level: Level,
        /// Children handed over.
        children: Vec<ChildSummary<D>>,
    },
    /// Fig. 14 `INITIATE_NEW_CONNECTION`: dissolve the subtree below the
    /// receiver's instance at `level`; every leaf rejoins through the
    /// contact oracle.
    InitiateNewConnection {
        /// The receiver's instance level.
        level: Level,
    },
    /// Instruct the receiver to re-attach the subtree rooted at its
    /// instance at `level` via the oracle (JoinTooTall cascade).
    RejoinSubtree {
        /// The receiver's instance level.
        level: Level,
    },
    /// Harness-injected request to perform a controlled departure: the
    /// receiver announces `LEAVE` to its parent (Fig. 9) before being
    /// disconnected.
    DepartRequest,
    /// Ask the receiver to publish an event it produced (harness-
    /// injected; the paper's "event produced by a node n").
    PublishRequest {
        /// The event.
        event: PubEvent<D>,
    },
    /// Event propagating down a subtree (§2.3: "an interior node
    /// forwards the event to each of its children whose MBR contains the
    /// event").
    PubDown {
        /// The event.
        event: PubEvent<D>,
        /// The receiver's instance level.
        level: Level,
    },
    /// Event propagating up toward the root (§3: "propagated upwards the
    /// root … and down every sibling subtree encountered on the path").
    PubUp {
        /// The event.
        event: PubEvent<D>,
        /// The *sender's* instance level (the receiver handles it at
        /// `level + 1`).
        level: Level,
    },
}

impl<const D: usize> MessageLabel for DrtMessage<D> {
    fn label(&self) -> &'static str {
        match self {
            DrtMessage::Join { .. } => "join",
            DrtMessage::JoinTooTall { .. } => "join-too-tall",
            DrtMessage::AddChild { .. } => "add-child",
            DrtMessage::Adopted { .. } => "adopted",
            DrtMessage::AssumeRole { .. } => "assume-role",
            DrtMessage::ReparentTo { .. } => "reparent",
            DrtMessage::ReplaceChild { .. } => "replace-child",
            DrtMessage::Heartbeat { .. } => "heartbeat",
            DrtMessage::HeartbeatAck { .. } => "hb-ack",
            DrtMessage::Leave { .. } => "leave",
            DrtMessage::CheckStructure { .. } => "check-structure",
            DrtMessage::MergeInto { .. } => "merge-into",
            DrtMessage::AdoptChildren { .. } => "adopt-children",
            DrtMessage::InitiateNewConnection { .. } => "inc",
            DrtMessage::RejoinSubtree { .. } => "rejoin-subtree",
            DrtMessage::DepartRequest => "depart-request",
            DrtMessage::PublishRequest { .. } => "pub-request",
            DrtMessage::PubDown { .. } => "pub-down",
            DrtMessage::PubUp { .. } => "pub-up",
        }
    }

    /// Publication traffic is tagged with its event id, so the engines
    /// keep per-event in-flight counts (the pipelined publish path's
    /// quiescence signal) and an exact per-event message bill even when
    /// `PubUp`/`PubDown` messages of different events interleave in the
    /// same inboxes. The harness-injected `PublishRequest` is tracked
    /// for quiescence but unbilled: the paper's message counts (§3)
    /// cover dissemination hops only.
    fn tag(&self) -> Option<MsgTag> {
        match self {
            DrtMessage::PubDown { event, .. } | DrtMessage::PubUp { event, .. } => {
                Some(MsgTag::billed(event.id))
            }
            DrtMessage::PublishRequest { event } => Some(MsgTag::unbilled(event.id)),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_are_distinct_for_core_messages() {
        let filter = Rect::new([0.0], [1.0]);
        let summary = ChildSummary {
            id: ProcessId::from_raw(1),
            mbr: filter,
            filter,
            count: 0,
            underloaded: false,
        };
        let msgs: Vec<DrtMessage<1>> = vec![
            DrtMessage::Join {
                joiner: ProcessId::from_raw(1),
                top_level: 0,
                mbr: filter,
                filter,
                count: 0,
                descend: None,
            },
            DrtMessage::AddChild { level: 0, summary },
            DrtMessage::Adopted { level: 0 },
            DrtMessage::Heartbeat { level: 0, summary },
            DrtMessage::HeartbeatAck {
                level: 0,
                still_child: true,
            },
            DrtMessage::Leave { level: 0 },
        ];
        let mut labels: Vec<&str> = msgs.iter().map(|m| m.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), msgs.len());
    }
}
