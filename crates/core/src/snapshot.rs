//! Global-state inspection: tree views, statistics, and DOT export.
//!
//! Built on the same [`Snapshot`] the legality
//! checker consumes, [`TreeView`] reconstructs the logical DR-tree
//! (Fig. 4) and the physical communication graph (Fig. 5) for
//! debugging, examples and experiment reporting.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use drtree_sim::ProcessId;

use crate::legal::Snapshot;
use crate::state::Level;

/// One reconstructed instance of the logical tree.
#[derive(Debug, Clone)]
pub struct InstanceView<const D: usize> {
    /// Owning process.
    pub owner: ProcessId,
    /// Instance level (leaves at 0).
    pub level: Level,
    /// The instance's MBR.
    pub mbr: drtree_spatial::Rect<D>,
    /// Children instances (owner ids), in id order.
    pub children: Vec<ProcessId>,
}

/// A reconstructed view of the overlay from a snapshot.
#[derive(Debug, Clone)]
pub struct TreeView<const D: usize> {
    root: Option<ProcessId>,
    instances: BTreeMap<(ProcessId, Level), InstanceView<D>>,
    orphans: Vec<ProcessId>,
}

impl<const D: usize> TreeView<D> {
    /// Builds a view from a snapshot. The root is the believed root of
    /// the largest component (matching the contact oracle).
    pub fn build(snapshot: &Snapshot<D>) -> Self {
        let mut instances = BTreeMap::new();
        for (&owner, st) in snapshot {
            for (&level, inst) in &st.levels {
                instances.insert(
                    (owner, level),
                    InstanceView {
                        owner,
                        level,
                        mbr: if level == 0 { st.filter } else { inst.mbr },
                        children: inst.children.keys().copied().collect(),
                    },
                );
            }
        }
        // Root: follow topmost parents, largest component wins.
        let tops: BTreeMap<ProcessId, ProcessId> = snapshot
            .iter()
            .map(|(&id, st)| {
                let top = st.top();
                (id, st.level(top).map_or(id, |l| l.parent))
            })
            .collect();
        let mut sizes: BTreeMap<ProcessId, usize> = BTreeMap::new();
        let mut component_root: BTreeMap<ProcessId, ProcessId> = BTreeMap::new();
        for &start in tops.keys() {
            let mut cur = start;
            let mut hops = 0;
            while let Some(&p) = tops.get(&cur) {
                if p == cur || !tops.contains_key(&p) || hops > tops.len() {
                    break;
                }
                cur = p;
                hops += 1;
            }
            component_root.insert(start, cur);
            *sizes.entry(cur).or_insert(0) += 1;
        }
        let root = sizes
            .iter()
            .max_by(|a, b| a.1.cmp(b.1).then(b.0.cmp(a.0)))
            .map(|(&r, _)| r);
        let orphans = component_root
            .iter()
            .filter(|(_, &r)| Some(r) != root)
            .map(|(&id, _)| id)
            .collect();
        Self {
            root,
            instances,
            orphans,
        }
    }

    /// The main root, if any process is alive.
    pub fn root(&self) -> Option<ProcessId> {
        self.root
    }

    /// Processes not currently attached to the main tree.
    pub fn orphans(&self) -> &[ProcessId] {
        &self.orphans
    }

    /// Looks up one instance.
    pub fn instance(&self, owner: ProcessId, level: Level) -> Option<&InstanceView<D>> {
        self.instances.get(&(owner, level))
    }

    /// Total number of instances (tree nodes) in the view.
    pub fn instance_count(&self) -> usize {
        self.instances.len()
    }

    /// Degree distribution over internal instances: map degree → count.
    pub fn degree_histogram(&self) -> BTreeMap<usize, usize> {
        let mut hist = BTreeMap::new();
        for inst in self.instances.values() {
            if inst.level > 0 {
                *hist.entry(inst.children.len()).or_insert(0) += 1;
            }
        }
        hist
    }

    /// ASCII rendering of the logical tree (Fig. 4 style), labeling each
    /// instance `owner@level`.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let Some(root) = self.root else {
            out.push_str("(empty overlay)\n");
            return out;
        };
        let top = self
            .instances
            .keys()
            .filter(|(o, _)| *o == root)
            .map(|(_, l)| *l)
            .max()
            .unwrap_or(0);
        self.render_rec(root, top, 0, &mut out);
        if !self.orphans.is_empty() {
            let _ = writeln!(out, "orphans: {:?}", self.orphans);
        }
        out
    }

    fn render_rec(&self, owner: ProcessId, level: Level, indent: usize, out: &mut String) {
        let Some(inst) = self.instance(owner, level) else {
            let _ = writeln!(out, "{}{owner}@{level} (missing!)", "  ".repeat(indent));
            return;
        };
        let _ = writeln!(
            out,
            "{}{owner}@{level}  {}  [{} children]",
            "  ".repeat(indent),
            inst.mbr,
            inst.children.len()
        );
        if level == 0 {
            return;
        }
        for &c in &inst.children {
            self.render_rec(c, level - 1, indent + 1, out);
        }
    }

    /// Graphviz DOT rendering of the *logical* tree: one node per
    /// instance, one edge per parent/child link (the communication
    /// graph of Fig. 5 is this graph with instances of the same owner
    /// collapsed).
    pub fn to_dot(&self) -> String {
        let mut out = String::from("digraph drtree {\n  rankdir=TB;\n  node [shape=box];\n");
        for ((owner, level), inst) in &self.instances {
            let _ = writeln!(
                out,
                "  \"{owner}@{level}\" [label=\"{owner}@{level}\\n{}\"];",
                inst.mbr
            );
            if *level > 0 {
                for c in &inst.children {
                    let _ = writeln!(out, "  \"{owner}@{level}\" -> \"{c}@{}\";", level - 1);
                }
            }
        }
        out.push_str("}\n");
        out
    }

    /// The physical communication graph (Fig. 5): undirected edges
    /// between distinct processes that share a parent/child link at any
    /// level, deduplicated.
    pub fn communication_edges(&self) -> Vec<(ProcessId, ProcessId)> {
        let mut edges = std::collections::BTreeSet::new();
        for ((owner, level), inst) in &self.instances {
            if *level == 0 {
                continue;
            }
            for &c in &inst.children {
                if c != *owner {
                    let (a, b) = if c < *owner { (c, *owner) } else { (*owner, c) };
                    edges.insert((a, b));
                }
            }
        }
        edges.into_iter().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DrTreeCluster, DrTreeConfig};
    use drtree_spatial::Rect;

    fn sample_cluster() -> DrTreeCluster<2> {
        let filters: Vec<Rect<2>> = (0..10)
            .map(|i| {
                let x = f64::from(i % 5) * 15.0;
                let y = f64::from(i / 5) * 15.0;
                Rect::new([x, y], [x + 20.0, y + 20.0])
            })
            .collect();
        DrTreeCluster::build(DrTreeConfig::default(), 555, &filters)
    }

    #[test]
    fn view_matches_cluster() {
        let cluster = sample_cluster();
        let view = TreeView::build(&cluster.snapshot());
        assert_eq!(view.root(), cluster.root());
        assert!(view.orphans().is_empty());
        // every process has a leaf instance in the view
        for id in cluster.ids() {
            assert!(view.instance(id, 0).is_some(), "{id} has no leaf");
        }
    }

    #[test]
    fn render_contains_root_and_leaves() {
        let cluster = sample_cluster();
        let view = TreeView::build(&cluster.snapshot());
        let text = view.render();
        let root = cluster.root().unwrap();
        assert!(text.contains(&format!("{root}@")));
        assert!(text.lines().count() >= cluster.len());
    }

    #[test]
    fn dot_is_well_formed() {
        let cluster = sample_cluster();
        let view = TreeView::build(&cluster.snapshot());
        let dot = view.to_dot();
        assert!(dot.starts_with("digraph"));
        assert!(dot.trim_end().ends_with('}'));
        assert!(dot.contains("->"));
    }

    #[test]
    fn communication_graph_is_connected_sized() {
        let cluster = sample_cluster();
        let view = TreeView::build(&cluster.snapshot());
        let edges = view.communication_edges();
        // a connected overlay over n processes needs ≥ n−1 distinct links
        assert!(edges.len() >= cluster.len() - 1);
        for (a, b) in edges {
            assert!(a < b, "edges deduplicated and ordered");
        }
    }

    #[test]
    fn degree_histogram_respects_bounds() {
        let cluster = sample_cluster();
        let view = TreeView::build(&cluster.snapshot());
        for (degree, _) in view.degree_histogram() {
            assert!(degree <= cluster.config().max_degree());
        }
    }
}
