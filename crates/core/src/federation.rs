//! Wire protocol of the federated broker fabric.
//!
//! A federation splits the subscription space across `K` broker
//! instances, each owning one contiguous Hilbert range of a
//! `ShardMap` used one level above its usual per-shard role (see
//! `drtree-pubsub::federation` for the brokers themselves). This
//! module is the *protocol shim*: the message vocabulary those brokers
//! exchange over the simulation engines, kept in `drtree-core` so the
//! inter-broker link layer reuses the same [`drtree_sim::FaultProfile`]
//! machinery the adversary schedules already drive.
//!
//! The protocol has three planes:
//!
//! * **Control** — [`FedMessage::Heartbeat`] gossips a
//!   [`RangeSummary`] per range: a monotone version (highest
//!   contiguous op sequence applied), an entry count, a grow-only
//!   summary MBR, and an order-independent XOR fingerprint. Peers use
//!   summaries for liveness, for routing to the freshest holder, and
//!   for detecting divergence that anti-entropy must repair.
//! * **Replication** — client operations ([`FedOp`]) enter as
//!   [`FedMessage::ClientOp`] carrying a harness-assigned per-range
//!   sequence number; holders apply them in contiguous order, push
//!   them eagerly to co-holders ([`FedMessage::PushOps`]) and close
//!   gaps by pulling ([`FedMessage::PullRequest`], answered with a log
//!   slice or a full [`FedMessage::PushSnapshot`]). Idempotence by
//!   sequence number makes duplication, reordering and loss harmless —
//!   the fair-lossy link assumption of paper §2.1, one level up.
//! * **Dissemination** — a publication fans out as
//!   [`FedMessage::Forward`] per candidate range (pruned by summary
//!   MBRs: false positives allowed, false negatives never) and comes
//!   back as [`FedMessage::Matches`]. Both carry the event id as a
//!   billed [`MsgTag`], so per-event message bills and quiescence
//!   tracking work exactly as for intra-broker dissemination.

use drtree_sim::{MessageLabel, MsgTag};
use drtree_spatial::{Point, Rect};

/// One client-visible subscription operation, addressed by a
/// fabric-global subscription id (not a [`drtree_sim::ProcessId`] —
/// processes are brokers here, subscriptions are data).
#[derive(Debug, Clone, PartialEq)]
pub enum FedOp<const D: usize> {
    /// Register subscription `sub` with filter `rect`.
    Subscribe {
        /// Fabric-global subscription id.
        sub: u64,
        /// The subscription's filter rectangle.
        rect: Rect<D>,
    },
    /// Remove subscription `sub`; `rect` names the filter being
    /// removed so holders can unindex without a lookup.
    Unsubscribe {
        /// Fabric-global subscription id.
        sub: u64,
        /// The filter rectangle being removed.
        rect: Rect<D>,
    },
    /// Move subscription `sub` from `old` to `new` within one range
    /// (a cross-range move is scripted as unsubscribe + subscribe by
    /// the client layer, since the two halves replicate independently).
    Move {
        /// Fabric-global subscription id.
        sub: u64,
        /// The filter rectangle being replaced.
        old: Rect<D>,
        /// The replacement filter rectangle.
        new: Rect<D>,
    },
}

impl<const D: usize> FedOp<D> {
    /// The subscription id the operation addresses.
    pub fn sub(&self) -> u64 {
        match *self {
            FedOp::Subscribe { sub, .. }
            | FedOp::Unsubscribe { sub, .. }
            | FedOp::Move { sub, .. } => sub,
        }
    }
}

/// One range's advertised replication state, gossiped in heartbeats.
#[derive(Debug, Clone, PartialEq)]
pub struct RangeSummary<const D: usize> {
    /// Index of the Hilbert range (broker slot) this summarizes.
    pub range: usize,
    /// Highest contiguous op sequence applied (0 = nothing yet).
    pub version: u64,
    /// Live subscriptions held for the range.
    pub len: u64,
    /// Grow-only bounding rectangle of every filter ever held for the
    /// range. Removes do not shrink it, so it stays a conservative
    /// superset: pruning a publication against it can only produce
    /// false positives, never false negatives.
    pub mbr: Option<Rect<D>>,
    /// Order-independent XOR fingerprint of the live entry set (see
    /// [`entry_fingerprint`]). Equal versions with unequal
    /// fingerprints mean silent divergence (e.g. memory corruption) —
    /// anti-entropy answers with a full snapshot.
    pub fingerprint: u64,
}

/// Inter-broker message of the federated fabric.
#[derive(Debug, Clone, PartialEq)]
pub enum FedMessage<const D: usize> {
    /// Periodic liveness + state advertisement: one [`RangeSummary`]
    /// per range the sender holds.
    Heartbeat {
        /// Summaries of every range the sender holds.
        summaries: Vec<RangeSummary<D>>,
    },
    /// Ask a peer for range ops with sequence `> from_seq`.
    PullRequest {
        /// Range being caught up.
        range: usize,
        /// Highest contiguous sequence the requester already applied.
        from_seq: u64,
    },
    /// Sequenced ops for a range: eager replication on apply, or the
    /// answer to a [`FedMessage::PullRequest`] the sender's log covers.
    PushOps {
        /// Range the ops belong to.
        range: usize,
        /// `(sequence, op)` pairs, any order; receivers apply the
        /// contiguous prefix and buffer the rest.
        ops: Vec<(u64, FedOp<D>)>,
    },
    /// Full-state answer when a pull reaches below the sender's log
    /// floor (or fingerprints diverged): the entire live entry set at
    /// `version`, replacing the receiver's state for the range.
    PushSnapshot {
        /// Range being resynced.
        range: usize,
        /// Version the entry set corresponds to.
        version: u64,
        /// The live `(subscription id, filter)` set.
        entries: Vec<(u64, Rect<D>)>,
    },
    /// Route publication `event` at `point` to a holder of `range`.
    /// Carries the event id as a billed tag.
    Forward {
        /// Fabric-global event id (also the message tag).
        event: u64,
        /// The published point.
        point: Point<D>,
        /// Range whose subscriptions should be matched.
        range: usize,
        /// Only answer if at least this version has been applied —
        /// keeps a stale rejoiner from answering with a subset and
        /// silently losing matches.
        min_version: u64,
    },
    /// A holder's matching subscriptions for one forwarded event.
    Matches {
        /// The event being answered (also the message tag).
        event: u64,
        /// Range the matches come from.
        range: usize,
        /// Subscription ids whose filters contain the point.
        subs: Vec<u64>,
    },
    /// A publication injected externally at an origin broker by the
    /// client layer. The origin fans it out as [`FedMessage::Forward`]s
    /// and unions the [`FedMessage::Matches`] answers. `min_versions`
    /// pins exactness: for each range, the answering holder must have
    /// applied at least the listed version (every op issued before this
    /// event), and the origin may prune a range by its summary MBR only
    /// when the summary is at least that fresh — so a stale view can
    /// cost extra forwards but never a false negative. Carries the
    /// event id as an *unbilled* tag (tracked for quiescence, not
    /// charged), mirroring intra-broker publish injection.
    Publish {
        /// Fabric-global event id (also the message tag).
        event: u64,
        /// The published point.
        point: Point<D>,
        /// `(range, minimum version)` pairs for every range.
        min_versions: Vec<(usize, u64)>,
    },
    /// A sequenced client operation, injected externally at any holder
    /// of the range by the client layer (which owns the sequencer).
    ClientOp {
        /// Range the operation belongs to.
        range: usize,
        /// Per-range sequence number assigned by the client layer.
        seq: u64,
        /// The operation itself.
        op: FedOp<D>,
    },
}

impl<const D: usize> MessageLabel for FedMessage<D> {
    fn label(&self) -> &'static str {
        match self {
            FedMessage::Heartbeat { .. } => "fed-heartbeat",
            FedMessage::PullRequest { .. } => "fed-pull",
            FedMessage::PushOps { .. } => "fed-push-ops",
            FedMessage::PushSnapshot { .. } => "fed-push-snapshot",
            FedMessage::Forward { .. } => "fed-forward",
            FedMessage::Matches { .. } => "fed-matches",
            FedMessage::Publish { .. } => "fed-publish",
            FedMessage::ClientOp { .. } => "fed-client-op",
        }
    }

    fn tag(&self) -> Option<MsgTag> {
        match *self {
            FedMessage::Forward { event, .. } | FedMessage::Matches { event, .. } => {
                Some(MsgTag::billed(event))
            }
            FedMessage::Publish { event, .. } => Some(MsgTag::unbilled(event)),
            _ => None,
        }
    }
}

/// Order-independent fingerprint contribution of one live entry.
///
/// Holders XOR these into a running range fingerprint: insert and
/// remove are `fp ^= entry_fingerprint(..)`, a move is two XORs, and
/// any two holders with the same live set agree regardless of apply
/// order. FNV-1a over the subscription id and the filter's coordinate
/// bits, then finalized with a 64-bit mix so single-bit rect changes
/// flip about half the output bits.
pub fn entry_fingerprint<const D: usize>(sub: u64, rect: &Rect<D>) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    let mut eat = |word: u64| {
        for byte in word.to_le_bytes() {
            h ^= u64::from(byte);
            h = h.wrapping_mul(PRIME);
        }
    };
    eat(sub);
    for d in 0..D {
        eat(rect.lo(d).to_bits());
        eat(rect.hi(d).to_bits());
    }
    // splitmix64 finalizer.
    let mut z = h;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_and_tags_classify_the_planes() {
        let fwd: FedMessage<2> = FedMessage::Forward {
            event: 9,
            point: Point::new([1.0, 2.0]),
            range: 0,
            min_version: 3,
        };
        assert_eq!(fwd.label(), "fed-forward");
        assert_eq!(fwd.tag(), Some(MsgTag::billed(9)));
        let hb: FedMessage<2> = FedMessage::Heartbeat {
            summaries: Vec::new(),
        };
        assert_eq!(hb.label(), "fed-heartbeat");
        assert_eq!(hb.tag(), None);
        let m: FedMessage<2> = FedMessage::Matches {
            event: 9,
            range: 1,
            subs: vec![4],
        };
        assert_eq!(m.tag(), Some(MsgTag::billed(9)));
    }

    #[test]
    fn fingerprints_commute_and_separate() {
        let a = Rect::new([0.0, 0.0], [1.0, 1.0]);
        let b = Rect::new([2.0, 2.0], [3.0, 3.0]);
        let fa = entry_fingerprint(1, &a);
        let fb = entry_fingerprint(2, &b);
        assert_eq!(fa ^ fb, fb ^ fa);
        assert_ne!(fa, fb);
        assert_ne!(entry_fingerprint(1, &a), entry_fingerprint(2, &a));
        assert_ne!(entry_fingerprint(1, &a), entry_fingerprint(1, &b));
        // Insert-then-remove cancels exactly.
        assert_eq!(fa ^ fb ^ fb, fa);
    }
}
