//! Per-process DR-tree state (§3.2 "Data Structures").
//!
//! Every subscriber owns one instance per level of the range `0..=top`:
//! its leaf instance at level 0 (MBR = its filter), and — if it was
//! promoted to interior roles — internal instances above it ("a
//! subscriber is present in all the levels of its subtree"). Each
//! instance carries exactly the paper's variables: the children set
//! `C^l_p`, the minimum bounding rectangle `mbr^l_p`, the `parent^l_p`
//! pointer, and the `underloaded^l_p` flag.
//!
//! Everything in [`NodeState`] except the filter is *corruptible memory*:
//! the stabilization experiments mutate it arbitrarily and the protocol
//! must recover (the filter is the paper's "constant non-corruptible
//! data").

use std::collections::BTreeMap;

use drtree_sim::ProcessId;
use drtree_spatial::Rect;

use crate::message::ChildSummary;

/// A tree level. Leaves live at level 0; the root at the highest level.
pub type Level = u32;

/// What a parent instance caches about one child (refreshed by
/// heartbeats; the message-passing stand-in for the pseudo-code's remote
/// variable reads).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChildInfo<const D: usize> {
    /// Last reported MBR of the child instance.
    pub mbr: Rect<D>,
    /// The child's constant filter.
    pub filter: Rect<D>,
    /// Last reported degree of the child instance.
    pub count: usize,
    /// Last reported underloaded flag.
    pub underloaded: bool,
    /// Tick of the last heartbeat (failure detection).
    pub last_seen: u64,
}

impl<const D: usize> ChildInfo<D> {
    /// Builds cache state from a received summary.
    pub fn from_summary(s: &ChildSummary<D>, now: u64) -> Self {
        Self {
            mbr: s.mbr,
            filter: s.filter,
            count: s.count,
            underloaded: s.underloaded,
            last_seen: now,
        }
    }
}

/// One instance of a subscriber at one level: the paper's
/// `(parent^l_p, C^l_p, mbr^l_p, underloaded^l_p)`.
#[derive(Debug, Clone, PartialEq)]
pub struct LevelState<const D: usize> {
    /// The parent of this instance. Self for the root instance and for
    /// every non-topmost instance (whose parent is the same process one
    /// level up).
    pub parent: ProcessId,
    /// Children (instances one level below), keyed by owner process.
    /// Empty exactly for leaf instances (level 0).
    pub children: BTreeMap<ProcessId, ChildInfo<D>>,
    /// The minimum bounding rectangle of this instance.
    pub mbr: Rect<D>,
    /// `|C^l_p| < m` (Fig. 12).
    pub underloaded: bool,
    /// Tick of the last `HeartbeatAck` from the parent (CHECK_PARENT's
    /// failure detection; not part of the paper's corruptible variables
    /// but of the failure-detector abstraction).
    pub last_parent_ack: u64,
}

impl<const D: usize> LevelState<D> {
    /// A fresh leaf instance.
    pub fn leaf(owner: ProcessId, filter: Rect<D>, now: u64) -> Self {
        Self {
            parent: owner,
            children: BTreeMap::new(),
            mbr: filter,
            underloaded: false,
            last_parent_ack: now,
        }
    }

    /// Number of children.
    pub fn degree(&self) -> usize {
        self.children.len()
    }

    /// Recomputes the MBR from the cached children MBRs
    /// (`Compute_MBR`, Fig. 7). No-op on leaves (their MBR is pinned to
    /// the filter by the caller).
    pub fn recompute_mbr(&mut self) {
        if let Some(mbr) = Rect::union_all(self.children.values().map(|c| &c.mbr)) {
            self.mbr = mbr;
        }
    }
}

/// The full (corruptible) state of one subscriber.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeState<const D: usize> {
    /// The subscription filter — constant, non-corruptible (§3.2).
    pub filter: Rect<D>,
    /// Instances by level. In a legal state the keys are exactly
    /// `0..=top` and instance 0 is the leaf.
    pub levels: BTreeMap<Level, LevelState<D>>,
}

impl<const D: usize> NodeState<D> {
    /// Fresh single-leaf state: the subscriber is its own root.
    pub fn new_leaf(owner: ProcessId, filter: Rect<D>) -> Self {
        let mut levels = BTreeMap::new();
        levels.insert(0, LevelState::leaf(owner, filter, 0));
        Self { filter, levels }
    }

    /// The topmost instance level (0 if only the leaf exists).
    ///
    /// Falls back to 0 when the level map was corrupted empty.
    pub fn top(&self) -> Level {
        self.levels.keys().next_back().copied().unwrap_or(0)
    }

    /// Shared access to the instance at `level`.
    pub fn level(&self, level: Level) -> Option<&LevelState<D>> {
        self.levels.get(&level)
    }

    /// Mutable access to the instance at `level`.
    pub fn level_mut(&mut self, level: Level) -> Option<&mut LevelState<D>> {
        self.levels.get_mut(&level)
    }

    /// `true` if this subscriber believes it is the overlay root: the
    /// parent of its topmost instance is itself (§3.2: "The parent of
    /// the DR-tree structure root process is the process itself").
    pub fn believes_root(&self, own_id: ProcessId) -> bool {
        self.levels
            .get(&self.top())
            .is_none_or(|l| l.parent == own_id)
    }

    /// Summary of the instance at `level`, as advertised to its parent.
    pub fn summary_at(&self, own_id: ProcessId, level: Level) -> Option<ChildSummary<D>> {
        let ls = self.levels.get(&level)?;
        Some(ChildSummary {
            id: own_id,
            mbr: if level == 0 { self.filter } else { ls.mbr },
            filter: self.filter,
            count: ls.degree(),
            underloaded: ls.underloaded,
        })
    }

    /// Total number of child entries across all instances — the memory
    /// footprint measured by Lemma 3.1 (`O(M log² N / log m)`).
    pub fn memory_entries(&self) -> usize {
        self.levels.values().map(|l| l.degree()).sum::<usize>() + self.levels.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pid(raw: u64) -> ProcessId {
        ProcessId::from_raw(raw)
    }

    #[test]
    fn fresh_leaf_is_its_own_root() {
        let f = Rect::new([0.0, 0.0], [1.0, 1.0]);
        let s: NodeState<2> = NodeState::new_leaf(pid(7), f);
        assert_eq!(s.top(), 0);
        assert!(s.believes_root(pid(7)));
        assert_eq!(s.level(0).unwrap().mbr, f);
        assert_eq!(s.level(0).unwrap().degree(), 0);
        assert_eq!(s.memory_entries(), 1);
    }

    #[test]
    fn summary_reflects_instance() {
        let f = Rect::new([0.0, 0.0], [2.0, 2.0]);
        let mut s: NodeState<2> = NodeState::new_leaf(pid(1), f);
        let sum0 = s.summary_at(pid(1), 0).unwrap();
        assert_eq!(sum0.mbr, f);
        assert_eq!(sum0.count, 0);

        // fabricate an internal instance at level 1
        let mut l1 = LevelState::leaf(pid(1), f, 0);
        let child = ChildSummary {
            id: pid(2),
            mbr: Rect::new([5.0, 5.0], [9.0, 9.0]),
            filter: Rect::new([5.0, 5.0], [9.0, 9.0]),
            count: 0,
            underloaded: false,
        };
        l1.children
            .insert(pid(2), ChildInfo::from_summary(&child, 3));
        l1.children.insert(
            pid(1),
            ChildInfo {
                mbr: f,
                filter: f,
                count: 0,
                underloaded: false,
                last_seen: 3,
            },
        );
        l1.recompute_mbr();
        s.levels.insert(1, l1);

        assert_eq!(s.top(), 1);
        let sum1 = s.summary_at(pid(1), 1).unwrap();
        assert_eq!(sum1.count, 2);
        assert_eq!(sum1.mbr, Rect::new([0.0, 0.0], [9.0, 9.0]));
        assert_eq!(s.memory_entries(), 2 + 2);
    }

    #[test]
    fn recompute_mbr_unions_children() {
        let f = Rect::new([0.0], [1.0]);
        let mut l: LevelState<1> = LevelState::leaf(pid(0), f, 0);
        for (i, (lo, hi)) in [(0.0, 1.0), (4.0, 6.0)].iter().enumerate() {
            let r = Rect::new([*lo], [*hi]);
            l.children.insert(
                pid(i as u64),
                ChildInfo {
                    mbr: r,
                    filter: r,
                    count: 0,
                    underloaded: false,
                    last_seen: 0,
                },
            );
        }
        l.recompute_mbr();
        assert_eq!(l.mbr, Rect::new([0.0], [6.0]));
    }

    #[test]
    fn corrupted_empty_levels_fall_back() {
        let f = Rect::new([0.0], [1.0]);
        let mut s: NodeState<1> = NodeState::new_leaf(pid(1), f);
        s.levels.clear(); // adversarial wipe
        assert_eq!(s.top(), 0);
        assert!(s.believes_root(pid(1)));
        assert_eq!(s.summary_at(pid(1), 0), None);
    }
}
