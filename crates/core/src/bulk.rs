//! Bulk construction of a legal overlay (the harness's fast path).
//!
//! Joining subscribers one at a time through the protocol (Fig. 8) is
//! faithful but quadratic in simulation work: every join runs rounds
//! over the whole network, so a 16k-subscriber overlay takes the
//! better part of an hour to assemble. Benchmarks and large
//! experiments need overlays of that size, so this module materializes
//! the per-process [`NodeState`]s of a legitimate configuration
//! (Definitions 3.1/3.2) directly:
//!
//! 1. sort the filters by the Hilbert key of their centers (the same
//!    curve the packed R-tree bulk-loads with),
//! 2. group each level into evenly sized runs of at most `M` children
//!    — and at least `m`, because even distribution over `⌈n/M⌉`
//!    groups keeps every group at `⌊n/groups⌋ ≥ ⌈M/2⌉` children,
//!    which the `2m ≤ M` config invariant puts at or above `m`,
//! 3. pick as owner of each internal instance the child with the
//!    largest MBR — the fixpoint of CHECK_COVER (Fig. 13), so the
//!    stabilization modules find nothing to repair.
//!
//! The result is validated by [`crate::DrTreeCluster::build_bulk`]
//! against [`crate::legal::check_legal`]; the construction is *state
//! injection*, not protocol execution, and lives in the harness layer
//! for exactly that reason.

use std::collections::BTreeMap;

use drtree_sim::ProcessId;
use drtree_spatial::hilbert::GridMapper;
use drtree_spatial::Rect;

use crate::config::DrTreeConfig;
use crate::state::{ChildInfo, Level, LevelState, NodeState};

/// One tree node of the under-construction overlay.
struct BuildNode<const D: usize> {
    /// The process owning this instance (a descendant leaf's id).
    owner: ProcessId,
    /// Exact MBR of the subtree.
    mbr: Rect<D>,
    /// Children count of this instance (0 for leaves).
    count: usize,
    /// Whether the instance is underloaded (`degree < m`; leaves never
    /// are — the flag is meaningless at level 0).
    underloaded: bool,
    /// The owner's constant filter (cached for [`ChildInfo`]).
    filter: Rect<D>,
}

/// Materializes the states of a legitimate overlay over `filters`,
/// keyed by the process ids `ids[i]` ↔ `filters[i]`.
///
/// # Panics
///
/// Panics if `ids` and `filters` differ in length or a filter has no
/// finite center.
pub(crate) fn bulk_states<const D: usize>(
    config: &DrTreeConfig,
    ids: &[ProcessId],
    filters: &[Rect<D>],
) -> BTreeMap<ProcessId, NodeState<D>> {
    assert_eq!(ids.len(), filters.len(), "one filter per process");
    let mut states: BTreeMap<ProcessId, NodeState<D>> = ids
        .iter()
        .zip(filters)
        .map(|(&id, &f)| (id, NodeState::new_leaf(id, f)))
        .collect();
    if ids.len() <= 1 {
        return states;
    }

    // Leaves in Hilbert order of their filter centers.
    let world = GridMapper::world_of(filters.iter()).expect("finite filters");
    let mapper = GridMapper::new(&world);
    let mut level: Vec<BuildNode<D>> = ids
        .iter()
        .zip(filters)
        .map(|(&id, &f)| BuildNode {
            owner: id,
            mbr: f,
            count: 0,
            underloaded: false,
            filter: f,
        })
        .collect();
    level.sort_by_key(|n| mapper.key(&n.mbr));

    let max = config.max_degree();
    let m = config.min_degree();
    let mut l: Level = 1;
    while level.len() > 1 {
        let n = level.len();
        // Evenly sized runs: `ceil(n / M)` groups of at most `M`. With
        // two or more groups, `n > (groups - 1) · M` bounds the
        // smallest at `floor(n / groups) ≥ ceil(M / 2) ≥ m` (config
        // invariant `2m ≤ M`); the single-group case is the root,
        // which may go below `m` down to 2 (Definition 3.1).
        let groups = n.div_ceil(max);
        let base = n / groups;
        let extra = n % groups;
        let mut parents: Vec<BuildNode<D>> = Vec::with_capacity(groups);
        let mut rest = level.as_slice();
        for g in 0..groups {
            let take = base + usize::from(g < extra);
            let (chunk, tail) = rest.split_at(take);
            rest = tail;
            parents.push(link_group(&mut states, chunk, l, m));
        }
        debug_assert!(rest.is_empty());
        level = parents;
        l += 1;
    }
    states
}

/// Creates the internal instance over `chunk` (at level `level`),
/// owned by the child with the largest MBR, and wires both directions
/// of every parent/child reference. Returns the new node for the next
/// level up; its owner's instance is provisionally parented to itself
/// (the root case) until a higher group overwrites it.
fn link_group<const D: usize>(
    states: &mut BTreeMap<ProcessId, NodeState<D>>,
    chunk: &[BuildNode<D>],
    level: Level,
    m: usize,
) -> BuildNode<D> {
    let owner = chunk
        .iter()
        .max_by(|a, b| {
            a.mbr
                .area()
                .partial_cmp(&b.mbr.area())
                .unwrap_or(std::cmp::Ordering::Equal)
        })
        .expect("chunk is non-empty")
        .owner;
    let mbr = Rect::union_all(chunk.iter().map(|c| &c.mbr)).expect("chunk is non-empty");

    let mut children = BTreeMap::new();
    for c in chunk {
        children.insert(
            c.owner,
            ChildInfo {
                mbr: c.mbr,
                filter: c.filter,
                count: c.count,
                underloaded: c.underloaded,
                last_seen: 0,
            },
        );
        // The child's topmost instance hangs off the group owner. For
        // the owner itself that instance is no longer topmost and the
        // assignment keeps it correctly parented to self.
        let cst = states.get_mut(&c.owner).expect("child state exists");
        cst.level_mut(level - 1).expect("child instance").parent = owner;
    }

    let owner_filter = states[&owner].filter;
    let underloaded = chunk.len() < m;
    let ost = states.get_mut(&owner).expect("owner state exists");
    ost.levels.insert(
        level,
        LevelState {
            parent: owner, // provisional root; a higher group overwrites
            children,
            mbr,
            underloaded,
            last_parent_ack: 0,
        },
    );
    BuildNode {
        owner,
        mbr,
        count: chunk.len(),
        underloaded,
        filter: owner_filter,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::legal;

    fn grid_filters(n: usize) -> Vec<Rect<2>> {
        (0..n)
            .map(|i| {
                let x = (i % 32) as f64 * 3.0;
                let y = (i / 32) as f64 * 3.0;
                Rect::new([x, y], [x + 4.0 + (i % 5) as f64, y + 4.0 + (i % 3) as f64])
            })
            .collect()
    }

    #[test]
    fn bulk_states_are_legal_across_sizes_and_configs() {
        for &n in &[1usize, 2, 3, 5, 17, 64, 257, 1000] {
            for config in [
                DrTreeConfig::default(),
                DrTreeConfig::with_degree(3, 9, crate::SplitMethod::Linear).expect("valid"),
            ] {
                let filters = grid_filters(n);
                let ids: Vec<ProcessId> = (0..n as u64).map(ProcessId::from_raw).collect();
                let snapshot = bulk_states(&config, &ids, &filters);
                let v = legal::check_legal(&snapshot, &config);
                assert!(v.is_empty(), "n={n}: {v:?}");
            }
        }
    }
}
