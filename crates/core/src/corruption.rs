//! Adversarial state corruption for the stabilization experiments
//! (paper Lemma 3.6: "Let c be an initial arbitrary configuration …
//! the system reaches a legitimate configuration in a finite number of
//! steps").
//!
//! Each [`CorruptionKind`] mutates a node's *corruptible* memory — the
//! per-level `parent`, `children`, `mbr` and `underloaded` variables
//! (the filter is constant and non-corruptible per §3.2). Strategies
//! are deliberately nasty: dangling references, forged children, wrong
//! MBRs, phantom instances, total wipes.

use rand::rngs::StdRng;
use rand::Rng;

use drtree_sim::ProcessId;
use drtree_spatial::Rect;

use crate::state::{ChildInfo, LevelState, NodeState};

/// A family of adversarial mutations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CorruptionKind {
    /// Point parent pointers at arbitrary (possibly dead) processes.
    RandomParents,
    /// Replace cached child MBRs with arbitrary rectangles.
    ScrambleChildMbrs,
    /// Insert children entries referencing arbitrary process ids.
    ForgeChildren,
    /// Overwrite instance MBRs with arbitrary rectangles (CHECK_MBR's
    /// target fault).
    ScrambleOwnMbrs,
    /// Invert every underloaded flag (Fig. 12's target fault).
    FlipUnderloaded,
    /// Add a bogus instance one level above the top.
    PhantomInstance,
    /// Remove a random instance, breaking contiguity.
    DropInstance,
    /// Erase all instances (total memory loss short of the filter).
    Wipe,
}

impl CorruptionKind {
    /// All strategies, for sweep experiments.
    pub const ALL: [CorruptionKind; 8] = [
        CorruptionKind::RandomParents,
        CorruptionKind::ScrambleChildMbrs,
        CorruptionKind::ForgeChildren,
        CorruptionKind::ScrambleOwnMbrs,
        CorruptionKind::FlipUnderloaded,
        CorruptionKind::PhantomInstance,
        CorruptionKind::DropInstance,
        CorruptionKind::Wipe,
    ];

    /// Applies the mutation to `state`, drawing arbitrary values from
    /// `rng`. `universe` is the pool of process ids the adversary may
    /// reference (typically all ids ever allocated, dead ones included).
    pub fn apply<const D: usize>(
        &self,
        state: &mut NodeState<D>,
        universe: &[ProcessId],
        rng: &mut StdRng,
    ) {
        let pick = |rng: &mut StdRng| -> ProcessId {
            if universe.is_empty() {
                ProcessId::from_raw(rng.gen_range(0..1_000_000))
            } else {
                universe[rng.gen_range(0..universe.len())]
            }
        };
        match self {
            CorruptionKind::RandomParents => {
                for inst in state.levels.values_mut() {
                    inst.parent = pick(rng);
                }
            }
            CorruptionKind::ScrambleChildMbrs => {
                for inst in state.levels.values_mut() {
                    for info in inst.children.values_mut() {
                        info.mbr = random_rect(rng);
                    }
                }
            }
            CorruptionKind::ForgeChildren => {
                let forged: Vec<ProcessId> = (0..3).map(|_| pick(rng)).collect();
                for inst in state.levels.values_mut() {
                    for &f in &forged {
                        inst.children.insert(
                            f,
                            ChildInfo {
                                mbr: random_rect(rng),
                                filter: random_rect(rng),
                                count: rng.gen_range(0..9),
                                underloaded: rng.gen_bool(0.5),
                                last_seen: u64::MAX / 2, // looks fresh
                            },
                        );
                    }
                }
            }
            CorruptionKind::ScrambleOwnMbrs => {
                for inst in state.levels.values_mut() {
                    inst.mbr = random_rect(rng);
                }
            }
            CorruptionKind::FlipUnderloaded => {
                for inst in state.levels.values_mut() {
                    inst.underloaded = !inst.underloaded;
                }
            }
            CorruptionKind::PhantomInstance => {
                let top = state.top();
                let owner = pick(rng);
                let mut inst = LevelState::leaf(owner, random_rect(rng), 0);
                inst.parent = pick(rng);
                inst.children.insert(
                    pick(rng),
                    ChildInfo {
                        mbr: random_rect(rng),
                        filter: random_rect(rng),
                        count: 1,
                        underloaded: false,
                        last_seen: u64::MAX / 2,
                    },
                );
                state.levels.insert(top + 2, inst);
            }
            CorruptionKind::DropInstance => {
                let keys: Vec<_> = state.levels.keys().copied().collect();
                if !keys.is_empty() {
                    let level = keys[rng.gen_range(0..keys.len())];
                    state.levels.remove(&level);
                }
            }
            CorruptionKind::Wipe => {
                state.levels.clear();
            }
        }
    }
}

fn random_rect<const D: usize>(rng: &mut StdRng) -> Rect<D> {
    let mut lo = [0.0; D];
    let mut hi = [0.0; D];
    for i in 0..D {
        let a: f64 = rng.gen_range(-100.0..100.0);
        let b: f64 = rng.gen_range(0.0..50.0);
        lo[i] = a;
        hi[i] = a + b;
    }
    Rect::new(lo, hi)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn node() -> NodeState<2> {
        NodeState::new_leaf(ProcessId::from_raw(0), Rect::new([0.0, 0.0], [1.0, 1.0]))
    }

    #[test]
    fn every_strategy_applies_without_panicking() {
        let universe: Vec<ProcessId> = (0..10).map(ProcessId::from_raw).collect();
        for kind in CorruptionKind::ALL {
            let mut rng = StdRng::seed_from_u64(7);
            let mut st = node();
            kind.apply(&mut st, &universe, &mut rng);
            // The filter must never change (non-corruptible).
            assert_eq!(st.filter, Rect::new([0.0, 0.0], [1.0, 1.0]), "{kind:?}");
        }
    }

    #[test]
    fn wipe_clears_levels() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut st = node();
        CorruptionKind::Wipe.apply(&mut st, &[], &mut rng);
        assert!(st.levels.is_empty());
    }

    #[test]
    fn phantom_breaks_contiguity() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut st = node();
        CorruptionKind::PhantomInstance.apply(&mut st, &[], &mut rng);
        assert!(st.levels.contains_key(&2));
        assert!(!st.levels.contains_key(&1));
    }
}
