//! Churn-resistance analysis (paper Lemma 3.7).
//!
//! "Let ∆ be an interval of time during which no stabilization operation
//! is triggered and let λ be the rate of departures. The expected time
//! before the DR-tree disconnects is ∆N e^((N−∆λ)²/(4∆λ))." Arrivals
//! and departures are modeled by a Poisson distribution (the paper's
//! footnote 4); joins never disconnect the overlay, so only departures
//! matter.
//!
//! The printed formula in the proceedings is typographically ambiguous
//! (`∆N e^{(N−∆λ)²/(4∆λ)}`); we implement the literal reading
//! `∆·N·exp(…)`, which also tracks the first-principles window model
//! (departures Poisson(∆λ) per stabilization window, disconnection when
//! a window churns through the whole population) to within its
//! moderate-deviation approximation. EXPERIMENTS.md compares both.

/// Expected time before the DR-tree disconnects under departure rate
/// `lambda`, with stabilization suspended for windows of length `delta`,
/// in a network of `n` processes (Lemma 3.7).
///
/// Returns `f64::INFINITY` when the exponent overflows — the regime
/// where departures are far rarer than repairs and disconnection is
/// effectively never observed.
///
/// # Panics
///
/// Panics if `n == 0`, `delta <= 0` or `lambda <= 0`.
pub fn expected_disconnect_time(n: usize, delta: f64, lambda: f64) -> f64 {
    assert!(n > 0, "network size must be positive");
    assert!(delta > 0.0, "stabilization window must be positive");
    assert!(lambda > 0.0, "departure rate must be positive");
    let n = n as f64;
    let exponent = (n - delta * lambda).powi(2) / (4.0 * delta * lambda);
    delta * n * exponent.exp()
}

/// Samples an exponential inter-event time with rate `lambda` from a
/// uniform draw `u ∈ (0, 1]` — the Poisson-process arrival model of the
/// paper's footnote 4, implemented by inversion so no extra dependency
/// is needed.
pub fn exponential_inter_arrival(u: f64, lambda: f64) -> f64 {
    assert!(lambda > 0.0, "rate must be positive");
    let u = u.clamp(f64::MIN_POSITIVE, 1.0);
    -u.ln() / lambda
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decreasing_in_lambda() {
        let t1 = expected_disconnect_time(100, 10.0, 0.5);
        let t2 = expected_disconnect_time(100, 10.0, 1.0);
        let t3 = expected_disconnect_time(100, 10.0, 2.0);
        assert!(t1 > t2, "{t1} !> {t2}");
        assert!(t2 > t3, "{t2} !> {t3}");
    }

    #[test]
    fn increasing_in_n_for_fixed_churn() {
        let t_small = expected_disconnect_time(50, 10.0, 1.0);
        let t_large = expected_disconnect_time(200, 10.0, 1.0);
        assert!(t_large > t_small);
    }

    #[test]
    fn extreme_regime_saturates() {
        let t = expected_disconnect_time(1_000_000, 1.0, 1e-9);
        assert!(t.is_infinite());
    }

    #[test]
    fn exponential_sampling_matches_mean() {
        // inversion at u = e^{-1} gives exactly 1/λ
        let lambda = 2.0;
        let t = exponential_inter_arrival((-1.0f64).exp(), lambda);
        assert!((t - 1.0 / lambda).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_lambda_rejected() {
        let _ = expected_disconnect_time(10, 1.0, 0.0);
    }
}
