//! The asynchronous harness: the same overlay on the event-driven
//! engine.
//!
//! [`DrTreeCluster`](crate::DrTreeCluster) counts synchronous rounds —
//! the right ruler for the stabilization lemmas (Figs. 10–14 repair in
//! "steps"). [`AsyncDrTreeCluster`] runs the *identical* protocol code
//! — join (Fig. 8), leave (Fig. 9), dissemination (§2.3) — on
//! [`drtree_sim::EventNetwork`]: message latencies are drawn from a
//! latency model, messages can be lost, and every node paces its own
//! stabilization tick ([`DrTreeConfig::tick_interval`]) — the paper's
//! actual asynchronous system model (§2.1). The asynchronous
//! integration tests show that legality, recovery and zero false
//! negatives survive latency jitter and message loss.
//!
//! Publishing mirrors the round harness: one drained event at a time
//! ([`AsyncDrTreeCluster::publish_from`]) or a sliding window of
//! concurrently disseminating events with tag-scoped per-event
//! accounting ([`AsyncDrTreeCluster::publish_pipeline`]).

use rand::rngs::StdRng;

use drtree_sim::{EventNetwork, Metrics, NetConfig, ProcessId};
use drtree_spatial::{Point, Rect};

use crate::cluster::PublishReport;
use crate::config::DrTreeConfig;
use crate::corruption::CorruptionKind;
use crate::legal::{self, Snapshot, Violation};
use crate::message::{DrtMessage, PubEvent};
use crate::protocol::node::DrtNode;

/// A DR-tree overlay on the asynchronous discrete-event engine.
///
/// # Example
///
/// ```
/// use drtree_core::{AsyncDrTreeCluster, DrTreeConfig};
/// use drtree_sim::{LatencyModel, NetConfig};
/// use drtree_spatial::Rect;
///
/// let net = NetConfig {
///     latency: LatencyModel::Uniform { min: 1, max: 4 },
///     ..NetConfig::default()
/// };
/// let mut config = DrTreeConfig::default();
/// config.tick_interval = 8; // nodes pace their own stabilization
/// config.failure_timeout = 6; // in ticks, scaled for jitter
/// let mut cluster: AsyncDrTreeCluster<2> = AsyncDrTreeCluster::new(config, net, 7);
/// for i in 0..12u32 {
///     let x = f64::from(i % 4) * 20.0;
///     let y = f64::from(i / 4) * 20.0;
///     cluster.add_subscriber(Rect::new([x, y], [x + 25.0, y + 25.0]));
/// }
/// cluster.stabilize(200_000).expect("legal under asynchrony");
/// ```
pub struct AsyncDrTreeCluster<const D: usize> {
    net: EventNetwork<DrtNode<D>>,
    config: DrTreeConfig,
    next_event_id: u64,
    all_ids: Vec<ProcessId>,
}

impl<const D: usize> AsyncDrTreeCluster<D> {
    /// Creates an empty asynchronous overlay.
    ///
    /// # Panics
    ///
    /// Panics if `config.tick_interval == 0` — asynchronous nodes must
    /// pace their own ticks.
    pub fn new(config: DrTreeConfig, net_config: NetConfig, seed: u64) -> Self {
        assert!(
            config.tick_interval > 0,
            "asynchronous operation requires a self-arming tick_interval"
        );
        Self {
            net: EventNetwork::new(net_config, seed),
            config,
            next_event_id: 0,
            all_ids: Vec::new(),
        }
    }

    /// Builds an overlay over `filters` by materializing a legitimate
    /// configuration directly (see [`crate::bulk`]) instead of joining
    /// one subscriber at a time — the asynchronous counterpart of
    /// [`crate::DrTreeCluster::build_bulk`], making larger asynchronous
    /// fault experiments practical.
    ///
    /// # Panics
    ///
    /// Panics if `config.tick_interval == 0` or if the materialized
    /// configuration is not legal (a bug, not an input condition).
    pub fn build_bulk(
        config: DrTreeConfig,
        net_config: NetConfig,
        seed: u64,
        filters: &[Rect<D>],
    ) -> Self {
        let mut cluster = Self::new(config, net_config, seed);
        let ids: Vec<ProcessId> = filters
            .iter()
            .map(|&f| {
                let id = cluster.net.add_process(DrtNode::new(config, f));
                cluster.all_ids.push(id);
                id
            })
            .collect();
        for (id, state) in crate::bulk::bulk_states(&config, &ids, filters) {
            if let Some(node) = cluster.net.process_mut(id) {
                *node.state_mut() = state;
            }
        }
        // Two tick intervals warm the heartbeat caches; on a legal
        // state the CHECK_* modules are no-ops.
        cluster.run_for(2 * config.tick_interval.max(1));
        if let Err(v) = cluster.check_legal() {
            panic!("bulk-built async overlay is not legal: {v:?}");
        }
        cluster
    }

    /// The overlay configuration.
    pub fn config(&self) -> &DrTreeConfig {
        &self.config
    }

    /// Number of live subscribers.
    pub fn len(&self) -> usize {
        self.net.len()
    }

    /// `true` when no subscriber is live.
    pub fn is_empty(&self) -> bool {
        self.net.is_empty()
    }

    /// Ids of live subscribers.
    pub fn ids(&self) -> Vec<ProcessId> {
        self.net.ids()
    }

    /// Current simulation time.
    pub fn now(&self) -> u64 {
        self.net.now()
    }

    /// Message metrics.
    pub fn metrics(&self) -> &Metrics {
        self.net.metrics()
    }

    /// Deterministic harness randomness.
    pub fn rng(&mut self) -> &mut StdRng {
        self.net.rng()
    }

    /// Shared view of one subscriber.
    pub fn node(&self, id: ProcessId) -> Option<&DrtNode<D>> {
        self.net.process(id)
    }

    /// Adds a subscriber; it joins through the oracle as its ticks run.
    pub fn add_subscriber(&mut self, filter: Rect<D>) -> ProcessId {
        let node = DrtNode::new(self.config, filter);
        let id = self.net.add_process(node);
        self.all_ids.push(id);
        self.refresh_hints();
        id
    }

    /// Advances simulated time by `duration`, refreshing the contact
    /// oracle at tick granularity.
    pub fn run_for(&mut self, duration: u64) {
        let step = self.config.tick_interval.max(1);
        let deadline = self.net.now() + duration;
        while self.net.now() < deadline {
            let next = (self.net.now() + step).min(deadline);
            self.refresh_hints();
            self.net.run_until(next);
        }
    }

    /// Runs until the configuration is legitimate, checking every tick
    /// interval. Returns the simulated time consumed, or `None` if
    /// `max_duration` elapses first.
    pub fn stabilize(&mut self, max_duration: u64) -> Option<u64> {
        let start = self.net.now();
        let step = self.config.tick_interval.max(1);
        loop {
            if self.check_legal().is_ok() {
                return Some(self.net.now() - start);
            }
            if self.net.now() - start >= max_duration {
                return None;
            }
            self.run_for(step);
        }
    }

    /// Checks Definition 3.1/3.2 on the current global state.
    ///
    /// # Errors
    ///
    /// Returns every violated condition.
    pub fn check_legal(&self) -> Result<(), Vec<Violation>> {
        let v = legal::check_legal(&self.snapshot(), &self.config);
        if v.is_empty() {
            Ok(())
        } else {
            Err(v)
        }
    }

    /// Clones every live process's state.
    pub fn snapshot(&self) -> Snapshot<D> {
        self.net
            .ids()
            .into_iter()
            .filter_map(|id| self.net.process(id).map(|n| (id, n.state().clone())))
            .collect()
    }

    /// The contact oracle: root of the largest component.
    pub fn contact(&self) -> Option<ProcessId> {
        let tops: std::collections::BTreeMap<ProcessId, ProcessId> = self
            .net
            .ids()
            .into_iter()
            .filter_map(|id| self.net.process(id).map(|n| (id, n.parent_of(n.top()))))
            .collect();
        let mut sizes: std::collections::BTreeMap<ProcessId, usize> =
            std::collections::BTreeMap::new();
        for &start in tops.keys() {
            let mut cur = start;
            let mut hops = 0;
            while let Some(&p) = tops.get(&cur) {
                if p == cur || !tops.contains_key(&p) || hops > tops.len() {
                    break;
                }
                cur = p;
                hops += 1;
            }
            *sizes.entry(cur).or_insert(0) += 1;
        }
        sizes
            .into_iter()
            .max_by(|a, b| a.1.cmp(&b.1).then(b.0.cmp(&a.0)))
            .map(|(root, _)| root)
    }

    /// The overlay root.
    pub fn root(&self) -> Option<ProcessId> {
        self.contact()
    }

    /// Height of the main tree.
    pub fn height(&self) -> u32 {
        self.root()
            .and_then(|r| self.node(r))
            .map_or(0, |n| n.top())
    }

    /// Uncontrolled departure.
    pub fn crash(&mut self, id: ProcessId) {
        self.net.crash(id);
    }

    /// Controlled departure (Fig. 9): deliver the depart request, give
    /// the LEAVE a tick to propagate, then disconnect.
    pub fn controlled_leave(&mut self, id: ProcessId) {
        if !self.net.is_alive(id) {
            return;
        }
        self.net.send_external(id, DrtMessage::DepartRequest);
        self.run_for(2 * self.config.tick_interval);
        self.net.crash(id);
    }

    /// Replaces the network fault profile (loss, duplication,
    /// reordering) at runtime — see [`drtree_sim::FaultProfile`].
    pub fn set_faults(&mut self, faults: drtree_sim::FaultProfile) {
        self.net.set_faults(faults);
    }

    /// Installs a network partition between the given groups; see
    /// [`drtree_sim::EventNetwork::partition`].
    pub fn partition(&mut self, groups: &[Vec<ProcessId>]) {
        self.net.partition(groups);
    }

    /// Heals every partition cut.
    pub fn heal(&mut self) {
        self.net.heal();
    }

    /// Adversarial memory corruption (Lemma 3.6).
    pub fn corrupt(&mut self, id: ProcessId, kind: CorruptionKind) -> bool {
        let universe = self.all_ids.clone();
        self.net
            .corrupt(id, |node, rng| kind.apply(node.state_mut(), &universe, rng))
    }

    /// Publishes `point` from `publisher` and accounts the delivery
    /// after letting the event propagate for `2·(height+2)` tick
    /// intervals. The message bill is tag-scoped (exactly this event's
    /// `PubUp`/`PubDown` sends), like the round harness's.
    pub fn publish_from(&mut self, publisher: ProcessId, point: Point<D>) -> PublishReport {
        let event_id = self.inject(publisher, point);
        let duration = 2 * (u64::from(self.height()) + 2) * self.config.tick_interval;
        self.run_for(duration);
        let report = self.finalize(publisher, point, event_id, duration);
        // If the drain budget did not suffice (loss, corruption),
        // retire the id so late traffic cannot re-create counters.
        self.net.retire_tags_below(self.next_event_id);
        report
    }

    /// Publishes a stream of events from one publisher through a
    /// sliding window of concurrently disseminating events — the
    /// asynchronous counterpart of
    /// [`crate::DrTreeCluster::publish_pipeline`].
    pub fn publish_pipeline(
        &mut self,
        publisher: ProcessId,
        points: &[Point<D>],
        window: usize,
    ) -> Vec<PublishReport> {
        let events: Vec<(ProcessId, Point<D>)> = points.iter().map(|&p| (publisher, p)).collect();
        self.publish_pipeline_from(&events, window)
    }

    /// Publishes `events` (publisher, point pairs) through a sliding
    /// window of up to `window` concurrently disseminating events.
    ///
    /// Each event completes when its tag has no messages in flight
    /// (the injected `PublishRequest` is tracked too, so an event is
    /// never finalized before its injection was even delivered); the
    /// report's `rounds` field carries the simulated time from
    /// injection to observed quiescence, quantized to the tick
    /// interval the network advances by. Reports are in input order.
    /// `window` is clamped to
    /// `1..=`[`crate::DrTreeCluster::MAX_PUBLISH_WINDOW`].
    pub fn publish_pipeline_from(
        &mut self,
        events: &[(ProcessId, Point<D>)],
        window: usize,
    ) -> Vec<PublishReport> {
        let window = window.clamp(1, crate::DrTreeCluster::<D>::MAX_PUBLISH_WINDOW);
        let mut reports: Vec<Option<PublishReport>> = Vec::new();
        reports.resize_with(events.len(), || None);
        let mut live: Vec<(usize, u64, u64)> = Vec::with_capacity(window);
        let mut next = 0usize;
        let step = self.config.tick_interval.max(1);
        // Guards adversarial states only; dissemination is self-
        // limiting, so tags drain (lost messages settle at drop time).
        let per_event = 2 * (u64::from(self.height()) + 2) * step;
        let deadline = self.now() + (events.len() as u64 + 1) * (per_event + 4 * step);
        while next < events.len() || !live.is_empty() {
            while live.len() < window && next < events.len() {
                let (publisher, point) = events[next];
                let event_id = self.inject(publisher, point);
                live.push((next, event_id, self.now()));
                next += 1;
            }
            self.run_for(step);
            let expired = self.now() >= deadline;
            let mut i = 0;
            while i < live.len() {
                let (idx, event_id, injected) = live[i];
                if !expired && self.metrics().tag_inflight(event_id) > 0 {
                    i += 1;
                    continue;
                }
                let (publisher, point) = events[idx];
                let elapsed = self.now() - injected;
                reports[idx] = Some(self.finalize(publisher, point, event_id, elapsed));
                live.swap_remove(i);
            }
        }
        // Every tag this call allocated is finalized; retiring the id
        // range keeps traffic of force-finalized events that still
        // circulates from re-creating per-tag counter entries.
        self.net.retire_tags_below(self.next_event_id);
        reports
            .into_iter()
            .map(|r| r.expect("every event finalized"))
            .collect()
    }

    /// Allocates an event id and injects the publish request.
    fn inject(&mut self, publisher: ProcessId, point: Point<D>) -> u64 {
        let event_id = self.next_event_id;
        self.next_event_id += 1;
        let event = PubEvent {
            id: event_id,
            point,
            publisher,
        };
        self.net
            .send_external(publisher, DrtMessage::PublishRequest { event });
        event_id
    }

    /// Accounts one completed event and forgets its tag.
    fn finalize(
        &mut self,
        publisher: ProcessId,
        point: Point<D>,
        event_id: u64,
        rounds: u64,
    ) -> PublishReport {
        let mut receivers = Vec::new();
        let mut matching = Vec::new();
        let mut false_positives = Vec::new();
        let mut false_negatives = Vec::new();
        for id in self.net.ids() {
            if id == publisher {
                continue;
            }
            let Some(node) = self.net.process(id) else {
                continue;
            };
            let received = node.pubsub().has_seen(event_id);
            let matches = node.filter().contains_point(&point);
            if received {
                receivers.push(id);
            }
            if matches {
                matching.push(id);
            }
            if received && !matches {
                false_positives.push(id);
            }
            if matches && !received {
                false_negatives.push(id);
            }
        }
        let messages = self.metrics().tag_count(event_id);
        self.net.clear_tag(event_id);
        PublishReport {
            event_id,
            receivers,
            matching,
            false_positives,
            false_negatives,
            messages,
            rounds,
        }
    }

    fn refresh_hints(&mut self) {
        let contact = self.contact();
        for id in self.net.ids() {
            if let Some(n) = self.net.process_mut(id) {
                n.set_contact_hint(contact.or(Some(id)));
            }
        }
    }
}

impl<const D: usize> std::fmt::Debug for AsyncDrTreeCluster<D> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AsyncDrTreeCluster")
            .field("processes", &self.len())
            .field("time", &self.now())
            .field("height", &self.height())
            .finish()
    }
}
