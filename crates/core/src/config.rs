use drtree_rtree::RTreeConfig;

/// Configuration of the false-positive-driven reorganization (§3.2
/// "Dynamic Reorganizations", second mechanism).
///
/// "Under bias event workloads … each node computes its number of false
/// positives, and the number of false positives that each of its
/// children would have experienced if it had been in its place. If the
/// former is higher than the latter … both nodes exchange their
/// positions."
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FpReorgConfig {
    /// Whether the mechanism runs at all (default: off — it targets
    /// biased workloads; the ablation benches toggle it).
    pub enabled: bool,
    /// Events a node must observe at its topmost instance before it may
    /// swap — guards against reacting to noise.
    pub min_samples: u64,
    /// Ticks during which a freshly FP-promoted node suspends its
    /// area-based CHECK_COVER, so the traffic-driven and the MBR-driven
    /// exchanges (both §3.2) do not oscillate.
    pub cover_cooldown: u64,
}

impl Default for FpReorgConfig {
    fn default() -> Self {
        Self {
            enabled: false,
            min_samples: 32,
            cover_cooldown: 64,
        }
    }
}

/// Configuration of a DR-tree overlay.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DrTreeConfig {
    /// Degree bounds `m`/`M` and the children-set split method (§3.2).
    pub degree: RTreeConfig,
    /// Ticks without a heartbeat after which a parent considers a child
    /// dead (CHECK_CHILDREN) and a child considers its parent dead
    /// (CHECK_PARENT). Realizes the paper's periodic checks plus an
    /// eventually-perfect failure detector for uncontrolled departures.
    pub failure_timeout: u64,
    /// Ticks a joining node waits for an `Adopted` acknowledgment before
    /// retrying its join through the contact oracle.
    pub join_retry: u64,
    /// Whether CHECK_COVER (Fig. 13) runs: promote a child over its
    /// parent when the child's MBR offers better coverage. On by
    /// default; the ablation benches disable it.
    pub cover_swap: bool,
    /// Self-arming tick period for the *event-driven* engine (time
    /// units between stabilization ticks). `0` (the default) means the
    /// engine drives ticks externally — the round engine's synchronous
    /// daemon.
    pub tick_interval: u64,
    /// False-positive-driven reorganization (§3.2).
    pub fp_reorg: FpReorgConfig,
}

impl Default for DrTreeConfig {
    /// `m = 2`, `M = 4`, quadratic split, failure timeout of 4 ticks.
    fn default() -> Self {
        Self {
            degree: RTreeConfig::default(),
            failure_timeout: 4,
            join_retry: 8,
            cover_swap: true,
            tick_interval: 0,
            fp_reorg: FpReorgConfig::default(),
        }
    }
}

impl DrTreeConfig {
    /// Convenience constructor from degree bounds, keeping every other
    /// field at its default.
    ///
    /// # Errors
    ///
    /// Propagates [`drtree_rtree::ConfigError`] for invalid `m`/`M`.
    pub fn with_degree(
        m: usize,
        max: usize,
        split: drtree_rtree::SplitMethod,
    ) -> Result<Self, drtree_rtree::ConfigError> {
        Ok(Self {
            degree: RTreeConfig::new(m, max, split)?,
            ..Self::default()
        })
    }

    /// Minimum children per non-root internal instance (`m`).
    pub fn min_degree(&self) -> usize {
        self.degree.min_entries()
    }

    /// Maximum children per instance (`M`).
    pub fn max_degree(&self) -> usize {
        self.degree.max_entries()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use drtree_rtree::SplitMethod;

    #[test]
    fn defaults_are_sane() {
        let c = DrTreeConfig::default();
        assert_eq!(c.min_degree(), 2);
        assert_eq!(c.max_degree(), 4);
        assert!(c.cover_swap);
        assert!(!c.fp_reorg.enabled);
        assert!(c.failure_timeout >= 1);
    }

    #[test]
    fn with_degree_validates() {
        assert!(DrTreeConfig::with_degree(3, 9, SplitMethod::Linear).is_ok());
        assert!(DrTreeConfig::with_degree(3, 5, SplitMethod::Linear).is_err());
    }
}
