//! Legal-state checking (paper Definitions 3.1 and 3.2).
//!
//! "The DR-tree is in a legal state iff: each non-root and non-leaf node
//! has at most M and at least m children; for each process the parent
//! and children variables are coherent (both directions); for each node
//! there is no child offering a better cover; the MBR value of each
//! non-leaf node is the union of the MBR values of its children." A
//! *legitimate configuration* additionally requires the virtual
//! structure to be one legal DR-tree — here: a single root from which
//! every live process is reachable.
//!
//! [`check_legal`] evaluates all of it on a global snapshot; the
//! stabilization experiments (Lemmas 3.2–3.6) count the rounds until it
//! returns no violations.

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::fmt;

use drtree_sim::ProcessId;

use crate::config::DrTreeConfig;
use crate::state::{Level, NodeState};

/// One violated condition of Definition 3.1/3.2.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Violation {
    /// No live process believes it is the root.
    NoRoot,
    /// More than one live process believes it is the root.
    MultipleRoots {
        /// The believed roots.
        roots: Vec<ProcessId>,
    },
    /// A live process is not part of the tree rooted at the root.
    Unreachable {
        /// The stranded process.
        id: ProcessId,
    },
    /// A parent/children reference is incoherent.
    Incoherent {
        /// The instance owner whose reference is broken.
        id: ProcessId,
        /// The instance level.
        level: Level,
        /// The process referenced.
        other: ProcessId,
        /// What went wrong.
        reason: &'static str,
    },
    /// A non-root internal instance violates the `m ≤ degree ≤ M`
    /// bounds.
    DegreeOutOfBounds {
        /// Owner.
        id: ProcessId,
        /// Instance level.
        level: Level,
        /// Offending degree.
        degree: usize,
    },
    /// The root instance has fewer than two children.
    RootDegree {
        /// The root process.
        id: ProcessId,
        /// Offending degree.
        degree: usize,
    },
    /// A locally-checkable invariant is broken (contiguity, self-child
    /// chain, leaf cleanliness).
    LocalInvariant {
        /// Owner.
        id: ProcessId,
        /// What is broken.
        reason: &'static str,
    },
    /// An instance's MBR is not the union of its children's actual MBRs
    /// (Fig. 10 not converged).
    WrongMbr {
        /// Owner.
        id: ProcessId,
        /// Instance level.
        level: Level,
    },
    /// A cached child summary disagrees with the child's actual state.
    StaleCache {
        /// The caching parent.
        id: ProcessId,
        /// Instance level of the parent.
        level: Level,
        /// The summarized child.
        child: ProcessId,
    },
    /// A child provides strictly better coverage than the node's own
    /// instance below — CHECK_COVER (Fig. 13) has not converged.
    CoverViolation {
        /// Owner of the instance.
        id: ProcessId,
        /// Instance level.
        level: Level,
        /// The better-covering child.
        child: ProcessId,
    },
    /// An `underloaded` flag disagrees with the actual degree (Fig. 12).
    WrongUnderloaded {
        /// Owner.
        id: ProcessId,
        /// Instance level.
        level: Level,
    },
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::NoRoot => write!(f, "no process believes it is the root"),
            Violation::MultipleRoots { roots } => write!(f, "multiple roots: {roots:?}"),
            Violation::Unreachable { id } => write!(f, "{id} unreachable from the root"),
            Violation::Incoherent {
                id,
                level,
                other,
                reason,
            } => write!(f, "{id}@{level} ↔ {other}: {reason}"),
            Violation::DegreeOutOfBounds { id, level, degree } => {
                write!(f, "{id}@{level} has degree {degree} (out of [m, M])")
            }
            Violation::RootDegree { id, degree } => {
                write!(f, "root {id} has degree {degree} (< 2)")
            }
            Violation::LocalInvariant { id, reason } => write!(f, "{id}: {reason}"),
            Violation::WrongMbr { id, level } => {
                write!(f, "{id}@{level}: MBR is not the union of its children")
            }
            Violation::StaleCache { id, level, child } => {
                write!(f, "{id}@{level}: cached summary for {child} is stale")
            }
            Violation::CoverViolation { id, level, child } => {
                write!(f, "{id}@{level}: child {child} offers better cover")
            }
            Violation::WrongUnderloaded { id, level } => {
                write!(f, "{id}@{level}: underloaded flag incorrect")
            }
        }
    }
}

/// A snapshot of every live process's state, keyed by id.
pub type Snapshot<const D: usize> = BTreeMap<ProcessId, NodeState<D>>;

/// Checks Definition 3.1/3.2 on a snapshot. Empty result = legitimate
/// configuration.
pub fn check_legal<const D: usize>(
    snapshot: &Snapshot<D>,
    config: &DrTreeConfig,
) -> Vec<Violation> {
    let mut v = Vec::new();
    if snapshot.is_empty() {
        return v;
    }
    let m = config.min_degree();
    let max = config.max_degree();

    // ---- local invariants ------------------------------------------------
    for (&id, st) in snapshot {
        // contiguity 0..=top
        let contiguous = st.levels.keys().enumerate().all(|(i, &l)| l == i as Level);
        if !contiguous {
            v.push(Violation::LocalInvariant {
                id,
                reason: "instance levels are not contiguous from 0",
            });
        }
        match st.level(0) {
            None => v.push(Violation::LocalInvariant {
                id,
                reason: "missing leaf instance at level 0",
            }),
            Some(leaf) => {
                if !leaf.children.is_empty() {
                    v.push(Violation::LocalInvariant {
                        id,
                        reason: "leaf instance has children",
                    });
                }
                if leaf.mbr != st.filter {
                    v.push(Violation::LocalInvariant {
                        id,
                        reason: "leaf MBR differs from filter",
                    });
                }
            }
        }
        let top = st.top();
        for l in 1..=top {
            let Some(inst) = st.level(l) else { continue };
            if !inst.children.contains_key(&id) {
                v.push(Violation::LocalInvariant {
                    id,
                    reason: "internal instance missing its self-child",
                });
            }
            if l < top && inst.parent != id {
                v.push(Violation::LocalInvariant {
                    id,
                    reason: "non-topmost instance not parented to self",
                });
            }
        }
    }

    // ---- single root ------------------------------------------------------
    let roots: Vec<ProcessId> = snapshot
        .iter()
        .filter(|(&id, st)| st.believes_root(id))
        .map(|(&id, _)| id)
        .collect();
    match roots.as_slice() {
        [] => v.push(Violation::NoRoot),
        [_single] => {}
        many => v.push(Violation::MultipleRoots {
            roots: many.to_vec(),
        }),
    }

    // ---- reference coherence + structural checks --------------------------
    for (&id, st) in snapshot {
        let top = st.top();
        for (&l, inst) in &st.levels {
            if l == 0 {
                continue;
            }
            let is_root_inst = l == top && inst.parent == id;
            let degree = inst.degree();
            if is_root_inst {
                if degree < 2 || degree > max {
                    v.push(Violation::RootDegree { id, degree });
                }
            } else if (l <= top) && (degree < m || degree > max) {
                v.push(Violation::DegreeOutOfBounds {
                    id,
                    level: l,
                    degree,
                });
            }
            if inst.underloaded != (degree < m) {
                v.push(Violation::WrongUnderloaded { id, level: l });
            }

            // children coherence + caches + exact MBR + cover
            let mut actual_union: Option<drtree_spatial::Rect<D>> = None;
            let mut own_below_area = f64::NEG_INFINITY;
            if let Some(own) = snapshot.get(&id).and_then(|s| s.summary_at(id, l - 1)) {
                own_below_area = own.mbr.area();
            }
            for (&c, info) in &inst.children {
                if c == id {
                    // self-child: actual = own instance below
                    match st.summary_at(id, l - 1) {
                        None => v.push(Violation::Incoherent {
                            id,
                            level: l,
                            other: c,
                            reason: "self-child instance missing",
                        }),
                        Some(s) => {
                            if s.mbr != info.mbr {
                                v.push(Violation::StaleCache {
                                    id,
                                    level: l,
                                    child: c,
                                });
                            }
                            actual_union = Some(match actual_union {
                                None => s.mbr,
                                Some(u) => u.union(&s.mbr),
                            });
                        }
                    }
                    continue;
                }
                match snapshot.get(&c) {
                    None => v.push(Violation::Incoherent {
                        id,
                        level: l,
                        other: c,
                        reason: "child process not alive",
                    }),
                    Some(cst) => {
                        if cst.top() != l - 1 {
                            v.push(Violation::Incoherent {
                                id,
                                level: l,
                                other: c,
                                reason: "child's topmost instance is not one level below",
                            });
                            continue;
                        }
                        let Some(cinst) = cst.level(l - 1) else {
                            continue;
                        };
                        if cinst.parent != id {
                            v.push(Violation::Incoherent {
                                id,
                                level: l,
                                other: c,
                                reason: "child's parent pointer disagrees",
                            });
                        }
                        let actual = cst.summary_at(c, l - 1).expect("instance exists");
                        if actual.mbr != info.mbr || actual.count != info.count {
                            v.push(Violation::StaleCache {
                                id,
                                level: l,
                                child: c,
                            });
                        }
                        if config.cover_swap && actual.mbr.area() > own_below_area {
                            v.push(Violation::CoverViolation {
                                id,
                                level: l,
                                child: c,
                            });
                        }
                        actual_union = Some(match actual_union {
                            None => actual.mbr,
                            Some(u) => u.union(&actual.mbr),
                        });
                    }
                }
            }
            if let Some(u) = actual_union {
                if u != inst.mbr {
                    v.push(Violation::WrongMbr { id, level: l });
                }
            }
        }

        // upward coherence of the topmost instance
        if let Some(inst) = st.level(top) {
            if inst.parent != id {
                match snapshot.get(&inst.parent) {
                    None => v.push(Violation::Incoherent {
                        id,
                        level: top,
                        other: inst.parent,
                        reason: "parent process not alive",
                    }),
                    Some(pst) => {
                        let listed = pst
                            .level(top + 1)
                            .is_some_and(|pi| pi.children.contains_key(&id));
                        if !listed {
                            v.push(Violation::Incoherent {
                                id,
                                level: top,
                                other: inst.parent,
                                reason: "parent does not list this child",
                            });
                        }
                    }
                }
            }
        }
    }

    // ---- reachability from the root ---------------------------------------
    if let [root] = roots.as_slice() {
        let mut reached: BTreeSet<ProcessId> = BTreeSet::new();
        let mut queue = VecDeque::from([*root]);
        while let Some(p) = queue.pop_front() {
            if !reached.insert(p) {
                continue;
            }
            if let Some(st) = snapshot.get(&p) {
                for inst in st.levels.values() {
                    for &c in inst.children.keys() {
                        if c != p && snapshot.contains_key(&c) {
                            queue.push_back(c);
                        }
                    }
                }
            }
        }
        for &id in snapshot.keys() {
            if !reached.contains(&id) {
                v.push(Violation::Unreachable { id });
            }
        }
    }

    v
}

/// `true` iff the snapshot is a legitimate configuration.
pub fn is_legal<const D: usize>(snapshot: &Snapshot<D>, config: &DrTreeConfig) -> bool {
    check_legal(snapshot, config).is_empty()
}

#[cfg(test)]
mod tests {
    use super::*;
    use drtree_spatial::Rect;

    fn pid(raw: u64) -> ProcessId {
        ProcessId::from_raw(raw)
    }

    #[test]
    fn empty_snapshot_is_legal() {
        let snap: Snapshot<2> = BTreeMap::new();
        assert!(is_legal(&snap, &DrTreeConfig::default()));
    }

    #[test]
    fn singleton_is_legal() {
        let mut snap: Snapshot<2> = BTreeMap::new();
        snap.insert(
            pid(0),
            NodeState::new_leaf(pid(0), Rect::new([0.0, 0.0], [1.0, 1.0])),
        );
        let v = check_legal(&snap, &DrTreeConfig::default());
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn two_leaf_roots_are_illegal() {
        let mut snap: Snapshot<2> = BTreeMap::new();
        for raw in 0..2 {
            snap.insert(
                pid(raw),
                NodeState::new_leaf(pid(raw), Rect::new([0.0, 0.0], [1.0, 1.0])),
            );
        }
        let v = check_legal(&snap, &DrTreeConfig::default());
        assert!(v
            .iter()
            .any(|x| matches!(x, Violation::MultipleRoots { .. })));
    }

    #[test]
    fn missing_leaf_instance_is_flagged() {
        let mut snap: Snapshot<2> = BTreeMap::new();
        let mut st = NodeState::new_leaf(pid(0), Rect::new([0.0, 0.0], [1.0, 1.0]));
        st.levels.clear();
        snap.insert(pid(0), st);
        let v = check_legal(&snap, &DrTreeConfig::default());
        assert!(v
            .iter()
            .any(|x| matches!(x, Violation::LocalInvariant { .. })));
    }

    #[test]
    fn violation_display() {
        let s = Violation::Unreachable { id: pid(3) }.to_string();
        assert!(s.contains("p3"));
    }
}
