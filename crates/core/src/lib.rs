//! The DR-tree: a self-stabilizing peer-to-peer overlay of spatial
//! filters.
//!
//! This crate is the primary contribution of the reproduced paper
//! (*"Stabilizing Peer-to-Peer Spatial Filters"*, Bianchi, Datta, Felber,
//! Gradinariu — ICDCS 2007): a distributed R-tree in which **every tree
//! node is owned by a subscriber process**. Subscribers self-organize
//! into a height-balanced virtual tree driven by the semantic
//! (containment) relations between their filters, tolerate churn and
//! memory corruption through periodic self-stabilizing checks, and route
//! published events with no false negatives and few false positives.
//!
//! # Structure of the implementation
//!
//! | Paper element | Module |
//! |---|---|
//! | per-level node state (`parent`, `C_l`, `mbr`, `underloaded`) | [`NodeState`]/[`LevelState`] |
//! | join protocol (Fig. 8) | [`protocol::join`] |
//! | controlled departures (Fig. 9) | [`protocol::leave`] |
//! | split + root election (Fig. 6, §3.2) | [`protocol::split`] |
//! | stabilization modules CHECK_* (Figs. 10–14) | [`protocol::stabilize`] |
//! | event dissemination (§2.3, §3) | [`protocol::dissemination`] |
//! | FP-driven reorganization (§3.2) | [`protocol::reorg`] |
//! | legal state, Def. 3.1/3.2 | [`legal`] |
//! | churn resistance, Lemma 3.7 | [`churn`] |
//! | adversarial corruption for Lemma 3.6 | [`corruption`] |
//! | scripted fault schedules + convergence/SLO harness | [`adversary`] |
//!
//! # Level numbering
//!
//! The paper numbers tree levels from the root downward; this crate
//! numbers them **from the leaves upward** (leaf instances at level 0,
//! children of a level-`l` instance at level `l−1`), so a root split
//! simply adds a level on top without renumbering. A subscriber internal
//! at level `l` is recursively its own child down to its leaf instance —
//! its instances always occupy the contiguous range `0..=top`.
//!
//! # Quick start
//!
//! ```
//! use drtree_core::{DrTreeCluster, DrTreeConfig};
//! use drtree_spatial::{Point, Rect};
//!
//! let mut cluster: DrTreeCluster<2> =
//!     DrTreeCluster::new(DrTreeConfig::default(), 42);
//! // Subscribe 50 processes with random-ish rectangles.
//! let mut ids = Vec::new();
//! for i in 0..50u32 {
//!     let x = f64::from(i % 10) * 10.0;
//!     let y = f64::from(i / 10) * 10.0;
//!     ids.push(cluster.add_subscriber(Rect::new([x, y], [x + 15.0, y + 15.0])));
//! }
//! cluster.stabilize(200).expect("converges to a legal configuration");
//! assert!(cluster.check_legal().is_ok());
//!
//! // Publish an event from the first subscriber: nobody interested is
//! // missed (no false negatives — paper §2.3).
//! let report = cluster.publish_from(ids[0], Point::new([5.0, 5.0]));
//! assert!(report.false_negatives.is_empty());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adversary;
pub mod bulk;
pub mod churn;
mod cluster;
mod cluster_async;
mod config;
pub mod corruption;
pub mod federation;
pub mod legal;
mod message;
pub mod protocol;
pub mod snapshot;
mod state;

pub use adversary::{
    run_convergence, ConvergenceConfig, ConvergenceReport, FaultEvent, FaultSchedule,
    LatencyDistribution, TimedFault,
};
pub use cluster::{DrTreeCluster, PublishReport};
pub use cluster_async::AsyncDrTreeCluster;
pub use config::{DrTreeConfig, FpReorgConfig};
pub use federation::{entry_fingerprint, FedMessage, FedOp, RangeSummary};
pub use message::{ChildSummary, DrtMessage, DrtTimer, LevelTransfer, PubEvent};
pub use protocol::node::DrtNode;
pub use snapshot::TreeView;
pub use state::{Level, LevelState, NodeState};

/// Re-export: degree bounds / split-method configuration shared with the
/// centralized R-tree.
pub use drtree_rtree::{RTreeConfig, SplitMethod};
/// Re-export: the message fault knobs (loss / duplication / reordering)
/// of the simulation substrate, used by [`adversary`] schedules.
pub use drtree_sim::FaultProfile;
/// Re-export: process identifiers of the simulation substrate.
pub use drtree_sim::ProcessId;
