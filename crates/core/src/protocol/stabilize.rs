//! The periodic stabilization modules (paper §3.3, Figures 10–14).
//!
//! "At each subscriber in the DR-tree, the following events are
//! triggered periodically for each level where the subscriber is
//! active: CHECK_MBR, CHECK_PARENT, CHECK_CHILDREN, CHECK_COVER and
//! CHECK_STRUCTURE." In this asynchronous realization:
//!
//! * **CHECK_MBR** (Fig. 10) and the purely local parts of
//!   **CHECK_CHILDREN** (Fig. 12) run inside
//!   [`DrtNode::local_repair`](super::node) on every tick;
//! * **CHECK_PARENT** (Fig. 11) is driven by the heartbeat exchange in
//!   this module — a disowning or silent parent makes the child rejoin
//!   through the contact oracle, carrying its whole subtree;
//! * **CHECK_COVER** (Fig. 13) compares every non-self child's MBR with
//!   the node's own instance one level below and exchanges roles when a
//!   child covers more;
//! * **CHECK_STRUCTURE** (Fig. 14) compacts underloaded children into
//!   siblings (leader elected by `Best_Set_Cover`) and falls back to
//!   `INITIATE_NEW_CONNECTION` when no sibling can absorb them.

use drtree_sim::ProcessId;

use crate::message::{ChildSummary, DrtMessage, LevelTransfer};
use crate::state::{ChildInfo, Level, LevelState};

use super::node::{Ctx, DrtNode};
use super::split::child_summary;

impl<const D: usize> DrtNode<D> {
    /// CHECK_PARENT (Fig. 11) + heartbeat + tree merging.
    ///
    /// Non-roots heartbeat the parent of their topmost instance and
    /// rejoin (as a whole subtree) when the parent is silent for
    /// `failure_timeout` ticks or disowns them. Believed roots consult
    /// the contact oracle: if the main tree is elsewhere, they merge
    /// into it.
    pub(crate) fn check_parent(&mut self, ctx: &mut Ctx<'_, D>) {
        let top = self.top();
        let parent = self.parent_of(top);
        if parent == self.id {
            self.try_join_via_oracle(ctx);
            return;
        }
        let own = self.own_summary(top);
        ctx.send(
            parent,
            DrtMessage::Heartbeat {
                level: top,
                summary: own,
            },
        );
        let stale = self.state.level(top).is_some_and(|l| {
            self.now.saturating_sub(l.last_parent_ack) > self.config.failure_timeout
        });
        if stale {
            // Fig. 11: the parent no longer answers — re-enter the
            // structure through the oracle (next tick), subtree intact.
            self.become_root();
        }
    }

    /// A child refreshes its summary (the message-passing form of the
    /// pseudo-code's remote variable reads).
    pub(crate) fn handle_heartbeat(
        &mut self,
        from: ProcessId,
        level: Level,
        summary: ChildSummary<D>,
        ctx: &mut Ctx<'_, D>,
    ) {
        if from == self.id {
            return;
        }
        let parent_level = level + 1;
        let still_child = self
            .state
            .level(parent_level)
            .is_some_and(|l| l.children.contains_key(&from));
        if still_child {
            self.cache_child(parent_level, &summary);
        }
        ctx.send(from, DrtMessage::HeartbeatAck { level, still_child });
    }

    /// Fig. 11's membership test: `p ∈ C_{parent(p)}`? A negative answer
    /// makes this node rejoin through the oracle.
    pub(crate) fn handle_heartbeat_ack(
        &mut self,
        from: ProcessId,
        level: Level,
        still_child: bool,
    ) {
        if level != self.top() {
            return;
        }
        let now = self.now;
        let Some(inst) = self.state.level_mut(level) else {
            return;
        };
        if inst.parent != from {
            return; // stale ack from a previous parent
        }
        if still_child {
            inst.last_parent_ack = now;
        } else {
            self.become_root();
        }
    }

    /// CHECK_COVER (Fig. 13): if some child provides better coverage
    /// than this node's own instance one level below, the nodes exchange
    /// their positions. At most one exchange per tick, applied at the
    /// highest violating level.
    pub(crate) fn check_cover(&mut self, ctx: &mut Ctx<'_, D>) {
        let top = self.top();
        if top == 0 {
            return;
        }
        for level in (1..=top).rev() {
            let own_area = match self.own_mbr(level - 1) {
                Some(r) => r.area(),
                None => continue,
            };
            let best = self.state.level(level).and_then(|inst| {
                inst.children
                    .iter()
                    .filter(|(&c, _)| c != self.id)
                    .map(|(&c, i)| (c, i.mbr.area()))
                    .max_by(|a, b| {
                        a.1.partial_cmp(&b.1)
                            .expect("areas are comparable")
                            .then(b.0.cmp(&a.0))
                    })
            });
            if let Some((candidate, area)) = best {
                if area > own_area {
                    self.exchange_roles(level, candidate, ctx);
                    return;
                }
            }
        }
    }

    /// CHECK_STRUCTURE (Fig. 14) at the own instance at `level`:
    /// compact underloaded children into a sibling, or dissolve them
    /// via INITIATE_NEW_CONNECTION when nothing can absorb them.
    pub(crate) fn check_structure(&mut self, level: Level, ctx: &mut Ctx<'_, D>) {
        if level < 2 {
            // Children of a level-1 instance are leaves, which are never
            // underloaded (they have no children set).
            return;
        }
        let max = self.max_degree();
        let Some(inst) = self.state.level(level) else {
            return;
        };
        // The underloaded children as currently reported.
        let underloaded: Vec<(ProcessId, ChildInfo<D>)> = inst
            .children
            .iter()
            .filter(|(_, i)| i.underloaded)
            .map(|(&c, i)| (c, *i))
            .collect();
        let Some(&(q, q_info)) = underloaded
            .iter()
            .find(|(c, _)| *c != self.id)
            .or_else(|| underloaded.first())
        else {
            return;
        };

        if q == self.id {
            // The node's own chain instance is underloaded. Dissolving
            // it would break the self-child chain, so instead a sibling
            // is absorbed *into* it (survivor = self).
            let donor = inst
                .children
                .iter()
                .filter(|(&c, i)| c != self.id && i.count + q_info.count <= max)
                .min_by(|a, b| {
                    let ua = a.1.mbr.union(&q_info.mbr).area();
                    let ub = b.1.mbr.union(&q_info.mbr).area();
                    ua.partial_cmp(&ub)
                        .expect("finite areas")
                        .then(a.0.cmp(b.0))
                })
                .map(|(&c, _)| c);
            if let Some(donor) = donor {
                ctx.send(
                    donor,
                    DrtMessage::MergeInto {
                        level: level - 1,
                        into: self.id,
                    },
                );
            }
            return;
        }

        // `Search_Compaction_Candidate`: a sibling that can absorb q's
        // children, minimizing the dead area of the merged MBR.
        let candidate = inst
            .children
            .iter()
            .filter(|(&c, i)| c != q && i.count + q_info.count <= max)
            .min_by(|a, b| {
                let ua = a.1.mbr.union(&q_info.mbr).area();
                let ub = b.1.mbr.union(&q_info.mbr).area();
                ua.partial_cmp(&ub)
                    .expect("finite areas")
                    .then(a.0.cmp(b.0))
            })
            .map(|(&c, i)| (c, *i));

        match candidate {
            None => {
                // Fig. 14: no candidate — the subtree re-executes joins.
                ctx.send(q, DrtMessage::InitiateNewConnection { level: level - 1 });
            }
            Some((t, t_info)) => {
                // `Elect_Leader`/`Best_Set_Cover`: the member whose
                // filter covers the merged set best survives. The own
                // chain, when involved, must survive to stay contiguous.
                let survivor = if t == self.id {
                    self.id
                } else {
                    let set_mbr = q_info.mbr.union(&t_info.mbr);
                    if set_mbr.deficit(&q_info.filter) <= set_mbr.deficit(&t_info.filter) {
                        q
                    } else {
                        t
                    }
                };
                let loser = if survivor == q { t } else { q };
                debug_assert_ne!(loser, self.id);
                ctx.send(
                    loser,
                    DrtMessage::MergeInto {
                        level: level - 1,
                        into: survivor,
                    },
                );
            }
        }
    }

    /// `Merge_Children` (Fig. 14), loser side: dissolve the own topmost
    /// instance and hand every child (including the own chain) to the
    /// elected survivor.
    pub(crate) fn handle_merge_into(
        &mut self,
        level: Level,
        into: ProcessId,
        ctx: &mut Ctx<'_, D>,
    ) {
        if into == self.id || level == 0 || level != self.top() {
            return;
        }
        let Some(inst) = self.state.levels.remove(&level) else {
            return;
        };
        let mut children: Vec<ChildSummary<D>> = inst
            .children
            .iter()
            .filter(|(&c, _)| c != self.id)
            .map(|(&c, i)| child_summary(c, i))
            .collect();
        // The own remaining topmost instance becomes the survivor's
        // child as well.
        children.push(self.own_summary(level - 1));
        for s in children.iter().filter(|s| s.id != self.id) {
            ctx.send(
                s.id,
                DrtMessage::ReparentTo {
                    level: level - 1,
                    new_parent: into,
                },
            );
        }
        ctx.send(into, DrtMessage::AdoptChildren { level, children });
        let now = self.now;
        if let Some(new_top) = self.state.level_mut(level - 1) {
            new_top.parent = into;
            new_top.last_parent_ack = now;
        }
        self.pubsub.reset_reorg();
    }

    /// `Merge_Children`, survivor side.
    pub(crate) fn handle_adopt_children(
        &mut self,
        level: Level,
        children: Vec<ChildSummary<D>>,
        ctx: &mut Ctx<'_, D>,
    ) {
        if level == 0 || self.state.level(level).is_none() {
            return;
        }
        for s in &children {
            if s.id == self.id {
                continue;
            }
            self.cache_child(level, s);
        }
        let m = self.m();
        {
            let inst = self.state.level_mut(level).expect("checked");
            inst.recompute_mbr();
            inst.underloaded = inst.degree() < m;
        }
        if self.state.level(level).expect("checked").degree() > self.max_degree() {
            self.split_level(level, ctx);
        }
    }

    /// Fig. 14 `INITIATE_NEW_CONNECTION`: the subtree rooted at the own
    /// instance at `level` dissolves; every member re-executes the join
    /// as a leaf.
    pub(crate) fn handle_initiate_new_connection(&mut self, level: Level, ctx: &mut Ctx<'_, D>) {
        if level != self.top() {
            return;
        }
        let top = self.top();
        for k in 1..=top {
            if let Some(inst) = self.state.level(k) {
                for (&c, _) in inst.children.iter().filter(|(&c, _)| c != self.id) {
                    ctx.send(c, DrtMessage::InitiateNewConnection { level: k - 1 });
                }
            }
        }
        self.reset_to_leaf();
    }

    /// Take over instances handed by a split, a role exchange, a
    /// compaction, or a root election.
    pub(crate) fn handle_assume_role(
        &mut self,
        transfers: Vec<LevelTransfer<D>>,
        parent: ProcessId,
        fp_promotion: bool,
    ) {
        if transfers.is_empty() {
            return;
        }
        // Transfers must extend the own chain contiguously upward;
        // anything else is stale and ignored (the sender's view of this
        // node was outdated).
        let base = self.top() + 1;
        let contiguous = transfers
            .iter()
            .enumerate()
            .all(|(i, t)| t.level == base + i as Level);
        if !contiguous {
            return;
        }
        let now = self.now;
        let m = self.m();
        for t in &transfers {
            let below_summary = self
                .state
                .summary_at(self.id, t.level - 1)
                .expect("chain is contiguous");
            let mut inst = LevelState::leaf(self.id, self.state.filter, now);
            inst.children
                .insert(self.id, ChildInfo::from_summary(&below_summary, now));
            for s in t.children.iter().filter(|s| s.id != self.id) {
                inst.children.insert(s.id, ChildInfo::from_summary(s, now));
            }
            inst.recompute_mbr();
            inst.underloaded = inst.degree() < m;
            inst.parent = self.id;
            self.state.levels.insert(t.level, inst);
        }
        let new_top = self.top();
        if let Some(inst) = self.state.level_mut(new_top) {
            inst.parent = parent;
            inst.last_parent_ack = now;
        }
        self.join_sent_at = None;
        if fp_promotion {
            self.cover_suspended_until = now + self.config.fp_reorg.cover_cooldown;
        }
        self.pubsub.reset_reorg();
    }

    /// The children-set handover of splits/exchanges, child side.
    pub(crate) fn handle_reparent_to(&mut self, level: Level, new_parent: ProcessId) {
        if level != self.top() {
            return;
        }
        let now = self.now;
        if let Some(inst) = self.state.level_mut(level) {
            inst.parent = new_parent;
            inst.last_parent_ack = now;
        }
        self.join_sent_at = None;
    }

    /// Role exchanges seen from the old parent's parent: swap the child
    /// entry.
    pub(crate) fn handle_replace_child(
        &mut self,
        level: Level,
        old: ProcessId,
        summary: ChildSummary<D>,
    ) {
        let m = self.m();
        let now = self.now;
        let own = self.id;
        let Some(inst) = self.state.level_mut(level) else {
            return;
        };
        if old != own {
            inst.children.remove(&old);
        }
        if summary.id != own {
            inst.children
                .insert(summary.id, ChildInfo::from_summary(&summary, now));
        }
        inst.recompute_mbr();
        inst.underloaded = inst.degree() < m;
    }
}
