//! Controlled departures (paper Fig. 9).
//!
//! A subscriber leaves "by sending a leave message to the parent of its
//! topmost instance". The parent removes it from the children set and
//! recomputes its MBR; if the removal leaves the children set
//! underloaded, the parent asks *its* parent to run CHECK_STRUCTURE
//! (compaction). "For simplicity, we rely on the stabilization
//! mechanisms for repairing the subtree rooted at the departing node" —
//! orphans detect the dead parent through heartbeat timeouts and rejoin
//! with their subtrees intact.

use drtree_sim::ProcessId;

use crate::message::DrtMessage;
use crate::state::Level;

use super::node::{Ctx, DrtNode};

impl<const D: usize> DrtNode<D> {
    /// `LEAVE(q, l)` (Fig. 9): `leaver`'s topmost instance at
    /// `child_level` departs; this node is its parent.
    pub(crate) fn handle_leave(
        &mut self,
        leaver: ProcessId,
        child_level: Level,
        ctx: &mut Ctx<'_, D>,
    ) {
        let level = child_level + 1;
        let m = self.m();
        let Some(inst) = self.state.level_mut(level) else {
            return;
        };
        if inst.children.remove(&leaver).is_none() {
            return;
        }
        inst.recompute_mbr();
        inst.underloaded = inst.degree() < m;
        let underloaded = inst.underloaded;
        let is_root_here =
            level == self.top() && self.state.level(level).is_some_and(|l| l.parent == self.id);
        if underloaded && !is_root_here {
            // Fig. 9: "send CHECK_STRUCTURE to parent" — the parent
            // compacts its underloaded children (this node among them).
            let parent = self.parent_of(level);
            if parent == self.id {
                self.check_structure(level + 1, ctx);
            } else {
                ctx.send(parent, DrtMessage::CheckStructure { level: level + 1 });
            }
        }
    }

    /// Controlled-departure initiation: the harness asks this node to
    /// leave; it notifies the parent of its topmost instance (Fig. 9)
    /// and is then removed from the network.
    pub(crate) fn announce_departure(&mut self, ctx: &mut Ctx<'_, D>) {
        let top = self.top();
        let parent = self.parent_of(top);
        if parent != self.id {
            ctx.send(parent, DrtMessage::Leave { level: top });
        }
    }
}
