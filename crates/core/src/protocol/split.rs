//! `Split_Node` and role transfers (§3.2, Fig. 6).
//!
//! When an instance overflows (more than `M` children), its children set
//! is divided in two groups of at least `m` by the configured split
//! method (`drtree-rtree`'s shared implementations). "One of the
//! subtrees returned by the split stays as the children of the invoking
//! subscriber … The other subtree is pushed backward to p's parent",
//! under a freshly elected parent: "we elect as root the node whose
//! current MBR is largest" (Fig. 6). A root split grows the tree by one
//! level and elects the new root among the two halves.
//!
//! The same machinery implements the `Adjust_Parent` role exchange used
//! by `ADD_CHILD` and CHECK_COVER: `DrtNode::exchange_roles` transfers
//! every instance from a level upward to a better-covering child.

use drtree_sim::ProcessId;
use drtree_spatial::Rect;

use crate::message::{ChildSummary, DrtMessage, LevelTransfer};
use crate::state::{ChildInfo, Level, LevelState};

use super::node::{Ctx, DrtNode};

impl<const D: usize> DrtNode<D> {
    /// Splits the overflowing own instance at `level` (Fig. 8's
    /// `Split_Node` + `Create_Root` path).
    pub(crate) fn split_level(&mut self, level: Level, ctx: &mut Ctx<'_, D>) {
        let m = self.m();
        let max = self.max_degree();
        let Some(inst) = self.state.level(level) else {
            return;
        };
        if inst.degree() <= max {
            return;
        }
        let entries: Vec<(ProcessId, ChildInfo<D>)> =
            inst.children.iter().map(|(&c, i)| (c, *i)).collect();
        let Some(own_pos) = entries.iter().position(|(c, _)| *c == self.id) else {
            // The self-child entry was corrupted away; local repair will
            // restore it before the next overflow is handled.
            return;
        };
        let rects: Vec<Rect<D>> = entries.iter().map(|(_, i)| i.mbr).collect();
        let (ga, gb) = self.config.degree.split_method().split(&rects, m);
        let (own_idx, other_idx) = if ga.contains(&own_pos) {
            (ga, gb)
        } else {
            (gb, ga)
        };
        let other: Vec<(ProcessId, ChildInfo<D>)> = other_idx.iter().map(|&i| entries[i]).collect();
        let leader = elect_largest(other.iter().map(|(c, i)| (*c, i.mbr)))
            .expect("split groups are non-empty");
        let other_mbr =
            Rect::union_all(other.iter().map(|(_, i)| &i.mbr)).expect("non-empty group");

        // Keep the own group in place.
        {
            let inst = self.state.level_mut(level).expect("checked");
            inst.children = own_idx.iter().map(|&i| entries[i]).collect();
            inst.recompute_mbr();
            inst.underloaded = inst.degree() < m;
        }
        let own_mbr = self.state.level(level).expect("checked").mbr;

        let leader_info = other
            .iter()
            .find(|(c, _)| *c == leader)
            .expect("leader from group")
            .1;
        let leader_summary = ChildSummary {
            id: leader,
            mbr: other_mbr,
            filter: leader_info.filter,
            count: other.len(),
            underloaded: other.len() < m,
        };
        let handed_children: Vec<ChildSummary<D>> = other
            .iter()
            .filter(|(c, _)| *c != leader)
            .map(|(c, i)| child_summary(*c, i))
            .collect();

        // Children moving to the new parent learn about it.
        for (c, _) in other.iter().filter(|(c, _)| *c != leader) {
            ctx.send(
                *c,
                DrtMessage::ReparentTo {
                    level: level - 1,
                    new_parent: leader,
                },
            );
        }

        let top = self.top();
        let was_root = level == top && self.state.level(level).is_some_and(|l| l.parent == self.id);

        if was_root {
            // "This process eventually stops with the split of the root,
            // which generates … the election of a new root."
            if other_mbr.area() > own_mbr.area() {
                // The handed-off half covers more: its leader becomes
                // the new root over both halves.
                let own_top = ChildSummary {
                    id: self.id,
                    mbr: own_mbr,
                    filter: self.state.filter,
                    count: own_idx.len(),
                    underloaded: own_idx.len() < m,
                };
                ctx.send(
                    leader,
                    DrtMessage::AssumeRole {
                        transfers: vec![
                            LevelTransfer {
                                level,
                                children: handed_children,
                            },
                            LevelTransfer {
                                level: level + 1,
                                children: vec![own_top],
                            },
                        ],
                        parent: leader,
                        fp_promotion: false,
                    },
                );
                let now = self.now;
                if let Some(inst) = self.state.level_mut(level) {
                    inst.parent = leader;
                    inst.last_parent_ack = now;
                }
            } else {
                // This node stays root: grow a root instance above.
                ctx.send(
                    leader,
                    DrtMessage::AssumeRole {
                        transfers: vec![LevelTransfer {
                            level,
                            children: handed_children,
                        }],
                        parent: self.id,
                        fp_promotion: false,
                    },
                );
                let own_top = self.own_summary(level);
                let mut root = LevelState::leaf(self.id, self.state.filter, self.now);
                root.children
                    .insert(self.id, ChildInfo::from_summary(&own_top, self.now));
                root.children
                    .insert(leader, ChildInfo::from_summary(&leader_summary, self.now));
                root.recompute_mbr();
                root.underloaded = root.degree() < m;
                root.parent = self.id;
                self.state.levels.insert(level + 1, root);
            }
        } else {
            let parent = self.parent_of(level);
            ctx.send(
                leader,
                DrtMessage::AssumeRole {
                    transfers: vec![LevelTransfer {
                        level,
                        children: handed_children,
                    }],
                    parent,
                    fp_promotion: false,
                },
            );
            if parent == self.id {
                // The own instance one level up adopts the new sibling
                // directly (possibly cascading the split upward).
                self.add_child(level + 1, leader_summary, ctx);
            } else {
                ctx.send(
                    parent,
                    DrtMessage::AddChild {
                        level,
                        summary: leader_summary,
                    },
                );
            }
        }
    }

    /// `Adjust_Parent` (Fig. 7) generalized to whole role chains: child
    /// `q` (topmost instance at `from_level − 1`) takes over this node's
    /// instances `from_level ..= top`; this node keeps levels below.
    /// Used by `ADD_CHILD` and CHECK_COVER ("the nodes exchange their
    /// position") and by the FP-driven reorganization.
    pub(crate) fn exchange_roles(&mut self, from_level: Level, q: ProcessId, ctx: &mut Ctx<'_, D>) {
        self.exchange_roles_inner(from_level, q, ctx, false);
    }

    /// §3.2's false-positive-driven exchange: like
    /// [`DrtNode::exchange_roles`] but flags the promotion so the
    /// receiver suspends CHECK_COVER for the configured cooldown.
    pub(crate) fn exchange_roles_fp(
        &mut self,
        from_level: Level,
        q: ProcessId,
        ctx: &mut Ctx<'_, D>,
    ) {
        self.exchange_roles_inner(from_level, q, ctx, true);
    }

    fn exchange_roles_inner(
        &mut self,
        from_level: Level,
        q: ProcessId,
        ctx: &mut Ctx<'_, D>,
        fp_promotion: bool,
    ) {
        if q == self.id || from_level == 0 {
            return;
        }
        let top = self.top();
        if from_level > top || self.state.level(from_level).is_none() {
            return;
        }
        let Some(q_info) = self
            .state
            .level(from_level)
            .and_then(|l| l.children.get(&q).copied())
        else {
            return;
        };

        let mut transfers = Vec::new();
        for k in from_level..=top {
            let inst = self.state.level(k).expect("contiguous");
            let mut children: Vec<ChildSummary<D>> = inst
                .children
                .iter()
                .filter(|(&c, _)| c != self.id && c != q)
                .map(|(&c, i)| child_summary(c, i))
                .collect();
            if k == from_level {
                // This node's remaining topmost instance stays a child.
                children.push(self.own_summary(from_level - 1));
            }
            transfers.push(LevelTransfer { level: k, children });
        }
        let top_inst = self.state.level(top).expect("contiguous");
        let was_root = top_inst.parent == self.id;
        let old_parent = top_inst.parent;
        let q_top_summary = ChildSummary {
            id: q,
            mbr: top_inst.mbr,
            filter: q_info.filter,
            count: top_inst.degree(),
            underloaded: top_inst.underloaded,
        };

        ctx.send(
            q,
            DrtMessage::AssumeRole {
                transfers,
                parent: if was_root { q } else { old_parent },
                fp_promotion,
            },
        );
        for k in from_level..=top {
            let inst = self.state.level(k).expect("contiguous");
            for (&c, _) in inst
                .children
                .iter()
                .filter(|(&c, _)| c != self.id && c != q)
            {
                ctx.send(
                    c,
                    DrtMessage::ReparentTo {
                        level: k - 1,
                        new_parent: q,
                    },
                );
            }
        }
        if !was_root {
            ctx.send(
                old_parent,
                DrtMessage::ReplaceChild {
                    level: top + 1,
                    old: self.id,
                    summary: q_top_summary,
                },
            );
        }
        for k in from_level..=top {
            self.state.levels.remove(&k);
        }
        let now = self.now;
        if let Some(new_top) = self.state.level_mut(from_level - 1) {
            new_top.parent = q;
            new_top.last_parent_ack = now;
        }
        self.join_sent_at = None;
        self.pubsub.reset_reorg();
    }
}

/// Root/parent election (Fig. 6): largest MBR area wins; ties to the
/// smaller id (deterministic). Subscription containment implies larger
/// area, so a container always beats its containees (case 1); for
/// intersecting or disjoint candidates the largest rectangle minimizes
/// the false-positive area (cases 2–3).
pub(crate) fn elect_largest<const D: usize>(
    candidates: impl Iterator<Item = (ProcessId, Rect<D>)>,
) -> Option<ProcessId> {
    let mut best: Option<(f64, ProcessId)> = None;
    for (c, mbr) in candidates {
        let area = mbr.area();
        let better = match best {
            None => true,
            Some((ba, bc)) => area > ba || (area == ba && c < bc),
        };
        if better {
            best = Some((area, c));
        }
    }
    best.map(|(_, c)| c)
}

pub(crate) fn child_summary<const D: usize>(id: ProcessId, info: &ChildInfo<D>) -> ChildSummary<D> {
    ChildSummary {
        id,
        mbr: info.mbr,
        filter: info.filter,
        count: info.count,
        underloaded: info.underloaded,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn elect_largest_prefers_area_then_id() {
        let r = |lo: f64, hi: f64| Rect::new([lo], [hi]);
        let winner = elect_largest(
            [
                (ProcessId::from_raw(3), r(0.0, 5.0)),
                (ProcessId::from_raw(1), r(0.0, 10.0)),
                (ProcessId::from_raw(2), r(0.0, 10.0)),
            ]
            .into_iter(),
        );
        assert_eq!(winner, Some(ProcessId::from_raw(1)));
        assert_eq!(
            elect_largest(std::iter::empty::<(ProcessId, Rect<1>)>()),
            None
        );
    }

    #[test]
    fn containment_case_elects_container() {
        // Fig. 6 case 1: S1 contains the others → S1 elected.
        let s1 = Rect::new([0.0, 0.0], [10.0, 10.0]);
        let s2 = Rect::new([1.0, 1.0], [4.0, 4.0]);
        let s3 = Rect::new([5.0, 5.0], [9.0, 9.0]);
        let winner = elect_largest(
            [
                (ProcessId::from_raw(1), s1),
                (ProcessId::from_raw(2), s2),
                (ProcessId::from_raw(3), s3),
            ]
            .into_iter(),
        );
        assert_eq!(winner, Some(ProcessId::from_raw(1)));
    }
}
