//! The DR-tree subscriber process: state, dispatch, and the periodic
//! tick pipeline.

use std::collections::{BTreeMap, HashSet, VecDeque};

use drtree_sim::{Context, Process, ProcessId};
use drtree_spatial::{Point, Rect};

use crate::config::DrTreeConfig;
use crate::message::{ChildSummary, DrtMessage, DrtTimer, PubEvent};
use crate::state::{ChildInfo, Level, LevelState, NodeState};

/// Shorthand for the context type every handler receives.
pub(crate) type Ctx<'a, const D: usize> = Context<'a, DrtMessage<D>, DrtTimer>;

/// Capacity of the recently-seen event ring (routing-loop guard while
/// the overlay is corrupted, and the delivery-accounting horizon of the
/// pipelined publish path). Must stay comfortably above the maximum
/// pipeline window ([`crate::DrTreeCluster::MAX_PUBLISH_WINDOW`]): a
/// busy interior node sees every in-flight event, and an event's
/// receipt must still be in the ring when the harness accounts its
/// deliveries at quiescence (at most ~3 windows of newer events later).
const RECENT_EVENTS: usize = 1024;

/// Publish/subscribe bookkeeping of one subscriber.
#[derive(Debug, Clone, Default)]
pub struct PubSubState {
    /// Recently received event ids, in receipt order (eviction queue).
    recent: VecDeque<u64>,
    /// Same ids, for O(1) membership — `has_seen` sits on the hot
    /// dissemination path, once per `PubUp`/`PubDown` received.
    recent_set: HashSet<u64>,
    /// Events received (any instance), excluding self-published ones.
    pub received_total: u64,
    /// Received events not matching the local filter (§2.3 "false
    /// positives").
    pub false_positive_total: u64,
    /// Reorg counters (§3.2): false positives observed by this node at
    /// its topmost instance …
    pub(crate) fp_self: u64,
    /// … and the false positives each child *would have* seen in its
    /// place.
    pub(crate) hyp_fp: BTreeMap<ProcessId, u64>,
    /// Events sampled since the counters were last reset.
    pub(crate) samples: u64,
}

impl PubSubState {
    /// `true` if this subscriber has received event `id` recently.
    pub fn has_seen(&self, id: u64) -> bool {
        self.recent_set.contains(&id)
    }

    pub(crate) fn mark_seen(&mut self, id: u64) {
        if !self.recent_set.insert(id) {
            return;
        }
        if self.recent.len() == RECENT_EVENTS {
            if let Some(evicted) = self.recent.pop_front() {
                self.recent_set.remove(&evicted);
            }
        }
        self.recent.push_back(id);
    }

    pub(crate) fn reset_reorg(&mut self) {
        self.fp_self = 0;
        self.hyp_fp.clear();
        self.samples = 0;
    }
}

/// A DR-tree subscriber process.
///
/// Owns the paper's per-level variables ([`NodeState`]), reacts to
/// protocol messages, and runs the periodic stabilization pipeline on
/// every [`DrtTimer::Tick`]. Constructed with a filter and handed to a
/// simulation engine; the id is assigned by the engine at
/// [`Process::on_start`].
#[derive(Debug, Clone)]
pub struct DrtNode<const D: usize> {
    pub(crate) id: ProcessId,
    pub(crate) config: DrTreeConfig,
    pub(crate) state: NodeState<D>,
    /// The contact oracle's current answer (§3.2 "we assume that, at
    /// connection time, a subscriber invokes an oracle that accurately
    /// provides a subscriber already in the structure"). Maintained by
    /// the harness.
    pub(crate) contact_hint: Option<ProcessId>,
    /// Tick of the last join attempt (retry throttling).
    pub(crate) join_sent_at: Option<u64>,
    /// CHECK_COVER suspended until this tick (set by FP promotions).
    pub(crate) cover_suspended_until: u64,
    pub(crate) pubsub: PubSubState,
    pub(crate) now: u64,
}

impl<const D: usize> DrtNode<D> {
    /// Creates a subscriber with the given filter. The node starts as a
    /// single leaf believing itself root; it joins the overlay on its
    /// first tick once a contact hint is set.
    pub fn new(config: DrTreeConfig, filter: Rect<D>) -> Self {
        let placeholder = ProcessId::from_raw(u64::MAX);
        Self {
            id: placeholder,
            config,
            state: NodeState::new_leaf(placeholder, filter),
            contact_hint: None,
            join_sent_at: None,
            cover_suspended_until: 0,
            pubsub: PubSubState::default(),
            now: 0,
        }
    }

    /// This process's id (valid after it was added to a network).
    pub fn id(&self) -> ProcessId {
        self.id
    }

    /// The subscription filter.
    pub fn filter(&self) -> Rect<D> {
        self.state.filter
    }

    /// The node's configuration.
    pub fn config(&self) -> &DrTreeConfig {
        &self.config
    }

    /// The (corruptible) protocol state.
    pub fn state(&self) -> &NodeState<D> {
        &self.state
    }

    /// Mutable protocol state — exposed for fault injection
    /// (the paper's transient memory corruption) and for tests.
    pub fn state_mut(&mut self) -> &mut NodeState<D> {
        &mut self.state
    }

    /// Publish/subscribe statistics.
    pub fn pubsub(&self) -> &PubSubState {
        &self.pubsub
    }

    /// Updates the contact oracle's answer for this node.
    pub fn set_contact_hint(&mut self, contact: Option<ProcessId>) {
        self.contact_hint = contact;
    }

    /// `true` if the node believes it is the overlay root.
    pub fn believes_root(&self) -> bool {
        self.state.believes_root(self.id)
    }

    /// The topmost instance level.
    pub fn top(&self) -> Level {
        self.state.top()
    }

    // ------------------------------------------------------------------
    // Shared helpers used by the protocol impl blocks.
    // ------------------------------------------------------------------

    /// Minimum degree `m`.
    pub(crate) fn m(&self) -> usize {
        self.config.min_degree()
    }

    /// Maximum degree `M`.
    pub(crate) fn max_degree(&self) -> usize {
        self.config.max_degree()
    }

    /// Fresh summary of the own instance at `level` (panics if absent —
    /// callers check existence first).
    pub(crate) fn own_summary(&self, level: Level) -> ChildSummary<D> {
        self.state
            .summary_at(self.id, level)
            .expect("own instance exists")
    }

    /// MBR of the own instance at `level` (filter for level 0).
    pub(crate) fn own_mbr(&self, level: Level) -> Option<Rect<D>> {
        if level == 0 {
            return Some(self.state.filter);
        }
        self.state.level(level).map(|l| l.mbr)
    }

    /// Inserts/refreshes the child entry for `summary` at instance
    /// `level` (no structural checks).
    pub(crate) fn cache_child(&mut self, level: Level, summary: &ChildSummary<D>) {
        let now = self.now;
        if let Some(inst) = self.state.level_mut(level) {
            inst.children
                .insert(summary.id, ChildInfo::from_summary(summary, now));
        }
    }

    /// The parent of the own instance at `level`: the same process one
    /// level up for non-topmost instances, the stored pointer at the
    /// top.
    pub(crate) fn parent_of(&self, level: Level) -> ProcessId {
        if level < self.top() {
            self.id
        } else {
            self.state.level(level).map_or(self.id, |l| l.parent)
        }
    }

    /// Becomes (believes itself) root: points the topmost parent at
    /// itself. The next tick merges into the main tree via the oracle.
    pub(crate) fn become_root(&mut self) {
        let top = self.top();
        let now = self.now;
        if let Some(inst) = self.state.level_mut(top) {
            inst.parent = self.id;
            inst.last_parent_ack = now;
        }
        self.join_sent_at = None;
    }

    /// Resets to a bare leaf (used by INITIATE_NEW_CONNECTION): all
    /// internal instances dissolve; the node rejoins via the oracle on
    /// the next tick.
    pub(crate) fn reset_to_leaf(&mut self) {
        let filter = self.state.filter;
        self.state = NodeState::new_leaf(self.id, filter);
        if let Some(inst) = self.state.level_mut(0) {
            inst.last_parent_ack = self.now;
        }
        self.join_sent_at = None;
        self.pubsub.reset_reorg();
    }
}

impl<const D: usize> Process for DrtNode<D> {
    type Msg = DrtMessage<D>;
    type Timer = DrtTimer;

    fn on_start(&mut self, ctx: &mut Ctx<'_, D>) {
        self.id = ctx.id();
        self.now = ctx.now();
        let filter = self.state.filter;
        self.state = NodeState::new_leaf(self.id, filter);
        if self.config.tick_interval > 0 {
            ctx.set_timer(self.config.tick_interval, DrtTimer::Tick);
        }
    }

    fn on_message(&mut self, from: ProcessId, msg: DrtMessage<D>, ctx: &mut Ctx<'_, D>) {
        self.now = ctx.now();
        match msg {
            DrtMessage::Join {
                joiner,
                top_level,
                mbr,
                filter,
                count,
                descend,
            } => {
                let summary = ChildSummary {
                    id: joiner,
                    mbr,
                    filter,
                    count,
                    underloaded: false,
                };
                self.handle_join(summary, top_level, descend, ctx);
            }
            DrtMessage::JoinTooTall { level } => self.handle_join_too_tall(level, ctx),
            DrtMessage::AddChild { level, summary } => self.handle_add_child(level, summary, ctx),
            DrtMessage::Adopted { level } => self.handle_adopted(from, level),
            DrtMessage::AssumeRole {
                transfers,
                parent,
                fp_promotion,
            } => self.handle_assume_role(transfers, parent, fp_promotion),
            DrtMessage::ReparentTo { level, new_parent } => {
                self.handle_reparent_to(level, new_parent)
            }
            DrtMessage::ReplaceChild {
                level,
                old,
                summary,
            } => self.handle_replace_child(level, old, summary),
            DrtMessage::Heartbeat { level, summary } => {
                self.handle_heartbeat(from, level, summary, ctx)
            }
            DrtMessage::HeartbeatAck { level, still_child } => {
                self.handle_heartbeat_ack(from, level, still_child)
            }
            DrtMessage::Leave { level } => self.handle_leave(from, level, ctx),
            DrtMessage::CheckStructure { level } => self.check_structure(level, ctx),
            DrtMessage::MergeInto { level, into } => self.handle_merge_into(level, into, ctx),
            DrtMessage::AdoptChildren { level, children } => {
                self.handle_adopt_children(level, children, ctx)
            }
            DrtMessage::InitiateNewConnection { level } => {
                self.handle_initiate_new_connection(level, ctx)
            }
            DrtMessage::RejoinSubtree { level } => self.handle_rejoin_subtree(level),
            DrtMessage::DepartRequest => self.announce_departure(ctx),
            DrtMessage::PublishRequest { event } => self.handle_publish_request(event, ctx),
            DrtMessage::PubDown { event, level } => self.handle_pub_down(event, level, ctx),
            DrtMessage::PubUp { event, level } => self.handle_pub_up(from, event, level, ctx),
        }
    }

    fn on_timer(&mut self, timer: DrtTimer, ctx: &mut Ctx<'_, D>) {
        self.now = ctx.now();
        match timer {
            DrtTimer::Tick => {
                self.tick(ctx);
                // In the asynchronous engine the tick re-arms itself;
                // the round engine drives ticks externally instead.
                if self.config.tick_interval > 0 {
                    ctx.set_timer(self.config.tick_interval, DrtTimer::Tick);
                }
            }
        }
    }
}

impl<const D: usize> DrtNode<D> {
    /// The periodic stabilization pipeline (§3.3): every check event the
    /// paper triggers "periodically … for each level where the
    /// subscriber is active", in a fixed deterministic order.
    pub(crate) fn tick(&mut self, ctx: &mut Ctx<'_, D>) {
        // Local self-stabilization: contiguity, self-children, leaf MBR,
        // CHECK_MBR (Fig. 10), CHECK_CHILDREN staleness (Fig. 12).
        self.local_repair();
        // CHECK_PARENT (Fig. 11) + heartbeat + tree merge via oracle.
        self.check_parent(ctx);
        // CHECK_COVER (Fig. 13) — suspended during the cooldown after a
        // false-positive-driven promotion (§3.2).
        if self.config.cover_swap && self.now >= self.cover_suspended_until {
            self.check_cover(ctx);
        }
        // Overfull instances (possible only through corrupted state or
        // message races) split like any other overflow.
        let max = self.max_degree();
        let overfull: Vec<Level> = self
            .state
            .levels
            .iter()
            .filter(|(&l, inst)| l >= 1 && inst.degree() > max)
            .map(|(&l, _)| l)
            .collect();
        for l in overfull {
            self.split_level(l, ctx);
        }
        // CHECK_STRUCTURE (Fig. 14) at every internal instance.
        let levels: Vec<Level> = self
            .state
            .levels
            .keys()
            .copied()
            .filter(|&l| l >= 1)
            .collect();
        for l in levels {
            self.check_structure(l, ctx);
        }
        // §3.2 dynamic reorganization under biased event workloads.
        if self.config.fp_reorg.enabled {
            self.check_fp_reorg(ctx);
        }
    }

    /// Repairs every locally-checkable invariant, unconditionally. This
    /// is what makes the node *self*-stabilizing: no matter how the
    /// state was corrupted, after one call the local structure is
    /// consistent again (remote inconsistencies are healed by the
    /// message-driven checks).
    pub(crate) fn local_repair(&mut self) {
        let now = self.now;
        let id = self.id;
        let filter = self.state.filter;
        let timeout = self.config.failure_timeout;
        let m = self.m();

        // Leaf instance exists, and is a proper leaf (Fig. 10 leaf case).
        let leaf = self
            .state
            .levels
            .entry(0)
            .or_insert_with(|| LevelState::leaf(id, filter, now));
        leaf.children.clear();
        leaf.mbr = filter;
        leaf.underloaded = false;

        // Contiguity: instances must occupy 0..=top without gaps; an
        // instance above a gap is unreachable garbage and is dropped
        // (its children re-attach via CHECK_PARENT timeouts).
        let mut expected: Level = 0;
        let mut to_drop: Vec<Level> = Vec::new();
        for &l in self.state.levels.keys() {
            if l != expected {
                to_drop.push(l);
            } else {
                expected += 1;
            }
        }
        for l in to_drop {
            self.state.levels.remove(&l);
        }

        // Per internal instance: stale-child eviction (CHECK_CHILDREN),
        // fresh self-entry, parent pointer coherence, CHECK_MBR,
        // underloaded flag (Fig. 12).
        let top = self.state.top();
        for l in 1..=top {
            let own_child_summary = self
                .state
                .summary_at(id, l - 1)
                .expect("contiguous instances");
            let inst = self.state.level_mut(l).expect("contiguous instances");
            // Corrupted clocks (timestamps from the future) must not
            // pin entries alive forever: clamp, then age out normally.
            for info in inst.children.values_mut() {
                if info.last_seen > now {
                    info.last_seen = now;
                }
            }
            if inst.last_parent_ack > now {
                inst.last_parent_ack = now;
            }
            inst.children
                .retain(|&c, info| c == id || now.saturating_sub(info.last_seen) <= timeout);
            inst.children
                .insert(id, ChildInfo::from_summary(&own_child_summary, now));
            if l < top {
                inst.parent = id;
            }
            inst.recompute_mbr();
            inst.underloaded = inst.degree() < m;
        }

        // Root shrink: a root instance whose only child is the node's
        // own chain carries no information; drop it. (Mirrors the R-tree
        // rule that a root has at least two children.)
        loop {
            let top = self.state.top();
            if top == 0 {
                break;
            }
            let inst = self.state.level(top).expect("top exists");
            let is_root = inst.parent == id;
            if is_root && inst.degree() == 1 && inst.children.contains_key(&id) {
                self.state.levels.remove(&top);
                let new_top = self.state.top();
                if let Some(below) = self.state.level_mut(new_top) {
                    below.parent = id;
                    below.last_parent_ack = now;
                }
            } else {
                break;
            }
        }
    }

    /// Mark receipt of `event`, updating delivery and false-positive
    /// accounting. Returns `false` if the event was already seen (the
    /// caller must stop routing it).
    pub(crate) fn receive_event(&mut self, event: &PubEvent<D>) -> bool {
        if self.pubsub.has_seen(event.id) {
            return false;
        }
        self.pubsub.mark_seen(event.id);
        if event.publisher == self.id {
            return true;
        }
        self.pubsub.received_total += 1;
        let matched = self.state.filter.contains_point(&event.point);
        if !matched {
            self.pubsub.false_positive_total += 1;
        }
        if self.config.fp_reorg.enabled {
            self.note_fp_sample(matched, &event.point);
        }
        true
    }

    /// Record a reorg sample: own false positive, plus the hypothetical
    /// false positive of every child at every level where this node is
    /// active (§3.2 — any of them may exchange positions with it).
    fn note_fp_sample(&mut self, matched: bool, point: &Point<D>) {
        self.pubsub.samples += 1;
        if !matched {
            self.pubsub.fp_self += 1;
        }
        let top = self.state.top();
        let id = self.id;
        for k in 1..=top {
            let Some(inst) = self.state.level(k) else {
                continue;
            };
            for (&c, info) in &inst.children {
                if c == id {
                    continue;
                }
                // Explicit zero entries distinguish "matched every
                // sampled event" from "never sampled" — only sampled
                // children are eligible for promotion.
                let miss = u64::from(!info.filter.contains_point(point));
                *self.pubsub.hyp_fp.entry(c).or_insert(0) += miss;
            }
        }
    }
}
