//! False-positive-driven reorganization (paper §3.2, "Dynamic
//! Reorganizations", second mechanism).
//!
//! "Under bias event workloads, it may happen that the organization of
//! the DR-tree (computed statically so as to minimize MBR coverage) may
//! perform poorly because small false positive regions are hit by many
//! events while larger areas see none. To deal with such situations,
//! each node computes its number of false positives, and the number of
//! false positives that each of its children would have experienced if
//! it had been in its place. If the former is higher than the latter …
//! then both nodes exchange their positions."
//!
//! The counters are maintained in
//! [`PubSubState`](super::node::PubSubState) as events are received;
//! this module takes the periodic swap decision.

use super::node::{Ctx, DrtNode};

impl<const D: usize> DrtNode<D> {
    /// Periodic decision: once enough events were sampled, promote the
    /// child that would have experienced strictly fewer false positives
    /// in this node's place.
    pub(crate) fn check_fp_reorg(&mut self, ctx: &mut Ctx<'_, D>) {
        if self.pubsub.samples < self.config.fp_reorg.min_samples {
            return;
        }
        let top = self.top();
        if top == 0 {
            self.pubsub.reset_reorg();
            return;
        }
        // Candidates: children at any level where this node is active,
        // still present *and* sampled while present; the lowest
        // hypothetical false-positive count wins (ties: lower level,
        // then smaller id). The exchange transfers this node's chain
        // from the candidate's level upward (§3.2: "both nodes exchange
        // their positions").
        let mut best: Option<(u64, crate::state::Level, drtree_sim::ProcessId)> = None;
        for k in 1..=top {
            let Some(inst) = self.state.level(k) else {
                continue;
            };
            for &c in inst.children.keys() {
                if c == self.id {
                    continue;
                }
                let Some(&h) = self.pubsub.hyp_fp.get(&c) else {
                    continue;
                };
                if best.is_none_or(|(bh, bk, bc)| (h, k, c) < (bh, bk, bc)) {
                    best = Some((h, k, c));
                }
            }
        }
        let fp_self = self.pubsub.fp_self;
        let samples = self.pubsub.samples;
        // Start a fresh observation window whether or not we swap.
        self.pubsub.reset_reorg();
        if let Some((hyp, level, candidate)) = best {
            // Swap only on a significant, not a marginal, improvement:
            // this node must actually be suffering (false positives on
            // at least half its traffic) and the candidate must beat it
            // by at least a quarter of the window — a one-event edge on
            // a small sample is noise, and a swap is not free.
            let suffering = 2 * fp_self >= samples;
            let significant = fp_self.saturating_sub(hyp) >= samples.div_ceil(4);
            if suffering && significant {
                self.exchange_roles_fp(level, candidate, ctx);
            }
        }
    }
}
