//! Event dissemination over the DR-tree (paper §2.3 and §3).
//!
//! "An event produced by a node n is disseminated along all subtrees for
//! which n is a root; further, it is propagated upwards the root of the
//! DR-tree and down every sibling subtree encountered on the path to the
//! root." Downward, "an interior node forwards the event to each of its
//! children whose MBR contains the event."
//!
//! Because children receive the event only when their MBR contains it,
//! and a leaf's MBR *is* its filter, pure leaves never see events they
//! did not subscribe to; false positives arise only at interior
//! instances (and on the upward path), which is what keeps the paper's
//! false-positive rate in the low percent range.
//!
//! Dissemination is stateless per event and deduplicated per node
//! (`receive_event`), so `PubUp`/`PubDown` traffic of *different*
//! events can interleave freely in the same inboxes — the property the
//! pipelined publish path ([`crate::DrTreeCluster::publish_pipeline`])
//! exploits, with per-event message tags ([`drtree_sim::MsgTag`])
//! keeping the accounting exact.

use drtree_sim::ProcessId;

use crate::message::{DrtMessage, PubEvent};
use crate::state::Level;

use super::node::{Ctx, DrtNode};

impl<const D: usize> DrtNode<D> {
    /// The harness asks this node to publish `event` (the paper's
    /// "event produced by a node n").
    pub(crate) fn handle_publish_request(&mut self, event: PubEvent<D>, ctx: &mut Ctx<'_, D>) {
        // The publisher trivially has the event; it is not a delivery.
        self.pubsub.mark_seen(event.id);
        // Down all own subtrees …
        self.route_up_chain(1, None, &event, ctx);
    }

    /// Event descending into the own instance at `level`.
    pub(crate) fn handle_pub_down(
        &mut self,
        event: PubEvent<D>,
        level: Level,
        ctx: &mut Ctx<'_, D>,
    ) {
        if !self.receive_event(&event) {
            return;
        }
        let level = level.min(self.top());
        self.descend_from(level, &event, ctx);
    }

    /// Event climbing from child `from` (at `child_level`) toward the
    /// root; handled at the own instance one level up.
    pub(crate) fn handle_pub_up(
        &mut self,
        from: ProcessId,
        event: PubEvent<D>,
        child_level: Level,
        ctx: &mut Ctx<'_, D>,
    ) {
        if !self.receive_event(&event) {
            return;
        }
        let at = child_level + 1;
        if self.state.level(at).is_none() {
            // Stale routing (structure changed); the event may be lost
            // here — exactly the transient false negatives the
            // stabilization experiments measure under churn.
            return;
        }
        // Sibling subtrees of the arriving child at this instance …
        self.forward_to_matching_children(at, &[from], &event, ctx);
        // … including the own chain one level below (it is a sibling of
        // `from`, reachable locally).
        if let Some(own_below) = self.own_mbr(at - 1) {
            if own_below.contains_point(&event.point) {
                self.descend_from(at - 1, &event, ctx);
            }
        }
        // Continue toward the root through the own upper instances.
        self.route_up_chain(at + 1, None, &event, ctx);
    }

    /// Walks the own instances from `start` up to the top, forwarding
    /// the event into every matching sibling subtree, then hands it to
    /// the parent (unless this node is the root).
    fn route_up_chain(
        &mut self,
        start: Level,
        exclude: Option<ProcessId>,
        event: &PubEvent<D>,
        ctx: &mut Ctx<'_, D>,
    ) {
        let top = self.top();
        let mut k = start;
        while k <= top {
            let excludes: &[ProcessId] = match exclude {
                Some(e) if k == start => &[e],
                _ => &[],
            };
            self.forward_to_matching_children(k, excludes, event, ctx);
            k += 1;
        }
        let parent = self.parent_of(top);
        if parent != self.id {
            ctx.send(
                parent,
                DrtMessage::PubUp {
                    event: *event,
                    level: top,
                },
            );
        }
    }

    /// §2.3's interior-node rule at one instance: forward to every
    /// child whose MBR contains the event (never to the own chain,
    /// which is handled locally, nor to `exclude`).
    fn forward_to_matching_children(
        &mut self,
        level: Level,
        exclude: &[ProcessId],
        event: &PubEvent<D>,
        ctx: &mut Ctx<'_, D>,
    ) {
        let Some(inst) = self.state.level(level) else {
            return;
        };
        let targets: Vec<ProcessId> = inst
            .children
            .iter()
            .filter(|(&c, info)| {
                c != self.id && !exclude.contains(&c) && info.mbr.contains_point(&event.point)
            })
            .map(|(&c, _)| c)
            .collect();
        for c in targets {
            ctx.send(
                c,
                DrtMessage::PubDown {
                    event: *event,
                    level: level - 1,
                },
            );
        }
    }

    /// Downward dissemination from the own instance at `level`: forward
    /// to matching children at every own level on the way down, gated by
    /// the own chain's MBRs.
    fn descend_from(&mut self, level: Level, event: &PubEvent<D>, ctx: &mut Ctx<'_, D>) {
        let mut k = level;
        while k >= 1 {
            self.forward_to_matching_children(k, &[], event, ctx);
            let below = self.own_mbr(k - 1).expect("contiguous instances");
            if !below.contains_point(&event.point) {
                break;
            }
            k -= 1;
        }
    }
}
