//! The DR-tree node protocol.
//!
//! [`node::DrtNode`] implements [`drtree_sim::Process`]; the remaining
//! modules contribute `impl` blocks grouped by paper figure:
//!
//! * [`join`] — the join phase (Fig. 8) including subtree re-attachment
//!   and tree merging;
//! * [`split`] — `Split_Node` + root election (Fig. 6, §3.2);
//! * [`leave`] — controlled departures (Fig. 9);
//! * [`stabilize`] — the periodic repair modules (Figs. 10–14):
//!   CHECK_MBR, CHECK_PARENT, CHECK_CHILDREN, CHECK_COVER,
//!   CHECK_STRUCTURE with compaction, and INITIATE_NEW_CONNECTION;
//! * [`dissemination`] — event routing (§2.3, §3);
//! * [`reorg`] — the false-positive-driven position exchange (§3.2).

pub mod dissemination;
pub mod join;
pub mod leave;
pub mod node;
pub mod reorg;
pub mod split;
pub mod stabilize;
