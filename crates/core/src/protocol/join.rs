//! The join phase (paper Fig. 8) and its extensions.
//!
//! A joining subscriber asks the contact oracle for a node already in
//! the structure and sends it a `JOIN`. The request "is recursively
//! redirected upward the tree until it reaches the root", then descends:
//! each node on the way down enlarges its MBR and forwards the request
//! to the child "whose MBR needs the less adjustment to encompass the
//! filter of the joining subscriber", until the last non-leaf level adds
//! the joiner as a child (`ADD_CHILD`).
//!
//! Joins are generalized to *subtree* joins (the paper's Fig. 11 rejoin
//! sends `JOIN(p, l)` with a level): a subtree of height `k` descends to
//! an instance at level `k+1` so the tree stays height-balanced. Two
//! special cases arise when whole trees merge after failures:
//!
//! * equal heights — a new root is elected over both trees by largest
//!   MBR (the Fig. 6 rule);
//! * the receiving tree is *shorter* than the joining subtree — the
//!   joiner dissolves its top instance and each child subtree rejoins
//!   on its own ([`DrtMessage::JoinTooTall`]).

use crate::message::{ChildSummary, DrtMessage, LevelTransfer};
use crate::state::{ChildInfo, Level, LevelState};

use super::node::{Ctx, DrtNode};
use drtree_sim::ProcessId;

impl<const D: usize> DrtNode<D> {
    /// Entry point for `JOIN` messages.
    pub(crate) fn handle_join(
        &mut self,
        joiner: ChildSummary<D>,
        top_level: Level,
        descend: Option<Level>,
        ctx: &mut Ctx<'_, D>,
    ) {
        if joiner.id == self.id {
            // The oracle handed the joiner itself (it *is* the main
            // root); nothing to do.
            return;
        }
        let forward = DrtMessage::Join {
            joiner: joiner.id,
            top_level,
            mbr: joiner.mbr,
            filter: joiner.filter,
            count: joiner.count,
            descend: None,
        };
        match descend {
            None => {
                if self.believes_root() {
                    self.descend_join(self.top(), joiner, top_level, ctx);
                } else {
                    // Redirect upward until the root is reached.
                    ctx.send(self.parent_of(self.top()), forward);
                }
            }
            Some(level) => {
                if self.state.level(level).is_some() {
                    self.descend_join(level, joiner, top_level, ctx);
                } else if self.believes_root() {
                    self.descend_join(self.top(), joiner, top_level, ctx);
                } else {
                    // Stale descent (structure changed under the
                    // request): restart from the root.
                    ctx.send(self.parent_of(self.top()), forward);
                }
            }
        }
    }

    /// Downward phase of Fig. 8, starting at the own instance at
    /// `level`. The joiner's subtree has height `top_level`, so it must
    /// end up as child of an instance at `top_level + 1`.
    fn descend_join(
        &mut self,
        mut level: Level,
        joiner: ChildSummary<D>,
        top_level: Level,
        ctx: &mut Ctx<'_, D>,
    ) {
        loop {
            let target = top_level + 1;
            if level < target {
                // Only reachable at the root of a tree not taller than
                // the joining subtree.
                if level == top_level {
                    self.merge_equal_height_trees(joiner, ctx);
                } else if self.believes_root() && level == self.top() {
                    // This whole tree is *shorter* than the joining
                    // subtree. Dissolving the taller tree (JoinTooTall)
                    // livelocks when the contact oracle keeps electing a
                    // larger-but-shorter tree as the merge target: the
                    // tall tree dissolves, its pieces re-merge to the
                    // same height, and the cycle repeats. Reverse the
                    // merge instead — the shorter tree joins the taller
                    // one, which always makes height progress.
                    let own = self.own_summary(level);
                    ctx.send(
                        joiner.id,
                        DrtMessage::Join {
                            joiner: self.id,
                            top_level: level,
                            mbr: own.mbr,
                            filter: own.filter,
                            count: own.count,
                            descend: None,
                        },
                    );
                    self.join_sent_at = Some(self.now);
                } else {
                    // Stale descent inside a reorganizing tree: fall
                    // back to the dissolve-and-rejoin cascade.
                    ctx.send(joiner.id, DrtMessage::JoinTooTall { level: top_level });
                }
                return;
            }
            if level == target {
                self.add_child(level, joiner, ctx);
                return;
            }
            // level > target: enlarge and route down the best child.
            let Some(inst) = self.state.level_mut(level) else {
                return;
            };
            inst.mbr.enlarge_to_cover(&joiner.mbr);
            let own = self.id;
            let inst = self.state.level(level).expect("instance exists");
            let best = choose_best_child(inst, &joiner)
                .expect("internal instances have at least the self child");
            if best == own {
                level -= 1;
                continue;
            }
            ctx.send(
                best,
                DrtMessage::Join {
                    joiner: joiner.id,
                    top_level,
                    mbr: joiner.mbr,
                    filter: joiner.filter,
                    count: joiner.count,
                    descend: Some(level - 1),
                },
            );
            return;
        }
    }

    /// Two trees of equal height merge: a fresh root is elected over
    /// both by largest MBR (the Fig. 6 root-election rule).
    fn merge_equal_height_trees(&mut self, joiner: ChildSummary<D>, ctx: &mut Ctx<'_, D>) {
        let k = self.top();
        let own = self.own_summary(k);
        if better_cover(&own, &joiner) {
            // This node stays root: grow an instance above both trees.
            let mut inst = LevelState::leaf(self.id, self.state.filter, self.now);
            inst.children
                .insert(self.id, ChildInfo::from_summary(&own, self.now));
            inst.children
                .insert(joiner.id, ChildInfo::from_summary(&joiner, self.now));
            inst.recompute_mbr();
            inst.underloaded = inst.degree() < self.m();
            inst.parent = self.id;
            self.state.levels.insert(k + 1, inst);
            ctx.send(joiner.id, DrtMessage::Adopted { level: k });
        } else {
            // The joiner provides better coverage: it becomes the root
            // over both trees.
            ctx.send(
                joiner.id,
                DrtMessage::AssumeRole {
                    transfers: vec![LevelTransfer {
                        level: k + 1,
                        children: vec![own],
                    }],
                    parent: joiner.id,
                    fp_promotion: false,
                },
            );
            let now = self.now;
            if let Some(top) = self.state.level_mut(k) {
                top.parent = joiner.id;
                top.last_parent_ack = now;
            }
            self.join_sent_at = None;
        }
    }

    /// Fig. 8 `ADD_CHILD`: adopt `child` (topmost instance at
    /// `parent_level − 1`) into the own instance at `parent_level`.
    pub(crate) fn add_child(
        &mut self,
        parent_level: Level,
        child: ChildSummary<D>,
        ctx: &mut Ctx<'_, D>,
    ) {
        if self.state.level(parent_level).is_none() || child.id == self.id {
            return;
        }
        // `Adjust_Children` (Fig. 7): C ← C ∪ {q}, mbr ← mbr ∪ mbr_q,
        // parent_q ← p.
        self.cache_child(parent_level, &child);
        let m = self.m();
        {
            let inst = self.state.level_mut(parent_level).expect("checked");
            inst.mbr.enlarge_to_cover(&child.mbr);
            inst.underloaded = inst.degree() < m;
        }
        ctx.send(
            child.id,
            DrtMessage::Adopted {
                level: parent_level - 1,
            },
        );
        let degree = self.state.level(parent_level).expect("checked").degree();
        if degree > self.max_degree() {
            self.split_level(parent_level, ctx);
        } else if self.config.cover_swap {
            // Fig. 8: `if Is_Better_MBR_Cover(p, q, l) then Adjust_Parent`
            // — the new child covers more than this node's own instance
            // one level below, so the roles swap.
            let own_below = self
                .own_mbr(parent_level - 1)
                .expect("contiguous instances");
            if child.mbr.area() > own_below.area() {
                self.exchange_roles(parent_level, child.id, ctx);
            }
        }
    }

    /// `ADD_CHILD` arriving by message (from a child that split).
    pub(crate) fn handle_add_child(
        &mut self,
        child_top: Level,
        summary: ChildSummary<D>,
        ctx: &mut Ctx<'_, D>,
    ) {
        self.add_child(child_top + 1, summary, ctx);
    }

    /// Confirmation from a parent (`parent_q ← p`): effective only for
    /// the topmost instance.
    pub(crate) fn handle_adopted(&mut self, from: ProcessId, level: Level) {
        if level != self.top() {
            return;
        }
        let now = self.now;
        if let Some(inst) = self.state.level_mut(level) {
            inst.parent = from;
            inst.last_parent_ack = now;
        }
        self.join_sent_at = None;
    }

    /// The receiving tree was shorter than this joining subtree: drop
    /// the top instance; each child subtree rejoins on its own.
    pub(crate) fn handle_join_too_tall(&mut self, level: Level, ctx: &mut Ctx<'_, D>) {
        if level != self.top() || level == 0 {
            return;
        }
        let Some(inst) = self.state.levels.remove(&level) else {
            return;
        };
        for (&c, _) in inst.children.iter().filter(|(&c, _)| c != self.id) {
            ctx.send(c, DrtMessage::RejoinSubtree { level: level - 1 });
        }
        self.become_root();
    }

    /// Detach the subtree rooted at the own instance at `level` and
    /// rejoin it through the oracle on the next tick.
    pub(crate) fn handle_rejoin_subtree(&mut self, level: Level) {
        if level != self.top() {
            return;
        }
        self.become_root();
    }

    /// Join (or merge) into the main tree through the contact oracle —
    /// invoked from CHECK_PARENT while this node believes it is a root.
    pub(crate) fn try_join_via_oracle(&mut self, ctx: &mut Ctx<'_, D>) {
        let Some(contact) = self.contact_hint else {
            return;
        };
        if contact == self.id {
            return; // we are the main root
        }
        if let Some(sent) = self.join_sent_at {
            if self.now.saturating_sub(sent) < self.config.join_retry {
                return; // a join attempt is still in flight
            }
        }
        let top = self.top();
        let Some(own) = self.state.summary_at(self.id, top) else {
            return;
        };
        ctx.send(
            contact,
            DrtMessage::Join {
                joiner: self.id,
                top_level: top,
                mbr: own.mbr,
                filter: own.filter,
                count: own.count,
                descend: None,
            },
        );
        self.join_sent_at = Some(self.now);
    }
}

/// `Choose_Best_Child` (§3.2): the child "whose MBR needs the less
/// adjustment to encompass the filter of the joining subscriber"; ties
/// broken by smaller area, then smaller id (deterministic).
fn choose_best_child<const D: usize>(
    inst: &LevelState<D>,
    joiner: &ChildSummary<D>,
) -> Option<ProcessId> {
    let mut best: Option<(f64, f64, ProcessId)> = None;
    for (&c, info) in &inst.children {
        let grow = info.mbr.enlargement(&joiner.mbr);
        let area = info.mbr.area();
        let better = match best {
            None => true,
            Some((bg, ba, _)) => grow < bg || (grow == bg && area < ba),
        };
        if better {
            best = Some((grow, area, c));
        }
    }
    best.map(|(_, _, c)| c)
}

/// Root election between two candidates (Fig. 6): the larger MBR wins;
/// ties keep the first operand (deterministically, the current holder).
fn better_cover<const D: usize>(a: &ChildSummary<D>, b: &ChildSummary<D>) -> bool {
    a.mbr.area() >= b.mbr.area()
}

#[cfg(test)]
mod tests {
    use super::*;
    use drtree_spatial::Rect;

    fn summary(raw: u64, lo: f64, hi: f64) -> ChildSummary<1> {
        let r = Rect::new([lo], [hi]);
        ChildSummary {
            id: ProcessId::from_raw(raw),
            mbr: r,
            filter: r,
            count: 0,
            underloaded: false,
        }
    }

    #[test]
    fn best_child_minimizes_enlargement() {
        let mut inst: LevelState<1> =
            LevelState::leaf(ProcessId::from_raw(0), Rect::new([0.0], [1.0]), 0);
        for (raw, lo, hi) in [(1u64, 0.0, 10.0), (2, 20.0, 30.0)] {
            let s = summary(raw, lo, hi);
            inst.children.insert(s.id, ChildInfo::from_summary(&s, 0));
        }
        let joiner = summary(9, 21.0, 22.0);
        assert_eq!(
            choose_best_child(&inst, &joiner),
            Some(ProcessId::from_raw(2))
        );
        let joiner2 = summary(9, 1.0, 2.0);
        assert_eq!(
            choose_best_child(&inst, &joiner2),
            Some(ProcessId::from_raw(1))
        );
    }

    #[test]
    fn better_cover_prefers_larger_then_holder() {
        let big = summary(1, 0.0, 100.0);
        let small = summary(2, 0.0, 1.0);
        assert!(better_cover(&big, &small));
        assert!(!better_cover(&small, &big));
        // tie: first operand (current holder) wins
        assert!(better_cover(&small, &summary(3, 5.0, 6.0)));
    }
}
