//! Adversarial fault schedules and the convergence/SLO harness.
//!
//! The paper's headline claim is self-stabilization: from an *arbitrary*
//! configuration the DR-tree reaches a legal state in a finite number of
//! rounds (Lemma 3.6), after which dissemination is exact again — no
//! false negatives (§2.3). The rest of the crate exercises clean joins,
//! one-shot crashes and one-shot corruptions; this module scripts
//! *sustained* adversity and measures the recovery the lemmas promise:
//!
//! * [`FaultSchedule`] — a seeded, printable script of timed
//!   [`FaultEvent`]s applied between protocol rounds: partitions that
//!   later heal, correlated regional crashes (every process whose filter
//!   falls in a rectangle — Lemma 3.5's simultaneous failures, but
//!   spatially clustered), lossy burst windows, duplication/reordering
//!   windows, and corruption volleys reusing
//!   [`CorruptionKind`] (Lemma 3.6).
//! * [`run_convergence`] — drives a schedule against a
//!   [`DrTreeCluster`] while pipelined publish traffic flows, then
//!   measures rounds-to-legal with [`DrTreeCluster::check_legal`] as
//!   the fixpoint oracle, asserts the recovery stayed within a round
//!   budget, and checks **exact post-recovery delivery**: the pipelined
//!   engine must equal a sequential reference and miss no matching
//!   subscriber. Per-event injection-to-quiescence distributions
//!   (p50/p99/p999) are recorded throughout — the SLO half of the
//!   harness.
//!
//! Which lemma each canonical schedule targets:
//!
//! | schedule | paper claim |
//! |---|---|
//! | `partition-heal` | Lemma 3.6 (arbitrary start after merge) + §2.3 exactness after repair |
//! | `regional-crash` | Lemma 3.5 (simultaneous crashes), spatially correlated |
//! | `lossy-burst` | §2.1 fair-lossy links: stabilization outlives loss windows |
//! | `dup-reorder` | §2.1 asynchrony: no FIFO/once-only assumptions in the protocol |
//! | `corruption-volley` | Lemma 3.6 (transient memory corruption), repeated |
//! | `broker-churn` | non-persistent peers (Bilgen & Wagner, PAPERS.md): a whole Hilbert-range broker crashes, then warm- or cold-rejoins |
//!
//! The broker-level faults ([`FaultEvent::BrokerCrash`] /
//! [`FaultEvent::BrokerRejoin`]) script the federated fabric's
//! crash/rejoin story (`drtree-pubsub::federation`). On a plain
//! single-broker cluster this module interprets them spatially, so the
//! same schedules exercise both layers: a broker crash takes down the
//! processes whose filter-center Hilbert keys fall in the broker's
//! contiguous curve chunk (capped like a regional crash), and a rejoin
//! re-adds subscribers with exactly the crashed filters through the
//! ordinary join protocol — warm and cold only differ one level up,
//! where a warm rejoin restores a snapshot and catches up by delta.

use std::collections::BTreeMap;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use drtree_sim::{FaultProfile, ProcessId};
use drtree_spatial::hilbert::GridMapper;
use drtree_spatial::{Point, Rect};

use crate::cluster::DrTreeCluster;
use crate::corruption::CorruptionKind;

/// One scripted fault, applied between protocol rounds.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultEvent<const D: usize> {
    /// Cut the network in two: processes whose filter center lies in
    /// `region` against the rest. Successive partitions compose.
    Partition {
        /// Spatial half of the cut: filter centers inside vs outside.
        region: Rect<D>,
    },
    /// Remove every partition cut installed so far.
    Heal,
    /// Correlated regional crash: up to `max` processes whose filter
    /// centers fall in `region` depart uncontrolled, together. At
    /// least two survivors always remain.
    RegionalCrash {
        /// Processes whose filter center lies here crash.
        region: Rect<D>,
        /// Upper bound on simultaneous victims.
        max: usize,
    },
    /// Open a message fault window (loss / duplication / reordering).
    Faults {
        /// The knobs active until [`FaultEvent::ClearFaults`].
        profile: FaultProfile,
    },
    /// Close the message fault window (restore a perfect network).
    ClearFaults,
    /// Corrupt the memory of `count` randomly drawn live processes.
    Corruption {
        /// The corruption applied to each victim.
        kind: CorruptionKind,
        /// Number of victims (drawn with the cluster's seeded RNG).
        count: usize,
    },
    /// Crash federated broker `broker` of a fabric of `brokers`: the
    /// whole instance — one contiguous Hilbert range of the
    /// subscription space — departs uncontrolled. On a plain cluster
    /// the chunk of processes whose filter-center curve keys fall in
    /// that range crashes together (capped to keep two survivors and
    /// at most `n/8` victims, like [`FaultEvent::RegionalCrash`]).
    BrokerCrash {
        /// Fabric index of the victim broker, `0..brokers`.
        broker: usize,
        /// Fabric size the index is relative to, so any consumer maps
        /// the broker to the same curve chunk.
        brokers: usize,
    },
    /// Rejoin a previously crashed broker. `warm` restarts from a
    /// checkpoint buffer plus delta catch-up; `!warm` rebuilds cold by
    /// peer re-replication. On a plain cluster both re-add subscribers
    /// with exactly the filters the matching [`FaultEvent::BrokerCrash`]
    /// took down, through the ordinary join protocol.
    BrokerRejoin {
        /// Fabric index of the rejoining broker, `0..brokers`.
        broker: usize,
        /// Fabric size the index is relative to.
        brokers: usize,
        /// Warm restart (snapshot + delta catch-up) vs cold rebuild.
        warm: bool,
    },
}

impl<const D: usize> std::fmt::Display for FaultEvent<D> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FaultEvent::Partition { region } => write!(f, "partition region={region:?}"),
            FaultEvent::Heal => write!(f, "heal"),
            FaultEvent::RegionalCrash { region, max } => {
                write!(f, "regional-crash max={max} region={region:?}")
            }
            FaultEvent::Faults { profile } => write!(
                f,
                "faults drop={} dup={} reorder={}x{}",
                profile.drop_probability,
                profile.duplicate_probability,
                profile.reorder_probability,
                profile.reorder_extra
            ),
            FaultEvent::ClearFaults => write!(f, "clear-faults"),
            FaultEvent::Corruption { kind, count } => {
                write!(f, "corruption kind={kind:?} count={count}")
            }
            FaultEvent::BrokerCrash { broker, brokers } => {
                write!(f, "broker-crash {broker}/{brokers}")
            }
            FaultEvent::BrokerRejoin {
                broker,
                brokers,
                warm,
            } => {
                write!(
                    f,
                    "broker-rejoin {broker}/{brokers} {}",
                    if *warm { "warm" } else { "cold" }
                )
            }
        }
    }
}

/// A [`FaultEvent`] pinned to a round offset within its schedule.
#[derive(Debug, Clone, PartialEq)]
pub struct TimedFault<const D: usize> {
    /// Round offset (from the start of the schedule) of the injection.
    pub at: u64,
    /// The fault injected.
    pub event: FaultEvent<D>,
}

/// A deterministic script of timed faults plus the recovery contract:
/// the faulty phase lasts `duration` rounds (with background publish
/// traffic flowing), after which the harness force-heals and the
/// overlay must reach a legal configuration within `budget` rounds.
///
/// Printable via `Display` (one line per event) so every benchmark run
/// records exactly which adversity it survived.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultSchedule<const D: usize> {
    /// Schedule name (used in reports and bench JSON).
    pub name: String,
    /// The scripted faults, sorted by `at`.
    pub events: Vec<TimedFault<D>>,
    /// Rounds the adversarial phase lasts.
    pub duration: u64,
    /// Round budget for post-fault recovery to `check_legal == Ok`.
    pub budget: u64,
}

impl<const D: usize> std::fmt::Display for FaultSchedule<D> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} (duration={}, budget={})",
            self.name, self.duration, self.budget
        )?;
        for e in &self.events {
            write!(f, "; @{} {}", e.at, e.event)?;
        }
        Ok(())
    }
}

/// Splits `world` in half along axis 0 and returns the lower half.
fn lower_half<const D: usize>(world: &Rect<D>) -> Rect<D> {
    let mut hi = *world.upper();
    hi[0] = (world.lo(0) + world.hi(0)) / 2.0;
    Rect::new(*world.lower(), hi)
}

/// The lower-corner quadrant of `world` (halved along every axis).
fn corner_quadrant<const D: usize>(world: &Rect<D>) -> Rect<D> {
    let mut hi = *world.upper();
    for (d, h) in hi.iter_mut().enumerate() {
        *h = (world.lo(d) + world.hi(d)) / 2.0;
    }
    Rect::new(*world.lower(), hi)
}

impl<const D: usize> FaultSchedule<D> {
    /// Default recovery budget of the canonical schedules, before any
    /// per-scale adjustment by the caller.
    pub const DEFAULT_BUDGET: u64 = 3_000;

    /// Partition the overlay spatially in two for 24 rounds, then heal
    /// (the merge-of-arbitrary-trees face of Lemma 3.6).
    pub fn partition_heal(world: &Rect<D>) -> Self {
        Self {
            name: "partition-heal".into(),
            events: vec![
                TimedFault {
                    at: 0,
                    event: FaultEvent::Partition {
                        region: lower_half(world),
                    },
                },
                TimedFault {
                    at: 24,
                    event: FaultEvent::Heal,
                },
            ],
            duration: 36,
            budget: Self::DEFAULT_BUDGET,
        }
    }

    /// Simultaneously crash up to `max` processes whose filters sit in
    /// one corner of the world (Lemma 3.5, spatially correlated).
    pub fn regional_crash(world: &Rect<D>, max: usize) -> Self {
        Self {
            name: "regional-crash".into(),
            events: vec![TimedFault {
                at: 4,
                event: FaultEvent::RegionalCrash {
                    region: corner_quadrant(world),
                    max,
                },
            }],
            duration: 24,
            budget: Self::DEFAULT_BUDGET,
        }
    }

    /// A 20-round window in which 30% of all messages are lost (§2.1
    /// fair-lossy links).
    pub fn lossy_burst() -> Self {
        Self {
            name: "lossy-burst".into(),
            events: vec![
                TimedFault {
                    at: 0,
                    event: FaultEvent::Faults {
                        profile: FaultProfile::lossy(0.3),
                    },
                },
                TimedFault {
                    at: 20,
                    event: FaultEvent::ClearFaults,
                },
            ],
            duration: 30,
            budget: Self::DEFAULT_BUDGET,
        }
    }

    /// A 20-round window of message duplication and reordering — the
    /// protocol may assume neither once-only nor FIFO delivery.
    pub fn dup_reorder() -> Self {
        Self {
            name: "dup-reorder".into(),
            events: vec![
                TimedFault {
                    at: 0,
                    event: FaultEvent::Faults {
                        profile: FaultProfile {
                            duplicate_probability: 0.25,
                            reorder_probability: 0.25,
                            reorder_extra: 3,
                            ..FaultProfile::default()
                        },
                    },
                },
                TimedFault {
                    at: 20,
                    event: FaultEvent::ClearFaults,
                },
            ],
            duration: 30,
            budget: Self::DEFAULT_BUDGET,
        }
    }

    /// Three volleys of memory corruption, cycling through
    /// [`CorruptionKind::ALL`] (Lemma 3.6's transient faults, repeated
    /// while earlier repairs are still in progress).
    pub fn corruption_volley() -> Self {
        let kinds = CorruptionKind::ALL;
        Self {
            name: "corruption-volley".into(),
            events: (0..3)
                .map(|i| TimedFault {
                    at: 2 + 6 * i,
                    event: FaultEvent::Corruption {
                        kind: kinds[(i as usize * 3) % kinds.len()],
                        count: 3,
                    },
                })
                .collect(),
            duration: 24,
            budget: Self::DEFAULT_BUDGET,
        }
    }

    /// Broker churn on a four-broker fabric: crash one broker, let
    /// traffic flow over the takeover window, warm-rejoin it, then
    /// crash a *different* broker and cold-rejoin it — the
    /// non-persistent-peers scenario (Bilgen & Wagner), both rejoin
    /// flavors in one script.
    pub fn broker_churn() -> Self {
        const BROKERS: usize = 4;
        Self {
            name: "broker-churn".into(),
            events: vec![
                TimedFault {
                    at: 2,
                    event: FaultEvent::BrokerCrash {
                        broker: 1,
                        brokers: BROKERS,
                    },
                },
                TimedFault {
                    at: 14,
                    event: FaultEvent::BrokerRejoin {
                        broker: 1,
                        brokers: BROKERS,
                        warm: true,
                    },
                },
                TimedFault {
                    at: 24,
                    event: FaultEvent::BrokerCrash {
                        broker: 3,
                        brokers: BROKERS,
                    },
                },
                TimedFault {
                    at: 36,
                    event: FaultEvent::BrokerRejoin {
                        broker: 3,
                        brokers: BROKERS,
                        warm: false,
                    },
                },
            ],
            duration: 46,
            budget: Self::DEFAULT_BUDGET,
        }
    }

    /// The six canonical schedules over a world rectangle, sized for a
    /// cluster of `n` subscribers (the regional crash takes up to
    /// `n/8` victims; broker crashes cap themselves the same way).
    pub fn canonical(world: &Rect<D>, n: usize) -> Vec<Self> {
        vec![
            Self::partition_heal(world),
            Self::regional_crash(world, (n / 8).max(1)),
            Self::lossy_burst(),
            Self::dup_reorder(),
            Self::corruption_volley(),
            Self::broker_churn(),
        ]
    }

    /// A seeded random schedule: 1–3 fault motifs drawn from the same
    /// families as the canonical schedules, with randomized windows and
    /// intensities. Deterministic in `seed`; used by the property tests
    /// to explore schedules no one thought to script.
    pub fn random(seed: u64, world: &Rect<D>) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut events = Vec::new();
        let motifs = rng.gen_range(1..=3);
        let mut at = 0u64;
        for _ in 0..motifs {
            at += rng.gen_range(0..4);
            match rng.gen_range(0..6) {
                0 => {
                    let region = if rng.gen_bool(0.5) {
                        lower_half(world)
                    } else {
                        corner_quadrant(world)
                    };
                    events.push(TimedFault {
                        at,
                        event: FaultEvent::Partition { region },
                    });
                    at += rng.gen_range(4..16);
                    events.push(TimedFault {
                        at,
                        event: FaultEvent::Heal,
                    });
                }
                1 => {
                    events.push(TimedFault {
                        at,
                        event: FaultEvent::RegionalCrash {
                            region: corner_quadrant(world),
                            max: rng.gen_range(1..=8),
                        },
                    });
                    at += rng.gen_range(2..8);
                }
                2 => {
                    events.push(TimedFault {
                        at,
                        event: FaultEvent::Faults {
                            profile: FaultProfile::lossy(rng.gen_range(0.05..0.4)),
                        },
                    });
                    at += rng.gen_range(4..16);
                    events.push(TimedFault {
                        at,
                        event: FaultEvent::ClearFaults,
                    });
                }
                3 => {
                    events.push(TimedFault {
                        at,
                        event: FaultEvent::Faults {
                            profile: FaultProfile {
                                duplicate_probability: rng.gen_range(0.05..0.35),
                                reorder_probability: rng.gen_range(0.05..0.35),
                                reorder_extra: rng.gen_range(1..=4),
                                ..FaultProfile::default()
                            },
                        },
                    });
                    at += rng.gen_range(4..16);
                    events.push(TimedFault {
                        at,
                        event: FaultEvent::ClearFaults,
                    });
                }
                4 => {
                    let kinds = CorruptionKind::ALL;
                    events.push(TimedFault {
                        at,
                        event: FaultEvent::Corruption {
                            kind: kinds[rng.gen_range(0..kinds.len())],
                            count: rng.gen_range(1..=3),
                        },
                    });
                    at += rng.gen_range(2..8);
                }
                _ => {
                    let brokers = rng.gen_range(2..=4);
                    let broker = rng.gen_range(0..brokers);
                    events.push(TimedFault {
                        at,
                        event: FaultEvent::BrokerCrash { broker, brokers },
                    });
                    at += rng.gen_range(4..16);
                    events.push(TimedFault {
                        at,
                        event: FaultEvent::BrokerRejoin {
                            broker,
                            brokers,
                            warm: rng.gen_bool(0.5),
                        },
                    });
                    at += rng.gen_range(2..8);
                }
            }
        }
        let duration = at + 8;
        Self {
            name: format!("random-{seed}"),
            events,
            duration,
            budget: Self::DEFAULT_BUDGET,
        }
    }
}

/// Harness knobs for [`run_convergence`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConvergenceConfig {
    /// Max concurrently in-flight background publish events.
    pub window: usize,
    /// Background events injected per faulty round (window permitting).
    pub events_per_round: usize,
    /// Extra rounds after the schedule to drain in-flight traffic
    /// before force-finalizing stragglers.
    pub drain_margin: u64,
    /// Post-recovery probe events for the exactness check.
    pub probe_events: usize,
    /// Rounds between legality checks during recovery (`check_legal`
    /// clones the global state; a stride keeps large recoveries cheap
    /// at the cost of quantizing `recovery_rounds`).
    pub check_stride: u64,
}

impl Default for ConvergenceConfig {
    fn default() -> Self {
        Self {
            window: 8,
            events_per_round: 1,
            drain_margin: 64,
            probe_events: 32,
            check_stride: 4,
        }
    }
}

/// Nearest-rank percentiles of per-event injection-to-quiescence spans
/// (rounds on the synchronous engine, time units on the asynchronous
/// one).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LatencyDistribution {
    /// Number of measured events.
    pub samples: usize,
    /// Median.
    pub p50: u64,
    /// 99th percentile.
    pub p99: u64,
    /// 99.9th percentile.
    pub p999: u64,
    /// Worst observed span.
    pub max: u64,
}

impl LatencyDistribution {
    /// Computes nearest-rank percentiles; sorts `samples` in place.
    pub fn from_samples(samples: &mut [u64]) -> Self {
        if samples.is_empty() {
            return Self::default();
        }
        samples.sort_unstable();
        let rank = |q: f64| {
            let idx = ((q * samples.len() as f64).ceil() as usize).max(1) - 1;
            samples[idx.min(samples.len() - 1)]
        };
        Self {
            samples: samples.len(),
            p50: rank(0.50),
            p99: rank(0.99),
            p999: rank(0.999),
            max: samples[samples.len() - 1],
        }
    }
}

/// Outcome of driving one [`FaultSchedule`] against a cluster.
#[derive(Debug, Clone)]
pub struct ConvergenceReport {
    /// `Display` form of the schedule that ran.
    pub schedule: String,
    /// Subscribers alive after the schedule (crashes excluded).
    pub survivors: usize,
    /// Processes crashed by the schedule.
    pub crashed: usize,
    /// Rounds from the forced heal to `check_legal == Ok`, quantized to
    /// the check stride; `None` if the budget was exhausted first.
    pub recovery_rounds: Option<u64>,
    /// The round budget the recovery was held to.
    pub budget: u64,
    /// Injection-to-quiescence spans of background events published
    /// *during* the faulty phase.
    pub fault_latency: LatencyDistribution,
    /// Injection-to-quiescence spans of the pipelined post-recovery
    /// probe events.
    pub post_latency: LatencyDistribution,
    /// Post-recovery pipelined delivery equals the sequential
    /// reference, event by event.
    pub post_pipeline_matches_sequential: bool,
    /// Matching subscribers missed post-recovery across both engines'
    /// probes (must be 0: §2.3's no-false-negatives).
    pub post_false_negatives: u64,
    /// Extra message copies the schedule's duplication windows injected.
    pub duplicated: u64,
    /// Messages the schedule's reorder windows delayed.
    pub reordered: u64,
    /// Messages lost to partition cuts.
    pub partitioned_drops: u64,
    /// Total messages lost during the run (all causes).
    pub dropped: u64,
}

impl ConvergenceReport {
    /// The schedule's full contract held: recovery within budget and
    /// exact post-recovery delivery.
    pub fn passed(&self) -> bool {
        self.recovery_rounds.is_some()
            && self.post_pipeline_matches_sequential
            && self.post_false_negatives == 0
    }
}

/// Applies one fault event to the cluster; returns how many processes
/// it crashed. `ledger` remembers, per broker index, which filters a
/// [`FaultEvent::BrokerCrash`] took down so the matching
/// [`FaultEvent::BrokerRejoin`] can re-add them.
fn apply_event<const D: usize>(
    cluster: &mut DrTreeCluster<D>,
    event: &FaultEvent<D>,
    ledger: &mut BTreeMap<usize, Vec<Rect<D>>>,
) -> usize {
    match event {
        FaultEvent::Partition { region } => {
            let mut inside = Vec::new();
            let mut outside = Vec::new();
            for id in cluster.ids() {
                let center = cluster.node(id).expect("live id").filter().center();
                if region.contains_point(&center) {
                    inside.push(id);
                } else {
                    outside.push(id);
                }
            }
            if !inside.is_empty() && !outside.is_empty() {
                cluster.partition(&[inside, outside]);
            }
            0
        }
        FaultEvent::Heal => {
            cluster.heal();
            0
        }
        FaultEvent::RegionalCrash { region, max } => {
            let victims: Vec<ProcessId> = cluster
                .ids()
                .into_iter()
                .filter(|&id| {
                    let center = cluster.node(id).expect("live id").filter().center();
                    region.contains_point(&center)
                })
                .collect();
            // Keep at least two survivors so the overlay still exists.
            let cap = (*max).min(cluster.len().saturating_sub(2));
            let mut crashed = 0;
            for &v in victims.iter().take(cap) {
                cluster.crash(v);
                crashed += 1;
            }
            crashed
        }
        FaultEvent::Faults { profile } => {
            cluster.set_faults(*profile);
            0
        }
        FaultEvent::ClearFaults => {
            cluster.set_faults(FaultProfile::default());
            0
        }
        FaultEvent::Corruption { kind, count } => {
            for _ in 0..*count {
                let ids = cluster.ids();
                if ids.is_empty() {
                    break;
                }
                let victim = ids[cluster.rng().gen_range(0..ids.len())];
                cluster.corrupt(victim, *kind);
            }
            0
        }
        FaultEvent::BrokerCrash { broker, brokers } => {
            let brokers = (*brokers).max(1);
            let broker = *broker % brokers;
            let ids = cluster.ids();
            let filters: Vec<Rect<D>> = ids
                .iter()
                .map(|&id| cluster.node(id).expect("live id").filter())
                .collect();
            let Some(world) = GridMapper::world_of(filters.iter()) else {
                return 0;
            };
            let mapper = GridMapper::new(&world);
            let mut keyed: Vec<(u128, ProcessId, Rect<D>)> = ids
                .iter()
                .zip(&filters)
                .map(|(&id, f)| (mapper.key(f), id, *f))
                .collect();
            keyed.sort_unstable_by_key(|&(k, id, _)| (k, id.raw()));
            // The broker's contiguous curve chunk, capped like a
            // regional crash: two survivors always remain, and at most
            // n/8 victims fall at once (Lemma 3.5 stays in scope).
            let n = keyed.len();
            let chunk = &keyed[broker * n / brokers..(broker + 1) * n / brokers];
            let cap = chunk
                .len()
                .min(cluster.len().saturating_sub(2))
                .min((n / 8).max(1));
            let entry = ledger.entry(broker).or_default();
            let mut crashed = 0;
            for &(_, id, rect) in chunk.iter().take(cap) {
                cluster.crash(id);
                entry.push(rect);
                crashed += 1;
            }
            crashed
        }
        FaultEvent::BrokerRejoin { broker, .. } => {
            // Warm and cold only differ one level up (snapshot restore
            // vs peer re-replication); on a plain cluster both re-add
            // the crashed filters through the ordinary join protocol.
            for rect in ledger.remove(broker).unwrap_or_default() {
                cluster.add_subscriber(rect);
            }
            0
        }
    }
}

/// A timestamp-free projection of the overlay structure: per process
/// and level, the parent pointer, the instance MBR, and every cached
/// child's id, MBR and count (heartbeat clocks excluded, so perpetual
/// gossip does not perturb it). Two equal digests a check stride apart
/// mean no reorganization is still playing out in the message queues.
fn structure_digest<const D: usize>(cluster: &DrTreeCluster<D>) -> Vec<u64> {
    fn eat_rect<const D: usize>(out: &mut Vec<u64>, r: &Rect<D>) {
        for d in 0..D {
            out.push(r.lo(d).to_bits());
            out.push(r.hi(d).to_bits());
        }
    }
    let mut out = Vec::new();
    for (id, st) in cluster.snapshot() {
        out.push(id.raw());
        for (l, inst) in &st.levels {
            out.push(u64::from(*l));
            out.push(inst.parent.raw());
            eat_rect(&mut out, &inst.mbr);
            for (c, info) in &inst.children {
                out.push(c.raw());
                eat_rect(&mut out, &info.mbr);
                out.push(info.count as u64);
            }
        }
    }
    out
}

/// Drives `schedule` against `cluster` with pipelined background
/// publish traffic, then measures recovery and post-recovery delivery
/// exactness. See the [module docs](self) for the full contract.
///
/// The faulty phase runs for `schedule.duration` rounds: each round,
/// due fault events fire, background events are injected (rotating
/// publishers, points drawn from live filters), one protocol round
/// executes, and quiescent events are finalized with their measured
/// injection-to-quiescence span. Afterwards the harness applies any
/// remaining scripted events, force-heals, clears fault windows, drains
/// straggling traffic, and runs recovery rounds until
/// [`DrTreeCluster::check_legal`] holds (checked every
/// [`ConvergenceConfig::check_stride`] rounds) or the budget runs out.
/// Post-recovery, `probe_events` are published twice on clones — once
/// sequentially, once pipelined — and compared.
pub fn run_convergence<const D: usize>(
    cluster: &mut DrTreeCluster<D>,
    schedule: &FaultSchedule<D>,
    cfg: &ConvergenceConfig,
) -> ConvergenceReport {
    let base_duplicated = cluster.metrics().duplicated();
    let base_reordered = cluster.metrics().reordered();
    let base_partitioned = cluster.metrics().partitioned_drops();
    let base_dropped = cluster.metrics().dropped();

    let mut events = schedule.events.clone();
    events.sort_by_key(|e| e.at);
    let mut next_fault = 0usize;
    let mut crashed = 0usize;
    let mut rejoin_ledger: BTreeMap<usize, Vec<Rect<D>>> = BTreeMap::new();

    // In-flight background events: (event id, injection offset).
    let mut live: Vec<(u64, u64)> = Vec::new();
    let mut fault_samples: Vec<u64> = Vec::new();

    for r in 0..schedule.duration {
        while next_fault < events.len() && events[next_fault].at <= r {
            crashed += apply_event(cluster, &events[next_fault].event, &mut rejoin_ledger);
            next_fault += 1;
        }
        for _ in 0..cfg.events_per_round {
            if live.len() >= cfg.window || cluster.is_empty() {
                break;
            }
            let ids = cluster.ids();
            let publisher = ids[cluster.rng().gen_range(0..ids.len())];
            let target = ids[cluster.rng().gen_range(0..ids.len())];
            let point = cluster.node(target).expect("live id").filter().center();
            let event_id = cluster.inject(publisher, point);
            live.push((event_id, r));
        }
        cluster.run_round();
        live.retain(|&(event_id, injected)| {
            if cluster.metrics().tag_inflight(event_id) == 0 {
                fault_samples.push(r + 1 - injected);
                cluster.net.clear_tag(event_id);
                false
            } else {
                true
            }
        });
    }

    // The adversary's time is up: apply remaining scripted events
    // (usually heals), then force a perfect network for recovery.
    while next_fault < events.len() {
        crashed += apply_event(cluster, &events[next_fault].event, &mut rejoin_ledger);
        next_fault += 1;
    }
    cluster.heal();
    cluster.set_faults(FaultProfile::default());

    // Drain straggling background traffic, then force-finalize: a
    // force-finalized event keeps its (capped) measured span — the tail
    // the p999 gate exists to expose.
    let mut extra = 0u64;
    while !live.is_empty() && extra < cfg.drain_margin {
        cluster.run_round();
        extra += 1;
        let now = schedule.duration + extra;
        live.retain(|&(event_id, injected)| {
            if cluster.metrics().tag_inflight(event_id) == 0 {
                fault_samples.push(now - injected);
                cluster.net.clear_tag(event_id);
                false
            } else {
                true
            }
        });
    }
    let now = schedule.duration + extra;
    for (event_id, injected) in live.drain(..) {
        fault_samples.push(now - injected);
        cluster.net.clear_tag(event_id);
    }
    cluster.net.retire_tags_below(cluster.next_event_id);

    // Recovery: rounds to the legality fixpoint, within the budget.
    // `check_legal` sees only a state snapshot, and the message queues
    // are never empty (heartbeats gossip forever) — so a configuration
    // can look legal while an in-flight reorganization is about to
    // rewire it, eating any event published meanwhile. Recovery is
    // therefore declared only when legality holds at two consecutive
    // checks with an unchanged structure digest; the recorded rounds
    // are those to the first of the two.
    let mut recovery_rounds = None;
    let mut executed = 0u64;
    let mut candidate: Option<(u64, Vec<u64>)> = None;
    loop {
        if cluster.check_legal().is_ok() {
            let digest = structure_digest(cluster);
            match &candidate {
                Some((first, prev)) if *prev == digest => {
                    recovery_rounds = Some(*first);
                    break;
                }
                _ => candidate = Some((executed, digest)),
            }
        } else {
            candidate = None;
        }
        if executed >= schedule.budget {
            break;
        }
        let step = cfg.check_stride.max(1).min(schedule.budget - executed);
        cluster.run_rounds(step);
        executed += step;
    }

    // Post-recovery exactness: pipelined delivery must equal the
    // sequential reference and miss no matching subscriber.
    let mut post_matches = false;
    let mut post_false_negatives = 0u64;
    let mut post_latency = LatencyDistribution::default();
    if recovery_rounds.is_some() && !cluster.is_empty() {
        let ids = cluster.ids();
        let k = cfg.probe_events.clamp(1, ids.len().max(1) * 4);
        let probes: Vec<(ProcessId, Point<D>)> = (0..k)
            .map(|i| {
                let publisher = ids[i % ids.len()];
                let target = ids[(i * 7 + 3) % ids.len()];
                let point = cluster.node(target).expect("live id").filter().center();
                (publisher, point)
            })
            .collect();
        let mut sequential = cluster.clone();
        let mut pipelined = cluster.clone();
        let seq_reports: Vec<_> = probes
            .iter()
            .map(|&(p, pt)| sequential.publish_from(p, pt))
            .collect();
        let pipe_reports = pipelined.publish_pipeline_from(&probes, 32);
        post_matches = seq_reports
            .iter()
            .zip(&pipe_reports)
            .all(|(a, b)| a.receivers == b.receivers);
        post_false_negatives = seq_reports
            .iter()
            .chain(&pipe_reports)
            .map(|r| r.false_negatives.len() as u64)
            .sum();
        let mut samples: Vec<u64> = pipe_reports.iter().map(|r| r.rounds).collect();
        post_latency = LatencyDistribution::from_samples(&mut samples);
    }

    ConvergenceReport {
        schedule: schedule.to_string(),
        survivors: cluster.len(),
        crashed,
        recovery_rounds,
        budget: schedule.budget,
        fault_latency: LatencyDistribution::from_samples(&mut fault_samples),
        post_latency,
        post_pipeline_matches_sequential: post_matches,
        post_false_negatives,
        duplicated: cluster.metrics().duplicated() - base_duplicated,
        reordered: cluster.metrics().reordered() - base_reordered,
        partitioned_drops: cluster.metrics().partitioned_drops() - base_partitioned,
        dropped: cluster.metrics().dropped() - base_dropped,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_distribution_nearest_rank() {
        let mut samples: Vec<u64> = (1..=1000).collect();
        let d = LatencyDistribution::from_samples(&mut samples);
        assert_eq!(d.samples, 1000);
        assert_eq!(d.p50, 500);
        assert_eq!(d.p99, 990);
        assert_eq!(d.p999, 999);
        assert_eq!(d.max, 1000);
        let d = LatencyDistribution::from_samples(&mut []);
        assert_eq!(d.samples, 0);
        assert_eq!(d.p999, 0);
    }

    #[test]
    fn schedules_are_seeded_and_printable() {
        let world: Rect<2> = Rect::new([0.0, 0.0], [100.0, 100.0]);
        assert_eq!(
            FaultSchedule::random(7, &world),
            FaultSchedule::random(7, &world),
            "same seed, same script"
        );
        assert_ne!(
            FaultSchedule::random(7, &world),
            FaultSchedule::random(8, &world)
        );
        for s in FaultSchedule::canonical(&world, 64) {
            let shown = s.to_string();
            assert!(shown.contains(&s.name));
            assert!(!s.events.is_empty());
            assert!(s.duration > 0);
        }
    }
}
