//! Property tests pinning the pipelined publish path
//! ([`DrTreeCluster::publish_pipeline_from`] and the asynchronous
//! equivalent) to the sequential [`DrTreeCluster::publish_from`]
//! reference: identical overlays replaying an identical event stream
//! must produce identical per-event deliveries, matches, and message
//! bills at every window size — overlap may only change *when* events
//! disseminate, never *what* they deliver or charge.

use drtree_core::{AsyncDrTreeCluster, DrTreeCluster, DrTreeConfig, ProcessId, PublishReport};
use drtree_sim::{LatencyModel, NetConfig};
use drtree_spatial::{Point, Rect};
use drtree_workloads::EventWorkload;
use proptest::prelude::*;
use proptest::strategy::Just;
use rand::rngs::StdRng;
use rand::SeedableRng;

const WINDOWS: [usize; 3] = [1, 7, 32];

fn arb_filter() -> impl Strategy<Value = Rect<2>> {
    (0.0f64..90.0, 0.0f64..90.0, 2.0f64..25.0, 2.0f64..25.0)
        .prop_map(|(x, y, w, h)| Rect::new([x, y], [x + w, y + h]))
}

/// Uniform and hotspot event streams (the hotspot concentrates events
/// so interior nodes carry overlapping traffic of most in-flight
/// events — the hard case for per-tag accounting).
fn arb_stream() -> impl Strategy<Value = EventWorkload> {
    prop_oneof![
        Just(EventWorkload::Uniform),
        (10.0f64..80.0, 5.0f64..20.0).prop_map(|(center, radius)| EventWorkload::Hotspot {
            center,
            radius,
            bias: 0.8,
        }),
    ]
}

/// The per-event figures that must not depend on the window size.
fn fingerprint(r: &PublishReport) -> (Vec<ProcessId>, Vec<ProcessId>, u64) {
    (r.receivers.clone(), r.matching.clone(), r.messages)
}

fn events_for<const D: usize>(
    workload: EventWorkload,
    n: usize,
    ids: &[ProcessId],
    seed: u64,
) -> Vec<(ProcessId, Point<D>)> {
    let mut rng = StdRng::seed_from_u64(seed);
    workload
        .generate(n, &mut rng)
        .into_iter()
        .enumerate()
        .map(|(i, p)| (ids[(i * 7 + 3) % ids.len()], p))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Round engine: every window size reproduces the sequential
    /// per-event deliveries, matches, and message bills.
    #[test]
    fn pipeline_matches_sequential_on_round_engine(
        filters in prop::collection::vec(arb_filter(), 8..28),
        stream in arb_stream(),
        n_events in 4usize..40,
        seed in 0u64..1_000,
    ) {
        let base = DrTreeCluster::build_bulk(DrTreeConfig::default(), seed, &filters);
        let events = events_for(stream, n_events, &base.ids(), seed ^ 0x9e37);

        let mut sequential = base.clone();
        let reference: Vec<_> = events
            .iter()
            .map(|&(publisher, point)| {
                fingerprint(&sequential.publish_from(publisher, point))
            })
            .collect();

        for window in WINDOWS {
            let mut pipelined = base.clone();
            let reports = pipelined.publish_pipeline_from(&events, window);
            prop_assert_eq!(reports.len(), events.len());
            for (i, report) in reports.iter().enumerate() {
                prop_assert!(report.false_negatives.is_empty(),
                    "window {} event {} missed {:?}", window, i, report.false_negatives);
                prop_assert_eq!(&fingerprint(report), &reference[i],
                    "window {} event {} diverged", window, i);
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(5))]

    /// Event engine: identically built asynchronous overlays (same
    /// seed, fixed latency, no loss) agree between the sequential loop
    /// and every pipeline window.
    #[test]
    fn pipeline_matches_sequential_on_event_engine(
        filters in prop::collection::vec(arb_filter(), 6..16),
        stream in arb_stream(),
        n_events in 3usize..12,
        seed in 0u64..500,
    ) {
        let net = NetConfig {
            latency: LatencyModel::Fixed(1),
            ..NetConfig::default()
        };
        let config = DrTreeConfig {
            tick_interval: 4,
            failure_timeout: 8,
            ..DrTreeConfig::default()
        };
        let build = || {
            let mut cluster: AsyncDrTreeCluster<2> =
                AsyncDrTreeCluster::new(config, net, seed);
            for &f in &filters {
                cluster.add_subscriber(f);
                cluster.run_for(8 * config.tick_interval);
            }
            cluster.stabilize(400_000).expect("legal under asynchrony");
            cluster
        };

        let mut sequential = build();
        let events = events_for(stream, n_events, &sequential.ids(), seed ^ 0x51ed);
        let reference: Vec<_> = events
            .iter()
            .map(|&(publisher, point)| {
                fingerprint(&sequential.publish_from(publisher, point))
            })
            .collect();

        for window in WINDOWS {
            let mut pipelined = build();
            let reports = pipelined.publish_pipeline_from(&events, window);
            prop_assert_eq!(reports.len(), events.len());
            for (i, report) in reports.iter().enumerate() {
                prop_assert_eq!(&fingerprint(report), &reference[i],
                    "window {} event {} diverged", window, i);
            }
        }
    }
}

/// The satellite fix pinned directly: with several events in flight,
/// per-event message bills must not cross-charge — each pipelined
/// event is billed exactly its sequential message count, and the bills
/// sum to the network's total publication traffic.
#[test]
fn overlapping_events_do_not_cross_charge_messages() {
    let filters: Vec<Rect<2>> = (0..24)
        .map(|i| {
            let x = f64::from(i % 6) * 12.0;
            let y = f64::from(i / 6) * 12.0;
            Rect::new([x, y], [x + 15.0, y + 15.0])
        })
        .collect();
    let base = DrTreeCluster::build_bulk(DrTreeConfig::default(), 11, &filters);
    let ids = base.ids();
    let events: Vec<(ProcessId, Point<2>)> = (0..12)
        .map(|i| {
            (
                ids[(5 * i + 1) % ids.len()],
                Point::new([6.0 * i as f64 + 2.0, 40.0]),
            )
        })
        .collect();

    let mut sequential = base.clone();
    let expected: Vec<u64> = events
        .iter()
        .map(|&(publisher, point)| sequential.publish_from(publisher, point).messages)
        .collect();
    assert!(expected.iter().any(|&m| m > 0), "schedule produces traffic");

    let mut pipelined = base.clone();
    let down0 = pipelined.metrics().label_count("pub-down");
    let up0 = pipelined.metrics().label_count("pub-up");
    let reports = pipelined.publish_pipeline_from(&events, 7);
    let billed: Vec<u64> = reports.iter().map(|r| r.messages).collect();
    assert_eq!(billed, expected, "per-event bills must match sequential");
    let total = pipelined.metrics().label_count("pub-down") - down0
        + pipelined.metrics().label_count("pub-up")
        - up0;
    assert_eq!(
        billed.iter().sum::<u64>(),
        total,
        "bills must partition the network's publication traffic"
    );
}

/// A window of 1 is exactly the sequential semantics with per-tag
/// quiescence instead of a fixed drain budget; reports must still be
/// in input order with monotone event ids.
#[test]
fn window_one_preserves_order_and_ids() {
    let filters: Vec<Rect<2>> = (0..10)
        .map(|i| {
            let x = f64::from(i) * 9.0;
            Rect::new([x, 0.0], [x + 11.0, 30.0])
        })
        .collect();
    let mut cluster = DrTreeCluster::build_bulk(DrTreeConfig::default(), 3, &filters);
    let ids = cluster.ids();
    let points: Vec<Point<2>> = (0..5)
        .map(|i| Point::new([9.0 * i as f64 + 1.0, 4.0]))
        .collect();
    let reports = cluster.publish_pipeline(ids[0], &points, 1);
    assert_eq!(reports.len(), points.len());
    for pair in reports.windows(2) {
        assert!(pair[0].event_id < pair[1].event_id);
    }
    for r in &reports {
        assert!(r.false_negatives.is_empty());
        assert!(r.rounds >= 1, "quiescence takes at least one round");
    }
}
