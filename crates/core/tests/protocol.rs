//! End-to-end protocol tests: construction, joins, departures, crashes,
//! corruption recovery, and dissemination.

use drtree_core::{corruption::CorruptionKind, DrTreeCluster, DrTreeConfig, SplitMethod};
use drtree_spatial::{Point, Rect};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn uniform_filters(n: usize, seed: u64) -> Vec<Rect<2>> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let x: f64 = rng.gen_range(0.0..100.0);
            let y: f64 = rng.gen_range(0.0..100.0);
            let w: f64 = rng.gen_range(1.0..25.0);
            let h: f64 = rng.gen_range(1.0..25.0);
            Rect::new([x, y], [x + w, y + h])
        })
        .collect()
}

fn config(m: usize, max: usize, split: SplitMethod) -> DrTreeConfig {
    DrTreeConfig::with_degree(m, max, split).expect("valid degree")
}

#[test]
fn single_subscriber_is_legal() {
    let mut cluster: DrTreeCluster<2> = DrTreeCluster::new(DrTreeConfig::default(), 1);
    let id = cluster.add_subscriber(Rect::new([0.0, 0.0], [1.0, 1.0]));
    cluster.run_rounds(3);
    assert!(cluster.check_legal().is_ok());
    assert_eq!(cluster.root(), Some(id));
    assert_eq!(cluster.height(), 0);
}

#[test]
fn two_subscribers_elect_larger_root() {
    let mut cluster: DrTreeCluster<2> = DrTreeCluster::new(DrTreeConfig::default(), 1);
    let small = cluster.add_subscriber(Rect::new([0.0, 0.0], [1.0, 1.0]));
    cluster.run_rounds(2);
    let big = cluster.add_subscriber(Rect::new([0.0, 0.0], [50.0, 50.0]));
    cluster.stabilize(100).expect("stabilizes");
    // Fig. 6: the larger filter is elected root.
    assert_eq!(cluster.root(), Some(big));
    assert_eq!(cluster.height(), 1);
    let _ = small;
}

#[test]
fn builds_are_legal_for_every_split_method() {
    for split in SplitMethod::ALL {
        let filters = uniform_filters(60, 7);
        let cluster = DrTreeCluster::build(config(2, 4, split), 11, &filters);
        assert!(
            cluster.check_legal().is_ok(),
            "{split}: {:?}",
            cluster.check_legal().err().map(|v| v.len())
        );
        assert_eq!(cluster.len(), 60);
    }
}

#[test]
fn height_is_logarithmic() {
    for (n, m, max) in [(64usize, 2usize, 4usize), (128, 2, 6), (200, 4, 8)] {
        let filters = uniform_filters(n, 13);
        let cluster = DrTreeCluster::build(config(m, max, SplitMethod::Quadratic), 5, &filters);
        let h = cluster.height() as f64;
        let bound = (n as f64).log(m as f64).ceil() + 2.0;
        assert!(
            h <= bound,
            "height {h} exceeds log bound {bound} for n={n}, m={m}"
        );
    }
}

#[test]
fn every_join_keeps_legality_between_insertions() {
    let filters = uniform_filters(30, 17);
    let mut cluster: DrTreeCluster<2> = DrTreeCluster::new(config(2, 4, SplitMethod::Linear), 3);
    for f in &filters {
        cluster.add_subscriber_stable(*f);
        let rounds = cluster.stabilize(300);
        assert!(rounds.is_some(), "stuck after adding a subscriber");
    }
    assert_eq!(cluster.len(), 30);
}

#[test]
fn controlled_leaves_recover() {
    let filters = uniform_filters(40, 23);
    let mut cluster = DrTreeCluster::build(config(2, 4, SplitMethod::Quadratic), 9, &filters);
    let ids = cluster.ids();
    for &id in ids.iter().take(15) {
        if cluster.root() == Some(id) {
            continue; // keep the root here; root departure tested separately
        }
        cluster.controlled_leave(id);
        let rounds = cluster.stabilize(2_000);
        assert!(rounds.is_some(), "did not re-stabilize after leave of {id}");
    }
    assert!(cluster.len() >= 25);
}

#[test]
fn crash_of_interior_nodes_recovers() {
    let filters = uniform_filters(50, 29);
    let mut cluster = DrTreeCluster::build(config(2, 4, SplitMethod::Quadratic), 31, &filters);
    // Crash five random non-root subscribers at once.
    let root = cluster.root().unwrap();
    let victims: Vec<_> = cluster
        .ids()
        .into_iter()
        .filter(|&id| id != root)
        .take(5)
        .collect();
    for v in victims {
        cluster.crash(v);
    }
    let rounds = cluster.stabilize(4_000);
    assert!(rounds.is_some(), "no recovery after crashes");
    assert_eq!(cluster.len(), 45);
}

#[test]
fn root_crash_recovers() {
    let filters = uniform_filters(35, 37);
    let mut cluster = DrTreeCluster::build(config(2, 4, SplitMethod::Quadratic), 41, &filters);
    let root = cluster.root().unwrap();
    cluster.crash(root);
    let rounds = cluster.stabilize(4_000);
    assert!(rounds.is_some(), "no recovery after root crash");
    assert_eq!(cluster.len(), 34);
    assert_ne!(cluster.root(), Some(root));
}

#[test]
fn corruption_of_every_kind_recovers() {
    for kind in CorruptionKind::ALL {
        let filters = uniform_filters(25, 43);
        let mut cluster = DrTreeCluster::build(config(2, 4, SplitMethod::Quadratic), 47, &filters);
        // Corrupt a third of the processes.
        let victims: Vec<_> = cluster.ids().into_iter().step_by(3).collect();
        for v in victims {
            assert!(cluster.corrupt(v, kind));
        }
        let rounds = cluster.stabilize(4_000);
        assert!(rounds.is_some(), "{kind:?}: no recovery from corruption");
        assert_eq!(cluster.len(), 25, "{kind:?}: processes lost");
    }
}

#[test]
fn publish_has_no_false_negatives_in_legal_state() {
    let filters = uniform_filters(60, 53);
    let mut cluster = DrTreeCluster::build(config(2, 4, SplitMethod::Quadratic), 59, &filters);
    let ids = cluster.ids();
    let mut rng = StdRng::seed_from_u64(61);
    for i in 0..20 {
        let publisher = ids[(i * 7) % ids.len()];
        let p = Point::new([rng.gen_range(0.0..110.0), rng.gen_range(0.0..110.0)]);
        let report = cluster.publish_from(publisher, p);
        assert!(
            report.false_negatives.is_empty(),
            "event {i} missed {:?}",
            report.false_negatives
        );
    }
}

#[test]
fn publish_reaches_only_matching_leaves_in_example() {
    // The paper's running example (§3): event `a` produced at S2 reaches
    // only S2, S3, S4.
    use drtree_spatial::sample;
    let subs = sample::subscriptions();
    let cluster_filters: Vec<Rect<2>> = subs.to_vec();
    let mut cluster =
        DrTreeCluster::build(config(2, 4, SplitMethod::Quadratic), 67, &cluster_filters);
    let ids = cluster.ids();
    let s2 = ids[1];
    let report = cluster.publish_from(s2, sample::event_a());
    assert!(report.false_negatives.is_empty());
    // matching set is {S3, S4} (S2 is the publisher, excluded)
    let expect: Vec<_> = vec![ids[2], ids[3]];
    let mut matching = report.matching.clone();
    matching.sort();
    assert_eq!(matching, expect);
}

#[test]
fn mass_join_storm_converges() {
    // All subscribers join through the same contact at once — a worst
    // case for the join path.
    let filters = uniform_filters(40, 71);
    let mut cluster: DrTreeCluster<2> =
        DrTreeCluster::new(config(2, 4, SplitMethod::Quadratic), 73);
    for f in &filters {
        cluster.add_subscriber(*f);
    }
    let rounds = cluster.stabilize(6_000);
    assert!(rounds.is_some(), "join storm did not converge");
    assert_eq!(cluster.len(), 40);
}

#[test]
fn memory_stays_polylogarithmic() {
    let filters = uniform_filters(120, 79);
    let cluster = DrTreeCluster::build(config(2, 4, SplitMethod::Quadratic), 83, &filters);
    let (max_entries, mean_entries) = cluster.memory_stats();
    let n = 120f64;
    // Lemma 3.1: O(M log² N / log m) with M=4, m=2.
    let bound = 4.0 * n.log2() * n.log2() / 1.0;
    assert!(
        (max_entries as f64) <= bound,
        "max memory {max_entries} exceeds bound {bound}"
    );
    assert!(mean_entries >= 1.0);
}

#[test]
fn degrees_bounded_everywhere() {
    let filters = uniform_filters(90, 89);
    let cluster = DrTreeCluster::build(config(3, 7, SplitMethod::RStar), 97, &filters);
    assert!(cluster.max_degree_observed() <= 7);
}
