//! Message-level protocol tests: each handler's validation against
//! stale, duplicated, or hostile messages — the paths churn rarely
//! exercises but corruption and races can produce.
//!
//! A tick-less [`RoundNetwork`] delivers exactly the messages we inject
//! (no periodic stabilization interferes), so each assertion isolates
//! one handler's behavior.

use drtree_core::{ChildSummary, DrTreeConfig, DrtMessage, DrtNode, LevelTransfer, ProcessId};
use drtree_sim::RoundNetwork;
use drtree_spatial::Rect;

type Net = RoundNetwork<DrtNode<2>>;

fn net() -> Net {
    RoundNetwork::new(42) // no tick: handlers only run on our messages
}

fn node(net: &mut Net, lo: f64, size: f64) -> ProcessId {
    net.add_process(DrtNode::new(
        DrTreeConfig::default(),
        Rect::new([lo, lo], [lo + size, lo + size]),
    ))
}

fn summary_of(net: &Net, id: ProcessId) -> ChildSummary<2> {
    let n = net.process(id).expect("alive");
    ChildSummary {
        id,
        mbr: n.filter(),
        filter: n.filter(),
        count: 0,
        underloaded: false,
    }
}

#[test]
fn adopted_at_wrong_level_is_ignored() {
    let mut net = net();
    let a = node(&mut net, 0.0, 10.0);
    let b = node(&mut net, 20.0, 10.0);
    // b claims a is its child at level 5 — a's topmost is 0, so the
    // stale Adopted must not corrupt a's parent pointer.
    net.send_external(a, DrtMessage::Adopted { level: 5 });
    net.run_round();
    let got = net.process(a).unwrap();
    assert!(got.believes_root(), "stale Adopted changed the parent");
    let _ = b;
}

#[test]
fn assume_role_with_gap_is_ignored() {
    let mut net = net();
    let a = node(&mut net, 0.0, 10.0);
    // Transfer starting two levels above a's top (1 would be correct).
    net.send_external(
        a,
        DrtMessage::AssumeRole {
            transfers: vec![LevelTransfer {
                level: 2,
                children: vec![],
            }],
            parent: a,
            fp_promotion: false,
        },
    );
    net.run_round();
    let got = net.process(a).unwrap();
    assert_eq!(got.top(), 0, "non-contiguous AssumeRole was applied");
}

#[test]
fn assume_role_contiguous_is_applied_and_self_child_inserted() {
    let mut net = net();
    let a = node(&mut net, 0.0, 10.0);
    let b = node(&mut net, 20.0, 10.0);
    let b_summary = summary_of(&net, b);
    net.send_external(
        a,
        DrtMessage::AssumeRole {
            transfers: vec![LevelTransfer {
                level: 1,
                children: vec![b_summary],
            }],
            parent: a,
            fp_promotion: false,
        },
    );
    net.run_round();
    let got = net.process(a).unwrap();
    assert_eq!(got.top(), 1);
    let inst = got.state().level(1).expect("created");
    assert!(inst.children.contains_key(&a), "self-child missing");
    assert!(inst.children.contains_key(&b));
    assert_eq!(inst.mbr, Rect::new([0.0, 0.0], [30.0, 30.0]));
}

#[test]
fn merge_into_below_top_is_ignored() {
    let mut net = net();
    let a = node(&mut net, 0.0, 10.0);
    let b = node(&mut net, 20.0, 10.0);
    let b_summary = summary_of(&net, b);
    // Promote a to an internal node at level 1 first.
    net.send_external(
        a,
        DrtMessage::AssumeRole {
            transfers: vec![LevelTransfer {
                level: 1,
                children: vec![b_summary],
            }],
            parent: a,
            fp_promotion: false,
        },
    );
    net.run_round();
    // Hostile MergeInto targeting level 0 (not a's top) and level 7.
    net.send_external(a, DrtMessage::MergeInto { level: 0, into: b });
    net.send_external(a, DrtMessage::MergeInto { level: 7, into: b });
    net.run_round();
    assert_eq!(
        net.process(a).unwrap().top(),
        1,
        "hostile MergeInto applied"
    );
}

#[test]
fn heartbeat_from_unknown_child_is_disowned() {
    let mut net = net();
    let a = node(&mut net, 0.0, 10.0);
    let b = node(&mut net, 20.0, 10.0);
    // b heartbeats a at level 0 but a has no instance at level 1.
    let b_summary = summary_of(&net, b);
    net.send_external(
        a,
        DrtMessage::Heartbeat {
            level: 0,
            summary: b_summary,
        },
    );
    // a's HeartbeatAck{still_child: false} arrives at b next round; note
    // that send_external makes the message appear to come from `a`…
    net.run_round();
    net.run_round();
    // …so b (whose parent is itself) ignores it rather than crashing.
    assert!(net.process(b).unwrap().believes_root());
    // a must not have adopted b.
    assert_eq!(net.process(a).unwrap().top(), 0);
}

#[test]
fn join_to_self_is_ignored() {
    let mut net = net();
    let a = node(&mut net, 0.0, 10.0);
    let a_summary = summary_of(&net, a);
    net.send_external(
        a,
        DrtMessage::Join {
            joiner: a,
            top_level: 0,
            mbr: a_summary.mbr,
            filter: a_summary.filter,
            count: 0,
            descend: None,
        },
    );
    net.run_round();
    let got = net.process(a).unwrap();
    assert_eq!(got.top(), 0, "self-join mutated the node");
    assert!(got.believes_root());
}

#[test]
fn join_grows_two_leaves_into_a_tree_with_larger_root() {
    let mut net = net();
    let small = node(&mut net, 0.0, 5.0);
    let big = node(&mut net, 20.0, 50.0);
    // small receives big's join: Fig. 6 election → big must end up root.
    let big_summary = summary_of(&net, big);
    net.send_external(
        small,
        DrtMessage::Join {
            joiner: big,
            top_level: 0,
            mbr: big_summary.mbr,
            filter: big_summary.filter,
            count: 0,
            descend: None,
        },
    );
    net.run_rounds(3);
    let b = net.process(big).unwrap();
    assert_eq!(b.top(), 1, "big should host the new root instance");
    assert!(b.believes_root());
    let s = net.process(small).unwrap();
    assert_eq!(s.top(), 0);
    assert!(!s.believes_root());
}

#[test]
fn join_too_tall_dissolves_top_and_reparents_children() {
    let mut net = net();
    let a = node(&mut net, 0.0, 10.0);
    let b = node(&mut net, 20.0, 10.0);
    let b_summary = summary_of(&net, b);
    net.send_external(
        a,
        DrtMessage::AssumeRole {
            transfers: vec![LevelTransfer {
                level: 1,
                children: vec![b_summary],
            }],
            parent: a,
            fp_promotion: false,
        },
    );
    net.run_round();
    net.send_external(a, DrtMessage::JoinTooTall { level: 1 });
    net.run_rounds(2);
    let got = net.process(a).unwrap();
    assert_eq!(got.top(), 0, "top instance not dissolved");
    assert!(got.believes_root());
    // b received RejoinSubtree and is (still) its own root, ready to
    // rejoin through the oracle.
    assert!(net.process(b).unwrap().believes_root());
}

#[test]
fn replace_child_swaps_cache_entries() {
    let mut net = net();
    let a = node(&mut net, 0.0, 10.0);
    let b = node(&mut net, 20.0, 10.0);
    let c = node(&mut net, 40.0, 10.0);
    let b_summary = summary_of(&net, b);
    let c_summary = summary_of(&net, c);
    net.send_external(
        a,
        DrtMessage::AssumeRole {
            transfers: vec![LevelTransfer {
                level: 1,
                children: vec![b_summary],
            }],
            parent: a,
            fp_promotion: false,
        },
    );
    net.run_round();
    net.send_external(
        a,
        DrtMessage::ReplaceChild {
            level: 1,
            old: b,
            summary: c_summary,
        },
    );
    net.run_round();
    let inst = net.process(a).unwrap().state().level(1).unwrap().clone();
    assert!(!inst.children.contains_key(&b));
    assert!(inst.children.contains_key(&c));
    assert_eq!(inst.mbr, Rect::new([0.0, 0.0], [50.0, 50.0]));
}

#[test]
fn publish_loop_guard_stops_cyclic_routing() {
    let mut net = net();
    let a = node(&mut net, 0.0, 10.0);
    let b = node(&mut net, 20.0, 10.0);
    // Hand-corrupt a 2-cycle: a's child is b, b's child is a (both at
    // level 1). Publishing must terminate thanks to the recent-event
    // ring, not live-lock.
    let a_summary = summary_of(&net, a);
    let b_summary = summary_of(&net, b);
    net.send_external(
        a,
        DrtMessage::AssumeRole {
            transfers: vec![LevelTransfer {
                level: 1,
                children: vec![b_summary],
            }],
            parent: a,
            fp_promotion: false,
        },
    );
    net.send_external(
        b,
        DrtMessage::AssumeRole {
            transfers: vec![LevelTransfer {
                level: 1,
                children: vec![a_summary],
            }],
            parent: b,
            fp_promotion: false,
        },
    );
    net.run_round();
    net.send_external(
        a,
        DrtMessage::PublishRequest {
            event: drtree_core::PubEvent {
                id: 9_000,
                point: drtree_spatial::Point::new([5.0, 5.0]),
                publisher: a,
            },
        },
    );
    // Without the guard this would generate messages forever.
    net.run_rounds(20);
    let pub_msgs = net.metrics().label_count("pub-down") + net.metrics().label_count("pub-up");
    assert!(
        pub_msgs < 20,
        "cyclic routing not damped: {pub_msgs} messages"
    );
}
