//! The protocol under true asynchrony: latency jitter, message loss,
//! self-paced ticks (the paper's §2.1 system model). Same protocol
//! code as the round-based tests — only the engine changes.

use drtree_core::{corruption::CorruptionKind, AsyncDrTreeCluster, DrTreeConfig};
use drtree_sim::{LatencyModel, NetConfig};
use drtree_spatial::{Point, Rect};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn async_config() -> DrTreeConfig {
    DrTreeConfig {
        tick_interval: 8,
        // Timeouts are counted in time units here; with jittered
        // latencies up to 4 and ticks every 8, a parent answer takes up
        // to ~2 ticks.
        failure_timeout: 40,
        join_retry: 32,
        ..DrTreeConfig::default()
    }
}

fn jittery(drop: f64) -> NetConfig {
    NetConfig::lossy(LatencyModel::Uniform { min: 1, max: 4 }, drop)
}

fn filters(n: usize, seed: u64) -> Vec<Rect<2>> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let x: f64 = rng.gen_range(0.0..80.0);
            let y: f64 = rng.gen_range(0.0..80.0);
            let w: f64 = rng.gen_range(2.0..20.0);
            let h: f64 = rng.gen_range(2.0..20.0);
            Rect::new([x, y], [x + w, y + h])
        })
        .collect()
}

#[test]
fn builds_legal_overlay_under_latency_jitter() {
    let mut cluster: AsyncDrTreeCluster<2> =
        AsyncDrTreeCluster::new(async_config(), jittery(0.0), 101);
    for f in filters(24, 102) {
        cluster.add_subscriber(f);
        cluster.run_for(40);
    }
    let time = cluster.stabilize(400_000);
    assert!(time.is_some(), "no legal configuration under jitter");
    assert_eq!(cluster.len(), 24);
    let n = 24f64;
    assert!(
        f64::from(cluster.height()) <= n.log2().ceil() + 2.0,
        "height {} not logarithmic",
        cluster.height()
    );
}

#[test]
fn publishes_have_no_false_negatives_async() {
    let mut cluster: AsyncDrTreeCluster<2> =
        AsyncDrTreeCluster::new(async_config(), jittery(0.0), 103);
    let fs = filters(20, 104);
    for f in &fs {
        cluster.add_subscriber(*f);
        cluster.run_for(40);
    }
    cluster.stabilize(400_000).expect("stabilizes");
    let ids = cluster.ids();
    for i in 0..10 {
        let publisher = ids[(i * 3) % ids.len()];
        let point = {
            let rng = cluster.rng();
            Point::new([rng.gen_range(0.0..100.0), rng.gen_range(0.0..100.0)])
        };
        let report = cluster.publish_from(publisher, point);
        assert!(
            report.false_negatives.is_empty(),
            "event {i}: missed {:?}",
            report.false_negatives
        );
    }
}

#[test]
fn recovers_from_crashes_with_message_loss() {
    // 2% of all messages are silently dropped — heartbeats, acks, even
    // repair traffic. The protocol must still converge (retries +
    // periodic checks).
    let mut cluster: AsyncDrTreeCluster<2> =
        AsyncDrTreeCluster::new(async_config(), jittery(0.02), 105);
    for f in filters(20, 106) {
        cluster.add_subscriber(f);
        cluster.run_for(40);
    }
    cluster.stabilize(600_000).expect("initial convergence");

    let root = cluster.root().unwrap();
    let victims: Vec<_> = cluster
        .ids()
        .into_iter()
        .filter(|&id| id != root)
        .step_by(4)
        .take(4)
        .collect();
    for v in victims {
        cluster.crash(v);
    }
    let time = cluster.stabilize(600_000);
    assert!(time.is_some(), "no recovery under message loss");
    assert_eq!(cluster.len(), 16);
}

#[test]
fn recovers_from_corruption_async() {
    let mut cluster: AsyncDrTreeCluster<2> =
        AsyncDrTreeCluster::new(async_config(), jittery(0.0), 107);
    for f in filters(16, 108) {
        cluster.add_subscriber(f);
        cluster.run_for(40);
    }
    cluster.stabilize(400_000).expect("initial convergence");
    let ids = cluster.ids();
    for (i, &id) in ids.iter().enumerate().step_by(3) {
        cluster.corrupt(id, CorruptionKind::ALL[i % CorruptionKind::ALL.len()]);
    }
    let time = cluster.stabilize(600_000);
    assert!(time.is_some(), "no recovery from corruption (async)");
}

#[test]
fn controlled_leave_async() {
    let mut cluster: AsyncDrTreeCluster<2> =
        AsyncDrTreeCluster::new(async_config(), jittery(0.0), 109);
    for f in filters(14, 110) {
        cluster.add_subscriber(f);
        cluster.run_for(40);
    }
    cluster.stabilize(400_000).expect("initial convergence");
    let root = cluster.root().unwrap();
    let victim = cluster
        .ids()
        .into_iter()
        .find(|&id| id != root)
        .expect("non-root exists");
    cluster.controlled_leave(victim);
    assert!(cluster.stabilize(400_000).is_some());
    assert_eq!(cluster.len(), 13);
}
