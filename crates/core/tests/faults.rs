//! Adversarial fault-schedule integration tests: message duplication,
//! reordering and partitions against a live overlay, the six canonical
//! [`FaultSchedule`]s end to end, and a property test over *random*
//! seeded schedules — post-heal the overlay must re-reach a legal
//! configuration within budget and survivor delivery must equal a
//! freshly rebuilt reference tree (the paper's stabilization contract,
//! Lemma 3.6 + §2.3 exactness).

use drtree_core::{
    run_convergence, ConvergenceConfig, DrTreeCluster, DrTreeConfig, FaultProfile, FaultSchedule,
};
use drtree_spatial::{Point, Rect};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn world() -> Rect<2> {
    Rect::new([0.0, 0.0], [100.0, 100.0])
}

fn filters(n: usize, seed: u64) -> Vec<Rect<2>> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let x = rng.gen_range(0.0..85.0);
            let y = rng.gen_range(0.0..85.0);
            let w = rng.gen_range(2.0..15.0);
            let h = rng.gen_range(2.0..15.0);
            Rect::new([x, y], [x + w, y + h])
        })
        .collect()
}

fn probe_points(cluster: &DrTreeCluster<2>, k: usize) -> Vec<Point<2>> {
    let ids = cluster.ids();
    (0..k)
        .map(|i| {
            let target = ids[(i * 7 + 3) % ids.len()];
            cluster.node(target).unwrap().filter().center()
        })
        .collect()
}

/// Satellite: a fully duplicating network must not change *what* a
/// publish delivers or bills — the seen-ring dedup absorbs the extra
/// copies and the unbilled duplicate tags settle without leaking.
#[test]
fn duplicated_publishes_never_double_deliver_or_double_bill() {
    let base = DrTreeCluster::build_bulk(DrTreeConfig::default(), 11, &filters(48, 11));
    let ids = base.ids();
    let points = probe_points(&base, 6);

    let mut clean = base.clone();
    let mut duped = base.clone();
    duped.set_faults(FaultProfile::duplicating(1.0));

    for (i, &point) in points.iter().enumerate() {
        let publisher = ids[i % ids.len()];
        let a = clean.publish_from(publisher, point);
        let b = duped.publish_from(publisher, point);
        // No double delivery: same receiver set, each exactly once.
        assert_eq!(a.receivers, b.receivers, "event {i}: delivery set changed");
        let mut uniq = b.receivers.clone();
        uniq.dedup();
        assert_eq!(
            uniq, b.receivers,
            "event {i}: a receiver got the event twice"
        );
        // No double billing: the duplicate copies are unbilled.
        assert_eq!(
            a.messages, b.messages,
            "event {i}: duplication inflated the bill"
        );
        assert!(b.false_negatives.is_empty());
        // No leaked settlement: every copy (billed + duplicate) drained.
        assert_eq!(duped.metrics().tag_inflight(i as u64), 0);
    }
    assert!(
        duped.metrics().duplicated() > 0,
        "the duplication knob never fired"
    );
}

/// Reordering delays protocol hops by several rounds but may not change
/// delivery or billing either.
#[test]
fn reordered_publishes_deliver_exactly_once() {
    let base = DrTreeCluster::build_bulk(DrTreeConfig::default(), 23, &filters(48, 23));
    let ids = base.ids();
    let points = probe_points(&base, 6);

    let mut clean = base.clone();
    let mut shuffled = base.clone();
    shuffled.set_faults(FaultProfile::reordering(0.5, 3));

    for (i, &point) in points.iter().enumerate() {
        let publisher = ids[(i * 3 + 1) % ids.len()];
        let a = clean.publish_from(publisher, point);
        let b = shuffled.publish_from(publisher, point);
        assert_eq!(a.receivers, b.receivers, "event {i}: delivery set changed");
        assert_eq!(
            a.messages, b.messages,
            "event {i}: reordering changed the bill"
        );
        assert!(b.false_negatives.is_empty());
        assert_eq!(shuffled.metrics().tag_inflight(i as u64), 0);
    }
    assert!(
        shuffled.metrics().reordered() > 0,
        "the reorder knob never fired"
    );
}

/// A spatial partition drops cross-cut traffic (settling the tags);
/// after healing, stabilization restores legality and exact delivery.
#[test]
fn partitioned_overlay_recovers_exact_delivery_after_heal() {
    let mut cluster = DrTreeCluster::build_bulk(DrTreeConfig::default(), 5, &filters(64, 5));
    let half = Rect::new([0.0, 0.0], [50.0, 100.0]);
    let (inside, outside): (Vec<_>, Vec<_>) = cluster
        .ids()
        .into_iter()
        .partition(|&id| half.contains_point(&cluster.node(id).unwrap().filter().center()));
    assert!(!inside.is_empty() && !outside.is_empty());
    cluster.partition(&[inside, outside]);
    cluster.run_rounds(24);
    assert!(
        cluster.metrics().partitioned_drops() > 0,
        "no cross-cut traffic dropped"
    );
    cluster.heal();
    cluster
        .stabilize(FaultSchedule::<2>::DEFAULT_BUDGET)
        .expect("post-heal stabilization within budget");

    let ids = cluster.ids();
    for (i, point) in probe_points(&cluster, 8).into_iter().enumerate() {
        let report = cluster.publish_from(ids[i % ids.len()], point);
        assert!(
            report.false_negatives.is_empty(),
            "probe {i} missed a subscriber"
        );
    }
}

/// Every canonical schedule converges within budget at n = 64 with
/// exact post-recovery delivery, and the harness actually measured
/// in-fault latency samples.
#[test]
fn canonical_schedules_converge_with_exact_post_recovery_delivery() {
    for schedule in FaultSchedule::canonical(&world(), 64) {
        let mut cluster = DrTreeCluster::build_bulk(DrTreeConfig::default(), 77, &filters(64, 77));
        let report = run_convergence(&mut cluster, &schedule, &ConvergenceConfig::default());
        assert!(
            report.passed(),
            "schedule `{}` failed: {report:?}",
            schedule.name
        );
        assert!(
            report.fault_latency.samples > 0,
            "{}: no in-fault samples",
            schedule.name
        );
        assert!(
            report.post_latency.samples > 0,
            "{}: no post samples",
            schedule.name
        );
        match schedule.name.as_str() {
            "partition-heal" => assert!(report.partitioned_drops > 0),
            "dup-reorder" => assert!(report.duplicated > 0 && report.reordered > 0),
            "regional-crash" => assert!(report.crashed > 0),
            "broker-churn" => assert!(report.crashed > 0),
            _ => {}
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(5))]

    /// Random seeded fault schedules over 64–256 subscribers: after the
    /// schedule and forced heal, the overlay re-reaches
    /// `check_legal == Ok` within budget, and survivor delivery equals
    /// a reference tree rebuilt from scratch over the survivors'
    /// filters — same matching subscribers, no false negatives.
    #[test]
    fn random_schedules_recover_and_match_rebuilt_reference(
        n in 64usize..=256,
        filter_seed in 0u64..1_000,
        schedule_seed in any::<u64>(),
    ) {
        let schedule = FaultSchedule::random(schedule_seed, &world());
        let mut cluster =
            DrTreeCluster::build_bulk(DrTreeConfig::default(), filter_seed, &filters(n, filter_seed));
        let report = run_convergence(&mut cluster, &schedule, &ConvergenceConfig::default());
        prop_assert!(
            report.recovery_rounds.is_some(),
            "schedule `{}` did not re-reach a legal configuration within {} rounds",
            schedule, schedule.budget
        );
        prop_assert!(report.post_pipeline_matches_sequential, "pipelined != sequential post-recovery");
        prop_assert_eq!(report.post_false_negatives, 0, "missed subscribers post-recovery");

        // Rebuilt-reference oracle: a fresh tree over the survivors'
        // filters must agree on who matches each probe point.
        let survivor_filters: Vec<Rect<2>> =
            cluster.ids().iter().map(|&id| cluster.node(id).unwrap().filter()).collect();
        let mut rebuilt =
            DrTreeCluster::build_bulk(DrTreeConfig::default(), filter_seed ^ 0xfeed, &survivor_filters);
        let survivor_ids = cluster.ids();
        let rebuilt_ids = rebuilt.ids();
        for (i, point) in probe_points(&cluster, 8).into_iter().enumerate() {
            let got = cluster.publish_from(survivor_ids[i % survivor_ids.len()], point);
            let want = rebuilt.publish_from(rebuilt_ids[i % rebuilt_ids.len()], point);
            // Compare by position in the respective id lists: ids differ
            // between the survivor cluster and the rebuild, filters match.
            let got_idx: Vec<usize> = got.matching.iter()
                .map(|id| survivor_ids.iter().position(|x| x == id).unwrap()).collect();
            let want_idx: Vec<usize> = want.matching.iter()
                .map(|id| rebuilt_ids.iter().position(|x| x == id).unwrap()).collect();
            prop_assert_eq!(&got_idx, &want_idx, "probe {} diverged from the rebuilt reference", i);
            prop_assert!(got.false_negatives.is_empty());
            prop_assert!(want.false_negatives.is_empty());
        }
    }
}
