//! Dimensional generality.
//!
//! The paper illustrates everything in two dimensions but states that
//! "the extension to complex filters represented with poly-space
//! rectangles is straightforward" (§3), and that "DR-trees generalize
//! P-trees \[13\], which are the dynamic version of B+-trees" (§4) —
//! the one-dimensional case. The protocol here is generic over `D`;
//! these tests exercise D = 1, 3 and 4.

use drtree_core::{DrTreeCluster, DrTreeConfig};
use drtree_spatial::{Point, Rect};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// D = 1: interval filters over a single attribute — the P-tree /
/// B+-tree regime the paper's §4 points at.
#[test]
fn one_dimensional_overlay_behaves_like_a_ptree() {
    let mut rng = StdRng::seed_from_u64(201);
    let filters: Vec<Rect<1>> = (0..48)
        .map(|_| {
            let lo: f64 = rng.gen_range(0.0..90.0);
            let w: f64 = rng.gen_range(1.0..12.0);
            Rect::new([lo], [lo + w])
        })
        .collect();
    let mut cluster = DrTreeCluster::build(DrTreeConfig::default(), 202, &filters);
    cluster.check_legal().expect("legal 1-D overlay");
    assert!(
        f64::from(cluster.height()) <= (48f64).log2().ceil() + 2.0,
        "1-D height {} not logarithmic",
        cluster.height()
    );

    // Range dissemination: every interval subscriber covering the probe
    // value receives it, nobody is missed.
    let ids = cluster.ids();
    for probe in [5.0, 33.3, 61.0, 88.8] {
        let report = cluster.publish_from(ids[0], Point::new([probe]));
        assert!(
            report.false_negatives.is_empty(),
            "1-D probe {probe} missed {:?}",
            report.false_negatives
        );
        let expected = filters
            .iter()
            .enumerate()
            .filter(|(i, f)| *i != 0 && f.contains_point(&Point::new([probe])))
            .count();
        assert_eq!(report.matching.len(), expected, "probe {probe}");
    }
}

/// D = 3: poly-space rectangles (boxes).
#[test]
fn three_dimensional_overlay() {
    let mut rng = StdRng::seed_from_u64(203);
    let filters: Vec<Rect<3>> = (0..32)
        .map(|_| {
            let mut lo = [0.0; 3];
            let mut hi = [0.0; 3];
            for d in 0..3 {
                lo[d] = rng.gen_range(0.0..80.0);
                hi[d] = lo[d] + rng.gen_range(2.0..25.0);
            }
            Rect::new(lo, hi)
        })
        .collect();
    let mut cluster = DrTreeCluster::build(DrTreeConfig::default(), 204, &filters);
    cluster.check_legal().expect("legal 3-D overlay");

    let ids = cluster.ids();
    for i in 0..8 {
        let p = Point::new([
            rng.gen_range(0.0..100.0),
            rng.gen_range(0.0..100.0),
            rng.gen_range(0.0..100.0),
        ]);
        let report = cluster.publish_from(ids[i % ids.len()], p);
        assert!(report.false_negatives.is_empty(), "3-D event {i}");
    }
}

/// D = 4: higher-dimensional filters, plus recovery from churn to make
/// sure nothing in the repair path is dimension-specific.
#[test]
fn four_dimensional_overlay_with_churn() {
    let mut rng = StdRng::seed_from_u64(205);
    let filters: Vec<Rect<4>> = (0..24)
        .map(|_| {
            let mut lo = [0.0; 4];
            let mut hi = [0.0; 4];
            for d in 0..4 {
                lo[d] = rng.gen_range(0.0..70.0);
                hi[d] = lo[d] + rng.gen_range(5.0..30.0);
            }
            Rect::new(lo, hi)
        })
        .collect();
    let mut cluster = DrTreeCluster::build(DrTreeConfig::default(), 206, &filters);
    cluster.check_legal().expect("legal 4-D overlay");

    let root = cluster.root().unwrap();
    let victims: Vec<_> = cluster
        .ids()
        .into_iter()
        .filter(|&id| id != root)
        .take(4)
        .collect();
    for v in victims {
        cluster.crash(v);
    }
    assert!(
        cluster.stabilize(6_000).is_some(),
        "4-D overlay did not recover from crashes"
    );
    assert_eq!(cluster.len(), 20);
}

/// Unbounded dimensions (filters leaving an attribute unconstrained)
/// flow through the whole stack: the MBRs become unbounded, elections
/// rank them above bounded filters, and matching stays exact.
#[test]
fn unbounded_filters_are_supported() {
    let filters: Vec<Rect<2>> = vec![
        Rect::new([0.0, f64::NEG_INFINITY], [10.0, f64::INFINITY]), // x-band, any y
        Rect::new([2.0, 2.0], [8.0, 8.0]),
        Rect::new([20.0, 0.0], [30.0, 10.0]),
        Rect::new([4.0, 50.0], [9.0, 60.0]),
    ];
    let mut cluster = DrTreeCluster::build(DrTreeConfig::default(), 207, &filters);
    cluster.check_legal().expect("legal with unbounded filter");
    let ids = cluster.ids();
    // The unbounded band has infinite area → the election makes it root.
    assert_eq!(cluster.root(), Some(ids[0]));
    // y is irrelevant for the band: a point at extreme y still matches.
    let report = cluster.publish_from(ids[2], Point::new([5.0, 1e9]));
    assert!(report.false_negatives.is_empty());
    assert!(report.matching.contains(&ids[0]));
    assert!(!report.matching.contains(&ids[1]));
}
