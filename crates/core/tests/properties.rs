//! Property-based tests of the self-stabilization claims.
//!
//! Lemma 3.6 says the overlay reaches a legitimate configuration from
//! *any* initial configuration; here proptest generates the arbitrary
//! configurations (random overlays + random corruption + random churn)
//! and we assert convergence and the structural bounds.

use drtree_core::{corruption::CorruptionKind, DrTreeCluster, DrTreeConfig, SplitMethod};
use drtree_spatial::{Point, Rect};
use proptest::prelude::*;

fn arb_filter() -> impl Strategy<Value = Rect<2>> {
    (0.0f64..100.0, 0.0f64..100.0, 0.5f64..30.0, 0.5f64..30.0)
        .prop_map(|(x, y, w, h)| Rect::new([x, y], [x + w, y + h]))
}

fn arb_config() -> impl Strategy<Value = DrTreeConfig> {
    (2usize..4, prop::sample::select(SplitMethod::ALL.to_vec()))
        .prop_map(|(m, split)| DrTreeConfig::with_degree(m, 2 * m + 1, split).expect("valid"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn random_overlays_are_legal_and_balanced(
        config in arb_config(),
        filters in prop::collection::vec(arb_filter(), 2..40),
        seed in 0u64..1_000,
    ) {
        let cluster = DrTreeCluster::build(config, seed, &filters);
        prop_assert!(cluster.check_legal().is_ok());
        let n = filters.len() as f64;
        let m = config.min_degree() as f64;
        let bound = n.log(m).ceil() + 2.0;
        prop_assert!((cluster.height() as f64) <= bound,
            "height {} > bound {}", cluster.height(), bound);
        prop_assert!(cluster.max_degree_observed() <= config.max_degree());
    }

    #[test]
    fn convergence_from_arbitrary_corruption(
        filters in prop::collection::vec(arb_filter(), 3..25),
        kinds in prop::collection::vec(
            prop::sample::select(CorruptionKind::ALL.to_vec()), 1..6),
        seed in 0u64..1_000,
    ) {
        let mut cluster =
            DrTreeCluster::build(DrTreeConfig::default(), seed, &filters);
        let ids = cluster.ids();
        for (i, kind) in kinds.iter().enumerate() {
            let victim = ids[(i * 5 + 1) % ids.len()];
            cluster.corrupt(victim, *kind);
        }
        let rounds = cluster.stabilize(6_000);
        prop_assert!(rounds.is_some(), "no convergence after {kinds:?}");
        // Closure: once legal, it stays legal without faults.
        cluster.run_rounds(10);
        prop_assert!(cluster.check_legal().is_ok(), "left legal state again");
    }

    #[test]
    fn no_false_negatives_after_stabilization(
        filters in prop::collection::vec(arb_filter(), 2..30),
        events in prop::collection::vec((0.0f64..110.0, 0.0f64..110.0), 1..6),
        seed in 0u64..1_000,
    ) {
        let mut cluster =
            DrTreeCluster::build(DrTreeConfig::default(), seed, &filters);
        let ids = cluster.ids();
        for (i, (x, y)) in events.iter().enumerate() {
            let publisher = ids[i % ids.len()];
            let report = cluster.publish_from(publisher, Point::new([*x, *y]));
            prop_assert!(report.false_negatives.is_empty(),
                "missed {:?}", report.false_negatives);
        }
    }

    #[test]
    fn churn_sequences_recover(
        filters in prop::collection::vec(arb_filter(), 8..25),
        leave_controlled in prop::collection::vec(any::<bool>(), 1..5),
        seed in 0u64..1_000,
    ) {
        let mut cluster =
            DrTreeCluster::build(DrTreeConfig::default(), seed, &filters);
        for (i, controlled) in leave_controlled.iter().enumerate() {
            let ids = cluster.ids();
            if ids.len() <= 2 { break; }
            let victim = ids[(i * 3 + 1) % ids.len()];
            if *controlled {
                cluster.controlled_leave(victim);
            } else {
                cluster.crash(victim);
            }
        }
        prop_assert!(cluster.stabilize(6_000).is_some(), "churn not absorbed");
    }
}
