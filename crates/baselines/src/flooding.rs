//! The flooding baseline: an unstructured overlay broadcasting every
//! event to everybody.
//!
//! Its guarantees bound the design space from the bottom: no false
//! negatives by construction, but every non-interested subscriber is a
//! false positive and the message cost is linear in the population for
//! *every* event — the behavior the paper's §3.1 warns the DR-tree
//! degenerates to if containment is ignored ("the propagation of an
//! event may degenerate into a broadcast").

use drtree_rtree::{PackedRTree, SpatialIndex};
use drtree_spatial::{Point, Rect};

use crate::{Baseline, RoutingOutcome};

/// A `k`-regular random overlay flooding every event.
#[derive(Debug, Clone)]
pub struct FloodingOverlay<const D: usize> {
    filters: Vec<Rect<D>>,
    /// Packed index over `filters` for the exact-matching count.
    matcher: PackedRTree<usize, D>,
    degree: usize,
}

impl<const D: usize> FloodingOverlay<D> {
    /// Builds the overlay; `degree` is each node's neighbor count.
    ///
    /// # Panics
    ///
    /// Panics if `degree == 0`.
    pub fn build(filters: &[Rect<D>], degree: usize) -> Self {
        assert!(degree > 0, "flooding needs at least one neighbor");
        Self {
            filters: filters.to_vec(),
            matcher: PackedRTree::bulk_load(filters.iter().copied().enumerate().collect()),
            degree,
        }
    }

    /// Number of subscriptions.
    pub fn len(&self) -> usize {
        self.filters.len()
    }

    /// `true` when no subscription is registered.
    pub fn is_empty(&self) -> bool {
        self.filters.is_empty()
    }
}

impl<const D: usize> Baseline<D> for FloodingOverlay<D> {
    fn name(&self) -> &'static str {
        "flooding"
    }

    fn route(&self, event: &Point<D>) -> RoutingOutcome {
        let n = self.filters.len();
        if n == 0 {
            return RoutingOutcome::default();
        }
        let matching = self.matcher.count_containing(event);
        // Classic flood: every node forwards once to each neighbor.
        let messages = n * self.degree;
        let receivers = n.saturating_sub(1); // everybody but the publisher
        RoutingOutcome {
            receivers,
            matching,
            false_positives: receivers.saturating_sub(matching),
            false_negatives: 0,
            messages,
            max_hops: diameter_estimate(n, self.degree),
        }
    }

    fn depth(&self) -> usize {
        diameter_estimate(self.filters.len(), self.degree)
    }

    fn max_fanout(&self) -> usize {
        self.degree
    }
}

/// Diameter of a random k-regular graph ≈ log_k(n).
fn diameter_estimate(n: usize, k: usize) -> usize {
    if n <= 1 {
        return 0;
    }
    let k = k.max(2) as f64;
    (n as f64).log(k).ceil() as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn floods_everyone() {
        let filters: Vec<Rect<2>> = (0..10)
            .map(|i| {
                let o = i as f64 * 10.0;
                Rect::new([o, 0.0], [o + 5.0, 5.0])
            })
            .collect();
        let o = FloodingOverlay::build(&filters, 4);
        let out = o.route(&Point::new([2.0, 2.0]));
        assert_eq!(out.receivers, 9);
        assert_eq!(out.matching, 1);
        assert_eq!(out.false_positives, 8);
        assert_eq!(out.false_negatives, 0);
        assert_eq!(out.messages, 40);
    }

    #[test]
    #[should_panic(expected = "neighbor")]
    fn zero_degree_rejected() {
        let _ = FloodingOverlay::<2>::build(&[], 0);
    }

    #[test]
    fn diameter_is_logarithmic() {
        assert_eq!(diameter_estimate(1, 4), 0);
        assert!(diameter_estimate(1000, 4) <= 5);
    }
}
