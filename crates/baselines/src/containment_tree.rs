//! The containment-graph tree overlay (reference \[11\] of the paper:
//! Chand & Felber, "Semantic peer-to-peer overlays for
//! publish/subscribe networks").
//!
//! Subscriptions are organized directly along the containment partial
//! order: each subscription attaches below one of its direct containers
//! (first Hasse parent), and all uncontained subscriptions attach below
//! a *virtual root*. Parents cache their children's filters, so an
//! event only flows into children whose filter matches: routing is
//! exact (no false positives or negatives) *below* the virtual root —
//! the price is the virtual root's fan-out (one probe per uncontained
//! subscription for every event) and a depth as deep as the containment
//! chains (no height balancing).

use drtree_rtree::{PackedRTree, SpatialIndex};
use drtree_spatial::{ContainmentGraph, Point, Rect};

use crate::{Baseline, RoutingOutcome};

/// The containment-graph tree of \[11\].
#[derive(Debug, Clone)]
pub struct ContainmentTreeOverlay<const D: usize> {
    filters: Vec<Rect<D>>,
    /// Packed index over `filters`, for the exact-matching count every
    /// routed event needs.
    matcher: PackedRTree<usize, D>,
    /// children[i] = subscriptions attached below filter i.
    children: Vec<Vec<usize>>,
    /// Subscriptions attached below the virtual root.
    roots: Vec<usize>,
    depth: usize,
}

impl<const D: usize> ContainmentTreeOverlay<D> {
    /// Builds the overlay for `filters`.
    pub fn build(filters: &[Rect<D>]) -> Self {
        let graph = ContainmentGraph::build(filters);
        let mut children = vec![Vec::new(); filters.len()];
        let mut attached = vec![false; filters.len()];
        // Attach every filter below its first direct container.
        for (i, slot) in attached.iter_mut().enumerate() {
            if let Some(&parent) = graph.hasse_parents(i).first() {
                children[parent].push(i);
                *slot = true;
            }
        }
        let roots: Vec<usize> = (0..filters.len()).filter(|&i| !attached[i]).collect();
        let mut overlay = Self {
            filters: filters.to_vec(),
            matcher: PackedRTree::bulk_load(filters.iter().copied().enumerate().collect()),
            children,
            roots,
            depth: 0,
        };
        overlay.depth = overlay.compute_depth();
        overlay
    }

    fn compute_depth(&self) -> usize {
        fn depth_of<const D: usize>(o: &ContainmentTreeOverlay<D>, i: usize) -> usize {
            1 + o.children[i]
                .iter()
                .map(|&c| depth_of(o, c))
                .max()
                .unwrap_or(0)
        }
        self.roots
            .iter()
            .map(|&r| depth_of(self, r))
            .max()
            .unwrap_or(0)
    }

    /// Number of subscriptions.
    pub fn len(&self) -> usize {
        self.filters.len()
    }

    /// `true` when no subscription is registered.
    pub fn is_empty(&self) -> bool {
        self.filters.is_empty()
    }
}

impl<const D: usize> Baseline<D> for ContainmentTreeOverlay<D> {
    fn name(&self) -> &'static str {
        "containment-tree"
    }

    fn route(&self, event: &Point<D>) -> RoutingOutcome {
        let matching = self.matcher.count_containing(event);
        // The virtual root must consult every top-level subscription's
        // filter: with cached filters this costs one *message* only for
        // matching ones, but the root maintains (and keeps fresh) state
        // linear in `roots` — the paper's first inadequacy. Messages
        // below the root go only to matching children (filters cached
        // at the parent), which containment makes exact.
        let mut messages = 0usize;
        let mut receivers = 0usize;
        let mut max_hops = 0usize;
        let mut stack: Vec<(usize, usize)> = self
            .roots
            .iter()
            .filter(|&&r| self.filters[r].contains_point(event))
            .map(|&r| (r, 1))
            .collect();
        while let Some((node, hops)) = stack.pop() {
            messages += 1;
            receivers += 1;
            max_hops = max_hops.max(hops);
            for &c in &self.children[node] {
                if self.filters[c].contains_point(event) {
                    stack.push((c, hops + 1));
                }
            }
        }
        RoutingOutcome {
            receivers,
            matching,
            false_positives: 0, // exact by containment + cached filters
            false_negatives: matching - receivers,
            messages,
            max_hops,
        }
    }

    fn depth(&self) -> usize {
        self.depth
    }

    fn max_fanout(&self) -> usize {
        // The virtual root's children set is the dominating fan-out.
        self.roots
            .len()
            .max(self.children.iter().map(Vec::len).max().unwrap_or(0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nested() -> Vec<Rect<2>> {
        vec![
            Rect::new([0.0, 0.0], [50.0, 50.0]),
            Rect::new([5.0, 5.0], [40.0, 40.0]),
            Rect::new([10.0, 10.0], [30.0, 30.0]),
            Rect::new([60.0, 60.0], [90.0, 90.0]),
        ]
    }

    #[test]
    fn structure_follows_containment() {
        let o = ContainmentTreeOverlay::build(&nested());
        assert_eq!(o.depth(), 3);
        assert_eq!(o.max_fanout(), 2); // two uncontained roots
    }

    #[test]
    fn routing_is_exact() {
        let o = ContainmentTreeOverlay::build(&nested());
        let inside_chain = Point::new([20.0, 20.0]);
        let out = o.route(&inside_chain);
        assert_eq!(out.matching, 3);
        assert_eq!(out.receivers, 3);
        assert_eq!(out.false_positives, 0);
        assert_eq!(out.false_negatives, 0);
        assert_eq!(out.max_hops, 3);

        let nowhere = Point::new([55.0, 55.0]);
        let out = o.route(&nowhere);
        assert_eq!(out.receivers, 0);
        assert_eq!(out.messages, 0);
    }

    #[test]
    fn chains_make_it_deep() {
        // 20 nested rectangles: depth 20 — the imbalance the paper
        // criticizes (a DR-tree would be ~log-deep).
        let mut filters = Vec::new();
        for i in 0..20 {
            let pad = i as f64;
            filters.push(Rect::new([pad, pad], [100.0 - pad, 100.0 - pad]));
        }
        let o = ContainmentTreeOverlay::build(&filters);
        assert_eq!(o.depth(), 20);
    }

    #[test]
    fn empty_overlay() {
        let o = ContainmentTreeOverlay::<2>::build(&[]);
        assert!(o.is_empty());
        assert_eq!(o.depth(), 0);
        let out = o.route(&Point::new([0.0, 0.0]));
        assert_eq!(out.receivers, 0);
    }
}
