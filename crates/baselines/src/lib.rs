//! Baseline overlays the paper compares the DR-tree against (§3.1, §4).
//!
//! Three DHT-free designs discussed in the paper are re-implemented
//! from their descriptions as analytic overlay models (structure +
//! per-event routing outcome):
//!
//! * [`ContainmentTreeOverlay`] — "a direct mapping of the containment
//!   graph to a tree structure \[11\] is often inadequate. First, it
//!   requires a virtual root with as many children as subscriptions
//!   that are not contained in any other subscription. Second … the
//!   resulting tree might be heavily unbalanced."
//! * [`PerDimensionOverlay`] — "building one containment tree per
//!   dimension \[3\] … tends to produce flat trees with high fan-out
//!   and may generate a significant number of false positives."
//! * [`FloodingOverlay`] — the trivial broadcast overlay: no false
//!   negatives, maximal false positives and message cost.
//!
//! Each implements [`Baseline`], producing the same statistics the
//! DR-tree harness reports, so `experiments baselines` can print the
//! comparison table.
//!
//! # Example
//!
//! ```
//! use drtree_baselines::{Baseline, FloodingOverlay};
//! use drtree_spatial::{Point, Rect};
//!
//! let filters: Vec<Rect<2>> = (0..8)
//!     .map(|i| {
//!         let o = f64::from(i) * 10.0;
//!         Rect::new([o, o], [o + 15.0, o + 15.0])
//!     })
//!     .collect();
//! let flooding = FloodingOverlay::build(&filters, 4);
//!
//! // Flooding delivers everywhere (minus the publisher): no false
//! // negatives, maximal message cost.
//! let outcome = flooding.route(&Point::new([12.0, 12.0]));
//! assert_eq!(outcome.receivers, 7);
//! assert_eq!(outcome.matching, 2); // filters 0 and 1 contain the event
//! assert_eq!(outcome.false_negatives, 0);
//! assert_eq!(outcome.messages, 8 * 4);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod containment_tree;
mod flooding;
mod per_dimension;

pub use containment_tree::ContainmentTreeOverlay;
pub use flooding::FloodingOverlay;
pub use per_dimension::PerDimensionOverlay;

use drtree_spatial::Point;

/// Outcome of routing one event through a baseline overlay.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RoutingOutcome {
    /// Subscribers that received the event.
    pub receivers: usize,
    /// Subscribers whose filter matches the event.
    pub matching: usize,
    /// Receivers that did not match (false positives).
    pub false_positives: usize,
    /// Matching subscribers that were missed (false negatives).
    pub false_negatives: usize,
    /// Messages spent.
    pub messages: usize,
    /// Longest hop path taken by any delivery (latency proxy).
    pub max_hops: usize,
}

/// Common interface of the baseline overlays.
pub trait Baseline<const D: usize> {
    /// Short name for report tables.
    fn name(&self) -> &'static str;
    /// Routes one event and accounts the outcome.
    fn route(&self, event: &Point<D>) -> RoutingOutcome;
    /// Depth of the overlay structure (latency bound).
    fn depth(&self) -> usize;
    /// Maximum fan-out any single node must maintain.
    fn max_fanout(&self) -> usize;
}
