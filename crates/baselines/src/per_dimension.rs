//! The per-dimension containment forest (reference \[3\] of the paper:
//! Anceaume, Datta, Gradinariu, Simon, Virgillito — "A semantic overlay
//! for self-* peer-to-peer publish subscribe").
//!
//! "Another approach consists in building one containment tree per
//! dimension and add a subscription to each tree for which it specifies
//! an attribute filter. This solution tends to produce flat trees with
//! high fan-out and may generate a significant number of false
//! positives." (§3.1)
//!
//! Each dimension `d` orders the subscriptions' `d`-intervals by
//! containment; an event's coordinate `x_d` is routed down every
//! dimension tree to the subscriptions whose interval contains it. A
//! subscription receives the event as soon as *one* of its dimension
//! trees delivers it — matching in one dimension says nothing about the
//! others, hence the false positives. Matching subscribers match every
//! dimension and are reached in all their trees, so there are no false
//! negatives.

use drtree_rtree::{PackedRTree, SpatialIndex};
use drtree_spatial::{Point, Rect};

use crate::{Baseline, RoutingOutcome};

/// One node's interval in one dimension tree.
#[derive(Debug, Clone, Copy)]
struct Interval {
    lo: f64,
    hi: f64,
}

impl Interval {
    fn contains_value(&self, x: f64) -> bool {
        self.lo <= x && x <= self.hi
    }

    fn contains_interval(&self, other: &Interval) -> bool {
        self.lo <= other.lo && other.hi <= self.hi
    }

    fn strictly_contains(&self, other: &Interval) -> bool {
        self.contains_interval(other) && (self.lo != other.lo || self.hi != other.hi)
    }
}

/// One dimension's containment tree (forest).
#[derive(Debug, Clone)]
struct DimTree {
    intervals: Vec<Interval>,
    children: Vec<Vec<usize>>,
    roots: Vec<usize>,
}

impl DimTree {
    fn build(intervals: Vec<Interval>) -> Self {
        let n = intervals.len();
        let mut children = vec![Vec::new(); n];
        let mut attached = vec![false; n];
        for i in 0..n {
            // first *minimal* strict container = Hasse parent
            let mut parent: Option<usize> = None;
            for j in 0..n {
                if i != j && intervals[j].strictly_contains(&intervals[i]) {
                    parent = match parent {
                        None => Some(j),
                        Some(p) if intervals[p].strictly_contains(&intervals[j]) => Some(j),
                        keep => keep,
                    };
                }
            }
            if let Some(p) = parent {
                children[p].push(i);
                attached[i] = true;
            }
        }
        let roots = (0..n).filter(|&i| !attached[i]).collect();
        Self {
            intervals,
            children,
            roots,
        }
    }

    /// Members whose interval contains `x`, with messages and hop depth
    /// spent reaching them.
    fn deliver(&self, x: f64) -> (Vec<usize>, usize, usize) {
        let mut delivered = Vec::new();
        let mut messages = 0usize;
        let mut max_hops = 0usize;
        let mut stack: Vec<(usize, usize)> = self
            .roots
            .iter()
            .filter(|&&r| self.intervals[r].contains_value(x))
            .map(|&r| (r, 1))
            .collect();
        while let Some((node, hops)) = stack.pop() {
            messages += 1;
            max_hops = max_hops.max(hops);
            delivered.push(node);
            for &c in &self.children[node] {
                if self.intervals[c].contains_value(x) {
                    stack.push((c, hops + 1));
                }
            }
        }
        (delivered, messages, max_hops)
    }

    fn depth(&self) -> usize {
        fn depth_of(t: &DimTree, i: usize) -> usize {
            1 + t.children[i]
                .iter()
                .map(|&c| depth_of(t, c))
                .max()
                .unwrap_or(0)
        }
        self.roots
            .iter()
            .map(|&r| depth_of(self, r))
            .max()
            .unwrap_or(0)
    }

    fn max_fanout(&self) -> usize {
        self.roots
            .len()
            .max(self.children.iter().map(Vec::len).max().unwrap_or(0))
    }
}

/// The per-dimension forest of \[3\].
#[derive(Debug, Clone)]
pub struct PerDimensionOverlay<const D: usize> {
    filters: Vec<Rect<D>>,
    /// Packed index over `filters` for the exact-matching count.
    matcher: PackedRTree<usize, D>,
    trees: Vec<DimTree>,
}

impl<const D: usize> PerDimensionOverlay<D> {
    /// Builds one containment tree per dimension.
    pub fn build(filters: &[Rect<D>]) -> Self {
        let trees = (0..D)
            .map(|d| {
                DimTree::build(
                    filters
                        .iter()
                        .map(|f| Interval {
                            lo: f.lo(d),
                            hi: f.hi(d),
                        })
                        .collect(),
                )
            })
            .collect();
        Self {
            filters: filters.to_vec(),
            matcher: PackedRTree::bulk_load(filters.iter().copied().enumerate().collect()),
            trees,
        }
    }

    /// Number of subscriptions.
    pub fn len(&self) -> usize {
        self.filters.len()
    }

    /// `true` when no subscription is registered.
    pub fn is_empty(&self) -> bool {
        self.filters.is_empty()
    }
}

impl<const D: usize> Baseline<D> for PerDimensionOverlay<D> {
    fn name(&self) -> &'static str {
        "per-dimension"
    }

    fn route(&self, event: &Point<D>) -> RoutingOutcome {
        let matching = self.matcher.count_containing(event);
        let mut received = vec![false; self.filters.len()];
        let mut messages = 0usize;
        let mut max_hops = 0usize;
        for (d, tree) in self.trees.iter().enumerate() {
            let (delivered, msgs, hops) = tree.deliver(event.coord(d));
            messages += msgs;
            max_hops = max_hops.max(hops);
            for i in delivered {
                received[i] = true;
            }
        }
        let receivers = received.iter().filter(|r| **r).count();
        let false_positives = received
            .iter()
            .enumerate()
            .filter(|(i, r)| **r && !self.filters[*i].contains_point(event))
            .count();
        let false_negatives = received
            .iter()
            .enumerate()
            .filter(|(i, r)| !**r && self.filters[*i].contains_point(event))
            .count();
        RoutingOutcome {
            receivers,
            matching,
            false_positives,
            false_negatives,
            messages,
            max_hops,
        }
    }

    fn depth(&self) -> usize {
        self.trees.iter().map(DimTree::depth).max().unwrap_or(0)
    }

    fn max_fanout(&self) -> usize {
        self.trees
            .iter()
            .map(DimTree::max_fanout)
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn filters() -> Vec<Rect<2>> {
        vec![
            Rect::new([0.0, 0.0], [10.0, 10.0]), // 0
            Rect::new([2.0, 50.0], [8.0, 60.0]), // 1: x inside 0's x-range, y far away
            Rect::new([50.0, 2.0], [60.0, 8.0]), // 2: y inside 0's y-range, x far away
        ]
    }

    #[test]
    fn false_positives_from_single_dimension_match() {
        let o = PerDimensionOverlay::build(&filters());
        // Event inside filter 0 only; its x matches filter 1's x-interval
        // and its y matches filter 2's y-interval.
        let out = o.route(&Point::new([5.0, 5.0]));
        assert_eq!(out.matching, 1);
        assert_eq!(out.receivers, 3, "dimension trees over-deliver");
        assert_eq!(out.false_positives, 2);
        assert_eq!(out.false_negatives, 0);
    }

    #[test]
    fn no_false_negatives() {
        let o = PerDimensionOverlay::build(&filters());
        for p in [
            Point::new([5.0, 5.0]),
            Point::new([5.0, 55.0]),
            Point::new([55.0, 5.0]),
            Point::new([99.0, 99.0]),
        ] {
            let out = o.route(&p);
            assert_eq!(out.false_negatives, 0, "at {p}");
        }
    }

    #[test]
    fn flat_trees_have_high_fanout() {
        // Many disjoint intervals ⇒ every subscription is a root in both
        // dimension trees ⇒ fan-out ≈ N (the paper's critique).
        let filters: Vec<Rect<2>> = (0..30)
            .map(|i| {
                let o = i as f64 * 3.0;
                Rect::new([o, o], [o + 2.0, o + 2.0])
            })
            .collect();
        let o = PerDimensionOverlay::build(&filters);
        assert_eq!(o.max_fanout(), 30);
        assert_eq!(o.depth(), 1);
    }
}
