//! Semantic equivalence of the predicate language and its geometric
//! compilation: evaluating the conjunction predicate-by-predicate must
//! agree with testing the compiled rectangle (up to the documented
//! closed-boundary treatment of strict inequalities).

use drtree_spatial::{Event, FilterExpr, Op, Point, Schema};
use proptest::prelude::*;

fn eval_predicate(op: Op, lhs: f64, rhs: f64) -> bool {
    match op {
        Op::Eq => lhs == rhs,
        Op::Lt => lhs < rhs,
        Op::Le => lhs <= rhs,
        Op::Gt => lhs > rhs,
        Op::Ge => lhs >= rhs,
    }
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop::sample::select(vec![Op::Eq, Op::Lt, Op::Le, Op::Gt, Op::Ge])
}

proptest! {
    #[test]
    fn compiled_rect_agrees_with_direct_evaluation(
        predicates in prop::collection::vec(
            (0usize..2, arb_op(), -50.0f64..50.0), 0..8),
        event in (-60.0f64..60.0, -60.0f64..60.0),
    ) {
        let schema = Schema::new(["x", "y"]);
        let mut expr = FilterExpr::new();
        for (dim, op, v) in &predicates {
            expr = expr.and(if *dim == 0 { "x" } else { "y" }, *op, *v);
        }
        let Ok(rect) = expr.compile::<2>(&schema) else {
            // Unsatisfiable conjunctions must reject *every* event under
            // direct evaluation too (for some dimension no value passes);
            // nothing further to check geometrically.
            return Ok(());
        };
        let point = Point::new([event.0, event.1]);
        let direct = predicates.iter().all(|(dim, op, v)| {
            let lhs = if *dim == 0 { event.0 } else { event.1 };
            eval_predicate(*op, lhs, *v)
        });
        let geometric = rect.contains_point(&point);
        // Strict inequalities compile to closed bounds, so geometric
        // containment may differ from direct evaluation only ON the
        // boundary (a measure-zero set the docs call out).
        let on_boundary = (0..2).any(|d| {
            point.coord(d) == rect.lo(d) || point.coord(d) == rect.hi(d)
        });
        if !on_boundary {
            prop_assert_eq!(direct, geometric,
                "mismatch off-boundary: {:?} at {:?}", predicates, point);
        } else {
            // On the boundary the geometric answer may only be more
            // permissive, never less (no false negatives).
            prop_assert!(geometric || !direct);
        }
    }

    #[test]
    fn event_compilation_is_order_independent(
        x in -50.0f64..50.0,
        y in -50.0f64..50.0,
    ) {
        let schema = Schema::new(["x", "y"]);
        let a = Event::new().with("x", x).with("y", y).compile::<2>(&schema).unwrap();
        let b = Event::new().with("y", y).with("x", x).compile::<2>(&schema).unwrap();
        prop_assert_eq!(a, b);
    }
}
