//! Property-based tests for the rectangle algebra and containment order.

use drtree_spatial::{ContainmentGraph, Point, Rect};
use proptest::prelude::*;

fn arb_rect() -> impl Strategy<Value = Rect<2>> {
    (
        -100.0f64..100.0,
        -100.0f64..100.0,
        0.0f64..50.0,
        0.0f64..50.0,
    )
        .prop_map(|(x, y, w, h)| Rect::new([x, y], [x + w, y + h]))
}

fn arb_point() -> impl Strategy<Value = Point<2>> {
    (-150.0f64..150.0, -150.0f64..150.0).prop_map(|(x, y)| Point::new([x, y]))
}

proptest! {
    #[test]
    fn union_covers_both(a in arb_rect(), b in arb_rect()) {
        let u = a.union(&b);
        prop_assert!(u.contains_rect(&a));
        prop_assert!(u.contains_rect(&b));
    }

    #[test]
    fn union_is_commutative_and_idempotent(a in arb_rect(), b in arb_rect()) {
        prop_assert_eq!(a.union(&b), b.union(&a));
        prop_assert_eq!(a.union(&a), a);
    }

    #[test]
    fn union_is_associative(a in arb_rect(), b in arb_rect(), c in arb_rect()) {
        prop_assert_eq!(a.union(&b).union(&c), a.union(&b.union(&c)));
    }

    #[test]
    fn intersection_contained_in_both(a in arb_rect(), b in arb_rect()) {
        if let Some(i) = a.intersection(&b) {
            prop_assert!(a.contains_rect(&i));
            prop_assert!(b.contains_rect(&i));
            prop_assert!(a.intersects(&b));
        } else {
            prop_assert!(!a.intersects(&b));
        }
    }

    #[test]
    fn containment_implies_point_containment(a in arb_rect(), b in arb_rect(), p in arb_point()) {
        // The defining property of subscription containment (§2.1):
        // S1 ⊒ S2 iff every event matching S2 matches S1.
        if a.contains_rect(&b) && b.contains_point(&p) {
            prop_assert!(a.contains_point(&p));
        }
    }

    #[test]
    fn containment_is_antisymmetric_and_transitive(
        a in arb_rect(), b in arb_rect(), c in arb_rect()
    ) {
        if a.contains_rect(&b) && b.contains_rect(&a) {
            prop_assert_eq!(a, b);
        }
        if a.contains_rect(&b) && b.contains_rect(&c) {
            prop_assert!(a.contains_rect(&c));
        }
    }

    #[test]
    fn area_monotone_under_containment(a in arb_rect(), b in arb_rect()) {
        if a.contains_rect(&b) {
            prop_assert!(a.area() >= b.area());
        }
    }

    #[test]
    fn enlargement_nonnegative(a in arb_rect(), b in arb_rect()) {
        prop_assert!(a.enlargement(&b) >= 0.0);
        prop_assert!(a.enlargement(&a).abs() < 1e-9);
    }

    #[test]
    fn deficit_bounds(a in arb_rect(), b in arb_rect()) {
        let d = a.deficit(&b);
        prop_assert!(d >= -1e-9);
        prop_assert!(d <= a.area() + 1e-9);
        // full cover → zero deficit
        if b.contains_rect(&a) {
            prop_assert!(d.abs() < 1e-9);
        }
    }

    #[test]
    fn overlap_symmetric(a in arb_rect(), b in arb_rect()) {
        prop_assert!((a.overlap_area(&b) - b.overlap_area(&a)).abs() < 1e-9);
    }

    #[test]
    fn union_all_equals_fold(rects in prop::collection::vec(arb_rect(), 1..20)) {
        let expected = rects.iter().skip(1).fold(rects[0], |acc, r| acc.union(r));
        prop_assert_eq!(Rect::union_all(rects.iter()), Some(expected));
    }

    #[test]
    fn hasse_is_reduction_of_relation(rects in prop::collection::vec(arb_rect(), 0..15)) {
        let g = ContainmentGraph::build(&rects);
        for i in 0..rects.len() {
            // every hasse edge is in the relation
            for &j in g.hasse_children(i) {
                prop_assert!(g.contains(i, j));
            }
            // descendants reachable through hasse edges = full relation
            let mut reach = std::collections::BTreeSet::new();
            let mut stack: Vec<usize> = g.hasse_children(i).to_vec();
            while let Some(k) = stack.pop() {
                if reach.insert(k) {
                    stack.extend_from_slice(g.hasse_children(k));
                }
            }
            let full: std::collections::BTreeSet<usize> =
                g.descendants(i).iter().copied().collect();
            prop_assert_eq!(reach, full);
        }
    }

    #[test]
    fn roots_are_uncontained(rects in prop::collection::vec(arb_rect(), 0..15)) {
        let g = ContainmentGraph::build(&rects);
        for &r in g.roots() {
            for i in 0..rects.len() {
                prop_assert!(!g.contains(i, r));
            }
        }
    }
}
