//! The running example of the paper: subscriptions `S1..S8` and events
//! `a..d` of Figure 1.
//!
//! The original figure does not list coordinates, so exact geometry is not
//! recoverable; the values here are chosen to reproduce every fact the
//! paper states about the example:
//!
//! * `S4` is contained in **both** `S2` and `S3`, which are incomparable
//!   (§3.1: "This case is illustrated in Figure 1, with S4 being contained
//!   in both S2 and S3").
//! * `S3` has the largest coverage, so the root-election rule of Figure 6
//!   promotes `S3` as the DR-tree root (Figure 4 shows `S3` at the root).
//! * Event `a` is matched by `S2`, `S3` and `S4` only (§3: producing `a`
//!   at `S2` reaches exactly `S2`, `S3`, `S4` with no false positives).
//! * The containment graph is non-trivial: chains of depth 3
//!   (`S2 ⊐ S1 ⊐ S7`) and a diamond (`S4` under both `S2` and `S3`).
//!
//! Used by the figure-reproduction tests, the examples, and as a tiny
//! smoke workload throughout the workspace.

use crate::{ContainmentGraph, Point, Rect};

/// Number of sample subscriptions.
pub const N_SUBSCRIPTIONS: usize = 8;

/// The sample subscriptions `S1..S8`, in paper order (`subscriptions()[0]`
/// is `S1`).
pub fn subscriptions() -> [Rect<2>; N_SUBSCRIPTIONS] {
    [
        Rect::new([10.0, 35.0], [30.0, 85.0]), // S1 ⊂ S2
        Rect::new([5.0, 30.0], [55.0, 90.0]),  // S2
        Rect::new([35.0, 5.0], [95.0, 95.0]),  // S3 (largest area → root)
        Rect::new([40.0, 45.0], [50.0, 70.0]), // S4 ⊂ S2 ∩ S3 (the diamond)
        Rect::new([60.0, 10.0], [90.0, 40.0]), // S5 ⊂ S3
        Rect::new([65.0, 15.0], [80.0, 30.0]), // S6 ⊂ S5
        Rect::new([15.0, 45.0], [25.0, 75.0]), // S7 ⊂ S1
        Rect::new([45.0, 10.0], [75.0, 35.0]), // S8 ⊂ S3, overlaps S5
    ]
}

/// Human-readable labels for the sample subscriptions.
pub const LABELS: [&str; N_SUBSCRIPTIONS] = ["S1", "S2", "S3", "S4", "S5", "S6", "S7", "S8"];

/// Sample event `a`: matched by `S2`, `S3`, `S4` only.
pub fn event_a() -> Point<2> {
    Point::new([45.0, 50.0])
}

/// Sample event `b`: matched by `S1` and (by containment) `S2`.
pub fn event_b() -> Point<2> {
    Point::new([20.0, 40.0])
}

/// Sample event `c`: matched by `S3`, `S5`, `S6`, `S8`.
pub fn event_c() -> Point<2> {
    Point::new([70.0, 20.0])
}

/// Sample event `d`: matched by no subscription.
pub fn event_d() -> Point<2> {
    Point::new([2.0, 5.0])
}

/// All four sample events with their labels.
pub fn events() -> [(&'static str, Point<2>); 4] {
    [
        ("a", event_a()),
        ("b", event_b()),
        ("c", event_c()),
        ("d", event_d()),
    ]
}

/// Indices (0-based) of the subscriptions matching `event`.
pub fn matching(event: &Point<2>) -> Vec<usize> {
    subscriptions()
        .iter()
        .enumerate()
        .filter(|(_, s)| s.contains_point(event))
        .map(|(i, _)| i)
        .collect()
}

/// The containment graph of the sample (the right side of Figure 1).
pub fn containment_graph() -> ContainmentGraph {
    ContainmentGraph::build(&subscriptions())
}

#[cfg(test)]
mod tests {
    use super::*;

    const S1: usize = 0;
    const S2: usize = 1;
    const S3: usize = 2;
    const S4: usize = 3;
    const S5: usize = 4;
    const S6: usize = 5;
    const S7: usize = 6;
    const S8: usize = 7;

    #[test]
    fn s4_diamond_as_stated_in_paper() {
        let g = containment_graph();
        assert!(g.contains(S2, S4));
        assert!(g.contains(S3, S4));
        assert!(!g.contains(S2, S3));
        assert!(!g.contains(S3, S2));
        assert_eq!(g.hasse_parents(S4), vec![S2, S3]);
    }

    #[test]
    fn containment_topology() {
        let g = containment_graph();
        assert_eq!(g.roots(), &[S2, S3]);
        assert!(g.contains(S2, S1));
        assert!(g.contains(S1, S7));
        assert!(g.contains(S2, S7)); // transitive
        assert!(g.contains(S3, S5));
        assert!(g.contains(S5, S6));
        assert!(g.contains(S3, S8));
        assert!(!g.contains(S5, S8));
        assert!(!g.contains(S8, S5));
        assert_eq!(g.max_depth(), 3);
    }

    #[test]
    fn s3_has_largest_area() {
        let subs = subscriptions();
        let a3 = subs[S3].area();
        for (i, s) in subs.iter().enumerate() {
            if i != S3 {
                assert!(s.area() < a3, "S{} should be smaller than S3", i + 1);
            }
        }
    }

    #[test]
    fn event_a_matches_s2_s3_s4_only() {
        assert_eq!(matching(&event_a()), vec![S2, S3, S4]);
    }

    #[test]
    fn event_b_matches_s1_s2() {
        assert_eq!(matching(&event_b()), vec![S1, S2]);
    }

    #[test]
    fn event_c_matches_s3_s5_s6_s8() {
        assert_eq!(matching(&event_c()), vec![S3, S5, S6, S8]);
    }

    #[test]
    fn event_d_matches_nothing() {
        assert!(matching(&event_d()).is_empty());
    }
}
