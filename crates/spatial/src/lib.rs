//! Spatial primitives for the DR-tree reproduction.
//!
//! This crate implements the geometric and filter-language layer of
//! *"Stabilizing Peer-to-Peer Spatial Filters"* (Bianchi, Datta, Felber,
//! Gradinariu — ICDCS 2007):
//!
//! * [`Point`] — an event position in `D`-dimensional attribute space
//!   (paper §2.1: "An event specifies a value for each attribute and
//!   corresponds geometrically to a point").
//! * [`Rect`] — a poly-space rectangle; subscriptions (content-based
//!   filters) and minimum bounding rectangles (MBRs) are both rectangles.
//! * [`filter`] — the predicate language: conjunctions of range predicates
//!   over named attributes, compiled against a [`Schema`] into a [`Rect`].
//! * [`containment`] — the subscription-containment partial order and its
//!   Hasse diagram (the paper's Figure 1 "containment graph").
//! * [`hilbert`] — D-dimensional Hilbert-curve indexing (Skilling's
//!   transpose algorithm), the sort key behind the packed R-tree
//!   backend's bulk loading.
//! * [`sample`] — the running example of the paper (subscriptions
//!   `S1..S8`, events `a..d` of Figure 1), with coordinates chosen to
//!   reproduce every containment/matching fact stated in the text.
//!
//! # Example
//!
//! ```
//! use drtree_spatial::{Rect, Point};
//!
//! let filter: Rect<2> = Rect::new([0.0, 0.0], [10.0, 5.0]);
//! let event = Point::new([3.0, 4.0]);
//! assert!(filter.contains_point(&event));
//!
//! let other = Rect::new([2.0, 1.0], [4.0, 4.5]);
//! assert!(filter.contains_rect(&other)); // subscription containment
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod containment;
pub mod filter;
pub mod hilbert;
mod point;
mod rect;
pub mod sample;

pub use containment::ContainmentGraph;
pub use filter::{Event, FilterExpr, Op, Predicate, Schema};
pub use point::Point;
pub use rect::{InvalidRectError, Rect};
