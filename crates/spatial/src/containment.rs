//! The subscription-containment partial order and its graph (§2.1, Fig. 1).
//!
//! "Subscription `S1` contains another subscription `S2` (written
//! `S1 ⊒ S2`) iff any message `m` that matches `S2` also matches `S1`.
//! … The containment relationship is transitive and defines a partial
//! order." Geometrically, containment is rectangle enclosure.
//!
//! [`ContainmentGraph`] computes, for a set of filters, both the full
//! relation and its transitive reduction (the Hasse diagram drawn on the
//! right of the paper's Figure 1), which the containment-tree baseline
//! (\[11\] in the paper) maps directly onto an overlay.

use std::fmt;

use crate::Rect;

/// The containment relation over a fixed set of filters.
///
/// Indices refer to the order of the filter slice passed to
/// [`ContainmentGraph::build`].
///
/// # Example
///
/// ```
/// use drtree_spatial::{Rect, ContainmentGraph};
/// let filters: Vec<Rect<2>> = vec![
///     Rect::new([0.0, 0.0], [10.0, 10.0]), // 0: outermost
///     Rect::new([1.0, 1.0], [5.0, 5.0]),   // 1: inside 0
///     Rect::new([2.0, 2.0], [3.0, 3.0]),   // 2: inside 1 (and 0)
/// ];
/// let g = ContainmentGraph::build(&filters);
/// assert!(g.contains(0, 2));
/// // The Hasse diagram keeps only the direct edge 0→1 and 1→2:
/// assert_eq!(g.hasse_children(0), &[1]);
/// assert_eq!(g.hasse_children(1), &[2]);
/// assert_eq!(g.roots(), &[0]);
/// ```
#[derive(Debug, Clone)]
pub struct ContainmentGraph {
    n: usize,
    /// `relation[i]` = sorted indices j with filter_i ⊐ filter_j (strict).
    relation: Vec<Vec<usize>>,
    /// Transitive reduction of `relation`.
    hasse: Vec<Vec<usize>>,
    /// Indices not strictly contained in any other filter.
    roots: Vec<usize>,
}

impl ContainmentGraph {
    /// Builds the containment graph of `filters`.
    ///
    /// Equal rectangles do not contain each other *strictly*; they end up
    /// as siblings (both roots, or both children of the same containers).
    /// Runs in `O(n²·D + n³)` for the transitive reduction — fine for the
    /// subscription-set sizes the overlay manages per neighborhood.
    pub fn build<const D: usize>(filters: &[Rect<D>]) -> Self {
        let n = filters.len();
        let mut relation = vec![Vec::new(); n];
        for i in 0..n {
            for j in 0..n {
                if i != j && filters[i].contains_rect_strict(&filters[j]) {
                    relation[i].push(j);
                }
            }
        }
        // Transitive reduction: drop i→j if some k with i→k and k→j exists.
        let mut hasse = vec![Vec::new(); n];
        for i in 0..n {
            'next: for &j in &relation[i] {
                for &k in &relation[i] {
                    if k != j && relation[k].binary_search(&j).is_ok() {
                        continue 'next;
                    }
                }
                hasse[i].push(j);
            }
        }
        let mut contained = vec![false; n];
        for children in &relation {
            for &j in children {
                contained[j] = true;
            }
        }
        let roots = (0..n).filter(|&i| !contained[i]).collect();
        Self {
            n,
            relation,
            hasse,
            roots,
        }
    }

    /// Number of filters in the graph.
    pub fn len(&self) -> usize {
        self.n
    }

    /// `true` if the graph was built over an empty filter set.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// `true` iff filter `i` strictly contains filter `j`.
    ///
    /// # Panics
    ///
    /// Panics if `i` or `j` is out of range.
    pub fn contains(&self, i: usize, j: usize) -> bool {
        assert!(i < self.n && j < self.n, "index out of range");
        self.relation[i].binary_search(&j).is_ok()
    }

    /// All filters strictly contained in `i` (transitively).
    pub fn descendants(&self, i: usize) -> &[usize] {
        &self.relation[i]
    }

    /// Direct containees of `i` in the Hasse diagram.
    pub fn hasse_children(&self, i: usize) -> &[usize] {
        &self.hasse[i]
    }

    /// Direct containers of `i` in the Hasse diagram.
    pub fn hasse_parents(&self, i: usize) -> Vec<usize> {
        (0..self.n)
            .filter(|&p| self.hasse[p].contains(&i))
            .collect()
    }

    /// Filters not strictly contained in any other filter.
    pub fn roots(&self) -> &[usize] {
        &self.roots
    }

    /// Longest chain length from `i` downward (a single filter has
    /// depth 1).
    pub fn depth_below(&self, i: usize) -> usize {
        1 + self.hasse[i]
            .iter()
            .map(|&c| self.depth_below(c))
            .max()
            .unwrap_or(0)
    }

    /// Longest containment chain in the whole graph.
    pub fn max_depth(&self) -> usize {
        self.roots
            .iter()
            .map(|&r| self.depth_below(r))
            .max()
            .unwrap_or(0)
    }

    /// Total number of Hasse edges.
    pub fn hasse_edge_count(&self) -> usize {
        self.hasse.iter().map(Vec::len).sum()
    }
}

impl fmt::Display for ContainmentGraph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "containment graph ({} filters)", self.n)?;
        for i in 0..self.n {
            if !self.hasse[i].is_empty() {
                writeln!(f, "  {} ⊐ {:?}", i, self.hasse[i])?;
            }
        }
        write!(f, "  roots: {:?}", self.roots)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rects() -> Vec<Rect<2>> {
        vec![
            Rect::new([0.0, 0.0], [10.0, 10.0]),  // 0 big
            Rect::new([1.0, 1.0], [5.0, 5.0]),    // 1 ⊂ 0
            Rect::new([2.0, 2.0], [3.0, 3.0]),    // 2 ⊂ 1 ⊂ 0
            Rect::new([6.0, 6.0], [9.0, 9.0]),    // 3 ⊂ 0, sibling of 1
            Rect::new([20.0, 0.0], [30.0, 10.0]), // 4 disjoint root
        ]
    }

    #[test]
    fn full_relation_is_transitive() {
        let g = ContainmentGraph::build(&rects());
        assert!(g.contains(0, 1));
        assert!(g.contains(1, 2));
        assert!(g.contains(0, 2)); // transitivity is materialized
        assert!(!g.contains(1, 3));
        assert!(!g.contains(4, 0));
    }

    #[test]
    fn hasse_reduction_drops_transitive_edges() {
        let g = ContainmentGraph::build(&rects());
        assert_eq!(g.hasse_children(0), &[1, 3]);
        assert_eq!(g.hasse_children(1), &[2]);
        assert!(g.hasse_children(2).is_empty());
        assert_eq!(g.hasse_parents(2), vec![1]);
    }

    #[test]
    fn roots_and_depth() {
        let g = ContainmentGraph::build(&rects());
        assert_eq!(g.roots(), &[0, 4]);
        assert_eq!(g.max_depth(), 3); // 0 → 1 → 2
        assert_eq!(g.depth_below(4), 1);
    }

    #[test]
    fn diamond_containment() {
        // d is inside both a and b, which are incomparable: a diamond
        // (the S4 ⊂ S2, S4 ⊂ S3 case the paper points out).
        let filters = vec![
            Rect::new([0.0, 0.0], [6.0, 4.0]),  // a
            Rect::new([2.0, 0.0], [10.0, 4.0]), // b
            Rect::new([3.0, 1.0], [5.0, 2.0]),  // d ⊂ a, d ⊂ b
        ];
        let g = ContainmentGraph::build(&filters);
        assert_eq!(g.hasse_parents(2), vec![0, 1]);
        assert_eq!(g.roots(), &[0, 1]);
    }

    #[test]
    fn equal_rects_are_incomparable() {
        let r = Rect::new([0.0, 0.0], [1.0, 1.0]);
        let g = ContainmentGraph::build(&[r, r]);
        assert!(!g.contains(0, 1));
        assert!(!g.contains(1, 0));
        assert_eq!(g.roots(), &[0, 1]);
    }

    #[test]
    fn empty_graph() {
        let g = ContainmentGraph::build::<2>(&[]);
        assert!(g.is_empty());
        assert_eq!(g.max_depth(), 0);
        assert_eq!(g.roots(), &[] as &[usize]);
    }

    #[test]
    fn display_mentions_roots() {
        let g = ContainmentGraph::build(&rects());
        let s = g.to_string();
        assert!(s.contains("roots"));
    }
}
