use std::fmt;

/// A point in `D`-dimensional attribute space.
///
/// In the publish/subscribe model of the paper, an *event* assigns a value
/// to every attribute and therefore "corresponds geometrically to a point"
/// (§2.1). `Point` is the geometric form; the attribute-named form is
/// [`crate::filter::Event`].
///
/// # Example
///
/// ```
/// use drtree_spatial::Point;
/// let p = Point::new([1.0, 2.0]);
/// assert_eq!(p.coord(0), 1.0);
/// assert_eq!(p.coords(), &[1.0, 2.0]);
/// ```
#[derive(Clone, Copy, PartialEq)]
pub struct Point<const D: usize> {
    coords: [f64; D],
}

impl<const D: usize> Point<D> {
    /// Creates a point from its coordinates.
    ///
    /// # Panics
    ///
    /// Panics if any coordinate is NaN.
    pub fn new(coords: [f64; D]) -> Self {
        assert!(
            coords.iter().all(|c| !c.is_nan()),
            "point coordinates must not be NaN"
        );
        Self { coords }
    }

    /// The coordinate along dimension `dim`.
    ///
    /// # Panics
    ///
    /// Panics if `dim >= D`.
    pub fn coord(&self, dim: usize) -> f64 {
        self.coords[dim]
    }

    /// All coordinates, in dimension order.
    pub fn coords(&self) -> &[f64; D] {
        &self.coords
    }

    /// The origin (all coordinates zero).
    pub fn origin() -> Self {
        Self { coords: [0.0; D] }
    }

    /// Squared Euclidean distance to another point.
    ///
    /// Exposed because the R\*-tree split/reinsertion heuristics rank
    /// entries by distance to a center and never need the square root.
    pub fn distance2(&self, other: &Self) -> f64 {
        self.coords
            .iter()
            .zip(other.coords.iter())
            .map(|(a, b)| (a - b) * (a - b))
            .sum()
    }
}

impl<const D: usize> Default for Point<D> {
    fn default() -> Self {
        Self::origin()
    }
}

impl<const D: usize> fmt::Debug for Point<D> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Point{:?}", self.coords)
    }
}

impl<const D: usize> fmt::Display for Point<D> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, c) in self.coords.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{c}")?;
        }
        write!(f, ")")
    }
}

impl<const D: usize> From<[f64; D]> for Point<D> {
    fn from(coords: [f64; D]) -> Self {
        Self::new(coords)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_and_accessors() {
        let p = Point::new([1.0, -2.5, 3.0]);
        assert_eq!(p.coord(0), 1.0);
        assert_eq!(p.coord(1), -2.5);
        assert_eq!(p.coords(), &[1.0, -2.5, 3.0]);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_rejected() {
        let _ = Point::new([f64::NAN, 0.0]);
    }

    #[test]
    fn distance2() {
        let a = Point::new([0.0, 0.0]);
        let b = Point::new([3.0, 4.0]);
        assert_eq!(a.distance2(&b), 25.0);
        assert_eq!(b.distance2(&a), 25.0);
        assert_eq!(a.distance2(&a), 0.0);
    }

    #[test]
    fn default_is_origin() {
        assert_eq!(Point::<2>::default(), Point::origin());
    }

    #[test]
    fn display() {
        let p = Point::new([1.0, 2.0]);
        assert_eq!(p.to_string(), "(1, 2)");
    }

    #[test]
    fn from_array() {
        let p: Point<2> = [4.0, 5.0].into();
        assert_eq!(p, Point::new([4.0, 5.0]));
    }
}
