//! D-dimensional Hilbert curve indexing.
//!
//! The packed R-tree backend (`drtree-rtree`) orders entries along a
//! Hilbert space-filling curve before tiling them into nodes: entries
//! adjacent on the curve are adjacent in space, so bottom-up packing
//! yields nodes with small, well-separated MBRs — the same construction
//! flat spatial indexes like flatbush/geo-index use.
//!
//! The transformation from axis coordinates to a Hilbert index is John
//! Skilling's transpose algorithm ("Programming the Hilbert curve",
//! AIP 2004), which works in any dimension: coordinates are converted
//! in place to the *transpose* of the index (one bit-plane per
//! dimension), then the planes are interleaved into a single integer.
//!
//! # Example
//!
//! ```
//! use drtree_spatial::hilbert::{hilbert_index, GridMapper, HILBERT_ORDER};
//! use drtree_spatial::Rect;
//!
//! // Raw curve: nearby cells get nearby indexes.
//! let a = hilbert_index([1u32, 2]);
//! let b = hilbert_index([1u32, 3]);
//! assert!(a.abs_diff(b) < hilbert_index([40_000u32, 60_000]).abs_diff(a));
//!
//! // Mapping rectangle centers onto the curve's grid.
//! let world: Rect<2> = Rect::new([0.0, 0.0], [100.0, 100.0]);
//! let mapper = GridMapper::new(&world);
//! let key = mapper.key(&Rect::new([10.0, 10.0], [12.0, 12.0]));
//! assert!(key < 1u128 << (2 * HILBERT_ORDER));
//! ```

use crate::Rect;

/// Bits of Hilbert resolution per dimension.
///
/// This is the order used up to 8 dimensions (`8 × 16 = 128` bits, the
/// `u128` limit); wider spaces automatically coarsen — see
/// [`order_for`]. 16 bits per axis is a 65536-cell grid, far finer
/// than node-size-16 tiling can distinguish.
pub const HILBERT_ORDER: u32 = 16;

/// Bits of resolution per dimension actually used for `D` dimensions:
/// [`HILBERT_ORDER`] capped so `D · order ≤ 128` always holds.
///
/// Past 128 dimensions the order reaches 0 and every key collapses to
/// 0 — curve quality is a *packing heuristic* only, so consumers stay
/// correct (searches never depend on key quality), they just lose
/// locality-aware packing.
pub const fn order_for(dims: usize) -> u32 {
    match 128usize.checked_div(dims) {
        None => HILBERT_ORDER, // zero-dimensional: order is moot
        Some(fit) if (fit as u32) < HILBERT_ORDER => fit as u32,
        Some(_) => HILBERT_ORDER,
    }
}

/// The Hilbert index of a grid cell, for coordinates already quantized
/// to [`order_for`]`(D)` bits per dimension.
///
/// Coordinates wider than `order_for(D)` bits are masked down (so the
/// curve never overflows `u128`, whatever `D` is). For `D = 0` — or a
/// `D` so large the per-dimension order reaches 0 — the index is 0.
pub fn hilbert_index<const D: usize>(coords: [u32; D]) -> u128 {
    let order = order_for(D);
    if D == 0 || order == 0 {
        return 0;
    }
    let mut x = coords.map(|c| c & ((1u32 << order) - 1));
    axes_to_transpose(&mut x, order);
    interleave(&x, order)
}

/// Skilling's `AxestoTranspose`: converts axis coordinates, in place,
/// into the transposed Hilbert index (bit-plane form).
///
/// The textbook formulation branches on a data-dependent bit twice per
/// `(bit-plane, dimension)` pair — ~30 unpredictable branches per key
/// in 2-D, which made key derivation dominate bulk loading. Both
/// conditionals are expressed here as mask arithmetic instead; the body
/// is straight-line code the compiler can pipeline.
fn axes_to_transpose<const D: usize>(x: &mut [u32; D], order: u32) {
    let high = 1u32 << (order - 1);

    // Inverse undo. Per element: invert the low bits of x[0] when the
    // current bit of x[i] is set, otherwise swap the differing low bits
    // of x[0] and x[i]. `mask` selects between the two outcomes.
    let mut q = high;
    while q > 1 {
        let p = q - 1;
        for i in 0..D {
            let mask = u32::from(x[i] & q != 0).wrapping_neg();
            let swap = (x[0] ^ x[i]) & p & !mask;
            x[0] ^= (p & mask) | swap;
            x[i] ^= swap;
        }
        q >>= 1;
    }

    // Gray encode.
    for i in 1..D {
        x[i] ^= x[i - 1];
    }
    let mut t = 0;
    let mut q = high;
    while q > 1 {
        t ^= (q - 1) & u32::from(x[D - 1] & q != 0).wrapping_neg();
        q >>= 1;
    }
    for v in x.iter_mut() {
        *v ^= t;
    }
}

/// Interleaves the transposed bit-planes into a single index:
/// the index's most significant bit is the top bit of `x[0]`, then the
/// top bit of `x[1]`, …, down through the bit-planes.
fn interleave<const D: usize>(x: &[u32; D], order: u32) -> u128 {
    if D == 2 {
        // Bulk-load hot path (2-D always runs at full order):
        // bit-spread instead of the 32-step loop.
        return u128::from(spread16(x[0]) << 1 | spread16(x[1]));
    }
    let mut out = 0u128;
    for bit in (0..order).rev() {
        for v in x {
            out = (out << 1) | u128::from((v >> bit) & 1);
        }
    }
    out
}

/// Largest grid coordinate for `D` dimensions (0 when the order
/// collapses to 0 past 128 dimensions).
const fn max_cell_for<const D: usize>() -> u32 {
    let order = order_for(D);
    if order == 0 {
        0
    } else {
        (1u32 << order) - 1
    }
}

/// Spreads the low 16 bits of `v` into the even bit positions of a
/// `u32` (classic Morton-style bit spreading).
fn spread16(v: u32) -> u64 {
    let mut v = u64::from(v & 0xffff);
    v = (v | (v << 8)) & 0x00ff_00ff;
    v = (v | (v << 4)) & 0x0f0f_0f0f;
    v = (v | (v << 2)) & 0x3333_3333;
    v = (v | (v << 1)) & 0x5555_5555;
    v
}

/// Maps rectangle centers into the Hilbert grid of a bounded world.
///
/// Subscription rectangles may be unbounded (`±∞` bounds compile from
/// half-open filters, and `Rect::everything()` has a NaN center), so
/// the mapper clamps every center coordinate into the world's extent
/// before quantizing; non-finite centers land on the world's midpoint
/// or edges. The curve order only affects packing quality — queries
/// remain exact regardless of where an entry lands on the curve.
#[derive(Debug, Clone)]
pub struct GridMapper<const D: usize> {
    lo: [f64; D],
    scale: [f64; D],
}

impl<const D: usize> GridMapper<D> {
    /// A mapper for centers inside `world` (commonly the MBR of the
    /// finite entries being indexed).
    pub fn new(world: &Rect<D>) -> Self {
        let mut lo = [0.0; D];
        let mut scale = [0.0; D];
        let cells = f64::from(max_cell_for::<D>());
        for d in 0..D {
            let l = if world.lo(d).is_finite() {
                world.lo(d)
            } else {
                0.0
            };
            let h = if world.hi(d).is_finite() {
                world.hi(d)
            } else {
                l + 1.0
            };
            lo[d] = l;
            let extent = h - l;
            scale[d] = if extent > 0.0 { cells / extent } else { 0.0 };
        }
        Self { lo, scale }
    }

    /// The world MBR of an entry set, ignoring non-finite bounds.
    /// `None` when no finite coordinate exists in some dimension.
    pub fn world_of<'a, I>(rects: I) -> Option<Rect<D>>
    where
        I: IntoIterator<Item = &'a Rect<D>>,
    {
        let mut lo = [f64::INFINITY; D];
        let mut hi = [f64::NEG_INFINITY; D];
        for r in rects {
            for d in 0..D {
                if r.lo(d).is_finite() {
                    lo[d] = lo[d].min(r.lo(d));
                }
                if r.hi(d).is_finite() {
                    hi[d] = hi[d].max(r.hi(d));
                }
            }
        }
        if (0..D).all(|d| lo[d] <= hi[d]) {
            Some(Rect::new(lo, hi))
        } else {
            None
        }
    }

    /// The Hilbert key of `rect`'s (clamped) center.
    pub fn key(&self, rect: &Rect<D>) -> u128 {
        let mut coords = [0u32; D];
        let max_cell = max_cell_for::<D>();
        for (d, coord) in coords.iter_mut().enumerate() {
            // Computed from the raw bounds: an unbounded dimension has a
            // non-finite (possibly NaN) midpoint, which `Rect::center`
            // would reject.
            let c = rect.lo(d) / 2.0 + rect.hi(d) / 2.0;
            let cell = if c.is_nan() {
                f64::from(max_cell) / 2.0
            } else {
                (c - self.lo[d]) * self.scale[d]
            };
            *coord = (cell.clamp(0.0, f64::from(max_cell))) as u32;
        }
        hilbert_index(coords)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Injectivity on a 64×64 sub-grid at the origin: every cell gets
    /// a distinct index. (Full 2^16-resolution coverage can't be
    /// brute-forced; continuity is checked separately below on the
    /// curve's prefix.)
    #[test]
    fn two_dimensional_curve_is_a_bijection_on_subgrids() {
        use std::collections::BTreeSet;
        let n = 64u32;
        let mut seen = BTreeSet::new();
        for x in 0..n {
            for y in 0..n {
                assert!(seen.insert(hilbert_index([x, y])), "collision at ({x},{y})");
            }
        }
        assert_eq!(seen.len(), (n * n) as usize);
    }

    /// The full-resolution 2-D curve is continuous: cells with
    /// consecutive indexes are orthogonal neighbors. Verified on a
    /// contiguous index window by inverting via exhaustive search over
    /// a bounded neighborhood (the curve stays local).
    #[test]
    fn consecutive_indexes_are_neighbors_locally() {
        // Walk a small square and record index -> cell.
        let n = 32u32;
        let mut cells = std::collections::BTreeMap::new();
        for x in 0..n {
            for y in 0..n {
                cells.insert(hilbert_index([x, y]), (x, y));
            }
        }
        // The lowest n*n indexes form the curve's prefix (the curve
        // fills sub-squares before leaving them), so consecutive
        // indexes in that prefix must be grid neighbors.
        let prefix: Vec<_> = cells.iter().take((n * n) as usize).collect();
        assert_eq!(*prefix[0].0, 0, "curve starts at index 0");
        for w in prefix.windows(2) {
            let (&ia, &(xa, ya)) = w[0];
            let (&ib, &(xb, yb)) = w[1];
            if ib == ia + 1 {
                let dist = xa.abs_diff(xb) + ya.abs_diff(yb);
                assert_eq!(dist, 1, "indexes {ia},{ib} at ({xa},{ya})->({xb},{yb})");
            }
        }
    }

    #[test]
    fn high_dimensional_spaces_coarsen_instead_of_panicking() {
        // 9 × 16 = 144 > 128: the order drops to 14 bits per axis.
        assert_eq!(order_for(9), 14);
        assert_eq!(order_for(64), 2);
        assert_eq!(order_for(200), 0);
        let a = hilbert_index([1u32; 9]);
        let b = hilbert_index([2u32; 9]);
        assert_ne!(a, b);
        // Collapsed order: all keys are 0, harmlessly.
        assert_eq!(hilbert_index([5u32; 130]), 0);

        // A 9-D mapper still produces usable keys end to end.
        let world: Rect<9> = Rect::new([0.0; 9], [100.0; 9]);
        let mapper = GridMapper::new(&world);
        let lo = mapper.key(&Rect::new([1.0; 9], [2.0; 9]));
        let hi = mapper.key(&Rect::new([90.0; 9], [95.0; 9]));
        assert_ne!(lo, hi);
    }

    #[test]
    fn three_dimensional_indexes_are_distinct() {
        use std::collections::BTreeSet;
        let n = 16u32;
        let mut seen = BTreeSet::new();
        for x in 0..n {
            for y in 0..n {
                for z in 0..n {
                    assert!(seen.insert(hilbert_index([x, y, z])));
                }
            }
        }
        assert_eq!(seen.len(), (n * n * n) as usize);
    }

    #[test]
    fn grid_mapper_handles_unbounded_rects() {
        let world: Rect<2> = Rect::new([0.0, 0.0], [100.0, 100.0]);
        let mapper = GridMapper::new(&world);
        // Fully unbounded: NaN center lands mid-grid without panicking.
        let everything = Rect::<2>::everything();
        let _ = mapper.key(&everything);
        // Half-bounded: clamps to the world edge.
        let half = Rect::new([50.0, 50.0], [f64::INFINITY, 60.0]);
        let _ = mapper.key(&half);
        // Orders by locality: close rects get closer keys than far ones.
        let a = mapper.key(&Rect::new([1.0, 1.0], [2.0, 2.0]));
        let b = mapper.key(&Rect::new([1.0, 2.0], [2.0, 3.0]));
        let c = mapper.key(&Rect::new([90.0, 95.0], [99.0, 99.0]));
        assert!(a.abs_diff(b) < a.abs_diff(c));
    }

    #[test]
    fn world_of_ignores_infinite_bounds() {
        let rects = [
            Rect::new([0.0, 0.0], [10.0, 10.0]),
            Rect::new([5.0, 5.0], [f64::INFINITY, 20.0]),
        ];
        let world = GridMapper::world_of(rects.iter()).unwrap();
        assert_eq!(world, Rect::new([0.0, 0.0], [10.0, 20.0]));
        assert_eq!(GridMapper::<2>::world_of([].iter()), None);
    }

    #[test]
    fn degenerate_world() {
        // Zero-extent world: everything maps to one cell, harmlessly.
        let world: Rect<2> = Rect::new([5.0, 5.0], [5.0, 5.0]);
        let mapper = GridMapper::new(&world);
        assert_eq!(
            mapper.key(&Rect::new([5.0, 5.0], [5.0, 5.0])),
            mapper.key(&Rect::new([4.0, 4.0], [6.0, 6.0]))
        );
    }
}
