//! D-dimensional Hilbert curve indexing.
//!
//! The packed R-tree backend (`drtree-rtree`) orders entries along a
//! Hilbert space-filling curve before tiling them into nodes: entries
//! adjacent on the curve are adjacent in space, so bottom-up packing
//! yields nodes with small, well-separated MBRs — the same construction
//! flat spatial indexes like flatbush/geo-index use.
//!
//! The transformation from axis coordinates to a Hilbert index is John
//! Skilling's transpose algorithm ("Programming the Hilbert curve",
//! AIP 2004), which works in any dimension: coordinates are converted
//! in place to the *transpose* of the index (one bit-plane per
//! dimension), then the planes are interleaved into a single integer.
//!
//! # Example
//!
//! ```
//! use drtree_spatial::hilbert::{hilbert_index, GridMapper, HILBERT_ORDER};
//! use drtree_spatial::Rect;
//!
//! // Raw curve: nearby cells get nearby indexes.
//! let a = hilbert_index([1u32, 2]);
//! let b = hilbert_index([1u32, 3]);
//! assert!(a.abs_diff(b) < hilbert_index([40_000u32, 60_000]).abs_diff(a));
//!
//! // Mapping rectangle centers onto the curve's grid.
//! let world: Rect<2> = Rect::new([0.0, 0.0], [100.0, 100.0]);
//! let mapper = GridMapper::new(&world);
//! let key = mapper.key(&Rect::new([10.0, 10.0], [12.0, 12.0]));
//! assert!(key < 1u128 << (2 * HILBERT_ORDER));
//! ```

use crate::{Point, Rect};

/// Bits of Hilbert resolution per dimension.
///
/// This is the order used up to 8 dimensions (`8 × 16 = 128` bits, the
/// `u128` limit); wider spaces automatically coarsen — see
/// [`order_for`]. 16 bits per axis is a 65536-cell grid, far finer
/// than node-size-16 tiling can distinguish.
pub const HILBERT_ORDER: u32 = 16;

/// Bits of resolution per dimension actually used for `D` dimensions:
/// [`HILBERT_ORDER`] capped so `D · order ≤ 128` always holds.
///
/// Past 128 dimensions the order reaches 0 and every key collapses to
/// 0 — curve quality is a *packing heuristic* only, so consumers stay
/// correct (searches never depend on key quality), they just lose
/// locality-aware packing.
pub const fn order_for(dims: usize) -> u32 {
    match 128usize.checked_div(dims) {
        None => HILBERT_ORDER, // zero-dimensional: order is moot
        Some(fit) if (fit as u32) < HILBERT_ORDER => fit as u32,
        Some(_) => HILBERT_ORDER,
    }
}

/// The Hilbert index of a grid cell, for coordinates already quantized
/// to [`order_for`]`(D)` bits per dimension.
///
/// Coordinates wider than `order_for(D)` bits are masked down (so the
/// curve never overflows `u128`, whatever `D` is). For `D = 0` — or a
/// `D` so large the per-dimension order reaches 0 — the index is 0.
pub fn hilbert_index<const D: usize>(coords: [u32; D]) -> u128 {
    let order = order_for(D);
    if D == 0 || order == 0 {
        return 0;
    }
    let mut x = coords.map(|c| c & ((1u32 << order) - 1));
    axes_to_transpose(&mut x, order);
    interleave(&x, order)
}

/// Skilling's `AxestoTranspose`: converts axis coordinates, in place,
/// into the transposed Hilbert index (bit-plane form).
///
/// The textbook formulation branches on a data-dependent bit twice per
/// `(bit-plane, dimension)` pair — ~30 unpredictable branches per key
/// in 2-D, which made key derivation dominate bulk loading. Both
/// conditionals are expressed here as mask arithmetic instead; the body
/// is straight-line code the compiler can pipeline.
fn axes_to_transpose<const D: usize>(x: &mut [u32; D], order: u32) {
    let high = 1u32 << (order - 1);

    // Inverse undo. Per element: invert the low bits of x[0] when the
    // current bit of x[i] is set, otherwise swap the differing low bits
    // of x[0] and x[i]. `mask` selects between the two outcomes.
    let mut q = high;
    while q > 1 {
        let p = q - 1;
        for i in 0..D {
            let mask = u32::from(x[i] & q != 0).wrapping_neg();
            let swap = (x[0] ^ x[i]) & p & !mask;
            x[0] ^= (p & mask) | swap;
            x[i] ^= swap;
        }
        q >>= 1;
    }

    // Gray encode.
    for i in 1..D {
        x[i] ^= x[i - 1];
    }
    let mut t = 0;
    let mut q = high;
    while q > 1 {
        t ^= (q - 1) & u32::from(x[D - 1] & q != 0).wrapping_neg();
        q >>= 1;
    }
    for v in x.iter_mut() {
        *v ^= t;
    }
}

/// Interleaves the transposed bit-planes into a single index:
/// the index's most significant bit is the top bit of `x[0]`, then the
/// top bit of `x[1]`, …, down through the bit-planes.
fn interleave<const D: usize>(x: &[u32; D], order: u32) -> u128 {
    if D == 2 {
        // Bulk-load hot path (2-D always runs at full order):
        // bit-spread instead of the 32-step loop.
        return u128::from(spread16(x[0]) << 1 | spread16(x[1]));
    }
    let mut out = 0u128;
    for bit in (0..order).rev() {
        for v in x {
            out = (out << 1) | u128::from((v >> bit) & 1);
        }
    }
    out
}

/// The Morton (Z-order) index of a grid cell: plain bit interleaving,
/// no Hilbert transpose.
///
/// Morton ordering has slightly coarser locality than Hilbert (the
/// "Z" jumps at quadrant seams) but costs a fraction of the
/// derivation work, which makes it the right curve when keys are
/// computed *per query* rather than per build — e.g. ordering a batch
/// of publish probes so consecutive probes stay cache-local. Index
/// packing (bulk loads, shard assignment) keeps the Hilbert curve.
pub fn morton_index<const D: usize>(coords: [u32; D]) -> u128 {
    let order = order_for(D);
    if D == 0 || order == 0 {
        return 0;
    }
    let x = coords.map(|c| c & ((1u32 << order) - 1));
    interleave(&x, order)
}

/// Largest grid coordinate for `D` dimensions (0 when the order
/// collapses to 0 past 128 dimensions).
const fn max_cell_for<const D: usize>() -> u32 {
    let order = order_for(D);
    if order == 0 {
        0
    } else {
        (1u32 << order) - 1
    }
}

/// Spreads the low 16 bits of `v` into the even bit positions of a
/// `u32` (classic Morton-style bit spreading).
fn spread16(v: u32) -> u64 {
    let mut v = u64::from(v & 0xffff);
    v = (v | (v << 8)) & 0x00ff_00ff;
    v = (v | (v << 4)) & 0x0f0f_0f0f;
    v = (v | (v << 2)) & 0x3333_3333;
    v = (v | (v << 1)) & 0x5555_5555;
    v
}

/// Maps rectangle centers into the Hilbert grid of a bounded world.
///
/// Subscription rectangles may be unbounded (`±∞` bounds compile from
/// half-open filters, and `Rect::everything()` has a NaN center), so
/// the mapper clamps every center coordinate into the world's extent
/// before quantizing; non-finite centers land on the world's midpoint
/// or edges. The curve order only affects packing quality — queries
/// remain exact regardless of where an entry lands on the curve.
#[derive(Debug, Clone)]
pub struct GridMapper<const D: usize> {
    lo: [f64; D],
    scale: [f64; D],
}

impl<const D: usize> GridMapper<D> {
    /// A mapper for centers inside `world` (commonly the MBR of the
    /// finite entries being indexed).
    pub fn new(world: &Rect<D>) -> Self {
        let mut lo = [0.0; D];
        let mut scale = [0.0; D];
        let cells = f64::from(max_cell_for::<D>());
        for d in 0..D {
            let l = if world.lo(d).is_finite() {
                world.lo(d)
            } else {
                0.0
            };
            let h = if world.hi(d).is_finite() {
                world.hi(d)
            } else {
                l + 1.0
            };
            lo[d] = l;
            let extent = h - l;
            scale[d] = if extent > 0.0 { cells / extent } else { 0.0 };
        }
        Self { lo, scale }
    }

    /// The world MBR of an entry set, ignoring non-finite bounds.
    /// `None` when no finite coordinate exists in some dimension.
    pub fn world_of<'a, I>(rects: I) -> Option<Rect<D>>
    where
        I: IntoIterator<Item = &'a Rect<D>>,
    {
        let mut lo = [f64::INFINITY; D];
        let mut hi = [f64::NEG_INFINITY; D];
        for r in rects {
            for d in 0..D {
                if r.lo(d).is_finite() {
                    lo[d] = lo[d].min(r.lo(d));
                }
                if r.hi(d).is_finite() {
                    hi[d] = hi[d].max(r.hi(d));
                }
            }
        }
        if (0..D).all(|d| lo[d] <= hi[d]) {
            Some(Rect::new(lo, hi))
        } else {
            None
        }
    }

    /// The Hilbert key of a point (a zero-extent rectangle's center).
    pub fn key_of_point(&self, point: &Point<D>) -> u128 {
        self.key(&Rect::from_point(point))
    }

    /// The Morton key of a point — the cheap sibling of
    /// [`GridMapper::key_of_point`] for per-query batch ordering (see
    /// [`morton_index`]).
    pub fn morton_key_of_point(&self, point: &Point<D>) -> u128 {
        let mut coords = [0u32; D];
        let max_cell = max_cell_for::<D>();
        for (d, coord) in coords.iter_mut().enumerate() {
            let c = point.coord(d);
            let cell = if c.is_nan() {
                f64::from(max_cell) / 2.0
            } else {
                (c - self.lo[d]) * self.scale[d]
            };
            *coord = (cell.clamp(0.0, f64::from(max_cell))) as u32;
        }
        morton_index(coords)
    }

    /// The Hilbert key of `rect`'s (clamped) center.
    pub fn key(&self, rect: &Rect<D>) -> u128 {
        let mut coords = [0u32; D];
        let max_cell = max_cell_for::<D>();
        for (d, coord) in coords.iter_mut().enumerate() {
            // Computed from the raw bounds: an unbounded dimension has a
            // non-finite (possibly NaN) midpoint, which `Rect::center`
            // would reject.
            let c = rect.lo(d) / 2.0 + rect.hi(d) / 2.0;
            let cell = if c.is_nan() {
                f64::from(max_cell) / 2.0
            } else {
                (c - self.lo[d]) * self.scale[d]
            };
            *coord = (cell.clamp(0.0, f64::from(max_cell))) as u32;
        }
        hilbert_index(coords)
    }
}

/// Partitions rectangles into `K` shards by the Hilbert key of their
/// center — the shard-assignment rule of the sharded publish oracle
/// (`drtree-pubsub`).
///
/// The key space is split into `K` **contiguous curve ranges**, so each
/// shard receives a spatially local slice of the world (the curve is
/// measure-preserving: uniform centers give uniform keys, hence
/// balanced shards). Locality matters twice over: a shard's own packed
/// tree gets well-separated nodes, and a point query can prune whole
/// shards by their root MBR because shards tile the space instead of
/// interleaving it.
///
/// Range ends live in explicit `boundaries`, so the split need not be
/// even in key space: [`ShardMap::new`] splits the key space evenly
/// (right for uniform worlds), while [`ShardMap::from_sorted_keys`]
/// splits at the *count quantiles* of an observed key population —
/// the form a rebalancing owner uses so clustered workloads still get
/// even shard loads.
///
/// Assignment is a pure function of the rectangle and the (fixed)
/// world, so an entry can always be *found again* for removal without
/// any id→shard bookkeeping. Rebalancing (changing the world, the
/// boundaries, or `K`) is the owner's job; the map itself never
/// mutates.
///
/// # Example
///
/// ```
/// use drtree_spatial::hilbert::ShardMap;
/// use drtree_spatial::Rect;
///
/// let world: Rect<2> = Rect::new([0.0, 0.0], [100.0, 100.0]);
/// let map = ShardMap::new(4, &world);
/// let near_origin = map.shard_of(&Rect::new([1.0, 1.0], [2.0, 2.0]));
/// let far_corner = map.shard_of(&Rect::new([97.0, 97.0], [99.0, 99.0]));
/// assert!(near_origin < 4 && far_corner < 4);
/// // Opposite ends of the curve land in different shards.
/// assert_ne!(near_origin, far_corner);
/// ```
#[derive(Debug, Clone)]
pub struct ShardMap<const D: usize> {
    mapper: GridMapper<D>,
    world: Rect<D>,
    /// Ascending range ends: shard `i` owns keys `k` with
    /// `boundaries[i-1] <= k < boundaries[i]` (open-ended at the rim).
    boundaries: Vec<u128>,
}

impl<const D: usize> ShardMap<D> {
    /// A map over `world` with `shards` shards (clamped to ≥ 1),
    /// splitting the key space into even ranges.
    pub fn new(shards: usize, world: &Rect<D>) -> Self {
        let shards = shards.max(1);
        let bits = D as u32 * order_for(D);
        let max_key = if bits >= 128 {
            u128::MAX
        } else {
            (1u128 << bits) - 1
        };
        let step = max_key / shards as u128 + 1;
        Self {
            mapper: GridMapper::new(world),
            world: *world,
            boundaries: (1..shards as u128).map(|i| step * i).collect(),
        }
    }

    /// A map over `world` whose ranges split `sorted_keys` (the key
    /// population to balance, ascending) at its count quantiles: every
    /// shard owns ~`len / shards` of the observed keys, whatever their
    /// distribution. Keys must come from a [`GridMapper`] over the
    /// same `world`. With an empty population this falls back to the
    /// even split of [`ShardMap::new`].
    pub fn from_sorted_keys(shards: usize, world: &Rect<D>, sorted_keys: &[u128]) -> Self {
        let shards = shards.max(1);
        if sorted_keys.is_empty() {
            return Self::new(shards, world);
        }
        debug_assert!(sorted_keys.windows(2).all(|w| w[0] <= w[1]));
        let n = sorted_keys.len();
        Self {
            mapper: GridMapper::new(world),
            world: *world,
            boundaries: (1..shards).map(|i| sorted_keys[i * n / shards]).collect(),
        }
    }

    /// A map over `world` with exactly the given ascending range ends
    /// — the restore path of serialized sharded indexes, rebuilding
    /// the assignment that produced a snapshot. `boundaries.len() + 1`
    /// shards result.
    ///
    /// # Panics
    ///
    /// Panics if `boundaries` is not ascending.
    pub fn from_boundaries(world: &Rect<D>, boundaries: Vec<u128>) -> Self {
        assert!(
            boundaries.windows(2).all(|w| w[0] <= w[1]),
            "shard boundaries must ascend"
        );
        Self {
            mapper: GridMapper::new(world),
            world: *world,
            boundaries,
        }
    }

    /// Number of shards keys are partitioned into.
    pub fn shards(&self) -> usize {
        self.boundaries.len() + 1
    }

    /// The world the underlying grid quantizes against.
    pub fn world(&self) -> &Rect<D> {
        &self.world
    }

    /// The grid mapper behind the assignment (for callers that also
    /// need raw curve keys, e.g. to order probe points).
    pub fn mapper(&self) -> &GridMapper<D> {
        &self.mapper
    }

    /// `true` when every *finite* bound of `rect` lies inside the
    /// world. Non-finite bounds clamp identically under any world, so
    /// they never force a rebalance.
    pub fn covers(&self, rect: &Rect<D>) -> bool {
        (0..D).all(|d| {
            (!rect.lo(d).is_finite() || rect.lo(d) >= self.world.lo(d))
                && (!rect.hi(d).is_finite() || rect.hi(d) <= self.world.hi(d))
        })
    }

    /// The shard owning `rect`: its center's Hilbert key, mapped
    /// proportionally onto `0..shards` (contiguous curve ranges).
    pub fn shard_of(&self, rect: &Rect<D>) -> usize {
        self.shard_of_key(self.mapper.key(rect))
    }

    /// The shard owning a raw curve key (see [`ShardMap::shard_of`]):
    /// the index of the first boundary above it.
    pub fn shard_of_key(&self, key: u128) -> usize {
        self.boundaries.partition_point(|&b| b <= key)
    }

    /// The ascending range ends: shard `i` owns keys in
    /// `boundaries[i-1]..boundaries[i]` (open-ended at the rim).
    pub fn boundaries(&self) -> &[u128] {
        &self.boundaries
    }

    /// The contiguous curve-key range shard `shard` owns, as a
    /// half-open `(lo, hi)` pair: keys `k` with `lo <= k < hi` belong
    /// to the shard. The rim shard's range is open-ended and reported
    /// as `hi == u128::MAX` (consistent with [`ShardMap::shard_of_key`],
    /// which assigns every key at or above the last boundary to the
    /// rim). Used by the broker federation layer, where each broker
    /// owns one such range of the whole subscription space.
    ///
    /// # Panics
    ///
    /// Panics if `shard >= self.shards()`.
    pub fn range_of(&self, shard: usize) -> (u128, u128) {
        assert!(shard < self.shards(), "shard {shard} out of range");
        let lo = if shard == 0 {
            0
        } else {
            self.boundaries[shard - 1]
        };
        let hi = self.boundaries.get(shard).copied().unwrap_or(u128::MAX);
        (lo, hi)
    }

    /// The curve neighbors of `shard` on the shard ring, as
    /// `(predecessor, successor)`. Contiguous curve ranges make curve
    /// neighbors spatial neighbors too (the Hilbert locality the whole
    /// sharding scheme rests on), so they are the natural holders of a
    /// shard's replicas: when the owner of a range crashes, its ring
    /// neighbors cover it. With two shards both neighbors coincide;
    /// with one shard the shard is its own neighbor.
    ///
    /// # Panics
    ///
    /// Panics if `shard >= self.shards()`.
    pub fn neighbors(&self, shard: usize) -> (usize, usize) {
        let k = self.shards();
        assert!(shard < k, "shard {shard} out of range");
        ((shard + k - 1) % k, (shard + 1) % k)
    }

    /// A copy of this map with boundary `index` moved to `key` — the
    /// delta-aware rebalancing primitive. Shifting one boundary
    /// re-splits only the two adjacent shards' curve ranges, so an
    /// overloaded shard can shed entries to its curve neighbor while
    /// every other shard's assignment (and any in-flight compaction of
    /// it) stays untouched.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range or `key` would break the
    /// ascending boundary order.
    pub fn with_boundary(&self, index: usize, key: u128) -> Self {
        assert!(
            index < self.boundaries.len(),
            "boundary {index} out of range"
        );
        assert!(
            (index == 0 || self.boundaries[index - 1] <= key)
                && (index + 1 >= self.boundaries.len() || key <= self.boundaries[index + 1]),
            "boundary {index} -> {key} breaks the ascending order"
        );
        let mut map = self.clone();
        map.boundaries[index] = key;
        map
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Injectivity on a 64×64 sub-grid at the origin: every cell gets
    /// a distinct index. (Full 2^16-resolution coverage can't be
    /// brute-forced; continuity is checked separately below on the
    /// curve's prefix.)
    #[test]
    fn two_dimensional_curve_is_a_bijection_on_subgrids() {
        use std::collections::BTreeSet;
        let n = 64u32;
        let mut seen = BTreeSet::new();
        for x in 0..n {
            for y in 0..n {
                assert!(seen.insert(hilbert_index([x, y])), "collision at ({x},{y})");
            }
        }
        assert_eq!(seen.len(), (n * n) as usize);
    }

    /// The full-resolution 2-D curve is continuous: cells with
    /// consecutive indexes are orthogonal neighbors. Verified on a
    /// contiguous index window by inverting via exhaustive search over
    /// a bounded neighborhood (the curve stays local).
    #[test]
    fn consecutive_indexes_are_neighbors_locally() {
        // Walk a small square and record index -> cell.
        let n = 32u32;
        let mut cells = std::collections::BTreeMap::new();
        for x in 0..n {
            for y in 0..n {
                cells.insert(hilbert_index([x, y]), (x, y));
            }
        }
        // The lowest n*n indexes form the curve's prefix (the curve
        // fills sub-squares before leaving them), so consecutive
        // indexes in that prefix must be grid neighbors.
        let prefix: Vec<_> = cells.iter().take((n * n) as usize).collect();
        assert_eq!(*prefix[0].0, 0, "curve starts at index 0");
        for w in prefix.windows(2) {
            let (&ia, &(xa, ya)) = w[0];
            let (&ib, &(xb, yb)) = w[1];
            if ib == ia + 1 {
                let dist = xa.abs_diff(xb) + ya.abs_diff(yb);
                assert_eq!(dist, 1, "indexes {ia},{ib} at ({xa},{ya})->({xb},{yb})");
            }
        }
    }

    #[test]
    fn high_dimensional_spaces_coarsen_instead_of_panicking() {
        // 9 × 16 = 144 > 128: the order drops to 14 bits per axis.
        assert_eq!(order_for(9), 14);
        assert_eq!(order_for(64), 2);
        assert_eq!(order_for(200), 0);
        let a = hilbert_index([1u32; 9]);
        let b = hilbert_index([2u32; 9]);
        assert_ne!(a, b);
        // Collapsed order: all keys are 0, harmlessly.
        assert_eq!(hilbert_index([5u32; 130]), 0);

        // A 9-D mapper still produces usable keys end to end.
        let world: Rect<9> = Rect::new([0.0; 9], [100.0; 9]);
        let mapper = GridMapper::new(&world);
        let lo = mapper.key(&Rect::new([1.0; 9], [2.0; 9]));
        let hi = mapper.key(&Rect::new([90.0; 9], [95.0; 9]));
        assert_ne!(lo, hi);
    }

    #[test]
    fn morton_is_injective_and_local() {
        use std::collections::BTreeSet;
        let n = 32u32;
        let mut seen = BTreeSet::new();
        for x in 0..n {
            for y in 0..n {
                assert!(seen.insert(morton_index([x, y])), "collision at ({x},{y})");
            }
        }
        // Quadrant prefix property: the lowest 16 indexes tile the 4x4
        // origin block.
        let lowest: Vec<u128> = seen.iter().copied().take(16).collect();
        for x in 0..4u32 {
            for y in 0..4 {
                assert!(lowest.contains(&morton_index([x, y])));
            }
        }
        // Degenerate dimensionalities behave like the Hilbert path.
        assert_eq!(morton_index([5u32; 130]), 0);

        // Mapper form agrees with quantize-then-interleave.
        let world: Rect<2> = Rect::new([0.0, 0.0], [100.0, 100.0]);
        let mapper = GridMapper::new(&world);
        let a = mapper.morton_key_of_point(&Point::new([10.0, 10.0]));
        let b = mapper.morton_key_of_point(&Point::new([10.1, 10.1]));
        let c = mapper.morton_key_of_point(&Point::new([90.0, 90.0]));
        assert!(a.abs_diff(b) < a.abs_diff(c));
    }

    #[test]
    fn three_dimensional_indexes_are_distinct() {
        use std::collections::BTreeSet;
        let n = 16u32;
        let mut seen = BTreeSet::new();
        for x in 0..n {
            for y in 0..n {
                for z in 0..n {
                    assert!(seen.insert(hilbert_index([x, y, z])));
                }
            }
        }
        assert_eq!(seen.len(), (n * n * n) as usize);
    }

    #[test]
    fn grid_mapper_handles_unbounded_rects() {
        let world: Rect<2> = Rect::new([0.0, 0.0], [100.0, 100.0]);
        let mapper = GridMapper::new(&world);
        // Fully unbounded: NaN center lands mid-grid without panicking.
        let everything = Rect::<2>::everything();
        let _ = mapper.key(&everything);
        // Half-bounded: clamps to the world edge.
        let half = Rect::new([50.0, 50.0], [f64::INFINITY, 60.0]);
        let _ = mapper.key(&half);
        // Orders by locality: close rects get closer keys than far ones.
        let a = mapper.key(&Rect::new([1.0, 1.0], [2.0, 2.0]));
        let b = mapper.key(&Rect::new([1.0, 2.0], [2.0, 3.0]));
        let c = mapper.key(&Rect::new([90.0, 95.0], [99.0, 99.0]));
        assert!(a.abs_diff(b) < a.abs_diff(c));
    }

    #[test]
    fn world_of_ignores_infinite_bounds() {
        let rects = [
            Rect::new([0.0, 0.0], [10.0, 10.0]),
            Rect::new([5.0, 5.0], [f64::INFINITY, 20.0]),
        ];
        let world = GridMapper::world_of(rects.iter()).unwrap();
        assert_eq!(world, Rect::new([0.0, 0.0], [10.0, 20.0]));
        assert_eq!(GridMapper::<2>::world_of([].iter()), None);
    }

    #[test]
    fn shard_map_assignment_is_total_and_balanced() {
        let world: Rect<2> = Rect::new([0.0, 0.0], [1000.0, 1000.0]);
        for shards in [1usize, 2, 4, 7, 8] {
            let map = ShardMap::new(shards, &world);
            let mut counts = vec![0usize; shards];
            for i in 0..4096 {
                // Low-discrepancy-ish scatter across the world.
                let x = (i % 64) as f64 * 15.0 + 1.0;
                let y = (i / 64) as f64 * 15.0 + 1.0;
                let s = map.shard_of(&Rect::new([x, y], [x + 5.0, y + 5.0]));
                assert!(s < shards);
                counts[s] += 1;
            }
            // Contiguous-range split of a space-filling curve over a
            // uniform grid: no shard may be empty or hold a majority
            // (for K > 1).
            if shards > 1 {
                for (s, &c) in counts.iter().enumerate() {
                    assert!(c > 0, "shard {s}/{shards} empty");
                    assert!(c < 4096 * 3 / 4, "shard {s}/{shards} holds {c}/4096");
                }
            }
        }
    }

    #[test]
    fn quantile_split_balances_clustered_keys() {
        // All mass in one corner: an even key-space split would dump
        // every entry into one shard; quantile boundaries spread them.
        let world: Rect<2> = Rect::new([0.0, 0.0], [1000.0, 1000.0]);
        let mapper = GridMapper::new(&world);
        let rects: Vec<Rect<2>> = (0..512)
            .map(|i| {
                let x = (i % 32) as f64 * 0.3;
                let y = (i / 32) as f64 * 0.3;
                Rect::new([x, y], [x + 0.1, y + 0.1])
            })
            .collect();
        let mut keys: Vec<u128> = rects.iter().map(|r| mapper.key(r)).collect();
        keys.sort_unstable();
        let map = ShardMap::from_sorted_keys(4, &world, &keys);
        let mut counts = [0usize; 4];
        for r in &rects {
            counts[map.shard_of(r)] += 1;
        }
        for (s, &c) in counts.iter().enumerate() {
            assert!(
                (64..=256).contains(&c),
                "quantile shard {s} holds {c}/512 — not balanced"
            );
        }
        // Degenerate population: falls back to the even split.
        let empty = ShardMap::from_sorted_keys(4, &world, &[]);
        assert_eq!(empty.shards(), 4);
    }

    #[test]
    fn shard_map_is_stable_and_covers() {
        let world: Rect<2> = Rect::new([0.0, 0.0], [100.0, 100.0]);
        let map = ShardMap::new(4, &world);
        let r = Rect::new([10.0, 20.0], [15.0, 25.0]);
        assert_eq!(map.shard_of(&r), map.shard_of(&r));
        assert!(map.covers(&r));
        assert!(!map.covers(&Rect::new([-5.0, 0.0], [1.0, 1.0])));
        // Unbounded dimensions clamp stably: they never force growth.
        assert!(map.covers(&Rect::new([10.0, 10.0], [f64::INFINITY, 20.0])));
        // High-dimensional keys (bits > 64) still partition totally.
        let world9: Rect<9> = Rect::new([0.0; 9], [10.0; 9]);
        let map9 = ShardMap::new(5, &world9);
        for i in 0..10 {
            let o = f64::from(i);
            assert!(map9.shard_of(&Rect::new([o; 9], [o + 0.4; 9])) < 5);
        }
    }

    #[test]
    fn range_of_partitions_the_key_space_and_agrees_with_shard_of_key() {
        let world: Rect<2> = Rect::new([0.0, 0.0], [1000.0, 1000.0]);
        for shards in [1usize, 2, 4, 7] {
            let map = ShardMap::new(shards, &world);
            // Ranges tile the key space: consecutive, ascending, with
            // the rim open-ended.
            let mut expect_lo = 0u128;
            for s in 0..shards {
                let (lo, hi) = map.range_of(s);
                assert_eq!(lo, expect_lo, "shard {s}/{shards} range gap");
                assert!(lo < hi, "shard {s}/{shards} range empty");
                expect_lo = hi;
            }
            assert_eq!(map.range_of(shards - 1).1, u128::MAX);
            // Boundary keys and interior keys land where range_of says.
            for s in 0..shards {
                let (lo, hi) = map.range_of(s);
                assert_eq!(map.shard_of_key(lo), s);
                let mid = lo + (hi - lo) / 2;
                assert_eq!(map.shard_of_key(mid), s);
            }
        }
    }

    #[test]
    fn ring_neighbors_wrap_and_degenerate_sanely() {
        let world: Rect<2> = Rect::new([0.0, 0.0], [100.0, 100.0]);
        let map = ShardMap::new(4, &world);
        assert_eq!(map.neighbors(0), (3, 1));
        assert_eq!(map.neighbors(1), (0, 2));
        assert_eq!(map.neighbors(3), (2, 0));
        // Two shards: both neighbors are the single other shard.
        let two = ShardMap::new(2, &world);
        assert_eq!(two.neighbors(0), (1, 1));
        assert_eq!(two.neighbors(1), (0, 0));
        // One shard: self-neighboring, not a panic.
        let one = ShardMap::new(1, &world);
        assert_eq!(one.neighbors(0), (0, 0));
    }

    #[test]
    fn boundary_shift_moves_entries_between_adjacent_shards_only() {
        let world: Rect<2> = Rect::new([0.0, 0.0], [1000.0, 1000.0]);
        let map = ShardMap::new(4, &world);
        let rects: Vec<Rect<2>> = (0..4096)
            .map(|i| {
                let x = (i % 64) as f64 * 15.0 + 1.0;
                let y = (i / 64) as f64 * 15.0 + 1.0;
                Rect::new([x, y], [x + 5.0, y + 5.0])
            })
            .collect();
        let before: Vec<usize> = rects.iter().map(|r| map.shard_of(r)).collect();
        // Shift boundary 1 (between shards 1 and 2) to the midpoint of
        // its legal range: only assignments between those two shards
        // may change, and some must.
        let b = map.boundaries();
        let shifted = map.with_boundary(1, b[0] + (b[1] - b[0]) / 2);
        let mut moved = 0usize;
        for (r, &was) in rects.iter().zip(&before) {
            let now = shifted.shard_of(r);
            if now != was {
                assert!(
                    (was == 1 && now == 2) || (was == 2 && now == 1),
                    "entry moved {was} -> {now}: non-adjacent reassignment"
                );
                moved += 1;
            }
        }
        assert!(moved > 0, "shifting a boundary must move something");
    }

    #[test]
    #[should_panic(expected = "breaks the ascending order")]
    fn boundary_shift_rejects_disorder() {
        let world: Rect<2> = Rect::new([0.0, 0.0], [100.0, 100.0]);
        let map = ShardMap::new(4, &world);
        let too_high = map.boundaries()[2] + 1;
        let _ = map.with_boundary(1, too_high);
    }

    #[test]
    fn point_keys_match_zero_extent_rects() {
        let world: Rect<2> = Rect::new([0.0, 0.0], [100.0, 100.0]);
        let mapper = GridMapper::new(&world);
        let p = Point::new([33.0, 66.0]);
        assert_eq!(
            mapper.key_of_point(&p),
            mapper.key(&Rect::new([33.0, 66.0], [33.0, 66.0]))
        );
    }

    #[test]
    fn degenerate_world() {
        // Zero-extent world: everything maps to one cell, harmlessly.
        let world: Rect<2> = Rect::new([5.0, 5.0], [5.0, 5.0]);
        let mapper = GridMapper::new(&world);
        assert_eq!(
            mapper.key(&Rect::new([5.0, 5.0], [5.0, 5.0])),
            mapper.key(&Rect::new([4.0, 4.0], [6.0, 6.0]))
        );
    }
}
