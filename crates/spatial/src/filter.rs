//! The content-based filter language of §2.1.
//!
//! A subscription is "a conjunction of predicates over the attributes
//! field, i.e. `S = f1 ∧ … ∧ fj`, where `fi = (ni opi vi)`" — attribute
//! name, operator, constant. Conjunctions of range predicates circumscribe
//! a poly-space rectangle; an attribute left unconstrained makes the
//! rectangle unbounded in that dimension.
//!
//! [`Schema`] fixes the attribute-name → dimension mapping so that filters
//! and events written in attribute form can be compiled to the geometric
//! [`Rect`]/[`Point`] form used by the overlay.
//!
//! # Example
//!
//! ```
//! use drtree_spatial::{Schema, FilterExpr, Op, Event};
//!
//! let schema = Schema::new(["price", "volume"]);
//! // price in (10, 50] and volume >= 100  →  a half-bounded rectangle
//! let filt = FilterExpr::new()
//!     .and("price", Op::Gt, 10.0)
//!     .and("price", Op::Le, 50.0)
//!     .and("volume", Op::Ge, 100.0);
//! let rect = filt.compile::<2>(&schema)?;
//! assert!(!rect.is_bounded()); // volume has no upper bound
//!
//! let event = Event::new().with("price", 20.0).with("volume", 500.0);
//! let point = event.compile::<2>(&schema)?;
//! assert!(rect.contains_point(&point));
//! # Ok::<(), drtree_spatial::filter::FilterError>(())
//! ```

use std::fmt;

use crate::{Point, Rect};

/// Comparison operators available for numeric attributes (§2.1).
///
/// Strict inequalities are honored up to measure-zero boundary effects:
/// the geometric representation uses closed rectangles, so `<`/`>` and
/// `<=`/`>=` compile to the same bound. This matches the paper, whose
/// geometric model ("poly-space rectangles") has the same property.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Op {
    /// Exact equality: pins the dimension to a single value.
    Eq,
    /// Strictly less than.
    Lt,
    /// Less than or equal.
    Le,
    /// Strictly greater than.
    Gt,
    /// Greater than or equal.
    Ge,
}

impl fmt::Display for Op {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Op::Eq => "=",
            Op::Lt => "<",
            Op::Le => "<=",
            Op::Gt => ">",
            Op::Ge => ">=",
        };
        f.write_str(s)
    }
}

/// One predicate `(attribute op value)` of a conjunction.
#[derive(Debug, Clone, PartialEq)]
pub struct Predicate {
    /// Attribute name (`ni` in the paper).
    pub attr: String,
    /// Comparison operator (`opi`).
    pub op: Op,
    /// Constant to compare against (`vi`).
    pub value: f64,
}

impl fmt::Display for Predicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} {}", self.attr, self.op, self.value)
    }
}

/// The attribute-name → dimension mapping shared by all participants.
///
/// The paper assumes a common attribute space; `Schema` makes that
/// assumption explicit and checks filters/events against it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schema {
    attrs: Vec<String>,
    /// Dimension indexes sorted by attribute name — the lookup table
    /// behind [`Schema::dim_of`]. Derived from `attrs`, so equality and
    /// hashing of schemas can ignore it.
    by_name: Vec<u32>,
}

impl Schema {
    /// Creates a schema from attribute names; dimension `i` is the `i`-th
    /// name.
    ///
    /// # Panics
    ///
    /// Panics if two attributes share a name.
    pub fn new<I, S>(attrs: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let attrs: Vec<String> = attrs.into_iter().map(Into::into).collect();
        let mut by_name: Vec<u32> = (0..attrs.len() as u32).collect();
        by_name.sort_by(|&a, &b| attrs[a as usize].cmp(&attrs[b as usize]));
        for w in by_name.windows(2) {
            assert!(
                attrs[w[0] as usize] != attrs[w[1] as usize],
                "duplicate attribute name {:?} in schema",
                attrs[w[0] as usize]
            );
        }
        Self { attrs, by_name }
    }

    /// Number of attributes (the dimensionality of the space).
    pub fn dims(&self) -> usize {
        self.attrs.len()
    }

    /// The dimension index of `attr`, if declared.
    ///
    /// `O(log d)` by binary search over the name-sorted index, so
    /// compiling a filter or event costs `O(p log d)` in the number of
    /// predicates instead of a linear name scan per predicate.
    pub fn dim_of(&self, attr: &str) -> Option<usize> {
        self.by_name
            .binary_search_by(|&i| self.attrs[i as usize].as_str().cmp(attr))
            .ok()
            .map(|pos| self.by_name[pos] as usize)
    }

    /// Attribute name of dimension `dim`.
    ///
    /// # Panics
    ///
    /// Panics if `dim >= self.dims()`.
    pub fn attr_of(&self, dim: usize) -> &str {
        &self.attrs[dim]
    }
}

/// Errors produced when compiling filters or events against a [`Schema`].
#[derive(Debug, Clone, PartialEq)]
pub enum FilterError {
    /// A predicate or event value names an attribute absent from the schema.
    UnknownAttribute(String),
    /// The const-generic dimension `D` does not equal `schema.dims()`.
    DimensionMismatch {
        /// Dimensions expected by the caller (`D`).
        expected: usize,
        /// Dimensions declared by the schema.
        schema: usize,
    },
    /// The conjunction is unsatisfiable (empty rectangle), e.g.
    /// `x > 5 ∧ x < 3`.
    Unsatisfiable(String),
    /// An event omits a value for an attribute (events must be points).
    MissingValue(String),
    /// A value is NaN.
    NotANumber(String),
}

impl fmt::Display for FilterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FilterError::UnknownAttribute(a) => write!(f, "unknown attribute {a:?}"),
            FilterError::DimensionMismatch { expected, schema } => write!(
                f,
                "dimension mismatch: caller expects {expected}, schema declares {schema}"
            ),
            FilterError::Unsatisfiable(a) => {
                write!(f, "unsatisfiable constraints on attribute {a:?}")
            }
            FilterError::MissingValue(a) => write!(f, "event missing value for attribute {a:?}"),
            FilterError::NotANumber(a) => write!(f, "value for attribute {a:?} is NaN"),
        }
    }
}

impl std::error::Error for FilterError {}

/// A conjunction of predicates — one content-based filter (§2.1).
///
/// Build with [`FilterExpr::and`], then [`compile`](FilterExpr::compile)
/// into a [`Rect`]. See the [module documentation](self) for an example.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FilterExpr {
    predicates: Vec<Predicate>,
}

impl FilterExpr {
    /// An empty conjunction (matches everything).
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a predicate to the conjunction.
    pub fn and(mut self, attr: impl Into<String>, op: Op, value: f64) -> Self {
        self.predicates.push(Predicate {
            attr: attr.into(),
            op,
            value,
        });
        self
    }

    /// The predicates of the conjunction, in insertion order.
    pub fn predicates(&self) -> &[Predicate] {
        &self.predicates
    }

    /// Compiles the conjunction into the rectangle it circumscribes.
    ///
    /// Dimensions with no predicate remain unbounded (`±∞`), matching the
    /// paper: "if one attribute is undefined, then the corresponding
    /// rectangle is unbounded in the associated dimension".
    ///
    /// # Errors
    ///
    /// Returns [`FilterError`] if `D != schema.dims()`, a predicate names
    /// an unknown attribute or NaN value, or the conjunction is
    /// unsatisfiable.
    pub fn compile<const D: usize>(&self, schema: &Schema) -> Result<Rect<D>, FilterError> {
        if schema.dims() != D {
            return Err(FilterError::DimensionMismatch {
                expected: D,
                schema: schema.dims(),
            });
        }
        let mut lo = [f64::NEG_INFINITY; D];
        let mut hi = [f64::INFINITY; D];
        for p in &self.predicates {
            let dim = schema
                .dim_of(&p.attr)
                .ok_or_else(|| FilterError::UnknownAttribute(p.attr.clone()))?;
            if p.value.is_nan() {
                return Err(FilterError::NotANumber(p.attr.clone()));
            }
            match p.op {
                Op::Eq => {
                    lo[dim] = lo[dim].max(p.value);
                    hi[dim] = hi[dim].min(p.value);
                }
                Op::Lt | Op::Le => hi[dim] = hi[dim].min(p.value),
                Op::Gt | Op::Ge => lo[dim] = lo[dim].max(p.value),
            }
            if lo[dim] > hi[dim] {
                return Err(FilterError::Unsatisfiable(p.attr.clone()));
            }
        }
        Ok(Rect::new(lo, hi))
    }
}

/// A publication: a set of attribute/value pairs (§2.1 — "messages sent by
/// publishers contain a set of attributes with associated values").
///
/// Compile to a geometric [`Point`] with [`Event::compile`]. Every
/// schema attribute must be given a value — events are points, not
/// regions.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Event {
    values: Vec<(String, f64)>,
}

impl Event {
    /// An event with no values yet.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the value of one attribute (last write wins).
    pub fn with(mut self, attr: impl Into<String>, value: f64) -> Self {
        let attr = attr.into();
        if let Some(slot) = self.values.iter_mut().find(|(a, _)| *a == attr) {
            slot.1 = value;
        } else {
            self.values.push((attr, value));
        }
        self
    }

    /// The attribute/value pairs, in insertion order.
    pub fn values(&self) -> &[(String, f64)] {
        &self.values
    }

    /// Compiles the event to the point it denotes.
    ///
    /// # Errors
    ///
    /// Returns [`FilterError`] if `D != schema.dims()`, a value names an
    /// unknown attribute or is NaN, or a schema attribute has no value.
    pub fn compile<const D: usize>(&self, schema: &Schema) -> Result<Point<D>, FilterError> {
        if schema.dims() != D {
            return Err(FilterError::DimensionMismatch {
                expected: D,
                schema: schema.dims(),
            });
        }
        let mut coords = [f64::NAN; D];
        for (attr, v) in &self.values {
            let dim = schema
                .dim_of(attr)
                .ok_or_else(|| FilterError::UnknownAttribute(attr.clone()))?;
            if v.is_nan() {
                return Err(FilterError::NotANumber(attr.clone()));
            }
            coords[dim] = *v;
        }
        for (dim, c) in coords.iter().enumerate() {
            if c.is_nan() {
                return Err(FilterError::MissingValue(schema.attr_of(dim).to_owned()));
            }
        }
        Ok(Point::new(coords))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> Schema {
        Schema::new(["x", "y"])
    }

    #[test]
    fn schema_lookup() {
        let s = schema();
        assert_eq!(s.dims(), 2);
        assert_eq!(s.dim_of("x"), Some(0));
        assert_eq!(s.dim_of("y"), Some(1));
        assert_eq!(s.dim_of("z"), None);
        assert_eq!(s.attr_of(1), "y");
    }

    #[test]
    #[should_panic(expected = "duplicate")]
    fn schema_duplicates_rejected() {
        let _ = Schema::new(["x", "x"]);
    }

    #[test]
    #[should_panic(expected = "duplicate")]
    fn schema_nonadjacent_duplicates_rejected() {
        let _ = Schema::new(["x", "y", "x"]);
    }

    #[test]
    fn schema_lookup_scales_past_two_attrs() {
        let names: Vec<String> = (0..50).map(|i| format!("attr{i:02}")).collect();
        let s = Schema::new(names.clone());
        for (dim, name) in names.iter().enumerate() {
            assert_eq!(s.dim_of(name), Some(dim), "{name}");
            assert_eq!(s.attr_of(dim), name);
        }
        assert_eq!(s.dim_of("attr99"), None);
        assert_eq!(s.dim_of(""), None);
    }

    #[test]
    fn compile_bounded_filter() {
        let f = FilterExpr::new()
            .and("x", Op::Ge, 1.0)
            .and("x", Op::Le, 5.0)
            .and("y", Op::Gt, 0.0)
            .and("y", Op::Lt, 2.0);
        let r = f.compile::<2>(&schema()).unwrap();
        assert_eq!(r, Rect::new([1.0, 0.0], [5.0, 2.0]));
        assert!(r.is_bounded());
    }

    #[test]
    fn compile_unbounded_dimension() {
        let f = FilterExpr::new().and("x", Op::Ge, 1.0);
        let r = f.compile::<2>(&schema()).unwrap();
        assert_eq!(r.lo(0), 1.0);
        assert_eq!(r.hi(0), f64::INFINITY);
        assert_eq!(r.lo(1), f64::NEG_INFINITY);
        assert!(!r.is_bounded());
    }

    #[test]
    fn compile_eq_pins_dimension() {
        let f = FilterExpr::new().and("x", Op::Eq, 3.0);
        let r = f.compile::<2>(&schema()).unwrap();
        assert_eq!(r.lo(0), 3.0);
        assert_eq!(r.hi(0), 3.0);
    }

    #[test]
    fn tightest_bound_wins() {
        let f = FilterExpr::new()
            .and("x", Op::Ge, 1.0)
            .and("x", Op::Ge, 2.0)
            .and("x", Op::Le, 9.0)
            .and("x", Op::Le, 4.0);
        let r = f.compile::<2>(&schema()).unwrap();
        assert_eq!((r.lo(0), r.hi(0)), (2.0, 4.0));
    }

    #[test]
    fn errors() {
        assert_eq!(
            FilterExpr::new()
                .and("z", Op::Eq, 0.0)
                .compile::<2>(&schema()),
            Err(FilterError::UnknownAttribute("z".into()))
        );
        assert_eq!(
            FilterExpr::new()
                .and("x", Op::Gt, 5.0)
                .and("x", Op::Lt, 3.0)
                .compile::<2>(&schema()),
            Err(FilterError::Unsatisfiable("x".into()))
        );
        assert!(matches!(
            FilterExpr::new().compile::<3>(&schema()),
            Err(FilterError::DimensionMismatch {
                expected: 3,
                schema: 2
            })
        ));
        assert_eq!(
            FilterExpr::new()
                .and("x", Op::Eq, f64::NAN)
                .compile::<2>(&schema()),
            Err(FilterError::NotANumber("x".into()))
        );
    }

    #[test]
    fn event_compiles_to_point() {
        let e = Event::new().with("y", 2.0).with("x", 1.0);
        let p = e.compile::<2>(&schema()).unwrap();
        assert_eq!(p, Point::new([1.0, 2.0]));
    }

    #[test]
    fn event_missing_value() {
        let e = Event::new().with("x", 1.0);
        assert_eq!(
            e.compile::<2>(&schema()),
            Err(FilterError::MissingValue("y".into()))
        );
    }

    #[test]
    fn event_overwrite() {
        let e = Event::new().with("x", 1.0).with("x", 7.0).with("y", 0.0);
        let p = e.compile::<2>(&schema()).unwrap();
        assert_eq!(p.coord(0), 7.0);
    }

    #[test]
    fn filter_matches_event_end_to_end() {
        let s = schema();
        let f = FilterExpr::new()
            .and("x", Op::Ge, 0.0)
            .and("x", Op::Le, 10.0)
            .and("y", Op::Ge, 0.0)
            .and("y", Op::Le, 10.0)
            .compile::<2>(&s)
            .unwrap();
        let inside = Event::new().with("x", 5.0).with("y", 5.0);
        let outside = Event::new().with("x", 15.0).with("y", 5.0);
        assert!(f.contains_point(&inside.compile(&s).unwrap()));
        assert!(!f.contains_point(&outside.compile(&s).unwrap()));
    }
}
