use std::fmt;

use crate::Point;

/// A `D`-dimensional axis-aligned rectangle ("poly-space rectangle").
///
/// Rectangles play two roles in the paper:
///
/// * a **subscription filter** — the conjunction of range predicates of
///   §2.1 circumscribes exactly such a rectangle, possibly unbounded in
///   dimensions left unconstrained;
/// * a **minimum bounding rectangle (MBR)** — the tag carried by every
///   R-tree / DR-tree node (§2.2, §3.2).
///
/// Bounds are *closed*: a point on the boundary is contained. Unbounded
/// dimensions are represented with `±f64::INFINITY`.
///
/// # Example
///
/// ```
/// use drtree_spatial::Rect;
/// let a: Rect<2> = Rect::new([0.0, 0.0], [4.0, 4.0]);
/// let b: Rect<2> = Rect::new([1.0, 1.0], [2.0, 3.0]);
/// assert!(a.contains_rect(&b));
/// assert_eq!(a.area(), 16.0);
/// assert_eq!(a.union(&b), a);
/// ```
// `repr(C)` pins the layout to `2·D` consecutive `f64`s (no padding:
// the field arrays share the `f64` alignment), which is what lets the
// packed tree's flat-buffer snapshots view rectangle arrays in place
// instead of deserializing them.
#[derive(Clone, Copy, PartialEq)]
#[repr(C)]
pub struct Rect<const D: usize> {
    lo: [f64; D],
    hi: [f64; D],
}

/// Error returned by [`Rect::try_new`] when the bounds do not describe a
/// rectangle (NaN coordinate, or `lo > hi` in some dimension).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InvalidRectError;

impl fmt::Display for InvalidRectError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("rectangle bounds must be non-NaN with lo <= hi in every dimension")
    }
}

impl std::error::Error for InvalidRectError {}

impl<const D: usize> Rect<D> {
    /// Creates a rectangle from its lower and upper corners.
    ///
    /// # Panics
    ///
    /// Panics if a coordinate is NaN or `lo[i] > hi[i]` for some `i`.
    /// Use [`Rect::try_new`] for a fallible variant or
    /// [`Rect::from_corners`] to normalize swapped bounds.
    pub fn new(lo: [f64; D], hi: [f64; D]) -> Self {
        Self::try_new(lo, hi).expect("invalid rectangle bounds")
    }

    /// Creates a rectangle, returning an error on invalid bounds.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidRectError`] if a coordinate is NaN or
    /// `lo[i] > hi[i]` for some dimension `i`.
    pub fn try_new(lo: [f64; D], hi: [f64; D]) -> Result<Self, InvalidRectError> {
        for i in 0..D {
            if lo[i].is_nan() || hi[i].is_nan() || lo[i] > hi[i] {
                return Err(InvalidRectError);
            }
        }
        Ok(Self { lo, hi })
    }

    /// Creates a rectangle from two arbitrary corners, normalizing the
    /// bounds per dimension.
    ///
    /// # Panics
    ///
    /// Panics if any coordinate is NaN.
    pub fn from_corners(a: [f64; D], b: [f64; D]) -> Self {
        let mut lo = [0.0; D];
        let mut hi = [0.0; D];
        for (i, (&ca, &cb)) in a.iter().zip(b.iter()).enumerate() {
            assert!(!ca.is_nan() && !cb.is_nan(), "corner must not be NaN");
            lo[i] = ca.min(cb);
            hi[i] = ca.max(cb);
        }
        Self { lo, hi }
    }

    /// The degenerate rectangle covering exactly one point.
    pub fn from_point(p: &Point<D>) -> Self {
        Self {
            lo: *p.coords(),
            hi: *p.coords(),
        }
    }

    /// The rectangle covering all of space (every dimension unbounded).
    pub fn everything() -> Self {
        Self {
            lo: [f64::NEG_INFINITY; D],
            hi: [f64::INFINITY; D],
        }
    }

    /// Lower bound along `dim`.
    pub fn lo(&self, dim: usize) -> f64 {
        self.lo[dim]
    }

    /// Upper bound along `dim`.
    pub fn hi(&self, dim: usize) -> f64 {
        self.hi[dim]
    }

    /// All lower bounds.
    pub fn lower(&self) -> &[f64; D] {
        &self.lo
    }

    /// All upper bounds.
    pub fn upper(&self) -> &[f64; D] {
        &self.hi
    }

    /// Extent (side length) along `dim`.
    pub fn extent(&self, dim: usize) -> f64 {
        self.hi[dim] - self.lo[dim]
    }

    /// `true` if every dimension is finite.
    pub fn is_bounded(&self) -> bool {
        (0..D).all(|i| self.lo[i].is_finite() && self.hi[i].is_finite())
    }

    /// The center point. Unbounded dimensions yield non-finite centers.
    pub fn center(&self) -> Point<D> {
        let mut c = [0.0; D];
        for (i, slot) in c.iter_mut().enumerate() {
            *slot = self.lo[i] / 2.0 + self.hi[i] / 2.0;
        }
        Point::new(c)
    }

    /// Hyper-volume (the paper's `|mbr|`, its measure of coverage).
    ///
    /// Degenerate rectangles have area 0; rectangles unbounded in any
    /// dimension have infinite area, which orders them above all bounded
    /// rectangles in the root-election rule of Figure 6.
    pub fn area(&self) -> f64 {
        if (0..D).any(|i| self.extent(i).is_infinite()) {
            return f64::INFINITY;
        }
        (0..D).map(|i| self.extent(i)).product()
    }

    /// Sum of extents (the "margin" minimized by the R\*-tree split).
    pub fn margin(&self) -> f64 {
        (0..D).map(|i| self.extent(i)).sum()
    }

    /// `true` if the point lies inside the rectangle (closed bounds).
    pub fn contains_point(&self, p: &Point<D>) -> bool {
        (0..D).all(|i| self.lo[i] <= p.coord(i) && p.coord(i) <= self.hi[i])
    }

    /// [`Rect::contains_point`] without short-circuiting: every axis
    /// test runs to completion combined with bitwise `&`, so bulk
    /// scans over candidate arrays stay branch-free and predictable.
    /// Prefer this in hot loops whose hit rate hovers near 50%; the
    /// short-circuiting form wins when most tests fail on the first
    /// axis. (`inline(always)`: at four compares the call frame costs
    /// more than the body, and the packed-tree and stab-grid scans it
    /// sits in are measurably slower whenever inlining is missed.)
    #[inline(always)]
    pub fn contains_point_branchless(&self, p: &Point<D>) -> bool {
        let mut hit = true;
        for d in 0..D {
            let c = p.coord(d);
            hit &= (self.lo[d] <= c) & (c <= self.hi[d]);
        }
        hit
    }

    /// Subscription containment: `self ⊒ other`, i.e. every point matching
    /// `other` also matches `self` (§2.1).
    pub fn contains_rect(&self, other: &Self) -> bool {
        (0..D).all(|i| self.lo[i] <= other.lo[i] && other.hi[i] <= self.hi[i])
    }

    /// Strict containment: `self ⊐ other` and the rectangles differ.
    pub fn contains_rect_strict(&self, other: &Self) -> bool {
        self.contains_rect(other) && self != other
    }

    /// `true` if the rectangles share at least one point (closed bounds).
    pub fn intersects(&self, other: &Self) -> bool {
        (0..D).all(|i| self.lo[i] <= other.hi[i] && other.lo[i] <= self.hi[i])
    }

    /// The common region, if any.
    pub fn intersection(&self, other: &Self) -> Option<Self> {
        let mut lo = [0.0; D];
        let mut hi = [0.0; D];
        for i in 0..D {
            lo[i] = self.lo[i].max(other.lo[i]);
            hi[i] = self.hi[i].min(other.hi[i]);
            if lo[i] > hi[i] {
                return None;
            }
        }
        Some(Self { lo, hi })
    }

    /// Area of the common region (0 if disjoint). Used by the R\*-tree
    /// split, which minimizes overlap.
    pub fn overlap_area(&self, other: &Self) -> f64 {
        self.intersection(other).map_or(0.0, |r| r.area())
    }

    /// Smallest rectangle covering both operands (the MBR union `⋃` of the
    /// paper's `Adjust_Children` and `Compute_MBR`).
    pub fn union(&self, other: &Self) -> Self {
        let mut lo = [0.0; D];
        let mut hi = [0.0; D];
        for i in 0..D {
            lo[i] = self.lo[i].min(other.lo[i]);
            hi[i] = self.hi[i].max(other.hi[i]);
        }
        Self { lo, hi }
    }

    /// Grows `self` in place to cover `other`.
    pub fn enlarge_to_cover(&mut self, other: &Self) {
        *self = self.union(other);
    }

    /// Area increase required for `self` to cover `other`.
    ///
    /// This is the quantity minimized by `Choose_Best_Child` when routing
    /// a join request down the tree: "chooses in its children set the child
    /// whose MBR needs the less adjustment to encompass the filter of the
    /// joining subscriber" (§3.2).
    ///
    /// If both the union and `self` are unbounded the enlargement is
    /// reported as 0 (no growth in any finite sense).
    pub fn enlargement(&self, other: &Self) -> f64 {
        let u = self.union(other).area();
        let a = self.area();
        if u.is_infinite() && a.is_infinite() {
            return 0.0;
        }
        u - a
    }

    /// Dead area produced by keeping two rectangles together:
    /// `area(union) − area(a) − area(b)`. The linear and quadratic split
    /// methods pick seeds that *maximize* this waste (§3.2).
    pub fn waste(&self, other: &Self) -> f64 {
        self.union(other).area() - self.area() - other.area()
    }

    /// Area of `self` **not** covered by `cover`:
    /// `area(self) − area(self ∩ cover)`.
    ///
    /// This is the paper's `|mbr_set − filter|` used by `Best_Set_Cover`
    /// when electing the leader of a merged children set (Figure 14).
    pub fn deficit(&self, cover: &Self) -> f64 {
        let inter = self.intersection(cover).map_or(0.0, |r| r.area());
        let a = self.area();
        if a.is_infinite() && inter.is_infinite() {
            return 0.0;
        }
        a - inter
    }

    /// MBR of an iterator of rectangles; `None` when empty.
    ///
    /// Implements the paper's `Compute_MBR` (Figure 7): the component-wise
    /// min of lower bounds and max of upper bounds over a children set.
    pub fn union_all<'a, I>(rects: I) -> Option<Self>
    where
        I: IntoIterator<Item = &'a Self>,
        Self: 'a,
    {
        let mut it = rects.into_iter();
        let first = *it.next()?;
        Some(it.fold(first, |acc, r| acc.union(r)))
    }
}

impl<const D: usize> Eq for Rect<D> {}

impl<const D: usize> fmt::Debug for Rect<D> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Rect{{lo:{:?}, hi:{:?}}}", self.lo, self.hi)
    }
}

impl<const D: usize> fmt::Display for Rect<D> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for i in 0..D {
            if i > 0 {
                write!(f, " × ")?;
            }
            write!(f, "{}..{}", self.lo[i], self.hi[i])?;
        }
        write!(f, "]")
    }
}

impl<const D: usize> From<Point<D>> for Rect<D> {
    fn from(p: Point<D>) -> Self {
        Self::from_point(&p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(lo: [f64; 2], hi: [f64; 2]) -> Rect<2> {
        Rect::new(lo, hi)
    }

    #[test]
    fn construction_valid() {
        let a = r([0.0, 1.0], [2.0, 3.0]);
        assert_eq!(a.lo(0), 0.0);
        assert_eq!(a.hi(1), 3.0);
        assert_eq!(a.extent(0), 2.0);
    }

    #[test]
    fn construction_invalid() {
        assert_eq!(Rect::try_new([1.0], [0.0]), Err(InvalidRectError));
        assert!(Rect::try_new([f64::NAN], [0.0]).is_err());
        assert!(Rect::<1>::try_new([0.0], [0.0]).is_ok());
    }

    #[test]
    #[should_panic(expected = "invalid rectangle")]
    fn new_panics() {
        let _ = Rect::new([2.0], [1.0]);
    }

    #[test]
    fn from_corners_normalizes() {
        let a = Rect::from_corners([2.0, 0.0], [0.0, 3.0]);
        assert_eq!(a, r([0.0, 0.0], [2.0, 3.0]));
    }

    #[test]
    fn area_margin() {
        let a = r([0.0, 0.0], [4.0, 2.0]);
        assert_eq!(a.area(), 8.0);
        assert_eq!(a.margin(), 6.0);
        assert_eq!(Rect::<2>::everything().area(), f64::INFINITY);
        // degenerate with an unbounded dimension: still infinite, not NaN
        let weird = Rect::new([0.0, 0.0], [0.0, f64::INFINITY]);
        assert_eq!(weird.area(), f64::INFINITY);
    }

    #[test]
    fn point_containment_closed_bounds() {
        let a = r([0.0, 0.0], [1.0, 1.0]);
        assert!(a.contains_point(&Point::new([0.0, 1.0])));
        assert!(a.contains_point(&Point::new([0.5, 0.5])));
        assert!(!a.contains_point(&Point::new([1.00001, 0.5])));
    }

    #[test]
    fn rect_containment() {
        let a = r([0.0, 0.0], [4.0, 4.0]);
        let b = r([1.0, 1.0], [2.0, 2.0]);
        assert!(a.contains_rect(&b));
        assert!(!b.contains_rect(&a));
        assert!(a.contains_rect(&a));
        assert!(!a.contains_rect_strict(&a));
        assert!(a.contains_rect_strict(&b));
        assert!(Rect::everything().contains_rect(&a));
    }

    #[test]
    fn intersection_union() {
        let a = r([0.0, 0.0], [2.0, 2.0]);
        let b = r([1.0, 1.0], [3.0, 3.0]);
        assert!(a.intersects(&b));
        assert_eq!(a.intersection(&b), Some(r([1.0, 1.0], [2.0, 2.0])));
        assert_eq!(a.union(&b), r([0.0, 0.0], [3.0, 3.0]));
        assert_eq!(a.overlap_area(&b), 1.0);

        let c = r([5.0, 5.0], [6.0, 6.0]);
        assert!(!a.intersects(&c));
        assert_eq!(a.intersection(&c), None);
        assert_eq!(a.overlap_area(&c), 0.0);
    }

    #[test]
    fn touching_rects_intersect() {
        let a = r([0.0, 0.0], [1.0, 1.0]);
        let b = r([1.0, 0.0], [2.0, 1.0]);
        assert!(a.intersects(&b));
        assert_eq!(a.intersection(&b).unwrap().area(), 0.0);
    }

    #[test]
    fn enlargement_and_waste() {
        let a = r([0.0, 0.0], [2.0, 2.0]);
        let b = r([3.0, 0.0], [4.0, 2.0]);
        // union is [0..4 × 0..2] = 8; a is 4 → enlargement 4
        assert_eq!(a.enlargement(&b), 4.0);
        assert_eq!(a.enlargement(&a), 0.0);
        // waste = 8 - 4 - 2 = 2
        assert_eq!(a.waste(&b), 2.0);
        // overlapping rects can have negative waste
        let c = r([0.0, 0.0], [2.0, 2.0]);
        assert!(a.waste(&c) < 0.0);
    }

    #[test]
    fn deficit() {
        let set = r([0.0, 0.0], [4.0, 4.0]);
        let filt = r([0.0, 0.0], [4.0, 2.0]);
        assert_eq!(set.deficit(&filt), 8.0);
        assert_eq!(set.deficit(&set), 0.0);
        assert_eq!(set.deficit(&Rect::everything()), 0.0);
    }

    #[test]
    fn union_all() {
        let rs = [
            r([0.0, 0.0], [1.0, 1.0]),
            r([2.0, 2.0], [3.0, 3.0]),
            r([-1.0, 0.5], [0.0, 0.6]),
        ];
        assert_eq!(Rect::union_all(rs.iter()), Some(r([-1.0, 0.0], [3.0, 3.0])));
        assert_eq!(Rect::<2>::union_all([].iter()), None);
    }

    #[test]
    fn center() {
        let a = r([0.0, 2.0], [4.0, 4.0]);
        assert_eq!(a.center(), Point::new([2.0, 3.0]));
    }

    #[test]
    fn display() {
        let a = r([0.0, 1.0], [2.0, 3.0]);
        assert_eq!(a.to_string(), "[0..2 × 1..3]");
    }
}
