//! Federation integration tests: federated delivery pinned to the
//! single-broker oracle reference under interleaved churn with broker
//! crashes and rejoins mid-stream (both engines, 2/4/8 brokers),
//! summary-MBR takeover exactness while a broker is down, and the
//! warm-restore delta catch-up path.

use drtree_core::ProcessId;
use drtree_pubsub::{FedConfig, FedEngine, FederatedFabric, RejoinOutcome, ShardedOracle};
use drtree_spatial::{Point, Rect};
use proptest::prelude::*;
use proptest::strategy::Just;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn world() -> Rect<2> {
    Rect::new([0.0, 0.0], [100.0, 100.0])
}

fn rects(n: usize, seed: u64) -> Vec<Rect<2>> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let x = rng.gen_range(0.0..90.0);
            let y = rng.gen_range(0.0..90.0);
            let w = rng.gen_range(1.0..9.0);
            let h = rng.gen_range(1.0..9.0);
            Rect::new([x, y], [x + w, y + h])
        })
        .collect()
}

/// Publishes `point` and steps the fabric (no other traffic) until the
/// event resolves, returning its delivery set.
fn resolve(fabric: &mut FederatedFabric<2>, point: Point<2>) -> Vec<u64> {
    let event = fabric.publish(point);
    for _ in 0..600 {
        fabric.step();
        if let Some(ev) = fabric.completed().iter().rev().find(|e| e.event == event) {
            return ev.subs.clone();
        }
    }
    panic!("publication {event} never resolved");
}

#[derive(Debug, Clone)]
enum Op {
    Subscribe(Rect<2>),
    RelocateNth(usize, Rect<2>),
    UnsubscribeNth(usize),
    Probe(f64, f64),
}

fn arb_rect() -> impl Strategy<Value = Rect<2>> {
    (0.0f64..90.0, 0.0f64..90.0, 1.0f64..9.0, 1.0f64..9.0)
        .prop_map(|(x, y, w, h)| Rect::new([x, y], [x + w, y + h]))
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => arb_rect().prop_map(Op::Subscribe),
        2 => (0usize..256, arb_rect()).prop_map(|(n, r)| Op::RelocateNth(n, r)),
        1 => (0usize..256).prop_map(Op::UnsubscribeNth),
        2 => (0.0f64..100.0, 0.0f64..100.0).prop_map(|(x, y)| Op::Probe(x, y)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The tentpole exactness pin: across 2/4/8 brokers and both
    /// engines, under interleaved subscribe/relocate/unsubscribe churn
    /// with a broker crash and rejoin injected mid-stream, every
    /// probe's federated delivery set equals a single-broker
    /// [`ShardedOracle`] maintained with the very same operations —
    /// op for op, no false negatives ever.
    #[test]
    fn federated_delivery_equals_single_broker_oracle(
        k in prop_oneof![Just(2usize), Just(4), Just(8)],
        rounds_engine in any::<bool>(),
        seed in 0u64..1_000,
        ops in prop::collection::vec(arb_op(), 30..70),
    ) {
        let engine = if rounds_engine { FedEngine::Rounds } else { FedEngine::Event };
        let mut fabric = FederatedFabric::new(k, &world(), seed, engine, FedConfig::default());
        let mut reference: ShardedOracle<2> = ShardedOracle::new(4);
        let mut live: Vec<(u64, Rect<2>)> = Vec::new();

        let crash_at = ops.len() / 3;
        let rejoin_at = 2 * ops.len() / 3;
        let victim = (seed as usize) % k;
        let warm = seed % 2 == 0;
        let mut crashed = false;

        for (i, op) in ops.iter().enumerate() {
            if i == crash_at {
                fabric.checkpoint_all();
                crashed = fabric.crash_broker(victim);
            }
            if i == rejoin_at && crashed {
                let outcome = fabric.rejoin_broker(victim, warm);
                prop_assert_ne!(outcome, RejoinOutcome::NotDown);
                crashed = false;
            }
            match op {
                Op::Subscribe(rect) => {
                    let sub = fabric.subscribe(*rect);
                    reference.insert(ProcessId::from_raw(sub), *rect);
                    live.push((sub, *rect));
                }
                Op::RelocateNth(n, rect) => {
                    if !live.is_empty() {
                        let slot = n % live.len();
                        let (sub, old) = live[slot];
                        prop_assert!(fabric.relocate(sub, *rect));
                        prop_assert!(reference.move_entry(
                            ProcessId::from_raw(sub), &old, *rect));
                        live[slot].1 = *rect;
                    }
                }
                Op::UnsubscribeNth(n) => {
                    if !live.is_empty() {
                        let slot = n % live.len();
                        let (sub, rect) = live.swap_remove(slot);
                        prop_assert!(fabric.unsubscribe(sub));
                        prop_assert!(reference.remove(ProcessId::from_raw(sub), &rect));
                    }
                }
                Op::Probe(x, y) => {
                    // Quiesce the op stream at the probe (the exactness
                    // contract's comparison points), then compare the
                    // delivery set to the single-broker oracle.
                    let point = Point::new([*x, *y]);
                    let mut want = Vec::new();
                    reference.match_point_into(&point, &mut want);
                    let mut want: Vec<u64> = want.iter().map(|id| id.raw()).collect();
                    want.sort_unstable();
                    let got = resolve(&mut fabric, point);
                    prop_assert_eq!(
                        &got, &want,
                        "probe {} diverged from the single-broker oracle (k={}, {:?})",
                        i, k, engine
                    );
                }
            }
            fabric.step();
        }
        if crashed {
            fabric.rejoin_broker(victim, warm);
        }
        prop_assert!(
            fabric.settle(1_500),
            "fabric never re-reached legal: {:?}",
            fabric.check_legal()
        );
        // Post-quiescence sweep: a grid of probes, all exact.
        for gx in 0..5 {
            for gy in 0..5 {
                let point = Point::new([10.0 + 20.0 * gx as f64, 10.0 + 20.0 * gy as f64]);
                let mut want = Vec::new();
                reference.match_point_into(&point, &mut want);
                let mut want: Vec<u64> = want.iter().map(|id| id.raw()).collect();
                want.sort_unstable();
                let got = resolve(&mut fabric, point);
                prop_assert_eq!(&got, &want, "post-quiescence probe diverged");
            }
        }
    }
}

/// Summary-MBR takeover: while a broker is down, its range is answered
/// by the surviving curve-neighbor holder — every probe stays exact
/// (zero false negatives), and forwards actually flowed.
#[test]
fn takeover_keeps_delivery_exact_while_broker_down() {
    let mut fabric = FederatedFabric::new(4, &world(), 21, FedEngine::Rounds, FedConfig::default());
    fabric.bulk_populate(&rects(160, 21));
    assert!(fabric.settle(400), "populate: {:?}", fabric.check_legal());

    assert!(fabric.crash_broker(2));
    let before_forwards = fabric.metrics().label_count("fed-forward");
    for (i, point) in (0..12)
        .map(|i| Point::new([8.0 * i as f64 + 4.0, 90.0 - 7.0 * i as f64]))
        .enumerate()
    {
        let want = fabric.expected_matches(&point);
        let got = resolve(&mut fabric, point);
        assert_eq!(got, want, "probe {i} inexact while broker 2 down");
        let missing = want.iter().filter(|s| !got.contains(s)).count();
        assert_eq!(missing, 0, "probe {i} has false negatives");
    }
    assert!(
        fabric.metrics().label_count("fed-forward") > before_forwards,
        "origin answered everything locally — takeover never exercised"
    );
    assert_eq!(fabric.rejoin_broker(2, false), RejoinOutcome::Cold);
    assert!(fabric.settle(600), "rejoin: {:?}", fabric.check_legal());
}

/// Warm restore + delta catch-up: a broker checkpointed, then left
/// behind by further ops, crashes and warm-rejoins. The restore is
/// accepted ([`RejoinOutcome::Warm`]), the rejoiner resumes *below*
/// the issued version, and anti-entropy pulls exactly the missing
/// suffix until every held range reaches it.
#[test]
fn warm_restore_catches_up_the_post_checkpoint_delta() {
    let mut fabric = FederatedFabric::new(4, &world(), 5, FedEngine::Rounds, FedConfig::default());
    fabric.bulk_populate(&rects(120, 5));
    assert!(fabric.settle(400));
    fabric.checkpoint_all();

    // Ops past the checkpoint, spread across all ranges.
    for rect in rects(60, 6) {
        fabric.subscribe(rect);
    }
    for _ in 0..30 {
        fabric.step();
    }
    assert!(fabric.settle(400));

    // Versions node 1 holds with the post-checkpoint delta applied.
    let node = fabric.node(1).expect("live");
    let fresh: Vec<(usize, u64)> = node
        .held_ranges()
        .iter()
        .map(|&r| (r, node.range_view(r).expect("held").version))
        .collect();

    assert!(fabric.crash_broker(1));
    assert_eq!(fabric.rejoin_broker(1, true), RejoinOutcome::Warm);
    // Straight after the restore the rejoiner sits at the checkpoint:
    // non-empty (warm restore took) but behind where the range got to —
    // the delta it must now pull back via anti-entropy.
    let node = fabric.node(1).expect("revived");
    let behind = fresh.iter().any(|&(r, fresh_v)| {
        let view = node.range_view(r).expect("held");
        view.version > 0 && view.version < fresh_v
    });
    assert!(
        behind,
        "warm restore was not stale — delta path unexercised"
    );
    assert!(fabric.settle(600), "catch-up: {:?}", fabric.check_legal());
    // check_legal already pins every live holder (the rejoiner
    // included) to the issued version with the expected fingerprint.
}
