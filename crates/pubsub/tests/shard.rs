//! Property tests pinning the sharded oracle to a rebuild-from-scratch
//! reference: for every shard count and every delta-layer compaction
//! threshold (always-compact through never-compact), under random
//! *interleaved* subscribe/unsubscribe/publish/flush sequences (the
//! regime the paper's dissemination layer lives in — membership
//! mutates while events flow), `ShardedOracle` must return hit-sets
//! identical to one freshly bulk-loaded `PackedRTree` over the same
//! live entry set, on both the single-probe and the batched path.

use drtree_core::ProcessId;
use drtree_pubsub::{BatchMatches, CompactionMode, ShardedOracle};
use drtree_rtree::PackedRTree;
use drtree_spatial::{Point, Rect};
use proptest::prelude::*;
use proptest::strategy::Just;

#[derive(Debug, Clone)]
enum Op {
    Subscribe(Rect<2>),
    /// Remove the n-th (mod live) entry.
    UnsubscribeNth(usize),
    Publish(Point<2>),
    /// Force a maintenance pass mid-sequence (compaction at the
    /// configured threshold, rebalance if due).
    Flush,
}

fn arb_rect() -> impl Strategy<Value = Rect<2>> {
    // Mixed scales and occasional far-flung rectangles, so world
    // growth and rebalancing trigger mid-sequence.
    (0.0f64..400.0, 0.0f64..400.0, 0.1f64..60.0, 0.1f64..60.0)
        .prop_map(|(x, y, w, h)| Rect::new([x, y], [x + w, y + h]))
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => arb_rect().prop_map(Op::Subscribe),
        2 => (0usize..256).prop_map(Op::UnsubscribeNth),
        3 => (0.0f64..460.0, 0.0f64..460.0)
            .prop_map(|(x, y)| Op::Publish(Point::new([x, y]))),
        1 => Just(Op::Flush),
    ]
}

/// Compaction thresholds exercised per case: `0.0` compacts on every
/// flush (the rebuild-on-flush baseline), `0.05` compacts aggressively
/// mid-sequence, the default rarely at these sizes, `1e9` never — so
/// the delta layer is pinned at every depth from empty to
/// all-of-the-data.
fn arb_delta_fraction() -> impl Strategy<Value = f64> {
    prop::sample::select(vec![0.0, 0.05, drtree_rtree::DEFAULT_DELTA_FRACTION, 1e9])
}

/// The reference answer: a fresh packed tree over the live entries.
fn reference_matches(model: &[(ProcessId, Rect<2>)], point: &Point<2>) -> Vec<ProcessId> {
    let tree: PackedRTree<ProcessId, 2> = PackedRTree::bulk_load(model.to_vec());
    let mut hits: Vec<ProcessId> = tree.search_point(point).into_iter().copied().collect();
    hits.sort_unstable();
    hits.dedup();
    hits
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Single-probe equivalence for K = 1, 2, 4, 7 under interleaved
    /// mutation, publishing, and flushing, at the sampled compaction
    /// threshold — pinning the delta-layer oracle to a
    /// rebuild-from-scratch reference whatever the delta's depth.
    #[test]
    fn sharded_hit_sets_match_packed_reference(
        ops in prop::collection::vec(arb_op(), 1..120),
        fraction in arb_delta_fraction(),
    ) {
        for shards in [1usize, 2, 4, 7] {
            let mut oracle: ShardedOracle<2> = ShardedOracle::new(shards);
            oracle.set_delta_fraction(fraction);
            let mut model: Vec<(ProcessId, Rect<2>)> = Vec::new();
            let mut next_id = 0u64;
            let mut hits = Vec::new();

            for op in &ops {
                match op {
                    Op::Subscribe(rect) => {
                        let id = ProcessId::from_raw(next_id);
                        next_id += 1;
                        oracle.insert(id, *rect);
                        model.push((id, *rect));
                    }
                    Op::UnsubscribeNth(n) => {
                        if !model.is_empty() {
                            let (id, rect) = model.remove(n % model.len());
                            prop_assert!(
                                oracle.remove(id, &rect),
                                "K={shards}: live entry not found for removal"
                            );
                        }
                    }
                    Op::Publish(point) => {
                        oracle.match_point_into(point, &mut hits);
                        let want = reference_matches(&model, point);
                        prop_assert_eq!(
                            &hits, &want,
                            "K={} fraction={} at {:?}", shards, fraction, point
                        );
                    }
                    Op::Flush => {
                        oracle.flush();
                    }
                }
                prop_assert_eq!(oracle.len(), model.len());
            }
        }
    }

    /// The batched path answers exactly like the single-probe path for
    /// every shard count, probe by probe — with the delta layer at
    /// every sampled depth (`fraction` controls how much of the data
    /// is still staged when the probes run).
    #[test]
    fn batched_matches_equal_single_probes(
        rects in prop::collection::vec(arb_rect(), 0..150),
        probes in prop::collection::vec(
            (0.0f64..460.0, 0.0f64..460.0).prop_map(|(x, y)| Point::<2>::new([x, y])),
            1..80,
        ),
        removals in prop::collection::vec(0usize..150, 0..30),
        fraction in arb_delta_fraction(),
    ) {
        for shards in [1usize, 2, 4, 7] {
            // threads = 1 exercises the fused merge-free pass,
            // threads = 3 the scoped-worker fan + stream merge.
            for threads in [1usize, 3] {
                let mut oracle: ShardedOracle<2> = ShardedOracle::new(shards);
                oracle.set_threads(threads);
                oracle.set_delta_fraction(fraction);
                let mut live: Vec<(ProcessId, Rect<2>)> = Vec::new();
                for (i, rect) in rects.iter().enumerate() {
                    // Every third entry duplicates the previous id,
                    // modelling subscription sets (dedup must hold).
                    let id = ProcessId::from_raw((i - usize::from(i % 3 == 2)) as u64);
                    oracle.insert(id, *rect);
                    live.push((id, *rect));
                    // Flush mid-load a few times so part of the data is
                    // packed and part staged when the probes run.
                    if i % 50 == 49 {
                        oracle.flush();
                    }
                }
                for n in &removals {
                    if live.is_empty() {
                        break;
                    }
                    let (id, rect) = live.remove(n % live.len());
                    prop_assert!(oracle.remove(id, &rect));
                }
                let mut batch = BatchMatches::new();
                oracle.match_batch_into(&probes, &mut batch);
                prop_assert_eq!(batch.probes(), probes.len());
                let mut single = Vec::new();
                for (i, probe) in probes.iter().enumerate() {
                    oracle.match_point_into(probe, &mut single);
                    prop_assert_eq!(
                        batch.matches(i), single.as_slice(),
                        "K={} threads={} fraction={} probe {}", shards, threads, fraction, i
                    );
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The concurrent-compaction oracle pinned, op for op, to the
    /// synchronous-compaction oracle and the rebuild-from-scratch
    /// reference, under interleaved subscribe/unsubscribe/publish with
    /// flushes landing mid-compaction (an aggressive 2% fraction keeps
    /// background merges almost always in flight, and every flush both
    /// installs finished merges and freezes fresh ones). K = 1, 2, 4, 7.
    #[test]
    fn concurrent_compaction_matches_synchronous_and_rebuild_references(
        ops in prop::collection::vec(arb_op(), 1..120),
    ) {
        for shards in [1usize, 2, 4, 7] {
            let mut concurrent: ShardedOracle<2> = ShardedOracle::new(shards);
            concurrent.set_compaction_mode(CompactionMode::Concurrent);
            concurrent.set_delta_fraction(0.02);
            let mut synchronous: ShardedOracle<2> = ShardedOracle::new(shards);
            synchronous.set_delta_fraction(0.02);
            let mut model: Vec<(ProcessId, Rect<2>)> = Vec::new();
            let mut next_id = 0u64;
            let mut conc_hits = Vec::new();
            let mut sync_hits = Vec::new();
            let mut batch = BatchMatches::new();

            for (step, op) in ops.iter().enumerate() {
                match op {
                    Op::Subscribe(rect) => {
                        let id = ProcessId::from_raw(next_id);
                        next_id += 1;
                        concurrent.insert(id, *rect);
                        synchronous.insert(id, *rect);
                        model.push((id, *rect));
                    }
                    Op::UnsubscribeNth(n) => {
                        if !model.is_empty() {
                            let (id, rect) = model.remove(n % model.len());
                            prop_assert!(concurrent.remove(id, &rect), "concurrent K={shards}");
                            prop_assert!(synchronous.remove(id, &rect), "synchronous K={shards}");
                        }
                    }
                    Op::Publish(point) => {
                        concurrent.match_point_into(point, &mut conc_hits);
                        synchronous.match_point_into(point, &mut sync_hits);
                        let want = reference_matches(&model, point);
                        prop_assert_eq!(
                            &conc_hits, &want,
                            "concurrent vs rebuild reference, K={} step {}", shards, step
                        );
                        prop_assert_eq!(
                            &conc_hits, &sync_hits,
                            "concurrent vs synchronous, K={} step {}", shards, step
                        );
                        // The batched path agrees mid-compaction too.
                        concurrent.match_batch_into(std::slice::from_ref(point), &mut batch);
                        prop_assert_eq!(
                            batch.matches(0), want.as_slice(),
                            "concurrent batched, K={} step {}", shards, step
                        );
                    }
                    Op::Flush => {
                        concurrent.flush();
                        synchronous.flush();
                    }
                }
                prop_assert_eq!(concurrent.len(), model.len());
                prop_assert_eq!(synchronous.len(), model.len());
            }
            // Draining every in-flight merge must change no answer.
            concurrent.finish_compactions();
            for (_, rect) in model.iter().take(8) {
                let p = rect.center();
                concurrent.match_point_into(&p, &mut conc_hits);
                prop_assert_eq!(&conc_hits, &reference_matches(&model, &p));
            }
        }
    }
}

/// Unbounded and world-spanning filters ride the stab grid's overflow
/// list; probes far outside the mapped world clamp to rim cells. Both
/// paths must agree with plain geometry.
#[test]
fn unbounded_filters_and_outlier_probes_match_exactly() {
    for threads in [1usize, 3] {
        let mut oracle: ShardedOracle<2> = ShardedOracle::new(4);
        oracle.set_threads(threads);
        let everything = Rect::everything();
        let half_open = Rect::new([50.0, 0.0], [f64::INFINITY, 40.0]);
        let boxed = Rect::new([0.0, 0.0], [10.0, 10.0]);
        oracle.insert(ProcessId::from_raw(0), everything);
        oracle.insert(ProcessId::from_raw(1), half_open);
        oracle.insert(ProcessId::from_raw(2), boxed);
        for i in 0..64u64 {
            let x = (i % 8) as f64 * 12.0;
            let y = (i / 8) as f64 * 12.0;
            oracle.insert(
                ProcessId::from_raw(10 + i),
                Rect::new([x, y], [x + 6.0, y + 6.0]),
            );
        }
        let model: Vec<(u64, Rect<2>)> = [(0, everything), (1, half_open), (2, boxed)]
            .into_iter()
            .chain((0..64u64).map(|i| {
                let x = (i % 8) as f64 * 12.0;
                let y = (i / 8) as f64 * 12.0;
                (10 + i, Rect::new([x, y], [x + 6.0, y + 6.0]))
            }))
            .collect();

        let probes = vec![
            Point::new([5.0, 5.0]),
            Point::new([1e9, 20.0]), // far outside the world, half-open match
            Point::new([-1e9, -1e9]), // far outside, only `everything`
            Point::new([60.0, 30.0]),
        ];
        let mut batch = BatchMatches::new();
        oracle.match_batch_into(&probes, &mut batch);
        let mut single = Vec::new();
        for (i, p) in probes.iter().enumerate() {
            let mut want: Vec<ProcessId> = model
                .iter()
                .filter(|(_, r)| r.contains_point(p))
                .map(|(id, _)| ProcessId::from_raw(*id))
                .collect();
            want.sort_unstable();
            oracle.match_point_into(p, &mut single);
            assert_eq!(single, want, "single, threads={threads}, probe {i}");
            assert_eq!(
                batch.matches(i),
                want.as_slice(),
                "batch, threads={threads}, probe {i}"
            );
        }
    }
}

/// `restore_bytes_checked` — the federated warm-restart gate. A
/// snapshot restored under the very shard assignment it was cut with
/// round-trips; the same bytes presented against a map whose
/// boundaries have since moved (or with a different shard count) are
/// rejected with [`SnapshotError::StaleBoundaries`] instead of
/// silently filing entries into the wrong shards.
#[test]
fn checked_restore_accepts_matching_map_and_rejects_moved_boundaries() {
    use drtree_rtree::SnapshotError;
    use drtree_spatial::hilbert::ShardMap;

    let mut oracle: ShardedOracle<2> = ShardedOracle::new(4);
    // Spread entries so every shard is populated and the first
    // boundary sits well above the key floor (shiftable downward).
    for i in 0..300u64 {
        let x = (i % 20) as f64 * 19.0;
        let y = (i / 20) as f64 * 24.0;
        oracle.insert(
            ProcessId::from_raw(i),
            Rect::new([x, y], [x + 5.0, y + 5.0]),
        );
    }
    oracle.flush();
    let expected: ShardMap<2> = oracle
        .shard_map()
        .expect("flushed oracle has a map")
        .clone();
    let bytes = oracle.snapshot_bytes();

    // Accept: same assignment, full state back.
    let mut restored = ShardedOracle::restore_bytes_checked(bytes.clone(), &expected)
        .expect("matching boundaries must restore");
    assert_eq!(restored.entries().len(), 300);
    assert_eq!(
        restored.shard_map().expect("restored map").boundaries(),
        expected.boundaries()
    );

    // Reject: one boundary moved since the checkpoint was cut.
    let b = expected.boundaries();
    assert!(b[0] > 0, "first boundary must be shiftable");
    let moved = expected.with_boundary(0, b[0] - 1);
    assert_ne!(moved.boundaries(), expected.boundaries());
    match ShardedOracle::restore_bytes_checked(bytes.clone(), &moved) {
        Err(SnapshotError::StaleBoundaries {
            found,
            expected: want,
        }) => {
            assert_eq!(found, 4);
            assert_eq!(want, 4);
        }
        other => panic!("moved boundary must be rejected, got {other:?}"),
    }

    // Reject: the owner now prescribes a different shard count.
    let rewidened = ShardMap::new(8, expected.world());
    match ShardedOracle::restore_bytes_checked(bytes, &rewidened) {
        Err(SnapshotError::StaleBoundaries {
            found,
            expected: want,
        }) => {
            assert_eq!(found, 4);
            assert_eq!(want, 8);
        }
        other => panic!("different shard count must be rejected, got {other:?}"),
    }
}

/// A snapshot cut before any flush carries no shard map and therefore
/// cannot prove its assignment — the checked restore rejects it even
/// though the unchecked one accepts it.
#[test]
fn checked_restore_rejects_maplessness() {
    use drtree_rtree::SnapshotError;
    use drtree_spatial::hilbert::ShardMap;

    let mut oracle: ShardedOracle<2> = ShardedOracle::new(2);
    oracle.insert(ProcessId::from_raw(1), Rect::new([0.0, 0.0], [1.0, 1.0]));
    let bytes = oracle.snapshot_bytes();
    assert!(oracle.shard_map().is_none(), "no flush yet, no map");
    assert!(ShardedOracle::<2>::restore_bytes(bytes.clone()).is_ok());

    let expected: ShardMap<2> = ShardMap::new(2, &Rect::new([0.0, 0.0], [10.0, 10.0]));
    match ShardedOracle::restore_bytes_checked(bytes, &expected) {
        Err(SnapshotError::StaleBoundaries {
            found,
            expected: want,
        }) => {
            assert_eq!(found, 0);
            assert_eq!(want, 2);
        }
        other => panic!("mapless snapshot must be rejected, got {other:?}"),
    }
}
