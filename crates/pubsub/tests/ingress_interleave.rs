//! Seeded-interleaving tests for the ingress queue machinery.
//!
//! The dangerous edges of a bounded MPSC ingress are backpressure
//! (producers blocked on a full queue), drain (consumer racing
//! producers on the same mutex), and shutdown (close racing in-flight
//! pushes). These tests drive real threads through seeded schedules of
//! those edges and check the two invariants the exactness suite
//! depends on: **no accepted publication is ever lost or duplicated**
//! (per-publisher sequence numbers commit exactly once, in order), and
//! **accounting balances** (`submitted == committed + backlog`,
//! rejects are counted, never silently dropped).
//!
//! The last test is the coordinated-omission regression: latency is
//! billed from the *scheduled arrival* time, so a stalled commit loop
//! inflates the recorded quantiles instead of hiding behind them.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::thread;
use std::time::Duration;

use drtree_core::{DrTreeConfig, ProcessId};
use drtree_pubsub::{AuditRecord, Broker, IngressConfig, IngressError, MultiBroker};
use drtree_spatial::{Point, Rect, Schema};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn schema() -> Schema {
    Schema::new(["x", "y"])
}

fn small_multi(seed: u64, config: IngressConfig) -> MultiBroker<2> {
    let broker: Broker<2> = Broker::new(schema(), DrTreeConfig::default(), seed).unwrap();
    let multi = MultiBroker::new(broker, config);
    let mut rng = StdRng::seed_from_u64(seed);
    for _ in 0..6 {
        let x = rng.gen_range(0.0..90.0);
        let y = rng.gen_range(0.0..90.0);
        multi.subscribe_rect(Rect::new([x, y], [x + 8.0, y + 8.0]));
    }
    multi
}

fn seeded_point(rng: &mut StdRng) -> Point<2> {
    Point::new([rng.gen_range(0.0..100.0), rng.gen_range(0.0..100.0)])
}

/// Audit-side tally: per-publisher committed sequence numbers must be
/// exactly `0..count`, each once, ascending — no loss, no duplication,
/// no reordering. Returns commits per publisher.
fn committed_seqs(audit: &[AuditRecord<2>]) -> BTreeMap<ProcessId, u64> {
    let mut next: BTreeMap<ProcessId, u64> = BTreeMap::new();
    for record in audit {
        if let AuditRecord::Commit { publisher, seq, .. } = record {
            let expected = next.entry(*publisher).or_insert(0);
            assert_eq!(*seq, *expected, "publisher {publisher:?} lost or reordered");
            *expected += 1;
        }
    }
    next
}

#[test]
fn seeded_interleavings_never_lose_or_duplicate() {
    // Tiny queues + tiny fair budget + auto-drain: every edge
    // (backpressure wait, drain race, pump race) fires constantly.
    for seed in [3u64, 17, 29, 71] {
        let multi = small_multi(
            seed,
            IngressConfig {
                queue_capacity: 2,
                fair_budget: 1,
                max_batch: 4,
                audit_log: true,
                refresh_snapshots: false,
                auto_drain: true,
            },
        );
        let handles: Vec<_> = (0..3)
            .map(|p| {
                multi.add_publisher(Rect::new(
                    [10.0 * p as f64, 0.0],
                    [10.0 * p as f64 + 5.0, 5.0],
                ))
            })
            .collect();
        let accepted: Vec<AtomicU64> = (0..3).map(|_| AtomicU64::new(0)).collect();
        thread::scope(|s| {
            for (p, handle) in handles.iter().enumerate() {
                let accepted = &accepted[p];
                s.spawn(move || {
                    let mut rng = StdRng::seed_from_u64(seed * 31 + p as u64);
                    for _ in 0..40 {
                        let point = seeded_point(&mut rng);
                        // A seeded mix of blocking and non-blocking
                        // pushes; only accepted ones count.
                        if rng.gen_bool(0.5) {
                            handle.publish(point).expect("open");
                            accepted.fetch_add(1, Ordering::Relaxed);
                        } else if handle.try_publish(point).is_ok() {
                            accepted.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                });
            }
            // A racing drainer exercising the consumer/pump path.
            let multi_ref = &multi;
            s.spawn(move || {
                for _ in 0..10 {
                    multi_ref.drain();
                }
            });
        });
        multi.drain();

        let rate = multi.rate();
        let total_accepted: u64 = accepted.iter().map(|a| a.load(Ordering::Relaxed)).sum();
        assert_eq!(rate.submitted, total_accepted, "seed {seed}");
        assert_eq!(
            rate.committed, total_accepted,
            "seed {seed}: lost publications"
        );

        let audit = multi.take_audit();
        let per_publisher = committed_seqs(&audit);
        for (p, handle) in handles.iter().enumerate() {
            assert_eq!(
                per_publisher.get(&handle.id()).copied().unwrap_or(0),
                accepted[p].load(Ordering::Relaxed),
                "seed {seed}: publisher {p} commit count"
            );
        }
        multi.finish();
    }
}

#[test]
fn backpressure_rejects_are_counted_not_lost() {
    // No auto-drain: the queue fills and stays full, so `try_publish`
    // rejections are deterministic.
    let multi = small_multi(
        5,
        IngressConfig {
            queue_capacity: 4,
            audit_log: true,
            refresh_snapshots: false,
            auto_drain: false,
            ..IngressConfig::default()
        },
    );
    let handle = multi.add_publisher(Rect::new([0.0, 0.0], [5.0, 5.0]));
    let mut rng = StdRng::seed_from_u64(5);
    let mut ok = 0u64;
    let mut full = 0u64;
    for _ in 0..10 {
        match handle.try_publish(seeded_point(&mut rng)) {
            Ok(()) => ok += 1,
            Err(IngressError::Full) => full += 1,
            Err(other) => panic!("unexpected {other}"),
        }
    }
    assert_eq!((ok, full), (4, 6), "capacity-4 queue admits exactly 4");
    let rate = multi.rate();
    assert_eq!(rate.submitted, 4);
    assert_eq!(rate.rejected, 6);
    assert_eq!(rate.committed, 0, "nothing commits before the drain");

    multi.drain();
    let rate = multi.rate();
    assert_eq!(rate.committed, 4, "the backlog commits exactly once");
    assert_eq!(committed_seqs(&multi.take_audit())[&handle.id()], 4);
    multi.finish();
}

#[test]
fn shutdown_edge_commits_every_accepted_publication() {
    // Publishers hammer the ingress while the main thread shuts it
    // down. Invariant: every publish that returned Ok is committed;
    // every racing publish fails with Closed, never half-accepted.
    let multi = small_multi(
        9,
        IngressConfig {
            queue_capacity: 2,
            fair_budget: 2,
            max_batch: 8,
            audit_log: true,
            refresh_snapshots: false,
            auto_drain: true,
        },
    );
    let handles: Vec<_> = (0..4)
        .map(|p| {
            multi.add_publisher(Rect::new(
                [12.0 * p as f64, 40.0],
                [12.0 * p as f64 + 6.0, 46.0],
            ))
        })
        .collect();
    let accepted = AtomicU64::new(0);

    let (audit, broker) = thread::scope(|s| {
        for (p, handle) in handles.iter().enumerate() {
            let accepted = &accepted;
            s.spawn(move || {
                let mut rng = StdRng::seed_from_u64(900 + p as u64);
                loop {
                    match handle.publish(seeded_point(&mut rng)) {
                        Ok(()) => {
                            accepted.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(IngressError::Closed) => return,
                        Err(other) => panic!("unexpected {other}"),
                    }
                }
            });
        }
        // Let the storm develop, then pull the plug mid-flight.
        thread::sleep(Duration::from_millis(30));
        let audit = multi.take_audit();
        let broker = multi.finish();
        (audit, broker)
    });

    // take_audit ran mid-stream; finish committed the rest. Total
    // commits live in the returned broker's stats.
    let committed_early: u64 = committed_seqs(&audit).values().sum();
    let total = broker.stats().events();
    assert!(total >= committed_early);
    assert_eq!(
        total,
        accepted.load(Ordering::Relaxed),
        "accepted and committed publications must balance across shutdown"
    );
}

#[test]
fn cloned_handles_share_one_fifo_queue() {
    // Clones make the shard multi-producer; sequence numbers are
    // assigned under the queue lock, so the committed order is still a
    // single FIFO with no loss or duplication.
    let multi = small_multi(
        13,
        IngressConfig {
            queue_capacity: 4,
            audit_log: true,
            refresh_snapshots: false,
            auto_drain: true,
            ..IngressConfig::default()
        },
    );
    let handle = multi.add_publisher(Rect::new([20.0, 20.0], [30.0, 30.0]));
    let clone = handle.clone();
    assert_eq!(handle.id(), clone.id());
    thread::scope(|s| {
        for (h, seed) in [(&handle, 1u64), (&clone, 2u64)] {
            s.spawn(move || {
                let mut rng = StdRng::seed_from_u64(seed);
                for _ in 0..30 {
                    h.publish(seeded_point(&mut rng)).expect("open");
                }
            });
        }
    });
    multi.drain();
    assert_eq!(committed_seqs(&multi.take_audit())[&handle.id()], 60);
    multi.finish();
}

#[test]
fn latency_is_billed_from_scheduled_arrival_not_dequeue() {
    // Coordinated-omission regression. The publication is *scheduled*
    // at the epoch (t=0) but sits queued until the explicit drain —
    // like an open-loop generator whose system stalled. Billing from
    // dequeue would record ~0; billing from scheduled arrival must
    // record at least the full stall.
    let multi = small_multi(
        21,
        IngressConfig {
            refresh_snapshots: false,
            auto_drain: false,
            ..IngressConfig::default()
        },
    );
    let handle = multi.add_publisher(Rect::new([0.0, 0.0], [5.0, 5.0]));
    handle
        .publish_at(Point::new([50.0, 50.0]), 0)
        .expect("open");
    // Ensure a measurable stall between scheduled arrival and commit.
    let stall_ns = 5_000_000u64;
    while multi.now_ns() < stall_ns {
        thread::sleep(Duration::from_millis(1));
    }
    multi.drain();
    let latency = multi.latency();
    assert_eq!(latency.count, 1);
    assert!(
        latency.max_ns >= stall_ns,
        "queue wait was coordinated away: billed {} ns for a ≥{} ns stall",
        latency.max_ns,
        stall_ns
    );
    // And the quantiles see the same single sample.
    assert!(latency.p50_ns >= stall_ns);

    // Contrast: an event scheduled "now" and drained immediately bills
    // only its real queue wait — orders of magnitude below the stall.
    let before = multi.latency().max_ns;
    handle
        .publish_at(Point::new([50.0, 50.0]), multi.now_ns())
        .expect("open");
    multi.drain();
    let latency = multi.latency();
    assert_eq!(latency.count, 2);
    assert_eq!(
        latency.max_ns, before,
        "a fresh event must not inherit the stalled event's latency"
    );
    multi.finish();
}
