//! Broker-level integration tests: the attribute-space API end to end,
//! audited against the centralized R-tree oracle.

use drtree_core::DrTreeConfig;
use drtree_pubsub::{Broker, BrokerError};
use drtree_spatial::{Event, FilterExpr, Op, Rect, Schema};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn schema() -> Schema {
    Schema::new(["x", "y"])
}

fn box_filter(x: f64, y: f64, w: f64, h: f64) -> FilterExpr {
    FilterExpr::new()
        .and("x", Op::Ge, x)
        .and("x", Op::Le, x + w)
        .and("y", Op::Ge, y)
        .and("y", Op::Le, y + h)
}

#[test]
fn schema_mismatch_rejected() {
    let result: Result<Broker<3>, _> = Broker::new(schema(), DrTreeConfig::default(), 1);
    assert!(matches!(
        result,
        Err(BrokerError::SchemaDimensionMismatch {
            expected: 3,
            schema: 2
        })
    ));
}

#[test]
fn subscribe_publish_unsubscribe_lifecycle() {
    let mut broker: Broker<2> = Broker::new(schema(), DrTreeConfig::default(), 2).unwrap();
    let a = broker.subscribe(&box_filter(0.0, 0.0, 10.0, 10.0)).unwrap();
    let b = broker.subscribe(&box_filter(5.0, 5.0, 10.0, 10.0)).unwrap();
    let c = broker.subscribe(&box_filter(50.0, 50.0, 5.0, 5.0)).unwrap();
    assert_eq!(broker.len(), 3);

    // Event in the overlap of a and b, published by c.
    let report = broker
        .publish(c, &Event::new().with("x", 7.0).with("y", 7.0))
        .unwrap();
    let mut matching = report.matching.clone();
    matching.sort_unstable();
    assert_eq!(matching, vec![a, b]);
    assert!(report.false_negatives.is_empty());

    broker.unsubscribe(b).unwrap();
    broker.stabilize(2_000).expect("stabilizes after leave");
    let report = broker
        .publish(c, &Event::new().with("x", 7.0).with("y", 7.0))
        .unwrap();
    assert_eq!(report.matching, vec![a]);
    assert!(report.false_negatives.is_empty());

    assert!(matches!(
        broker.unsubscribe(b),
        Err(BrokerError::UnknownSubscriber(_))
    ));
}

#[test]
fn invalid_filters_and_events_are_rejected() {
    let mut broker: Broker<2> = Broker::new(schema(), DrTreeConfig::default(), 3).unwrap();
    assert!(matches!(
        broker.subscribe(&FilterExpr::new().and("z", Op::Eq, 1.0)),
        Err(BrokerError::Filter(_))
    ));
    let a = broker.subscribe(&box_filter(0.0, 0.0, 1.0, 1.0)).unwrap();
    assert!(matches!(
        broker.publish(a, &Event::new().with("x", 1.0)), // y missing
        Err(BrokerError::Filter(_))
    ));
}

#[test]
fn randomized_workload_has_zero_false_negatives_and_low_fp() {
    let mut broker: Broker<2> = Broker::new(schema(), DrTreeConfig::default(), 5).unwrap();
    let mut rng = StdRng::seed_from_u64(11);
    let mut ids = Vec::new();
    for _ in 0..50 {
        let x = rng.gen_range(0.0..90.0);
        let y = rng.gen_range(0.0..90.0);
        let w = rng.gen_range(2.0..20.0);
        let h = rng.gen_range(2.0..20.0);
        ids.push(broker.subscribe(&box_filter(x, y, w, h)).unwrap());
    }
    for i in 0..40 {
        let publisher = ids[i % ids.len()];
        let ev = Event::new()
            .with("x", rng.gen_range(0.0..100.0))
            .with("y", rng.gen_range(0.0..100.0));
        broker.publish(publisher, &ev).unwrap();
    }
    let stats = *broker.stats();
    assert_eq!(stats.false_negatives(), 0, "{stats}");
    assert_eq!(stats.events(), 40);
    // Uniform low-selectivity workloads are the adversarial case for
    // per-delivery FP (most deliveries are the up-path); the population-
    // relative disturbance must still be small, and the message cost
    // logarithmic. The paper's 2–3% claim is reproduced with the
    // containment/clustered workloads in the experiment harness.
    let population_fp =
        stats.false_positives() as f64 / (stats.events() as f64 * (ids.len() as f64 - 1.0));
    assert!(
        population_fp < 0.15,
        "population FP rate too high: {population_fp} ({stats})"
    );
    assert!(
        stats.messages_per_event() < 20.0,
        "message cost not logarithmic: {stats}"
    );
}

#[test]
fn subscribe_rect_matches_subscribe_expr() {
    let mut broker: Broker<2> = Broker::new(schema(), DrTreeConfig::default(), 6).unwrap();
    let via_expr = broker.subscribe(&box_filter(0.0, 0.0, 4.0, 4.0)).unwrap();
    let via_rect = broker.subscribe_rect(Rect::new([0.0, 0.0], [4.0, 4.0]));
    let subs = broker.subscriptions();
    assert_eq!(subs[&via_expr], subs[&via_rect]);
}

#[test]
fn resubscribe_updates_the_filter() {
    let mut broker: Broker<2> = Broker::new(schema(), DrTreeConfig::default(), 8).unwrap();
    let publisher = broker.subscribe(&box_filter(90.0, 90.0, 5.0, 5.0)).unwrap();
    let old = broker.subscribe(&box_filter(0.0, 0.0, 10.0, 10.0)).unwrap();
    broker.stabilize(2_000).unwrap();

    // The old filter matches (5, 5); update it away and verify.
    let event = Event::new().with("x", 5.0).with("y", 5.0);
    let report = broker.publish(publisher, &event).unwrap();
    assert_eq!(report.matching, vec![old]);

    let new = broker
        .resubscribe(old, &box_filter(50.0, 50.0, 10.0, 10.0))
        .unwrap();
    assert_ne!(new, old);
    broker.stabilize(2_000).unwrap();

    let report = broker.publish(publisher, &event).unwrap();
    assert!(report.matching.is_empty(), "old filter still matching");
    let moved = Event::new().with("x", 55.0).with("y", 55.0);
    let report = broker.publish(publisher, &moved).unwrap();
    assert_eq!(report.matching, vec![new]);
    assert!(matches!(
        broker.resubscribe(old, &box_filter(0.0, 0.0, 1.0, 1.0)),
        Err(BrokerError::UnknownSubscriber(_))
    ));
}

#[test]
fn subscription_sets_match_any_member() {
    let mut broker: Broker<2> = Broker::new(schema(), DrTreeConfig::default(), 9).unwrap();
    let publisher = broker.subscribe(&box_filter(90.0, 90.0, 5.0, 5.0)).unwrap();
    // One subscriber interested in two disjoint regions (§2.1's set).
    let multi = broker
        .subscribe_set(&[
            box_filter(0.0, 0.0, 10.0, 10.0),
            box_filter(50.0, 50.0, 10.0, 10.0),
        ])
        .unwrap();
    let single = broker.subscribe(&box_filter(20.0, 20.0, 5.0, 5.0)).unwrap();
    broker.stabilize(2_000).unwrap();

    // Inside the first member.
    let r = broker
        .publish(publisher, &Event::new().with("x", 5.0).with("y", 5.0))
        .unwrap();
    assert_eq!(r.matching, vec![multi]);
    assert!(r.false_negatives.is_empty());

    // Inside the second member.
    let r = broker
        .publish(publisher, &Event::new().with("x", 55.0).with("y", 55.0))
        .unwrap();
    assert_eq!(r.matching, vec![multi]);
    assert!(r.false_negatives.is_empty());

    // Between the members (inside the MBR but outside both): the
    // subscriber may *receive* it (MBR routing) but must be classified
    // as a false positive, not a match.
    let r = broker
        .publish(publisher, &Event::new().with("x", 30.0).with("y", 30.0))
        .unwrap();
    assert!(!r.matching.contains(&multi));
    if r.receivers.contains(&multi) {
        assert!(r.false_positives.contains(&multi));
    }

    // Unsubscribing a set cleans up every oracle entry.
    broker.unsubscribe(multi).unwrap();
    broker.stabilize(2_000).unwrap();
    let r = broker
        .publish(publisher, &Event::new().with("x", 5.0).with("y", 5.0))
        .unwrap();
    assert!(r.matching.is_empty());
    let _ = single;
}

#[test]
fn empty_subscription_set_rejected() {
    let mut broker: Broker<2> = Broker::new(schema(), DrTreeConfig::default(), 10).unwrap();
    assert!(matches!(
        broker.subscribe_set(&[]),
        Err(BrokerError::Filter(_))
    ));
}

#[test]
fn publish_batch_equals_sequential_publishes() {
    // Two brokers built identically; one publishes a batch, the other
    // publishes the same points one at a time. Reports and aggregate
    // stats must agree field by field.
    let build = || {
        let mut broker: Broker<2> =
            Broker::with_shards(schema(), DrTreeConfig::default(), 21, 4).unwrap();
        let mut rng = StdRng::seed_from_u64(77);
        for _ in 0..40 {
            let x = rng.gen_range(0.0..90.0);
            let y = rng.gen_range(0.0..90.0);
            broker.subscribe_rect(Rect::new([x, y], [x + 10.0, y + 10.0]));
        }
        // A subscription set, so batched reclassification is exercised.
        broker
            .subscribe_set(&[
                box_filter(0.0, 0.0, 8.0, 8.0),
                box_filter(70.0, 70.0, 9.0, 9.0),
            ])
            .unwrap();
        broker
    };
    let mut batched = build();
    let mut sequential = build();
    let publisher = *batched.subscriptions().keys().next().unwrap();

    let mut rng = StdRng::seed_from_u64(78);
    let points: Vec<drtree_spatial::Point<2>> = (0..25)
        .map(|_| drtree_spatial::Point::new([rng.gen_range(0.0..100.0), rng.gen_range(0.0..100.0)]))
        .collect();

    let batch_reports = batched
        .publish_batch(publisher, points.clone().as_slice())
        .unwrap();
    let seq_reports: Vec<_> = points
        .iter()
        .map(|p| sequential.publish_point(publisher, *p).unwrap())
        .collect();

    assert_eq!(batch_reports.len(), seq_reports.len());
    for (b, s) in batch_reports.iter().zip(&seq_reports) {
        let sort = |v: &[drtree_core::ProcessId]| {
            let mut v = v.to_vec();
            v.sort_unstable();
            v
        };
        assert_eq!(sort(&b.matching), sort(&s.matching));
        assert_eq!(sort(&b.receivers), sort(&s.receivers));
        assert_eq!(sort(&b.false_positives), sort(&s.false_positives));
        assert_eq!(sort(&b.false_negatives), sort(&s.false_negatives));
    }
    assert_eq!(batched.stats().events(), sequential.stats().events());
    assert_eq!(
        batched.stats().deliveries(),
        sequential.stats().deliveries()
    );
    assert_eq!(
        batched.stats().false_positives(),
        sequential.stats().false_positives()
    );
    assert_eq!(
        batched.stats().false_negatives(),
        sequential.stats().false_negatives()
    );
}

#[test]
fn publish_batch_rejects_dead_publishers() {
    let mut broker: Broker<2> = Broker::new(schema(), DrTreeConfig::default(), 22).unwrap();
    let a = broker.subscribe(&box_filter(0.0, 0.0, 10.0, 10.0)).unwrap();
    broker.unsubscribe(a).unwrap();
    assert!(matches!(
        broker.publish_batch(a, &[drtree_spatial::Point::new([1.0, 1.0])]),
        Err(BrokerError::UnknownSubscriber(_))
    ));
}

#[test]
fn flush_oracle_moves_rebuild_cost_off_the_publish_path() {
    let mut broker: Broker<2> =
        Broker::with_shards(schema(), DrTreeConfig::default(), 23, 4).unwrap();
    for i in 0..32 {
        let o = f64::from(i);
        broker.subscribe_rect(Rect::new([o, o], [o + 5.0, o + 5.0]));
    }
    assert_eq!(broker.stats().oracle_rebuilds(), 0, "rebuilds are lazy");
    broker.flush_oracle();
    let after_flush = broker.stats().oracle_rebuilds();
    assert!(after_flush > 0, "eager flush rebuilds dirty shards");

    // A publish right after an eager flush pays no further rebuilds.
    let publisher = *broker.subscriptions().keys().next().unwrap();
    broker
        .publish(publisher, &Event::new().with("x", 3.0).with("y", 3.0))
        .unwrap();
    assert_eq!(broker.stats().oracle_rebuilds(), after_flush);

    // A second flush with nothing dirty is free.
    assert_eq!(broker.flush_oracle(), std::time::Duration::ZERO);
}

/// Drives `batches` publish batches of `events_per_batch` events drawn
/// by `event_at` through an adaptive-window broker and returns the
/// window after each batch.
fn window_trajectory(
    seed: u64,
    batches: usize,
    event_at: impl Fn(&mut StdRng) -> [f64; 2],
) -> Vec<usize> {
    let mut broker: Broker<2> = Broker::new(schema(), DrTreeConfig::default(), seed).unwrap();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut ids = Vec::new();
    for _ in 0..150 {
        let x = rng.gen_range(0.0..90.0);
        let y = rng.gen_range(0.0..90.0);
        ids.push(broker.subscribe_rect(Rect::new([x, y], [x + 8.0, y + 8.0])));
    }
    broker.set_adaptive_window(true);
    let mut trajectory = Vec::new();
    for b in 0..batches {
        let publisher = ids[b % ids.len()];
        let points: Vec<drtree_spatial::Point<2>> = (0..24)
            .map(|_| drtree_spatial::Point::new(event_at(&mut rng)))
            .collect();
        broker.publish_batch(publisher, &points).unwrap();
        trajectory.push(broker.publish_window());
    }
    trajectory
}

#[test]
fn adaptive_window_converges_on_uniform_and_hotspot_streams() {
    // Uniform stream: events scattered across the world.
    let uniform = window_trajectory(31, 12, |rng| {
        [rng.gen_range(0.0..100.0), rng.gen_range(0.0..100.0)]
    });
    // Hotspot stream: every event at one spot (worst-case fan-in).
    let hotspot = window_trajectory(32, 12, |_| [42.0, 42.0]);

    for (name, trajectory) in [("uniform", &uniform), ("hotspot", &hotspot)] {
        // The window must leave the fixed default and then settle: the
        // EMA damps batch-to-batch jitter, so the tail of the
        // trajectory varies by at most a couple of slots.
        let tail = &trajectory[trajectory.len() - 4..];
        let (lo, hi) = (
            *tail.iter().min().unwrap() as f64,
            *tail.iter().max().unwrap() as f64,
        );
        assert!(
            hi - lo <= (0.1 * hi).max(2.0),
            "{name} window did not converge: {trajectory:?}"
        );
        assert!(
            tail.iter().all(|&w| (1..=256).contains(&w)),
            "{name} window outside the legal clamp: {trajectory:?}"
        );
        // The adaptive signal is live, not stuck at the default.
        assert!(
            trajectory
                .iter()
                .any(|&w| w != Broker::<2>::DEFAULT_PUBLISH_WINDOW),
            "{name} window never adapted: {trajectory:?}"
        );
    }

    // An explicit window pins: adaptation turns off.
    let mut broker: Broker<2> = Broker::new(schema(), DrTreeConfig::default(), 33).unwrap();
    broker.set_adaptive_window(true);
    assert!(broker.adaptive_window());
    broker.set_publish_window(16);
    assert!(!broker.adaptive_window(), "explicit window pins the size");
    assert_eq!(broker.publish_window(), 16);
}

#[test]
fn oracle_bytes_round_trip_serves_exact_matching() {
    // The durable oracle snapshot: a broker exports its subscription
    // oracle as one flat buffer; a serving replica restores it
    // zero-copy and answers the same matching sets, with no broker
    // overlay state at all.
    let mut broker: Broker<2> = Broker::new(schema(), DrTreeConfig::default(), 4).unwrap();
    let mut ids = Vec::new();
    for i in 0..64 {
        let x = (i % 8) as f64 * 10.0;
        let y = (i / 8) as f64 * 10.0;
        ids.push(broker.subscribe(&box_filter(x, y, 9.0, 9.0)).unwrap());
    }
    broker.flush_oracle();
    // Leave a live delta so the snapshot is mid-churn.
    broker.unsubscribe(ids[3]).unwrap();
    let late = broker.subscribe(&box_filter(0.0, 0.0, 25.0, 25.0)).unwrap();

    let bytes = broker.oracle_snapshot_bytes();
    let mut replica =
        drtree_pubsub::ShardedOracle::<2>::restore_bytes(bytes).expect("replica restores");
    assert_eq!(replica.len(), broker.len());

    let mut hits = Vec::new();
    replica.match_point_into(&drtree_spatial::Point::new([5.0, 5.0]), &mut hits);
    assert!(hits.contains(&ids[0]));
    assert!(hits.contains(&late), "staged subscription travelled");
    assert!(!hits.contains(&ids[3]), "tombstone travelled");
}
