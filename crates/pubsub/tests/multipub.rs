//! Multi-publisher exactness stress suite.
//!
//! The concurrent ingress claims it changes *when* publications
//! commit, never *what* they deliver. These tests pin that claim
//! op-for-op: every run records its audit log (the total commit
//! order), replays it on a plain sequential [`Broker`] built from the
//! same seed, and asserts per-event delivery-set equality plus zero
//! false negatives — under 1, 4, and 16 publishers, with interleaved
//! subscribe/unsubscribe churn and mid-stream publisher join/leave.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::thread;

use drtree_core::{DrTreeConfig, ProcessId};
use drtree_pubsub::{AuditRecord, Broker, IngressConfig, MultiBroker};
use drtree_spatial::{Point, Rect, Schema};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn schema() -> Schema {
    Schema::new(["x", "y"])
}

fn seeded_rect(rng: &mut StdRng) -> Rect<2> {
    let x = rng.gen_range(0.0..90.0);
    let y = rng.gen_range(0.0..90.0);
    let w = rng.gen_range(2.0..10.0);
    let h = rng.gen_range(2.0..10.0);
    Rect::new([x, y], [x + w, y + h])
}

fn seeded_point(rng: &mut StdRng) -> Point<2> {
    Point::new([rng.gen_range(0.0..100.0), rng.gen_range(0.0..100.0)])
}

/// Replays `audit` on a fresh sequential broker with the same seed and
/// asserts op-for-op equality: same assigned ids, same per-event
/// delivery sets, zero false negatives. Returns the commit count.
fn replay_and_check(audit: &[AuditRecord<2>], seed: u64) -> u64 {
    let mut reference: Broker<2> = Broker::new(schema(), DrTreeConfig::default(), seed).unwrap();
    let mut commits = 0u64;
    for record in audit {
        match record {
            AuditRecord::Subscribe { id, rect } => {
                assert_eq!(
                    reference.subscribe_rect(*rect),
                    *id,
                    "replay assigns the same subscriber id"
                );
            }
            AuditRecord::Unsubscribe { id } => {
                reference
                    .unsubscribe(*id)
                    .expect("replayed unsubscribe targets a live id");
            }
            AuditRecord::Stabilize { max_rounds } => {
                reference
                    .stabilize(*max_rounds)
                    .expect("reference overlay stabilizes within the audited budget");
            }
            AuditRecord::Move { id, rect } => {
                reference
                    .move_subscription_rect(*id, *rect)
                    .expect("replayed move targets a live singleton subscriber");
            }
            AuditRecord::Commit {
                publisher,
                point,
                receivers,
                ..
            } => {
                let report = reference
                    .publish_point(*publisher, *point)
                    .expect("replayed publisher is live");
                let mut got = report.receivers.clone();
                got.sort_unstable();
                assert_eq!(
                    &got, receivers,
                    "concurrent and sequential delivery sets diverge at commit {commits}"
                );
                assert!(
                    report.false_negatives.is_empty(),
                    "false negatives at commit {commits}: {:?}",
                    report.false_negatives
                );
                commits += 1;
            }
        }
    }
    commits
}

/// Asserts the audit log preserves every publisher's queue order: the
/// committed `seq` values per publisher are 0, 1, 2, … in commit
/// order (no loss, no duplication, no reordering).
fn check_per_publisher_fifo(audit: &[AuditRecord<2>]) {
    let mut next: BTreeMap<ProcessId, u64> = BTreeMap::new();
    for record in audit {
        if let AuditRecord::Commit { publisher, seq, .. } = record {
            let expected = next.entry(*publisher).or_insert(0);
            assert_eq!(
                *seq, *expected,
                "publisher {publisher:?} committed out of queue order"
            );
            *expected += 1;
        }
    }
}

/// The full concurrent scenario at a given publisher count: phased
/// publishing with racing mid-phase subscriber joins, a mid-stream
/// publisher join + leave, and subscriber churn at phase boundaries.
fn run_concurrent_scenario(publishers: usize, seed: u64, auto_drain: bool) {
    const PHASES: usize = 3;
    const PER_PHASE: usize = 10;

    let broker: Broker<2> = Broker::new(schema(), DrTreeConfig::default(), seed).unwrap();
    let multi = MultiBroker::new(
        broker,
        IngressConfig {
            // Without auto-drain nothing commits until the explicit
            // phase drain, so the queues must hold a whole phase or
            // blocking publishers would wait on a drain that never
            // comes.
            queue_capacity: if auto_drain { 8 } else { PER_PHASE },
            fair_budget: 4,
            max_batch: 64,
            audit_log: true,
            refresh_snapshots: false,
            auto_drain,
        },
    );

    let mut rng = StdRng::seed_from_u64(seed ^ 0x5eed);
    let mut pool: Vec<ProcessId> = (0..12)
        .map(|_| multi.subscribe_rect(seeded_rect(&mut rng)))
        .collect();
    let handles: Vec<_> = (0..publishers)
        .map(|_| multi.add_publisher(seeded_rect(&mut rng)))
        .collect();

    // Scripts are pre-generated so worker threads share no RNG.
    let scripts: Vec<Vec<Vec<Point<2>>>> = (0..publishers)
        .map(|_| {
            (0..PHASES)
                .map(|_| (0..PER_PHASE).map(|_| seeded_point(&mut rng)).collect())
                .collect()
        })
        .collect();
    let guest_points: Vec<Point<2>> = (0..PER_PHASE).map(|_| seeded_point(&mut rng)).collect();
    let guest_rect = seeded_rect(&mut rng);
    let racing_join_rects: Vec<Rect<2>> = (0..PHASES).map(|_| seeded_rect(&mut rng)).collect();

    let published = AtomicU64::new(0);
    for phase in 0..PHASES {
        thread::scope(|s| {
            for (p, handle) in handles.iter().enumerate() {
                let points = &scripts[p][phase];
                let published = &published;
                s.spawn(move || {
                    for point in points {
                        handle.publish(*point).expect("ingress open");
                        published.fetch_add(1, Ordering::Relaxed);
                    }
                });
            }
            // A subscriber join racing the publish stream (stable
            // joins leave the overlay legitimate, so this is safe to
            // interleave with commits at any point).
            let rect = racing_join_rects[phase];
            let multi_ref = &multi;
            s.spawn(move || {
                multi_ref.subscribe_rect(rect);
            });
            // Mid-stream publisher join + leave, racing everyone.
            if phase == 1 {
                let points = &guest_points;
                let published = &published;
                s.spawn(move || {
                    let guest = multi_ref.add_publisher(guest_rect);
                    for point in points {
                        guest.publish(*point).expect("guest ingress open");
                        published.fetch_add(1, Ordering::Relaxed);
                    }
                    guest.leave();
                });
            }
        });
        multi.drain();
        // Subscriber churn at the (quiesced) phase boundary.
        let dead = pool.swap_remove(phase % pool.len());
        multi.unsubscribe(dead).expect("pool id is live");
    }

    // Accounting: everything accepted was committed, nothing rejected.
    let rate = multi.rate();
    assert_eq!(rate.submitted, published.load(Ordering::Relaxed));
    assert_eq!(
        rate.committed, rate.submitted,
        "accepted publications must all commit"
    );
    assert_eq!(rate.rejected, 0, "blocking publishes are never rejected");

    let latency = multi.latency();
    assert_eq!(latency.count, rate.committed, "every commit is billed");
    assert!(latency.p50_ns <= latency.p99_ns && latency.p99_ns <= latency.p999_ns);

    let audit = multi.take_audit();
    check_per_publisher_fifo(&audit);
    let commits = replay_and_check(&audit, seed);
    assert_eq!(commits, rate.committed, "audit records every commit");

    // The handed-back broker is intact and agrees on the totals.
    let broker = multi.finish();
    assert_eq!(broker.stats().events(), commits);
}

#[test]
fn single_publisher_matches_sequential_reference() {
    run_concurrent_scenario(1, 11, true);
}

#[test]
fn four_publishers_match_sequential_reference() {
    run_concurrent_scenario(4, 22, true);
}

#[test]
fn sixteen_publishers_match_sequential_reference() {
    run_concurrent_scenario(16, 33, true);
}

#[test]
fn sixteen_publishers_match_in_explicit_drain_mode() {
    // auto_drain off: publications only commit at the explicit phase
    // drains, making the commit order itself deterministic.
    run_concurrent_scenario(16, 44, false);
}

#[test]
fn explicit_drain_mode_commit_order_is_reproducible() {
    // Same seed, two runs, auto_drain off, single-threaded enqueue:
    // byte-identical audit logs — the deterministic debugging mode.
    let run = |seed: u64| -> Vec<AuditRecord<2>> {
        let broker: Broker<2> = Broker::new(schema(), DrTreeConfig::default(), seed).unwrap();
        let multi = MultiBroker::new(
            broker,
            IngressConfig {
                audit_log: true,
                refresh_snapshots: false,
                auto_drain: false,
                ..IngressConfig::default()
            },
        );
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..8 {
            multi.subscribe_rect(seeded_rect(&mut rng));
        }
        let a = multi.add_publisher(seeded_rect(&mut rng));
        let b = multi.add_publisher(seeded_rect(&mut rng));
        for _ in 0..6 {
            a.publish(seeded_point(&mut rng)).unwrap();
            b.publish(seeded_point(&mut rng)).unwrap();
        }
        multi.drain();
        let audit = multi.take_audit();
        multi.finish();
        audit
    };
    assert_eq!(run(77), run(77));
}

#[test]
fn ema_survives_concurrent_ingress_and_replays_deterministically() {
    // Regression for the adaptive-window EMA data race: the cell is
    // written only by the commit loop, and an audit replay folding the
    // same per-batch round means reproduces the same adaptive state.
    let seed = 55;
    let broker: Broker<2> = Broker::new(schema(), DrTreeConfig::default(), seed).unwrap();
    let multi = MultiBroker::new(
        broker,
        IngressConfig {
            audit_log: true,
            refresh_snapshots: false,
            ..IngressConfig::default()
        },
    );
    let mut rng = StdRng::seed_from_u64(seed);
    for _ in 0..10 {
        multi.subscribe_rect(seeded_rect(&mut rng));
    }
    let handles: Vec<_> = (0..4)
        .map(|_| multi.add_publisher(seeded_rect(&mut rng)))
        .collect();
    let scripts: Vec<Vec<Point<2>>> = (0..4)
        .map(|_| (0..25).map(|_| seeded_point(&mut rng)).collect())
        .collect();
    thread::scope(|s| {
        for (handle, points) in handles.iter().zip(&scripts) {
            s.spawn(move || {
                for point in points {
                    handle.publish(*point).expect("ingress open");
                }
            });
        }
    });
    multi.drain();
    // The mirrored EMA converged to something positive and finite, and
    // matches the broker's own cell exactly after quiescence.
    let mirrored = multi.rounds_ema();
    assert!(mirrored.is_finite() && mirrored > 0.0);
    let audit = multi.take_audit();
    let broker = multi.finish();
    assert_eq!(broker.rounds_ema(), mirrored, "mirror tracks the cell");

    // Replaying the audited batches through publish_batch_multi on a
    // fresh broker reproduces the EMA bit-for-bit: the adaptive state
    // is a pure fold over the committed batch structure.
    let mut reference: Broker<2> = Broker::new(schema(), DrTreeConfig::default(), seed).unwrap();
    let mut batch_events: BTreeMap<u64, Vec<(ProcessId, Point<2>)>> = BTreeMap::new();
    for record in &audit {
        match record {
            AuditRecord::Subscribe { rect, .. } => {
                reference.subscribe_rect(*rect);
            }
            AuditRecord::Commit {
                batch,
                publisher,
                point,
                ..
            } => batch_events
                .entry(*batch)
                .or_default()
                .push((*publisher, *point)),
            _ => {}
        }
    }
    for events in batch_events.values() {
        reference.publish_batch_multi(events).unwrap();
    }
    assert_eq!(
        reference.rounds_ema(),
        mirrored,
        "EMA fold diverged from the concurrent run"
    );
}
