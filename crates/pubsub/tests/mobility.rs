//! Mobility property suite: the sharded oracle under interleaved
//! move/subscribe/unsubscribe/publish sequences — every shard count,
//! fused and fanned, compaction straddling the move stream — is pinned
//! op-for-op to a rebuild-from-scratch packed-tree reference (zero
//! false negatives); TTL lease expiry stays exact mid-sequence, on
//! delta-staged entries, and on a snapshot-restored oracle before its
//! first flush; seeded motion models drive whole trajectories through
//! the move path with per-tick delivery sets pinned; and the broker
//! layers serialize `move_subscription` with publishes.

use drtree_core::{DrTreeConfig, ProcessId};
use drtree_pubsub::{
    AuditRecord, Broker, BrokerError, CompactionMode, IngressConfig, MultiBroker, ShardedOracle,
};
use drtree_rtree::PackedRTree;
use drtree_spatial::{Point, Rect, Schema};
use drtree_workloads::{MotionField, MotionModel};
use proptest::prelude::*;
use proptest::strategy::Just;

fn schema() -> Schema {
    Schema::new(["x", "y"])
}

/// The reference answer: a fresh packed tree over the live entries.
fn reference_matches(model: &[(ProcessId, Rect<2>)], point: &Point<2>) -> Vec<ProcessId> {
    let tree: PackedRTree<ProcessId, 2> = PackedRTree::bulk_load(model.to_vec());
    let mut hits: Vec<ProcessId> = tree.search_point(point).into_iter().copied().collect();
    hits.sort_unstable();
    hits.dedup();
    hits
}

#[derive(Debug, Clone)]
enum Op {
    Subscribe(Rect<2>),
    UnsubscribeNth(usize),
    /// Move the n-th (mod live) entry to a fresh rectangle.
    MoveNth(usize, Rect<2>),
    Publish(Point<2>),
    /// Force a maintenance pass mid-sequence, so moves straddle
    /// compactions and (in concurrent mode) background merges.
    Flush,
}

fn arb_rect() -> impl Strategy<Value = Rect<2>> {
    (0.0f64..400.0, 0.0f64..400.0, 0.1f64..60.0, 0.1f64..60.0)
        .prop_map(|(x, y, w, h)| Rect::new([x, y], [x + w, y + h]))
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        3 => arb_rect().prop_map(Op::Subscribe),
        1 => (0usize..256).prop_map(Op::UnsubscribeNth),
        4 => ((0usize..256), arb_rect()).prop_map(|(n, r)| Op::MoveNth(n, r)),
        3 => (0.0f64..460.0, 0.0f64..460.0)
            .prop_map(|(x, y)| Op::Publish(Point::new([x, y]))),
        1 => Just(Op::Flush),
    ]
}

/// `0.05` compacts aggressively (moves straddle compactions), the
/// default rarely, `1e9` never (the whole sequence lives in the delta
/// layer).
fn arb_delta_fraction() -> impl Strategy<Value = f64> {
    prop::sample::select(vec![0.05, drtree_rtree::DEFAULT_DELTA_FRACTION, 1e9])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The headline exactness pin: interleaved moves, membership
    /// churn, publishes, and flushes for K = 1, 2, 4, 7 shards — both
    /// the fused single-thread fan and the parallel one, synchronous
    /// and background compaction — always match a fresh sequential
    /// rebuild, with zero false negatives.
    #[test]
    fn moving_hit_sets_match_rebuild_reference(
        ops in prop::collection::vec(arb_op(), 1..100),
        fraction in arb_delta_fraction(),
    ) {
        for shards in [1usize, 2, 4, 7] {
            for (threads, mode) in [
                (1usize, CompactionMode::Synchronous),
                (4usize, CompactionMode::Concurrent),
            ] {
                let mut oracle: ShardedOracle<2> = ShardedOracle::new(shards);
                oracle.set_delta_fraction(fraction);
                oracle.set_threads(threads);
                oracle.set_compaction_mode(mode);
                let mut model: Vec<(ProcessId, Rect<2>)> = Vec::new();
                let mut next_id = 0u64;
                let mut moves = 0u64;
                let mut hits = Vec::new();

                for op in &ops {
                    match op {
                        Op::Subscribe(rect) => {
                            let id = ProcessId::from_raw(next_id);
                            next_id += 1;
                            oracle.insert(id, *rect);
                            model.push((id, *rect));
                        }
                        Op::UnsubscribeNth(n) => {
                            if !model.is_empty() {
                                let (id, rect) = model.remove(n % model.len());
                                prop_assert!(oracle.remove(id, &rect));
                            }
                        }
                        Op::MoveNth(n, new) => {
                            if !model.is_empty() {
                                let i = n % model.len();
                                let (id, old) = model[i];
                                prop_assert!(
                                    oracle.move_entry(id, &old, *new),
                                    "K={shards}: live entry {id} must be movable"
                                );
                                model[i].1 = *new;
                                moves += 1;
                            }
                        }
                        Op::Publish(point) => {
                            oracle.match_point_into(point, &mut hits);
                            let want = reference_matches(&model, point);
                            prop_assert_eq!(
                                &hits, &want,
                                "K={} threads={} fraction={} at {:?}",
                                shards, threads, fraction, point
                            );
                        }
                        Op::Flush => {
                            oracle.flush();
                        }
                    }
                    prop_assert_eq!(oracle.len(), model.len());
                }
                // Every move is accounted exactly once, as either a
                // same-shard delta patch or a boundary re-key.
                oracle.finish_compactions();
                prop_assert_eq!(
                    oracle.moved_in_place_total() + oracle.rekeyed_total(),
                    moves
                );
            }
        }
    }

    /// Full seeded trajectories through the move path: every tick of
    /// every motion model translates the whole population via
    /// `move_entry`, and each tick's delivery set is pinned to a fresh
    /// rebuild — with compaction both never and always straddling the
    /// tick stream.
    #[test]
    fn motion_model_ticks_stay_exact(
        seed in any::<u64>(),
        model_pick in 0usize..3,
        fraction in prop::sample::select(vec![0.05, 1e9]),
    ) {
        let world = Rect::new([0.0, 0.0], [100.0, 100.0]);
        let motion = match model_pick {
            0 => MotionModel::RandomWaypoint { min_speed: 0.5, max_speed: 6.0 },
            1 => MotionModel::HotspotDrift {
                hotspots: 3,
                pull: 0.3,
                jitter: 1.0,
                drift: 2.0,
            },
            _ => MotionModel::FlashCrowd { pull: 0.4, jitter: 0.5, relocate_every: 4 },
        };
        let initial: Vec<Rect<2>> = (0..60)
            .map(|i| {
                let x = (i % 10) as f64 * 9.0;
                let y = (i / 10) as f64 * 14.0;
                Rect::new([x, y], [x + 4.0, y + 4.0])
            })
            .collect();
        let mut field = MotionField::new(motion, world, initial, seed);

        let mut oracle: ShardedOracle<2> = ShardedOracle::new(4);
        oracle.set_delta_fraction(fraction);
        let mut model: Vec<(ProcessId, Rect<2>)> = field
            .rects()
            .iter()
            .enumerate()
            .map(|(i, r)| (ProcessId::from_raw(i as u64), *r))
            .collect();
        for &(id, rect) in &model {
            oracle.insert(id, rect);
        }
        oracle.flush();

        let mut deltas = Vec::new();
        let mut hits = Vec::new();
        for tick in 0..8u64 {
            field.step_into(&mut deltas);
            for &(mover, new) in &deltas {
                let (id, old) = model[mover as usize];
                prop_assert!(oracle.move_entry(id, &old, new));
                model[mover as usize].1 = new;
            }
            // Probe a small grid over the world each tick; the oracle
            // must agree with a rebuild-from-scratch reference
            // everywhere (zero false negatives, zero false positives).
            for gx in 0..4 {
                for gy in 0..4 {
                    let p = Point::new([gx as f64 * 30.0 + 2.0, gy as f64 * 30.0 + 2.0]);
                    oracle.match_point_into(&p, &mut hits);
                    let want = reference_matches(&model, &p);
                    prop_assert_eq!(
                        &hits, &want,
                        "tick {} probe ({},{}) diverged", tick, gx, gy
                    );
                }
            }
        }
    }
}

#[test]
fn lease_expiry_mid_sequence_stays_exact() {
    let mut oracle: ShardedOracle<2> = ShardedOracle::new(2);
    let mut model: Vec<(ProcessId, Rect<2>)> = (0..30)
        .map(|i| {
            let x = (i % 6) as f64 * 15.0;
            let y = (i / 6) as f64 * 18.0;
            (
                ProcessId::from_raw(i as u64),
                Rect::new([x, y], [x + 10.0, y + 10.0]),
            )
        })
        .collect();
    for &(id, rect) in &model {
        oracle.insert(id, rect);
    }
    oracle.flush();

    // Arm staggered leases on the first six entries, then interleave
    // moves with clock advances — expiry in the middle of a "tick" of
    // motion must evict exactly the overdue entries and nothing else.
    for (i, &(id, rect)) in model.iter().take(6).enumerate() {
        assert!(oracle.set_lease(id, &rect, (i as u64 + 1) * 10));
    }
    let mut hits = Vec::new();
    for step in 0..6u64 {
        // Move one un-leased entry mid-tick.
        let i = 10 + step as usize;
        let (id, old) = model[i];
        let new = Rect::new(
            [old.lo(0) + 1.0, old.lo(1) + 1.0],
            [old.hi(0) + 1.0, old.hi(1) + 1.0],
        );
        assert!(oracle.move_entry(id, &old, new));
        model[i].1 = new;

        let now = (step + 1) * 10;
        let expired = oracle.expire_leases(now);
        assert_eq!(expired, 1, "exactly one lease crosses each deadline");
        model.remove(0);

        for probe in 0..8 {
            let p = Point::new([probe as f64 * 12.0 + 1.0, probe as f64 * 11.0 + 1.0]);
            oracle.match_point_into(&p, &mut hits);
            assert_eq!(hits, reference_matches(&model, &p), "step {step}");
        }
        assert_eq!(oracle.len(), model.len());
    }
    assert_eq!(oracle.leases_expired_total(), 6);
    assert_eq!(oracle.lease_count(), 0);
}

#[test]
fn lease_expiry_evicts_entries_still_staged_in_the_delta_layer() {
    // No flush ever runs: every entry lives in shard 0's staged tier
    // when its lease fires.
    let mut oracle: ShardedOracle<2> = ShardedOracle::new(3);
    let rect = Rect::new([5.0, 5.0], [10.0, 10.0]);
    let keeper = Rect::new([20.0, 20.0], [30.0, 30.0]);
    oracle.insert(ProcessId::from_raw(1), rect);
    oracle.insert(ProcessId::from_raw(2), keeper);
    assert!(oracle.set_lease(ProcessId::from_raw(1), &rect, 7));
    assert_eq!(oracle.expire_leases(6), 0);
    assert_eq!(oracle.expire_leases(7), 1);
    assert_eq!(oracle.len(), 1);

    let mut hits = Vec::new();
    oracle.match_point_into(&Point::new([6.0, 6.0]), &mut hits);
    assert!(hits.is_empty(), "the staged entry is gone");
    oracle.match_point_into(&Point::new([25.0, 25.0]), &mut hits);
    assert_eq!(hits, vec![ProcessId::from_raw(2)]);
    assert_eq!(oracle.leases_expired_total(), 1);
}

#[test]
fn lease_expiry_works_on_a_restored_oracle_before_its_first_flush() {
    // Build an oracle with both packed and staged tiers populated,
    // snapshot it, restore — and drive expiry while the restored
    // oracle's derived structures (stab grids, id counts) are still
    // stale. Leases are deliberately not serialized, so they are
    // re-armed on the restored instance.
    let mut oracle: ShardedOracle<2> = ShardedOracle::new(2);
    let packed_rect = Rect::new([0.0, 0.0], [10.0, 10.0]);
    let staged_rect = Rect::new([50.0, 50.0], [60.0, 60.0]);
    let keeper = Rect::new([80.0, 80.0], [90.0, 90.0]);
    oracle.insert(ProcessId::from_raw(1), packed_rect);
    oracle.insert(ProcessId::from_raw(3), keeper);
    oracle.flush();
    oracle.insert(ProcessId::from_raw(2), staged_rect);

    let bytes = oracle.snapshot_bytes();
    let mut restored: ShardedOracle<2> = ShardedOracle::restore_bytes(bytes).expect("round-trip");
    assert_eq!(
        restored.lease_count(),
        0,
        "leases never travel in snapshots"
    );

    // Arm and expire on both tiers before anything flushes.
    assert!(restored.set_lease(ProcessId::from_raw(1), &packed_rect, 5));
    assert!(restored.set_lease(ProcessId::from_raw(2), &staged_rect, 5));
    assert_eq!(restored.expire_leases(5), 2);
    assert_eq!(restored.len(), 1);

    let mut hits = Vec::new();
    restored.match_point_into(&Point::new([5.0, 5.0]), &mut hits);
    assert!(hits.is_empty());
    restored.match_point_into(&Point::new([55.0, 55.0]), &mut hits);
    assert!(hits.is_empty());
    restored.match_point_into(&Point::new([85.0, 85.0]), &mut hits);
    assert_eq!(hits, vec![ProcessId::from_raw(3)]);
    assert_eq!(restored.leases_expired_total(), 2);
}

#[test]
fn counters_distinguish_in_place_moves_from_rekeys() {
    let mut oracle: ShardedOracle<2> = ShardedOracle::new(4);
    let mut model: Vec<(ProcessId, Rect<2>)> = (0..64)
        .map(|i| {
            let x = (i % 8) as f64 * 12.0;
            let y = (i / 8) as f64 * 12.0;
            (
                ProcessId::from_raw(i as u64),
                Rect::new([x, y], [x + 5.0, y + 5.0]),
            )
        })
        .collect();
    for &(id, rect) in &model {
        oracle.insert(id, rect);
    }
    oracle.flush();

    // Find one move that stays on its shard and one that crosses a
    // boundary, using the oracle's own assignment function.
    let candidates: Vec<Rect<2>> = (0..64)
        .map(|i| {
            let x = (i % 8) as f64 * 12.0 + 2.0;
            let y = (i / 8) as f64 * 12.0 + 2.0;
            Rect::new([x, y], [x + 5.0, y + 5.0])
        })
        .collect();
    let (id, old) = model[0];
    let home = oracle.shard_of(&old).expect("flushed oracle has a map");
    let same = *candidates
        .iter()
        .find(|c| oracle.shard_of(c) == Some(home) && **c != old)
        .expect("some candidate shares the shard");
    assert!(oracle.move_entry(id, &old, same));
    model[0].1 = same;
    assert_eq!(oracle.moved_in_place_total(), 1);
    assert_eq!(oracle.rekeyed_total(), 0);

    let away = *candidates
        .iter()
        .find(|c| oracle.shard_of(c).is_some_and(|s| s != home))
        .expect("some candidate crosses the boundary");
    assert!(oracle.move_entry(id, &same, away));
    model[0].1 = away;
    assert_eq!(oracle.moved_in_place_total(), 1);
    assert_eq!(oracle.rekeyed_total(), 1);

    // Both kinds of move stay exact.
    let mut hits = Vec::new();
    for probe in &model {
        let p = Point::new([probe.1.lo(0) + 1.0, probe.1.lo(1) + 1.0]);
        oracle.match_point_into(&p, &mut hits);
        assert_eq!(hits, reference_matches(&model, &p));
    }

    // A flush drains the pending counters into its report and the
    // lifetime totals keep the same answer.
    oracle.flush();
    assert_eq!(oracle.moved_in_place_total(), 1);
    assert_eq!(oracle.rekeyed_total(), 1);
}

#[test]
fn broker_move_subscription_keeps_identity_and_delivery_exact() {
    let mut broker: Broker<2> = Broker::new(schema(), DrTreeConfig::default(), 7).unwrap();
    let here = Rect::new([0.0, 0.0], [10.0, 10.0]);
    let there = Rect::new([50.0, 50.0], [60.0, 60.0]);
    let mover = broker.subscribe_rect(here);
    let publisher = broker.subscribe_rect(Rect::new([0.0, 0.0], [100.0, 100.0]));
    let witness = broker.subscribe_rect(Rect::new([4.0, 4.0], [6.0, 6.0]));

    let p_here = Point::new([5.0, 5.0]);
    let report = broker.publish_point(publisher, p_here).unwrap();
    assert!(report.receivers.contains(&mover));
    assert!(report.false_negatives.is_empty());

    // Move away: same id, no rejoin, deliveries follow immediately.
    broker.move_subscription_rect(mover, there).unwrap();
    assert_eq!(broker.subscriptions().get(&mover), Some(&there));
    let report = broker.publish_point(publisher, p_here).unwrap();
    assert!(!report.receivers.contains(&mover));
    assert!(report.receivers.contains(&witness));
    assert!(report.false_negatives.is_empty());

    let report = broker
        .publish_point(publisher, Point::new([55.0, 55.0]))
        .unwrap();
    assert!(report.receivers.contains(&mover));
    assert!(report.false_negatives.is_empty());

    // The mobility columns surface through the broker stats once a
    // flush reports them.
    broker.flush_oracle();
    assert_eq!(
        broker.stats().oracle_moved_in_place() + broker.stats().oracle_rekeyed(),
        1
    );
}

#[test]
fn broker_rejects_immobile_targets() {
    use drtree_spatial::filter::Op;
    use drtree_spatial::FilterExpr;
    let mut broker: Broker<2> = Broker::new(schema(), DrTreeConfig::default(), 11).unwrap();
    let rect = Rect::new([0.0, 0.0], [5.0, 5.0]);
    assert_eq!(
        broker.move_subscription_rect(ProcessId::from_raw(424_242), rect),
        Err(BrokerError::UnknownSubscriber(ProcessId::from_raw(424_242)))
    );
    let band = |lo: f64, hi: f64| {
        FilterExpr::new()
            .and("x", Op::Ge, lo)
            .and("x", Op::Le, hi)
            .and("y", Op::Ge, lo)
            .and("y", Op::Le, hi)
    };
    let set = broker
        .subscribe_set(&[band(0.0, 5.0), band(20.0, 25.0)])
        .unwrap();
    assert_eq!(
        broker.move_subscription_rect(set, rect),
        Err(BrokerError::SetSubscriberImmobile(set))
    );
}

#[test]
fn multibroker_moves_serialize_with_commits_and_replay_exactly() {
    let broker: Broker<2> = Broker::new(schema(), DrTreeConfig::default(), 21).unwrap();
    let multi = MultiBroker::new(
        broker,
        IngressConfig {
            audit_log: true,
            ..IngressConfig::default()
        },
    );
    let here = Rect::new([0.0, 0.0], [10.0, 10.0]);
    let there = Rect::new([70.0, 70.0], [80.0, 80.0]);
    let mover = multi.subscribe_rect(here);
    let handle = multi.add_publisher(Rect::new([0.0, 0.0], [100.0, 100.0]));

    let p = Point::new([5.0, 5.0]);
    handle.publish(p).unwrap();
    multi.drain();
    multi.move_subscription(mover, there).unwrap();
    handle.publish(p).unwrap();
    handle.publish(Point::new([75.0, 75.0])).unwrap();
    multi.drain();

    let audit = multi.take_audit();
    multi.finish();

    // The audit interleaves the move between the commits, and a fresh
    // sequential broker replaying it reproduces every delivery set.
    assert!(audit
        .iter()
        .any(|r| matches!(r, AuditRecord::Move { id, rect } if *id == mover && *rect == there)));
    let mut reference: Broker<2> = Broker::new(schema(), DrTreeConfig::default(), 21).unwrap();
    let mut seen_mover_at = Vec::new();
    for record in &audit {
        match record {
            AuditRecord::Subscribe { id, rect } => {
                assert_eq!(reference.subscribe_rect(*rect), *id);
            }
            AuditRecord::Unsubscribe { id } => {
                reference.unsubscribe(*id).unwrap();
            }
            AuditRecord::Move { id, rect } => {
                reference.move_subscription_rect(*id, *rect).unwrap();
            }
            AuditRecord::Stabilize { max_rounds } => {
                reference.stabilize(*max_rounds);
            }
            AuditRecord::Commit {
                publisher,
                point,
                receivers,
                ..
            } => {
                let report = reference.publish_point(*publisher, *point).unwrap();
                let mut got = report.receivers.clone();
                got.sort_unstable();
                assert_eq!(&got, receivers, "replay diverged");
                assert!(report.false_negatives.is_empty());
                seen_mover_at.push(receivers.contains(&mover));
            }
        }
    }
    // Delivery flips exactly with the move: at p before the move, not
    // at p after, back in range at the new home.
    assert_eq!(seen_mover_at, vec![true, false, true]);
}
