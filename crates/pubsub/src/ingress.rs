//! Concurrent multi-publisher broker ingress.
//!
//! The paper's broker is one logical process, and the rest of this
//! crate keeps that shape: a [`Broker`] is `&mut`-owned by exactly one
//! caller. This module is the front-end that lets *many* publisher
//! threads feed that single owner without giving up its determinism:
//!
//! ```text
//!  publisher threads                commit loop (parallel::Worker)
//!  ─────────────────                ──────────────────────────────
//!  PublisherHandle ──┐
//!    bounded queue   ├─ round-robin ─▶ Broker::publish_batch_multi
//!  PublisherHandle ──┤  fair drain      ├─ ShardedOracle (batched)
//!    bounded queue   │                  └─ publish_pipeline_from
//!  PublisherHandle ──┘                        (windowed overlay)
//!                                        │
//!  reader threads ◀── Arc<OracleSnapshot> (refreshed per commit)
//! ```
//!
//! * **Sharded MPSC ingress** — every publisher gets a bounded
//!   [`PublisherHandle`] queue; a full queue blocks (`publish`) or
//!   rejects (`try_publish`) — admission control, not silent
//!   unboundedness.
//! * **Batching commit loop** — a single long-lived
//!   [`drtree_rtree::parallel::Worker`] owns the [`Broker`] and drains
//!   the queues round-robin, at most a fair budget per publisher per
//!   sweep, committing each swept batch through
//!   [`Broker::publish_batch_multi`]. Aggregating many publishers'
//!   events into one batch deepens the overlay pipeline window — that
//!   amortization, not thread parallelism, is where multi-publisher
//!   throughput scaling comes from.
//! * **Lock-free readers** — after each commit the loop republishes an
//!   `Arc<`[`OracleSnapshot`]`>` built from epoch-free frozen shard
//!   cores; queries never block on (or are blocked by) writers.
//! * **Observability** — an atomic [`RateMeter`] and a lock-free
//!   log-bucketed [`LatencyHistogram`] billing every publication from
//!   its *scheduled arrival time* (open-loop; queue wait is never
//!   hidden — no coordinated omission), surfaced through
//!   [`RoutingStats`].
//!
//! Everything the commit loop does — subscribes, unsubscribes, drains,
//! publisher joins and leaves — is serialized through the worker's
//! FIFO command queue, so the committed operation order is a total
//! order, recorded verbatim in the optional audit log
//! ([`IngressConfig::audit_log`]) and replayable op-for-op on a plain
//! sequential [`Broker`] — that replay is exactly how the stress suite
//! pins concurrent delivery sets to the sequential reference.

use std::collections::VecDeque;
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::time::Instant;

use drtree_core::ProcessId;
use drtree_rtree::parallel::{Worker, WorkerHandle};
use drtree_spatial::{Point, Rect};

use crate::broker::{Broker, BrokerError};
use crate::shard::OracleSnapshot;
use crate::stats::RoutingStats;

/// Round budget for the overlay repair that completes every departure
/// ([`MultiBroker::unsubscribe`] / [`PublisherHandle::leave`]). A
/// controlled leave takes O(tree height) repair rounds; this bound is
/// orders of magnitude above what any realistic overlay needs.
const LEAVE_STABILIZE_BUDGET: u64 = 100_000;

/// Errors surfaced by the publish side of the ingress.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IngressError {
    /// The bounded queue is full (only from
    /// [`PublisherHandle::try_publish`]; the blocking paths wait).
    Full,
    /// The queue was closed — the publisher left, was unsubscribed, or
    /// the whole ingress was shut down.
    Closed,
}

impl fmt::Display for IngressError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IngressError::Full => write!(f, "ingress queue full"),
            IngressError::Closed => write!(f, "ingress queue closed"),
        }
    }
}

impl std::error::Error for IngressError {}

/// Tuning knobs of a [`MultiBroker`].
#[derive(Debug, Clone, Copy)]
pub struct IngressConfig {
    /// Bounded capacity of each publisher's ingress queue; a full
    /// queue blocks `publish` and rejects `try_publish`.
    pub queue_capacity: usize,
    /// Per-publisher fairness budget: at most this many publications
    /// are taken from one queue per drain sweep, so one firehose
    /// publisher cannot starve the others.
    pub fair_budget: usize,
    /// Upper bound on one committed batch (across all publishers).
    pub max_batch: usize,
    /// Record every committed operation (in commit order) for
    /// exactness audits; see [`MultiBroker::take_audit`].
    pub audit_log: bool,
    /// Republish a fresh [`OracleSnapshot`] after every commit (see
    /// [`MultiBroker::snapshot`]). Costs one delta-layer copy per
    /// commit; turn off when no readers consume snapshots.
    pub refresh_snapshots: bool,
    /// Self-pump: enqueue a drain command with each accepted
    /// publication. On (the default) the loop commits as fast as it
    /// can; off, publications sit queued until an explicit
    /// [`MultiBroker::drain`] — the fully deterministic mode the
    /// stress suite uses to pin commit order.
    pub auto_drain: bool,
}

impl Default for IngressConfig {
    fn default() -> Self {
        Self {
            queue_capacity: 64,
            fair_budget: 64,
            max_batch: 1024,
            audit_log: false,
            refresh_snapshots: true,
            auto_drain: true,
        }
    }
}

/// Atomic submitted/committed/rejected counters shared by every
/// [`PublisherHandle`] of a [`MultiBroker`] — the ingress rate meter.
///
/// `submitted` counts publications accepted into a queue, `committed`
/// those the commit loop pushed through the overlay, `rejected` those
/// refused by admission control (full on `try_publish`, or closed).
/// At quiescence `submitted == committed`; the gap in between is the
/// queued backlog.
#[derive(Debug, Default)]
pub struct RateMeter {
    submitted: AtomicU64,
    committed: AtomicU64,
    rejected: AtomicU64,
}

/// A point-in-time copy of a [`RateMeter`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RateSnapshot {
    /// Publications accepted into an ingress queue.
    pub submitted: u64,
    /// Publications committed through the overlay.
    pub committed: u64,
    /// Publications refused by admission control.
    pub rejected: u64,
}

impl RateMeter {
    /// A consistent-enough copy of the three counters (each is read
    /// atomically; the triple is not a single snapshot).
    pub fn snapshot(&self) -> RateSnapshot {
        RateSnapshot {
            submitted: self.submitted.load(Ordering::Acquire),
            committed: self.committed.load(Ordering::Acquire),
            rejected: self.rejected.load(Ordering::Acquire),
        }
    }
}

/// Leading linear buckets of the histogram (exact below this value).
const HIST_LINEAR: usize = 16;
/// Sub-buckets per power of two above the linear range.
const HIST_MINORS: usize = 16;
/// Total buckets: 16 exact + 16 minors for each major 4..=63.
const HIST_BUCKETS: usize = HIST_LINEAR + (64 - 4) * HIST_MINORS;

/// A lock-free log-bucketed latency histogram (nanoseconds).
///
/// HdrHistogram-style layout: values below 16 ns are exact, larger
/// ones land in one of 16 linear sub-buckets per power of two, so the
/// quantile error is bounded by 1/16 ≈ 6 % — plenty for p50/p99/p999
/// reporting. Recording is two relaxed atomic adds plus a `fetch_max`;
/// reads walk the bucket array. Both sides are `&self`, so one
/// `Arc<LatencyHistogram>` serves the commit loop (writer) and any
/// number of monitors.
///
/// The ingress bills every publication from its **scheduled arrival
/// time** ([`PublisherHandle::publish_at`]) — not from dequeue — so
/// queue wait shows up in these quantiles instead of being coordinated
/// away.
pub struct LatencyHistogram {
    buckets: Box<[AtomicU64; HIST_BUCKETS]>,
    count: AtomicU64,
    max: AtomicU64,
}

/// A point-in-time quantile summary of a [`LatencyHistogram`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LatencySummary {
    /// Recorded samples.
    pub count: u64,
    /// Median latency in nanoseconds.
    pub p50_ns: u64,
    /// 99th percentile latency in nanoseconds.
    pub p99_ns: u64,
    /// 99.9th percentile latency in nanoseconds.
    pub p999_ns: u64,
    /// Exact worst observed latency in nanoseconds.
    pub max_ns: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        // `AtomicU64` is not `Copy`; build the boxed array from a vec.
        let buckets: Box<[AtomicU64]> = (0..HIST_BUCKETS).map(|_| AtomicU64::new(0)).collect();
        Self {
            buckets: buckets.try_into().expect("length matches"),
            count: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    fn index(ns: u64) -> usize {
        if ns < HIST_LINEAR as u64 {
            return ns as usize;
        }
        let major = 63 - ns.leading_zeros() as usize;
        let minor = ((ns >> (major - 4)) & 15) as usize;
        HIST_LINEAR + (major - 4) * HIST_MINORS + minor
    }

    /// Inclusive upper bound of bucket `index` — what quantiles report.
    fn upper_bound(index: usize) -> u64 {
        if index < HIST_LINEAR {
            return index as u64;
        }
        let major = (index - HIST_LINEAR) / HIST_MINORS + 4;
        let minor = ((index - HIST_LINEAR) % HIST_MINORS) as u64;
        ((16 + minor + 1) << (major - 4)) - 1
    }

    /// Records one latency sample.
    pub fn record(&self, ns: u64) {
        self.buckets[Self::index(ns)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Release);
        self.max.fetch_max(ns, Ordering::Relaxed);
    }

    /// Recorded samples.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Acquire)
    }

    /// The latency at quantile `q ∈ [0, 1]` (bucket upper bound — an
    /// overestimate of at most ~6 %), or 0 with no samples.
    pub fn quantile_ns(&self, q: f64) -> u64 {
        let count = self.count();
        if count == 0 {
            return 0;
        }
        let target = ((q.clamp(0.0, 1.0) * count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, bucket) in self.buckets.iter().enumerate() {
            seen += bucket.load(Ordering::Relaxed);
            if seen >= target {
                return Self::upper_bound(i);
            }
        }
        self.max.load(Ordering::Relaxed)
    }

    /// The exact worst observed latency in nanoseconds.
    pub fn max_ns(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// The p50/p99/p999/max summary in one pass-per-quantile.
    pub fn summary(&self) -> LatencySummary {
        LatencySummary {
            count: self.count(),
            p50_ns: self.quantile_ns(0.50),
            p99_ns: self.quantile_ns(0.99),
            p999_ns: self.quantile_ns(0.999),
            max_ns: self.max_ns(),
        }
    }
}

impl fmt::Debug for LatencyHistogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("LatencyHistogram")
            .field("summary", &self.summary())
            .finish()
    }
}

/// One committed operation, in commit order — the replayable record of
/// what the concurrent ingress actually did. Collected when
/// [`IngressConfig::audit_log`] is on; see [`MultiBroker::take_audit`].
#[derive(Debug, Clone, PartialEq)]
pub enum AuditRecord<const D: usize> {
    /// One publication committed through the overlay.
    Commit {
        /// Index of the batch this event was committed in.
        batch: u64,
        /// The publishing subscriber.
        publisher: ProcessId,
        /// Per-publisher FIFO sequence number (queue order).
        seq: u64,
        /// The published point.
        point: Point<D>,
        /// The delivery set, sorted.
        receivers: Vec<ProcessId>,
        /// Overlay rounds this event was in flight.
        rounds: u64,
    },
    /// A subscriber joined (and its filter).
    Subscribe {
        /// The assigned subscriber id.
        id: ProcessId,
        /// The subscription rectangle.
        rect: Rect<D>,
    },
    /// A subscriber left.
    Unsubscribe {
        /// The departed subscriber.
        id: ProcessId,
    },
    /// A subscription moved to a new rectangle in place (same id) —
    /// [`MultiBroker::move_subscription`].
    Move {
        /// The moved subscriber.
        id: ProcessId,
        /// The new subscription rectangle.
        rect: Rect<D>,
    },
    /// The overlay was driven to a legitimate configuration
    /// ([`MultiBroker::stabilize`]) — replayed with the same budget so
    /// a replaying broker walks through the same stable states.
    Stabilize {
        /// The round budget the stabilization was called with.
        max_rounds: u64,
    },
}

/// One queued publication.
#[derive(Debug, Clone, Copy)]
struct Submission<const D: usize> {
    point: Point<D>,
    /// Scheduled arrival on the ingress clock ([`Shared::epoch`]) —
    /// what latency is billed from.
    scheduled_ns: u64,
    /// Per-publisher FIFO sequence number.
    seq: u64,
}

#[derive(Debug)]
struct QueueInner<const D: usize> {
    items: VecDeque<Submission<D>>,
    closed: bool,
    next_seq: u64,
}

/// A bounded blocking ingress queue (one per publisher).
#[derive(Debug)]
struct PubQueue<const D: usize> {
    inner: Mutex<QueueInner<D>>,
    not_full: Condvar,
    capacity: usize,
}

impl<const D: usize> PubQueue<D> {
    fn new(capacity: usize) -> Self {
        Self {
            inner: Mutex::new(QueueInner {
                items: VecDeque::with_capacity(capacity),
                closed: false,
                next_seq: 0,
            }),
            not_full: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// Blocking push: waits while full, errors once closed. Returns
    /// the assigned per-publisher sequence number.
    fn push(&self, point: Point<D>, scheduled_ns: u64) -> Result<u64, IngressError> {
        let mut inner = self.inner.lock().expect("queue lock");
        loop {
            if inner.closed {
                return Err(IngressError::Closed);
            }
            if inner.items.len() < self.capacity {
                break;
            }
            inner = self.not_full.wait(inner).expect("queue lock");
        }
        let seq = inner.next_seq;
        inner.next_seq += 1;
        inner.items.push_back(Submission {
            point,
            scheduled_ns,
            seq,
        });
        Ok(seq)
    }

    /// Non-blocking push: `Full` instead of waiting.
    fn try_push(&self, point: Point<D>, scheduled_ns: u64) -> Result<u64, IngressError> {
        let mut inner = self.inner.lock().expect("queue lock");
        if inner.closed {
            return Err(IngressError::Closed);
        }
        if inner.items.len() >= self.capacity {
            return Err(IngressError::Full);
        }
        let seq = inner.next_seq;
        inner.next_seq += 1;
        inner.items.push_back(Submission {
            point,
            scheduled_ns,
            seq,
        });
        Ok(seq)
    }

    /// Pops up to `budget` submissions into `out`; wakes blocked
    /// producers when anything was taken.
    fn pop_into(&self, budget: usize, out: &mut Vec<Submission<D>>) -> usize {
        let mut inner = self.inner.lock().expect("queue lock");
        let take = inner.items.len().min(budget);
        for _ in 0..take {
            out.push(inner.items.pop_front().expect("len checked"));
        }
        drop(inner);
        if take > 0 {
            self.not_full.notify_all();
        }
        take
    }

    fn is_empty(&self) -> bool {
        self.inner.lock().expect("queue lock").items.is_empty()
    }

    /// Closes the queue: subsequent pushes fail, blocked producers
    /// wake with [`IngressError::Closed`]. Queued items stay for the
    /// final drain.
    fn close(&self) {
        self.inner.lock().expect("queue lock").closed = true;
        self.not_full.notify_all();
    }
}

/// State shared between publisher handles, monitors, and the commit
/// loop.
#[derive(Debug)]
struct Shared<const D: usize> {
    rate: RateMeter,
    latency: LatencyHistogram,
    /// The ingress clock's zero; all `scheduled_ns` values are offsets
    /// from it.
    epoch: Instant,
    /// Collapses redundant drain commands: set when a drain is queued,
    /// cleared when one starts.
    drain_scheduled: AtomicBool,
    /// The latest published oracle snapshot (refreshed per commit).
    snapshot: Mutex<Arc<OracleSnapshot<D>>>,
    /// Mirror of the broker's adaptive-window EMA, republished after
    /// each commit so monitors read it without a control round-trip.
    rounds_ema_bits: AtomicU64,
}

impl<const D: usize> Shared<D> {
    fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }
}

/// One registered publisher inside the commit loop.
#[derive(Debug)]
struct Slot<const D: usize> {
    id: ProcessId,
    queue: Arc<PubQueue<D>>,
}

/// The commit loop's owned state: the broker plus the ingress
/// registry. Lives inside a [`Worker`]; every mutation of it is a
/// serialized command.
struct CommitState<const D: usize> {
    broker: Broker<D>,
    slots: Vec<Slot<D>>,
    /// Round-robin start position of the next drain sweep.
    rr: usize,
    shared: Arc<Shared<D>>,
    config: IngressConfig,
    /// Self-handle for re-scheduling drains; set by the first command.
    handle: Option<WorkerHandle<CommitState<D>>>,
    /// Reused batch scratch, parallel: the committed events and their
    /// (slot, seq, scheduled_ns) metadata.
    events: Vec<(ProcessId, Point<D>)>,
    meta: Vec<(usize, u64, u64)>,
    /// Reused pop buffer.
    popped: Vec<Submission<D>>,
    audit: Vec<AuditRecord<D>>,
    batches: u64,
}

impl<const D: usize> CommitState<D> {
    fn schedule_drain(&self) {
        if let Some(handle) = &self.handle {
            if !self.shared.drain_scheduled.swap(true, Ordering::AcqRel) {
                handle.submit(|state: &mut CommitState<D>| state.drain_pass());
            }
        }
    }

    /// One fair sweep: up to `fair_budget` per publisher, round-robin
    /// from a rotating start, capped at `max_batch` total, then one
    /// commit. Reschedules itself while backlog remains.
    fn drain_pass(&mut self) {
        self.shared.drain_scheduled.store(false, Ordering::Release);
        self.sweep_once();
        if self.slots.iter().any(|s| !s.queue.is_empty()) {
            self.schedule_drain();
        }
    }

    /// The sweep + commit kernel shared by the self-pumping drain and
    /// the synchronous [`MultiBroker::drain`]. Returns how many
    /// publications were committed.
    fn sweep_once(&mut self) -> usize {
        self.events.clear();
        self.meta.clear();
        let n = self.slots.len();
        if n == 0 {
            return 0;
        }
        let start = self.rr;
        self.rr = (self.rr + 1) % n;
        for k in 0..n {
            let s = (start + k) % n;
            let budget = self
                .config
                .fair_budget
                .min(self.config.max_batch - self.events.len());
            if budget == 0 {
                break;
            }
            self.popped.clear();
            let slot = &self.slots[s];
            slot.queue.pop_into(budget, &mut self.popped);
            for sub in &self.popped {
                self.events.push((slot.id, sub.point));
                self.meta.push((s, sub.seq, sub.scheduled_ns));
            }
        }
        if self.events.is_empty() {
            return 0;
        }
        self.commit()
    }

    /// Commits the swept batch through the broker and does the
    /// post-commit bookkeeping: latency billing from scheduled
    /// arrival, rate metering, audit, snapshot + EMA republication.
    fn commit(&mut self) -> usize {
        let events = std::mem::take(&mut self.events);
        let reports = self
            .broker
            .publish_batch_multi(&events)
            .expect("registered publishers stay subscribed while queued");
        let now_ns = self.shared.now_ns();
        for &(_, _, scheduled_ns) in &self.meta {
            self.shared
                .latency
                .record(now_ns.saturating_sub(scheduled_ns));
        }
        if self.config.audit_log {
            for (i, report) in reports.iter().enumerate() {
                let (_, seq, _) = self.meta[i];
                let mut receivers = report.receivers.clone();
                receivers.sort_unstable();
                self.audit.push(AuditRecord::Commit {
                    batch: self.batches,
                    publisher: events[i].0,
                    seq,
                    point: events[i].1,
                    receivers,
                    rounds: report.rounds,
                });
            }
        }
        let committed = events.len();
        self.shared
            .rate
            .committed
            .fetch_add(committed as u64, Ordering::AcqRel);
        self.batches += 1;
        if self.config.refresh_snapshots {
            let snap = Arc::new(self.broker.oracle_snapshot());
            *self.shared.snapshot.lock().expect("snapshot lock") = snap;
        }
        self.shared
            .rounds_ema_bits
            .store(self.broker.rounds_ema().to_bits(), Ordering::Release);
        self.events = events;
        committed
    }

    /// Drains until every registered queue is empty (producers may
    /// refill concurrently; this drains what it sees).
    fn drain_all(&mut self) {
        loop {
            self.sweep_once();
            if self.slots.iter().all(|s| s.queue.is_empty()) {
                return;
            }
        }
    }

    /// Post-departure bookkeeping shared by unsubscribe and leave:
    /// repairs the overlay back to a legitimate configuration *inside
    /// the same serialized command*, so no commit ever publishes into
    /// the transiently illegal post-leave overlay (which would cost
    /// false negatives), and records both steps for replay.
    fn depart_repair(&mut self, id: ProcessId) {
        self.broker.stabilize(LEAVE_STABILIZE_BUDGET);
        if self.config.audit_log {
            self.audit.push(AuditRecord::Unsubscribe { id });
            self.audit.push(AuditRecord::Stabilize {
                max_rounds: LEAVE_STABILIZE_BUDGET,
            });
        }
        if self.config.refresh_snapshots {
            let snap = Arc::new(self.broker.oracle_snapshot());
            *self.shared.snapshot.lock().expect("snapshot lock") = snap;
        }
    }

    /// Closes and fully drains the queues of publisher `id`, then
    /// forgets them. Every accepted publication commits before the
    /// close is acknowledged — leaving never loses publications.
    fn retire_publisher(&mut self, id: ProcessId) {
        for slot in self.slots.iter().filter(|s| s.id == id) {
            slot.queue.close();
        }
        while self.slots.iter().any(|s| s.id == id && !s.queue.is_empty()) {
            self.sweep_once();
        }
        self.slots.retain(|s| s.id != id);
        if !self.slots.is_empty() {
            self.rr %= self.slots.len();
        } else {
            self.rr = 0;
        }
    }
}

/// The concurrent multi-publisher front-end of a [`Broker`].
///
/// Owns the broker on a dedicated commit-loop thread and exposes:
/// thread-safe control operations (subscribe / unsubscribe / publisher
/// join & leave), per-publisher [`PublisherHandle`]s with bounded
/// blocking queues, lock-free [`OracleSnapshot`] reads, and the
/// ingress meters. The module source documents the full data flow.
///
/// Every control operation and every committed batch is one FIFO
/// command on the loop, so the system has a single total commit order
/// — auditable via [`IngressConfig::audit_log`] and replayable on a
/// sequential [`Broker`].
///
/// [`MultiBroker::finish`] shuts down: closes every queue, commits
/// everything accepted, and hands the broker back.
///
/// # Example
///
/// ```
/// use drtree_core::DrTreeConfig;
/// use drtree_pubsub::{Broker, MultiBroker};
/// use drtree_spatial::{Point, Rect, Schema};
///
/// let broker: Broker<2> =
///     Broker::new(Schema::new(["x", "y"]), DrTreeConfig::default(), 7)?;
/// let multi = MultiBroker::with_defaults(broker);
/// let sub = multi.subscribe_rect(Rect::new([0.0, 0.0], [10.0, 10.0]));
///
/// // Publishers live on their own threads, one bounded queue each.
/// let publisher = multi.add_publisher(Rect::new([40.0, 40.0], [50.0, 50.0]));
/// std::thread::scope(|s| {
///     s.spawn(|| publisher.publish(Point::new([5.0, 5.0])).unwrap());
/// });
/// multi.drain(); // quiescence barrier
///
/// // Readers match lock-free against the latest published snapshot;
/// // the rate meter accounts for every accepted publication.
/// assert_eq!(multi.snapshot().match_point(&Point::new([5.0, 5.0])), vec![sub]);
/// assert_eq!(multi.rate().committed, 1);
///
/// let broker = multi.finish(); // hand the broker back
/// assert_eq!(broker.stats().events(), 1);
/// # Ok::<(), drtree_pubsub::BrokerError>(())
/// ```
#[derive(Debug)]
pub struct MultiBroker<const D: usize> {
    worker: Worker<CommitState<D>>,
    shared: Arc<Shared<D>>,
    config: IngressConfig,
}

/// A publisher's handle into a [`MultiBroker`]: a bounded ingress
/// queue plus the subscriber id it publishes as.
///
/// Clonable — clones share the same queue (and publisher id), making
/// each ingress shard multi-producer. Dropping handles does not leave
/// the publisher; call [`PublisherHandle::leave`] (or keep publishing
/// until [`MultiBroker::finish`]).
#[derive(Debug, Clone)]
pub struct PublisherHandle<const D: usize> {
    id: ProcessId,
    queue: Arc<PubQueue<D>>,
    shared: Arc<Shared<D>>,
    worker: WorkerHandle<CommitState<D>>,
    auto_drain: bool,
}

impl<const D: usize> PublisherHandle<D> {
    /// The subscriber id this handle publishes as.
    pub fn id(&self) -> ProcessId {
        self.id
    }

    /// Nanoseconds since the ingress epoch — the clock
    /// [`PublisherHandle::publish_at`] schedules against.
    pub fn now_ns(&self) -> u64 {
        self.shared.now_ns()
    }

    fn pump(&self) {
        if self.auto_drain && !self.shared.drain_scheduled.swap(true, Ordering::AcqRel) {
            self.worker
                .submit(|state: &mut CommitState<D>| state.drain_pass());
        }
    }

    fn accepted(&self) {
        self.shared.rate.submitted.fetch_add(1, Ordering::AcqRel);
        self.pump();
    }

    /// Publishes `point`, blocking while the queue is full
    /// (backpressure). Latency is billed from *now* — the moment the
    /// caller wanted the event published.
    ///
    /// # Errors
    ///
    /// [`IngressError::Closed`] once the publisher left or the ingress
    /// shut down.
    pub fn publish(&self, point: Point<D>) -> Result<(), IngressError> {
        self.publish_at(point, self.shared.now_ns())
    }

    /// Publishes `point` with an explicit scheduled arrival time on
    /// the ingress clock ([`PublisherHandle::now_ns`]) — the open-loop
    /// primitive. Blocks while the queue is full; however long the
    /// publication then waits (backpressure included), its latency is
    /// billed from `scheduled_ns`, so a stalled commit loop shows up
    /// in the quantiles instead of being coordinated away.
    ///
    /// # Errors
    ///
    /// [`IngressError::Closed`] once the publisher left or the ingress
    /// shut down.
    pub fn publish_at(&self, point: Point<D>, scheduled_ns: u64) -> Result<(), IngressError> {
        match self.queue.push(point, scheduled_ns) {
            Ok(_) => {
                self.accepted();
                Ok(())
            }
            Err(e) => {
                self.shared.rate.rejected.fetch_add(1, Ordering::AcqRel);
                Err(e)
            }
        }
    }

    /// Non-blocking publish: [`IngressError::Full`] instead of
    /// waiting (counted as rejected — admission control).
    ///
    /// # Errors
    ///
    /// [`IngressError::Full`] when the queue is at capacity,
    /// [`IngressError::Closed`] once closed.
    pub fn try_publish(&self, point: Point<D>) -> Result<(), IngressError> {
        match self.queue.try_push(point, self.shared.now_ns()) {
            Ok(_) => {
                self.accepted();
                Ok(())
            }
            Err(e) => {
                self.shared.rate.rejected.fetch_add(1, Ordering::AcqRel);
                Err(e)
            }
        }
    }

    /// Leaves the system: closes the queue, commits every already
    /// accepted publication, unsubscribes the publisher from the
    /// overlay (a controlled departure), and repairs the overlay back
    /// to a legitimate configuration — all as one serialized command,
    /// so concurrent publishers' commits never see the transiently
    /// illegal post-leave overlay. Queued publications are never lost;
    /// publishes racing with the close get [`IngressError::Closed`].
    pub fn leave(self) {
        let id = self.id;
        // Close eagerly so racing producers stop before the command
        // runs; the command closes again idempotently.
        self.queue.close();
        let (tx, rx) = mpsc::channel::<()>();
        let submitted = self.worker.submit(move |state: &mut CommitState<D>| {
            state.retire_publisher(id);
            if state.broker.unsubscribe(id).is_ok() {
                state.depart_repair(id);
            }
            let _ = tx.send(());
        });
        if submitted {
            // Wait so "left" means left — callers sequence joins and
            // leaves against commits through this barrier.
            let _ = rx.recv();
        }
    }
}

impl<const D: usize> MultiBroker<D> {
    /// Wraps `broker` in a concurrent ingress with the given config,
    /// moving it onto a dedicated commit-loop thread.
    pub fn new(broker: Broker<D>, config: IngressConfig) -> Self {
        let shared = Arc::new(Shared {
            rate: RateMeter::default(),
            latency: LatencyHistogram::new(),
            epoch: Instant::now(),
            drain_scheduled: AtomicBool::new(false),
            snapshot: Mutex::new(Arc::new(broker.oracle_snapshot())),
            rounds_ema_bits: AtomicU64::new(broker.rounds_ema().to_bits()),
        });
        let state = CommitState {
            broker,
            slots: Vec::new(),
            rr: 0,
            shared: Arc::clone(&shared),
            config,
            handle: None,
            events: Vec::new(),
            meta: Vec::new(),
            popped: Vec::new(),
            audit: Vec::new(),
            batches: 0,
        };
        let worker = Worker::spawn(state);
        let handle = worker.handle();
        worker.submit(move |state| state.handle = Some(handle));
        Self {
            worker,
            shared,
            config,
        }
    }

    /// [`MultiBroker::new`] with the default [`IngressConfig`].
    pub fn with_defaults(broker: Broker<D>) -> Self {
        Self::new(broker, IngressConfig::default())
    }

    /// Runs `f` on the commit loop and waits for its result — the
    /// synchronous control primitive every public operation builds on.
    fn call<R, F>(&self, f: F) -> R
    where
        R: Send + 'static,
        F: FnOnce(&mut CommitState<D>) -> R + Send + 'static,
    {
        let (tx, rx) = mpsc::channel::<R>();
        self.worker.submit(move |state| {
            let _ = tx.send(f(state));
        });
        rx.recv().expect("commit loop alive")
    }

    /// Registers a subscription rectangle (joins the overlay), in FIFO
    /// order with every other control operation and commit.
    pub fn subscribe_rect(&self, rect: Rect<D>) -> ProcessId {
        self.call(move |state| {
            let id = state.broker.subscribe_rect(rect);
            if state.config.audit_log {
                state.audit.push(AuditRecord::Subscribe { id, rect });
            }
            if state.config.refresh_snapshots {
                let snap = Arc::new(state.broker.oracle_snapshot());
                *state.shared.snapshot.lock().expect("snapshot lock") = snap;
            }
            id
        })
    }

    /// Removes a subscription via controlled departure. When `id` is a
    /// registered publisher, its queue is closed and fully committed
    /// first — an unsubscribe never loses accepted publications. The
    /// overlay is repaired back to a legitimate configuration before
    /// the command completes, so commits racing a departure stay
    /// false-negative-free.
    ///
    /// # Errors
    ///
    /// [`BrokerError::UnknownSubscriber`] when `id` is not live.
    pub fn unsubscribe(&self, id: ProcessId) -> Result<(), BrokerError> {
        self.call(move |state| {
            state.retire_publisher(id);
            state.broker.unsubscribe(id)?;
            state.depart_repair(id);
            Ok(())
        })
    }

    /// Moves a live subscription to `rect` in place (same id),
    /// serialized with every other control operation and commit —
    /// motion and publishes interleave in one FIFO order, so each
    /// committed event's delivery set reflects every subscription's
    /// position as of its commit, exactly.
    ///
    /// # Errors
    ///
    /// [`BrokerError::UnknownSubscriber`] when `id` is not live and
    /// [`BrokerError::SetSubscriberImmobile`] for subscription sets.
    pub fn move_subscription(&self, id: ProcessId, rect: Rect<D>) -> Result<(), BrokerError> {
        self.call(move |state| {
            state.broker.move_subscription_rect(id, rect)?;
            if state.config.audit_log {
                state.audit.push(AuditRecord::Move { id, rect });
            }
            if state.config.refresh_snapshots {
                let snap = Arc::new(state.broker.oracle_snapshot());
                *state.shared.snapshot.lock().expect("snapshot lock") = snap;
            }
            Ok(())
        })
    }

    /// Subscribes a new publisher and returns its ingress handle —
    /// mid-stream joins are just this call racing the commit stream.
    pub fn add_publisher(&self, rect: Rect<D>) -> PublisherHandle<D> {
        let id = self.subscribe_rect(rect);
        self.publisher(id).expect("just subscribed")
    }

    /// An ingress handle for existing subscriber `id`. Each call
    /// creates a fresh bounded queue (one more ingress shard); clone
    /// the handle to share one queue between threads instead.
    ///
    /// # Errors
    ///
    /// [`BrokerError::UnknownSubscriber`] when `id` is not live.
    pub fn publisher(&self, id: ProcessId) -> Result<PublisherHandle<D>, BrokerError> {
        let queue = Arc::new(PubQueue::new(self.config.queue_capacity));
        let slot_queue = Arc::clone(&queue);
        self.call(move |state| {
            if !state.broker.subscriptions().contains_key(&id) {
                return Err(BrokerError::UnknownSubscriber(id));
            }
            state.slots.push(Slot {
                id,
                queue: slot_queue,
            });
            Ok(())
        })?;
        Ok(PublisherHandle {
            id,
            queue,
            shared: Arc::clone(&self.shared),
            worker: self.worker.handle(),
            auto_drain: self.config.auto_drain,
        })
    }

    /// Runs overlay rounds until the configuration is legitimate
    /// again (at most `max_rounds`; see [`Broker::stabilize`]) —
    /// serialized with commits, so callers sequence it after an
    /// [`MultiBroker::unsubscribe`] or [`PublisherHandle::leave`]
    /// before further publications must be false-negative-free.
    pub fn stabilize(&self, max_rounds: u64) -> Option<u64> {
        self.call(move |state| {
            let rounds = state.broker.stabilize(max_rounds);
            if state.config.audit_log {
                state.audit.push(AuditRecord::Stabilize { max_rounds });
            }
            rounds
        })
    }

    /// Synchronously drains every queue: commits until all registered
    /// queues are empty (concurrent producers may refill; this drains
    /// what it sees). The explicit pump of `auto_drain: false` mode,
    /// and a quiescence barrier in either mode.
    pub fn drain(&self) {
        self.call(|state| state.drain_all());
    }

    /// The latest published [`OracleSnapshot`] — refreshed after every
    /// commit (and subscription change) while
    /// [`IngressConfig::refresh_snapshots`] is on. Readers query the
    /// returned `Arc` without ever touching the commit loop.
    pub fn snapshot(&self) -> Arc<OracleSnapshot<D>> {
        Arc::clone(&self.shared.snapshot.lock().expect("snapshot lock"))
    }

    /// The atomic ingress rate meter (shared with every handle).
    pub fn rate(&self) -> RateSnapshot {
        self.shared.rate.snapshot()
    }

    /// The open-loop ingress latency quantiles.
    pub fn latency(&self) -> LatencySummary {
        self.shared.latency.summary()
    }

    /// Nanoseconds since the ingress epoch — the scheduling clock of
    /// [`PublisherHandle::publish_at`].
    pub fn now_ns(&self) -> u64 {
        self.shared.now_ns()
    }

    /// The broker's adaptive-window EMA, mirrored lock-free after each
    /// commit (see [`Broker::rounds_ema`]).
    pub fn rounds_ema(&self) -> f64 {
        f64::from_bits(self.shared.rounds_ema_bits.load(Ordering::Acquire))
    }

    /// How many batches the commit loop has committed so far —
    /// `committed / batches` is the achieved aggregation depth.
    pub fn batches(&self) -> u64 {
        self.call(|state| state.batches)
    }

    /// The broker's accumulated [`RoutingStats`] with the ingress
    /// columns folded in — a synchronous control round-trip.
    pub fn stats(&self) -> RoutingStats {
        let shared = Arc::clone(&self.shared);
        self.call(move |state| {
            let mut stats = *state.broker.stats();
            let rate = shared.rate.snapshot();
            let lat = shared.latency.summary();
            stats.absorb_ingress(
                rate.submitted,
                rate.committed,
                rate.rejected,
                lat.p50_ns,
                lat.p99_ns,
                lat.p999_ns,
                lat.max_ns,
            );
            stats
        })
    }

    /// Takes (and clears) the audit log: every committed operation in
    /// commit order. Empty unless [`IngressConfig::audit_log`] is on.
    pub fn take_audit(&self) -> Vec<AuditRecord<D>> {
        self.call(|state| std::mem::take(&mut state.audit))
    }

    /// Shuts the ingress down: closes every queue (racing publishes
    /// get [`IngressError::Closed`]), commits everything accepted,
    /// stops the commit loop, and returns the broker. No accepted
    /// publication is ever dropped.
    pub fn finish(self) -> Broker<D> {
        self.call(|state| {
            for slot in &state.slots {
                slot.queue.close();
            }
            state.drain_all();
            state.slots.clear();
        });
        self.worker.join().broker
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_are_monotone_and_tight() {
        for ns in [0u64, 1, 15, 16, 31, 32, 100, 1_000, 123_456, u64::MAX / 2] {
            let i = LatencyHistogram::index(ns);
            let ub = LatencyHistogram::upper_bound(i);
            assert!(ub >= ns, "upper bound below value at {ns}");
            // ≤ 1/16 relative error above the linear range.
            if ns >= 16 {
                assert!(ub - ns <= ns / 16 + 1, "bucket too wide at {ns}: ub={ub}");
            }
            if i > 0 {
                assert!(LatencyHistogram::upper_bound(i - 1) < ub);
            }
        }
    }

    #[test]
    fn histogram_quantiles_bracket_the_samples() {
        let h = LatencyHistogram::new();
        for ns in 1..=1000u64 {
            h.record(ns * 1000);
        }
        assert_eq!(h.count(), 1000);
        let p50 = h.quantile_ns(0.50);
        let p99 = h.quantile_ns(0.99);
        let p999 = h.quantile_ns(0.999);
        assert!((500_000..=540_000).contains(&p50), "p50={p50}");
        assert!((990_000..=1_055_000).contains(&p99), "p99={p99}");
        assert!(p999 >= p99, "quantiles must be monotone");
        assert_eq!(h.max_ns(), 1_000_000, "max is exact");
    }

    #[test]
    fn rate_meter_counts_are_independent() {
        let m = RateMeter::default();
        m.submitted.fetch_add(5, Ordering::AcqRel);
        m.committed.fetch_add(3, Ordering::AcqRel);
        m.rejected.fetch_add(1, Ordering::AcqRel);
        assert_eq!(
            m.snapshot(),
            RateSnapshot {
                submitted: 5,
                committed: 3,
                rejected: 1
            }
        );
    }

    #[test]
    fn queue_blocks_then_rejects_after_close() {
        let q: Arc<PubQueue<2>> = Arc::new(PubQueue::new(2));
        assert!(q.try_push(Point::new([0.0, 0.0]), 0).is_ok());
        assert!(q.try_push(Point::new([0.0, 0.0]), 0).is_ok());
        assert_eq!(
            q.try_push(Point::new([0.0, 0.0]), 0),
            Err(IngressError::Full)
        );
        // A blocked producer wakes with `Closed` when the queue closes.
        let blocked = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || q.push(Point::new([1.0, 1.0]), 0))
        };
        std::thread::sleep(std::time::Duration::from_millis(20));
        q.close();
        assert_eq!(blocked.join().unwrap(), Err(IngressError::Closed));
        // Items accepted before the close are still drainable.
        let mut out = Vec::new();
        assert_eq!(q.pop_into(16, &mut out), 2);
    }
}
