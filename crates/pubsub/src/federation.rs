//! The federated broker fabric: crash/rejoin-tolerant pub/sub across
//! `K` broker instances.
//!
//! One level above the per-broker sharding of [`crate::ShardedOracle`],
//! a [`FederatedFabric`] splits the subscription space across `K`
//! broker processes ([`FedNode`]), each *owning* one contiguous Hilbert
//! range of a [`ShardMap`] and *holding* (replicating) its curve
//! neighbors' ranges. Brokers exchange [`drtree_core::FedMessage`]s over
//! the ordinary simulation engines — [`RoundNetwork`] or
//! [`EventNetwork`], selected by [`FedEngine`] — so the same
//! [`FaultProfile`] knobs, partitions and crash primitives the
//! adversary schedules drive against a DR-tree overlay apply unchanged
//! to inter-broker links.
//!
//! # Replication and exactness
//!
//! The *client layer* (the fabric handle itself) owns the sequencer:
//! every subscribe/unsubscribe/move gets a per-range sequence number
//! and is retained in an issued-op ledger. Holders apply ops in
//! contiguous order, gossip per-range [`drtree_core::RangeSummary`]s in
//! heartbeats, push applied ops eagerly to co-holders, and close gaps
//! by pulling (answered from a bounded op log, or with a full snapshot
//! when the pull reaches below the log floor or fingerprints diverge at
//! equal versions). The client ledger re-offers unacknowledged ops to
//! the freshest live holder, so an op survives even if the only broker
//! that had applied it crashes immediately afterwards.
//!
//! Publications pin exactness by version: a [`FedMessage::Publish`]
//! records, per range, the highest sequence issued before the event.
//! The origin broker answers a range locally or forwards to a live
//! holder, and a holder only answers once it has applied at least the
//! pinned version; pruning a range entirely is allowed only against a
//! summary MBR at least that fresh (the MBR is grow-only, so exclusion
//! is conclusive — false positives cost extra forwards, false
//! negatives cannot happen). A crashed origin's in-flight events are
//! re-injected at a surviving broker with the same id and pins.
//! Delivery-set equality against a single-broker reference is asserted
//! at op-quiesced points — mirroring [`drtree_core::run_convergence`]'s
//! contract of latency-under-faults, exactness-after.
//!
//! # Crash, takeover, rejoin
//!
//! [`FederatedFabric::crash_broker`] removes a broker outright (its
//! queued messages settle as losses); the crashed broker's ranges keep
//! at least one live holder by construction, and summary-MBR routing
//! steers forwards there. Rejoin is warm or cold:
//! [`FederatedFabric::rejoin_broker`] with `warm` restores each range
//! from the last [`FederatedFabric::checkpoint_broker`] buffer —
//! validated against the boundaries recorded at checkpoint time via
//! [`ShardedOracle::restore_bytes_checked`], falling back to a cold
//! start when stale — and catches up the missing suffix by pulling;
//! cold rejoin starts empty and is rebuilt by peer re-replication
//! (snapshot push) through the same anti-entropy path. Either way the
//! fabric re-reaches its legal predicate ([`FederatedFabric::check_legal`]:
//! every live holder of every range at the issued version with the
//! expected entry count and fingerprint) within the schedule budget,
//! measured by [`run_federated_convergence`].

use std::collections::BTreeMap;
use std::mem;

use drtree_core::{
    entry_fingerprint, FaultEvent, FaultSchedule, FedMessage, FedOp, LatencyDistribution,
    ProcessId, RangeSummary,
};
use drtree_sim::{Context, EventNetwork, FaultProfile, Metrics, NetConfig, Process, RoundNetwork};
use drtree_spatial::hilbert::ShardMap;
use drtree_spatial::{Point, Rect};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::shard::ShardedOracle;

/// Tuning knobs of a federated fabric.
#[derive(Debug, Clone)]
pub struct FedConfig {
    /// A peer is presumed dead after this many ticks without a
    /// heartbeat.
    pub heartbeat_miss: u64,
    /// Shard count of each per-range [`ShardedOracle`].
    pub oracle_shards: usize,
    /// Maximum ops answered per [`FedMessage::PullRequest`].
    pub pull_chunk: usize,
    /// Replicas per range beyond the owner: `1` adds the curve
    /// successor, `2` adds the predecessor too (clamped to `1..=2`).
    pub replicas: usize,
    /// Ticks between retries of an unresolved publication.
    pub retry_interval: u64,
    /// Retained ops per range; pulls reaching below the trimmed floor
    /// are answered with a full snapshot.
    pub log_cap: usize,
}

impl Default for FedConfig {
    fn default() -> Self {
        Self {
            heartbeat_miss: 3,
            oracle_shards: 4,
            pull_chunk: 512,
            replicas: 1,
            retry_interval: 2,
            log_cap: 1024,
        }
    }
}

/// The broker slots holding range `range`: the owner first, then its
/// curve successor, then (with two replicas) its predecessor —
/// deduplicated preserving order, so the first live entry is the
/// range's authority.
fn holder_slots<const D: usize>(map: &ShardMap<D>, range: usize, replicas: usize) -> Vec<usize> {
    let (pred, succ) = map.neighbors(range);
    let mut out = Vec::with_capacity(3);
    for slot in [range, succ, pred] {
        if out.len() > replicas.clamp(1, 2) {
            break;
        }
        if !out.contains(&slot) {
            out.push(slot);
        }
    }
    out
}

/// The smallest rectangle containing both arguments.
fn rect_union<const D: usize>(a: &Rect<D>, b: &Rect<D>) -> Rect<D> {
    let mut lo = [0.0; D];
    let mut hi = [0.0; D];
    for d in 0..D {
        lo[d] = a.lo(d).min(b.lo(d));
        hi[d] = a.hi(d).max(b.hi(d));
    }
    Rect::new(lo, hi)
}

/// One held range's replica state: the entry store, the replication
/// cursor, and the summary the holder advertises.
#[derive(Debug)]
struct RangeState<const D: usize> {
    /// The live `(sub, rect)` set, indexed for matching.
    oracle: ShardedOracle<D>,
    /// Highest contiguous op sequence applied.
    version: u64,
    /// Out-of-order ops buffered until the gap below them closes.
    pending: BTreeMap<u64, FedOp<D>>,
    /// Applied ops by sequence, trimmed to [`FedConfig::log_cap`].
    log: BTreeMap<u64, FedOp<D>>,
    /// Pulls from below this sequence need a snapshot, not the log.
    log_floor: u64,
    /// Grow-only union of every filter ever held — the conservative
    /// pruning summary (removes do not shrink it).
    mbr: Option<Rect<D>>,
    /// XOR of [`entry_fingerprint`] over the live entry set.
    fingerprint: u64,
    /// Live entry count.
    len: u64,
}

impl<const D: usize> RangeState<D> {
    fn new(oracle_shards: usize) -> Self {
        Self {
            oracle: ShardedOracle::new(oracle_shards),
            version: 0,
            pending: BTreeMap::new(),
            log: BTreeMap::new(),
            log_floor: 0,
            mbr: None,
            fingerprint: 0,
            len: 0,
        }
    }

    fn grow_mbr(&mut self, rect: &Rect<D>) {
        self.mbr = Some(match &self.mbr {
            Some(m) => rect_union(m, rect),
            None => *rect,
        });
    }

    /// Applies one op to the entry store, keeping the fingerprint and
    /// count honest (no-op removes and moves leave both untouched).
    fn apply(&mut self, op: &FedOp<D>) {
        match *op {
            FedOp::Subscribe { sub, rect } => {
                self.oracle.insert(ProcessId::from_raw(sub), rect);
                self.fingerprint ^= entry_fingerprint(sub, &rect);
                self.len += 1;
                self.grow_mbr(&rect);
            }
            FedOp::Unsubscribe { sub, rect } => {
                if self.oracle.remove(ProcessId::from_raw(sub), &rect) {
                    self.fingerprint ^= entry_fingerprint(sub, &rect);
                    self.len -= 1;
                }
            }
            FedOp::Move { sub, old, new } => {
                if self.oracle.move_entry(ProcessId::from_raw(sub), &old, new) {
                    self.fingerprint ^= entry_fingerprint(sub, &old) ^ entry_fingerprint(sub, &new);
                    self.grow_mbr(&new);
                }
            }
        }
    }

    fn summary(&self, range: usize) -> RangeSummary<D> {
        RangeSummary {
            range,
            version: self.version,
            len: self.len,
            mbr: self.mbr,
            fingerprint: self.fingerprint,
        }
    }
}

/// A publication an origin broker is still resolving: which ranges
/// have not answered, at what pinned versions, and the matches
/// collected so far.
#[derive(Debug)]
struct PendingEvent<const D: usize> {
    point: Point<D>,
    /// Unanswered `range → pinned minimum version`.
    remaining: BTreeMap<usize, u64>,
    subs: Vec<u64>,
    last_try: u64,
}

/// A holder's externally visible state for one range — what
/// [`FederatedFabric::check_legal`] audits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RangeView {
    /// Highest contiguous op sequence applied.
    pub version: u64,
    /// Ops buffered out of order (nonzero means a gap is open).
    pub pending: usize,
    /// Live entries held.
    pub len: u64,
    /// XOR fingerprint of the live entry set.
    pub fingerprint: u64,
}

/// One federated broker instance: a [`Process`] driven by either
/// simulation engine, owning one Hilbert range and holding replicas of
/// its curve neighbors' ranges.
#[derive(Debug)]
pub struct FedNode<const D: usize> {
    /// This broker's slot (== the range it owns).
    me: usize,
    /// Slot → process id, fixed for the fabric's lifetime.
    peers: Vec<ProcessId>,
    map: ShardMap<D>,
    cfg: FedConfig,
    /// The ranges this broker holds (owner or replica).
    ranges: BTreeMap<usize, RangeState<D>>,
    /// Last tick a heartbeat arrived from each slot.
    last_heard: Vec<u64>,
    /// Latest advertised summary per `(slot, range)` — overwritten
    /// wholesale by each heartbeat, so a cold rejoiner's version
    /// regression is observed, not masked by a stale maximum.
    advertised: BTreeMap<(usize, usize), RangeSummary<D>>,
    now: u64,
    pending_events: BTreeMap<u64, PendingEvent<D>>,
    /// Resolved publications, drained by the fabric.
    completed: Vec<(u64, Vec<u64>)>,
}

impl<const D: usize> FedNode<D> {
    /// A fresh broker for slot `me`, holding the ranges the holder
    /// placement (own range plus curve neighbors) assigns it, all
    /// empty.
    pub fn new(me: usize, peers: Vec<ProcessId>, map: ShardMap<D>, cfg: FedConfig) -> Self {
        let k = peers.len();
        let ranges = (0..k)
            .filter(|&r| holder_slots(&map, r, cfg.replicas).contains(&me))
            .map(|r| (r, RangeState::new(cfg.oracle_shards)))
            .collect();
        Self {
            me,
            peers,
            map,
            cfg,
            ranges,
            last_heard: vec![0; k],
            advertised: BTreeMap::new(),
            now: 0,
            pending_events: BTreeMap::new(),
            completed: Vec::new(),
        }
    }

    /// This broker's slot index.
    pub fn slot(&self) -> usize {
        self.me
    }

    /// The ranges this broker currently holds.
    pub fn held_ranges(&self) -> Vec<usize> {
        self.ranges.keys().copied().collect()
    }

    /// Publications this broker originated and has not yet resolved.
    pub fn pending_events_len(&self) -> usize {
        self.pending_events.len()
    }

    /// The auditable state of a held range.
    pub fn range_view(&self, range: usize) -> Option<RangeView> {
        self.ranges.get(&range).map(|st| RangeView {
            version: st.version,
            pending: st.pending.len(),
            len: st.len,
            fingerprint: st.fingerprint,
        })
    }

    /// Drains the resolved publications accumulated since the last
    /// drain: `(event, sorted deduplicated matching subs)`.
    pub fn take_completed(&mut self) -> Vec<(u64, Vec<u64>)> {
        mem::take(&mut self.completed)
    }

    /// Installs `oracle` as the replica of `range` at `version` — the
    /// warm-rejoin and bulk-population entry point. The op log starts
    /// empty with its floor at `version`, so a peer pulling from below
    /// is answered with a snapshot rather than a hole.
    pub fn install_range(&mut self, range: usize, mut oracle: ShardedOracle<D>, version: u64) {
        let mut fingerprint = 0u64;
        let mut len = 0u64;
        let mut mbr: Option<Rect<D>> = None;
        for (id, rect) in oracle.entries() {
            fingerprint ^= entry_fingerprint(id.raw(), &rect);
            len += 1;
            mbr = Some(match &mbr {
                Some(m) => rect_union(m, &rect),
                None => rect,
            });
        }
        self.ranges.insert(
            range,
            RangeState {
                oracle,
                version,
                pending: BTreeMap::new(),
                log: BTreeMap::new(),
                log_floor: version,
                mbr,
                fingerprint,
                len,
            },
        );
    }

    /// Serializes every held range for a warm-rejoin checkpoint:
    /// `(range, snapshot buffer, version, boundaries recorded at
    /// snapshot time)`. Flushes each oracle first so the buffer carries
    /// a shard map to validate against on restore.
    pub fn checkpoint_ranges(&mut self) -> Vec<(usize, Vec<u8>, u64, Option<ShardMap<D>>)> {
        self.ranges
            .iter_mut()
            .map(|(&r, st)| {
                st.oracle.flush();
                (
                    r,
                    st.oracle.snapshot_bytes(),
                    st.version,
                    st.oracle.shard_map().cloned(),
                )
            })
            .collect()
    }

    /// Silently drops one live entry of `range` from this replica,
    /// keeping the fingerprint honest — an adversarial divergence that
    /// anti-entropy must detect (equal version, unequal fingerprint)
    /// and repair by full resync. Only sensible against a
    /// non-authoritative holder.
    pub fn drop_one_entry(&mut self, range: usize) -> bool {
        let Some(st) = self.ranges.get_mut(&range) else {
            return false;
        };
        let Some((id, rect)) = st.oracle.entries().into_iter().next() else {
            return false;
        };
        if st.oracle.remove(id, &rect) {
            st.fingerprint ^= entry_fingerprint(id.raw(), &rect);
            st.len -= 1;
            true
        } else {
            false
        }
    }

    /// `slot` is live by this broker's view: itself, or heard from
    /// within the heartbeat-miss window.
    fn is_live(&self, slot: usize) -> bool {
        slot == self.me || self.now.saturating_sub(self.last_heard[slot]) <= self.cfg.heartbeat_miss
    }

    /// The live authority of `range`: the first live holder in owner →
    /// successor → predecessor order (falling back to the owner when
    /// nobody looks live).
    fn authority(&self, range: usize) -> usize {
        holder_slots(&self.map, range, self.cfg.replicas)
            .into_iter()
            .find(|&s| self.is_live(s))
            .unwrap_or(range)
    }
}

impl<const D: usize> FedNode<D> {
    /// Applies the contiguous prefix of `st.pending`, logging each op,
    /// and returns the `(seq, op)` pairs applied. Trims the log to
    /// `log_cap`, advancing the floor.
    fn drain_range(st: &mut RangeState<D>, log_cap: usize) -> Vec<(u64, FedOp<D>)> {
        let mut applied = Vec::new();
        while let Some(op) = st.pending.remove(&(st.version + 1)) {
            st.apply(&op);
            st.version += 1;
            st.log.insert(st.version, op.clone());
            applied.push((st.version, op));
        }
        while st.log.len() > log_cap {
            let oldest = *st.log.keys().next().expect("log non-empty");
            st.log.remove(&oldest);
            st.log_floor = oldest;
        }
        applied
    }

    /// Buffers `ops` for `range`, applies the contiguous prefix, and —
    /// when `eager` (a fresh client op, not replication traffic) —
    /// pushes what was applied to every co-holder. Ops at or below the
    /// applied version are duplicates and vanish; idempotence by
    /// sequence number is what makes loss, duplication and reordering
    /// harmless.
    fn apply_ops(
        &mut self,
        range: usize,
        ops: Vec<(u64, FedOp<D>)>,
        eager: bool,
        ctx: &mut Context<'_, FedMessage<D>, ()>,
    ) {
        let Some(st) = self.ranges.get_mut(&range) else {
            return;
        };
        for (seq, op) in ops {
            if seq > st.version {
                st.pending.entry(seq).or_insert(op);
            }
        }
        let applied = Self::drain_range(st, self.cfg.log_cap);
        if eager && !applied.is_empty() {
            for slot in holder_slots(&self.map, range, self.cfg.replicas) {
                if slot != self.me {
                    ctx.send(
                        self.peers[slot],
                        FedMessage::PushOps {
                            range,
                            ops: applied.clone(),
                        },
                    );
                }
            }
        }
    }

    /// One anti-entropy step for held range `range`: detect silent
    /// divergence from the authority (equal version, unequal
    /// fingerprint → reset and pull from zero, which the authority
    /// answers with a snapshot when its log does not reach that far),
    /// otherwise pull the missing suffix from the freshest live
    /// co-holder.
    fn anti_entropy(&mut self, range: usize, ctx: &mut Context<'_, FedMessage<D>, ()>) {
        let (my_version, my_fp) = {
            let st = self.ranges.get(&range).expect("held range");
            (st.version, st.fingerprint)
        };
        let auth = self.authority(range);
        if auth != self.me {
            if let Some(adv) = self.advertised.get(&(auth, range)) {
                if adv.version == my_version && adv.fingerprint != my_fp {
                    *self.ranges.get_mut(&range).expect("held range") =
                        RangeState::new(self.cfg.oracle_shards);
                    ctx.send(
                        self.peers[auth],
                        FedMessage::PullRequest { range, from_seq: 0 },
                    );
                    return;
                }
            }
        }
        let mut best: Option<(u64, usize)> = None;
        for slot in holder_slots(&self.map, range, self.cfg.replicas) {
            if slot == self.me || !self.is_live(slot) {
                continue;
            }
            if let Some(adv) = self.advertised.get(&(slot, range)) {
                if adv.version > my_version && best.is_none_or(|(v, _)| adv.version > v) {
                    best = Some((adv.version, slot));
                }
            }
        }
        if let Some((_, slot)) = best {
            ctx.send(
                self.peers[slot],
                FedMessage::PullRequest {
                    range,
                    from_seq: my_version,
                },
            );
        }
    }

    /// Drives one pending publication forward: answer held ranges that
    /// have reached their pin locally, prune ranges whose
    /// fresh-enough summary MBR excludes the point, forward the rest to
    /// the freshest live holder. Finalizes when no range remains.
    fn drive_event(&mut self, event: u64, ctx: &mut Context<'_, FedMessage<D>, ()>) {
        let Some(mut pe) = self.pending_events.remove(&event) else {
            return;
        };
        pe.last_try = self.now;
        let targets: Vec<(usize, u64)> = pe.remaining.iter().map(|(&r, &v)| (r, v)).collect();
        for (range, min_version) in targets {
            if let Some(st) = self.ranges.get_mut(&range) {
                if st.version >= min_version {
                    let mut hits = Vec::new();
                    st.oracle.match_point_into(&pe.point, &mut hits);
                    pe.subs.extend(hits.iter().map(|id| id.raw()));
                    pe.remaining.remove(&range);
                    continue;
                }
            }
            // Summary-MBR pruning, gated on freshness: only a summary
            // at version ≥ the pin may rule the range out — a stale
            // view can cost an extra forward, never a false negative.
            let mut pruned = false;
            let mut best: Option<(u64, usize)> = None;
            for slot in holder_slots(&self.map, range, self.cfg.replicas) {
                if slot == self.me || !self.is_live(slot) {
                    continue;
                }
                let adv = self.advertised.get(&(slot, range));
                if let Some(adv) = adv {
                    if adv.version >= min_version
                        && adv.mbr.is_none_or(|m| !m.contains_point(&pe.point))
                    {
                        pruned = true;
                        break;
                    }
                }
                let v = adv.map_or(0, |a| a.version);
                if best.is_none_or(|(bv, _)| v > bv) {
                    best = Some((v, slot));
                }
            }
            if pruned {
                pe.remaining.remove(&range);
                continue;
            }
            if let Some((_, slot)) = best {
                ctx.send(
                    self.peers[slot],
                    FedMessage::Forward {
                        event,
                        point: pe.point,
                        range,
                        min_version,
                    },
                );
            }
            // Nobody live holds the range right now: keep it pending;
            // the retry timer re-drives once a holder rejoins.
        }
        if pe.remaining.is_empty() {
            pe.subs.sort_unstable();
            pe.subs.dedup();
            self.completed.push((event, pe.subs));
        } else {
            self.pending_events.insert(event, pe);
        }
    }

    fn finalize_if_done(&mut self, event: u64) {
        let done = self
            .pending_events
            .get(&event)
            .is_some_and(|pe| pe.remaining.is_empty());
        if done {
            let mut pe = self.pending_events.remove(&event).expect("checked");
            pe.subs.sort_unstable();
            pe.subs.dedup();
            self.completed.push((event, pe.subs));
        }
    }
}

impl<const D: usize> Process for FedNode<D> {
    type Msg = FedMessage<D>;
    type Timer = ();

    fn on_start(&mut self, ctx: &mut Context<'_, Self::Msg, Self::Timer>) {
        self.now = ctx.now();
        // Presume everyone live at (re)start — a rejoiner must not
        // declare the whole fabric dead before its first heartbeats.
        self.last_heard = vec![ctx.now(); self.peers.len()];
        ctx.set_timer(1, ());
    }

    fn on_timer(&mut self, _timer: (), ctx: &mut Context<'_, Self::Msg, Self::Timer>) {
        self.now = ctx.now();
        ctx.set_timer(1, ());
        let summaries: Vec<RangeSummary<D>> =
            self.ranges.iter().map(|(&r, st)| st.summary(r)).collect();
        for (slot, &pid) in self.peers.iter().enumerate() {
            if slot != self.me {
                ctx.send(
                    pid,
                    FedMessage::Heartbeat {
                        summaries: summaries.clone(),
                    },
                );
            }
        }
        for range in self.held_ranges() {
            self.anti_entropy(range, ctx);
        }
        let due: Vec<u64> = self
            .pending_events
            .iter()
            .filter(|(_, pe)| self.now.saturating_sub(pe.last_try) >= self.cfg.retry_interval)
            .map(|(&e, _)| e)
            .collect();
        for event in due {
            self.drive_event(event, ctx);
        }
    }

    fn on_message(
        &mut self,
        from: ProcessId,
        msg: Self::Msg,
        ctx: &mut Context<'_, Self::Msg, Self::Timer>,
    ) {
        self.now = ctx.now();
        match msg {
            FedMessage::Heartbeat { summaries } => {
                if let Some(slot) = self.peers.iter().position(|&p| p == from) {
                    self.last_heard[slot] = self.now;
                    for summary in summaries {
                        self.advertised.insert((slot, summary.range), summary);
                    }
                }
            }
            FedMessage::ClientOp { range, seq, op } => {
                self.apply_ops(range, vec![(seq, op)], true, ctx);
            }
            FedMessage::PushOps { range, ops } => {
                self.apply_ops(range, ops, false, ctx);
            }
            FedMessage::PullRequest { range, from_seq } => {
                let Some(st) = self.ranges.get_mut(&range) else {
                    return;
                };
                if st.version <= from_seq {
                    return;
                }
                if from_seq >= st.log_floor {
                    let hi = st.version.min(from_seq + self.cfg.pull_chunk as u64);
                    let ops: Vec<(u64, FedOp<D>)> = st
                        .log
                        .range(from_seq + 1..=hi)
                        .map(|(&s, op)| (s, op.clone()))
                        .collect();
                    ctx.send(from, FedMessage::PushOps { range, ops });
                } else {
                    let entries: Vec<(u64, Rect<D>)> = st
                        .oracle
                        .entries()
                        .into_iter()
                        .map(|(id, rect)| (id.raw(), rect))
                        .collect();
                    ctx.send(
                        from,
                        FedMessage::PushSnapshot {
                            range,
                            version: st.version,
                            entries,
                        },
                    );
                }
            }
            FedMessage::PushSnapshot {
                range,
                version,
                entries,
            } => {
                let Some(st) = self.ranges.get_mut(&range) else {
                    return;
                };
                if version <= st.version {
                    return;
                }
                let mut fresh = RangeState::new(self.cfg.oracle_shards);
                for &(sub, rect) in &entries {
                    fresh.oracle.insert(ProcessId::from_raw(sub), rect);
                    fresh.fingerprint ^= entry_fingerprint(sub, &rect);
                    fresh.len += 1;
                    fresh.grow_mbr(&rect);
                }
                fresh.version = version;
                fresh.log_floor = version;
                fresh.pending = mem::take(&mut st.pending);
                fresh.pending.retain(|&s, _| s > version);
                *st = fresh;
                Self::drain_range(st, self.cfg.log_cap);
            }
            FedMessage::Forward {
                event,
                point,
                range,
                min_version,
            } => {
                // Answer only from state at least as fresh as the pin;
                // a stale rejoiner stays silent and the origin retries.
                let Some(st) = self.ranges.get_mut(&range) else {
                    return;
                };
                if st.version < min_version {
                    return;
                }
                let mut hits = Vec::new();
                st.oracle.match_point_into(&point, &mut hits);
                let subs: Vec<u64> = hits.iter().map(|id| id.raw()).collect();
                ctx.send(from, FedMessage::Matches { event, range, subs });
            }
            FedMessage::Matches { event, range, subs } => {
                if let Some(pe) = self.pending_events.get_mut(&event) {
                    if pe.remaining.remove(&range).is_some() {
                        pe.subs.extend(subs);
                        self.finalize_if_done(event);
                    }
                }
            }
            FedMessage::Publish {
                event,
                point,
                min_versions,
            } => {
                self.pending_events.insert(
                    event,
                    PendingEvent {
                        point,
                        remaining: min_versions.into_iter().collect(),
                        subs: Vec::new(),
                        last_try: 0,
                    },
                );
                self.drive_event(event, ctx);
            }
        }
    }
}

/// Which simulation engine drives the fabric's brokers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FedEngine {
    /// Synchronous lock-step rounds ([`RoundNetwork`]).
    Rounds,
    /// Discrete-event time with per-message latency ([`EventNetwork`]),
    /// stepped one time unit per fabric step.
    Event,
}

/// The engine-erased network under a fabric.
#[derive(Debug)]
enum FabricNet<const D: usize> {
    Rounds(RoundNetwork<FedNode<D>>),
    Event(EventNetwork<FedNode<D>>),
}

impl<const D: usize> FabricNet<D> {
    fn add(&mut self, node: FedNode<D>) -> ProcessId {
        match self {
            FabricNet::Rounds(n) => n.add_process(node),
            FabricNet::Event(n) => n.add_process(node),
        }
    }

    fn step(&mut self, clock: u64) {
        match self {
            FabricNet::Rounds(n) => n.run_round(),
            FabricNet::Event(n) => n.run_until(clock),
        }
    }

    fn node(&self, id: ProcessId) -> Option<&FedNode<D>> {
        match self {
            FabricNet::Rounds(n) => n.process(id),
            FabricNet::Event(n) => n.process(id),
        }
    }

    fn node_mut(&mut self, id: ProcessId) -> Option<&mut FedNode<D>> {
        match self {
            FabricNet::Rounds(n) => n.process_mut(id),
            FabricNet::Event(n) => n.process_mut(id),
        }
    }

    fn crash(&mut self, id: ProcessId) -> Option<FedNode<D>> {
        match self {
            FabricNet::Rounds(n) => n.crash(id),
            FabricNet::Event(n) => n.crash(id),
        }
    }

    fn revive(&mut self, id: ProcessId, node: FedNode<D>) -> bool {
        match self {
            FabricNet::Rounds(n) => n.revive(id, node),
            FabricNet::Event(n) => n.revive(id, node),
        }
    }

    fn send_external(&mut self, to: ProcessId, msg: FedMessage<D>) {
        match self {
            FabricNet::Rounds(n) => n.send_external(to, msg),
            FabricNet::Event(n) => n.send_external(to, msg),
        }
    }

    fn metrics(&self) -> &Metrics {
        match self {
            FabricNet::Rounds(n) => n.metrics(),
            FabricNet::Event(n) => n.metrics(),
        }
    }

    fn set_faults(&mut self, faults: FaultProfile) {
        match self {
            FabricNet::Rounds(n) => n.set_faults(faults),
            FabricNet::Event(n) => n.set_faults(faults),
        }
    }

    fn partition(&mut self, groups: &[Vec<ProcessId>]) {
        match self {
            FabricNet::Rounds(n) => n.partition(groups),
            FabricNet::Event(n) => n.partition(groups),
        }
    }

    fn heal(&mut self) {
        match self {
            FabricNet::Rounds(n) => {
                n.heal();
                n.unblock_all();
            }
            FabricNet::Event(n) => {
                n.heal();
                n.unblock_all();
            }
        }
    }
}

/// A warm-rejoin checkpoint of one broker: every held range's snapshot
/// buffer plus the fabric geometry it was taken under (rejoin refuses
/// the buffers when the geometry has since changed).
#[derive(Debug)]
pub struct FedCheckpoint<const D: usize> {
    ranges: Vec<(usize, Vec<u8>, u64, Option<ShardMap<D>>)>,
    boundaries: Vec<u128>,
    world: Rect<D>,
}

/// How a [`FederatedFabric::rejoin_broker`] call brought the broker
/// back.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RejoinOutcome {
    /// Warm: every range restored from the checkpoint (staleness
    /// validated) and caught up by delta pull.
    Warm,
    /// Warm was requested but the checkpoint was missing, stale or
    /// rejected — started cold instead.
    ColdFallback,
    /// Cold start: empty ranges, rebuilt by peer re-replication.
    Cold,
    /// The broker was not down; nothing happened.
    NotDown,
}

/// A publication still in flight, tracked by the fabric for
/// re-injection (origin crash) and span measurement.
#[derive(Debug)]
struct Outstanding<const D: usize> {
    point: Point<D>,
    min_versions: Vec<(usize, u64)>,
    injected_at: u64,
    origin: usize,
}

/// A resolved publication with its delivery set and latency span.
#[derive(Debug, Clone)]
pub struct CompletedEvent {
    /// Fabric-global event id.
    pub event: u64,
    /// Sorted, deduplicated matching subscription ids.
    pub subs: Vec<u64>,
    /// Fabric clock when the event was injected.
    pub injected_at: u64,
    /// Fabric clock when the origin finalized it.
    pub completed_at: u64,
}

/// A federation of `K` broker instances plus the client layer driving
/// them: the op sequencer and issued-op ledger, the publication
/// tracker, checkpoints, and the crash/rejoin controls. See the module
/// docs for the protocol.
#[derive(Debug)]
pub struct FederatedFabric<const D: usize> {
    net: FabricNet<D>,
    peers: Vec<ProcessId>,
    map: ShardMap<D>,
    cfg: FedConfig,
    clock: u64,
    /// Highest sequence issued per range.
    seq: Vec<u64>,
    /// Every op ever issued, per range by sequence — the client-side
    /// retry ledger (never pruned; this is the harness, not a broker).
    issued: Vec<BTreeMap<u64, FedOp<D>>>,
    /// The entry set each range must converge to: `sub → rect`.
    expected: Vec<BTreeMap<u64, Rect<D>>>,
    /// Live subscriptions: `sub → (range, rect)`.
    subs: BTreeMap<u64, (usize, Rect<D>)>,
    next_sub: u64,
    next_event: u64,
    outstanding: BTreeMap<u64, Outstanding<D>>,
    completed: Vec<CompletedEvent>,
    checkpoints: Vec<Option<FedCheckpoint<D>>>,
    down: Vec<bool>,
    origin_cursor: usize,
}

impl<const D: usize> FederatedFabric<D> {
    /// A fabric of `k` brokers over `world`, ranges split uniformly.
    pub fn new(k: usize, world: &Rect<D>, seed: u64, engine: FedEngine, cfg: FedConfig) -> Self {
        Self::with_map(ShardMap::new(k, world), seed, engine, cfg)
    }

    /// A fabric over an explicit range map (e.g. quantile boundaries
    /// from [`ShardMap::from_sorted_keys`] for a known workload).
    pub fn with_map(map: ShardMap<D>, seed: u64, engine: FedEngine, cfg: FedConfig) -> Self {
        let k = map.shards();
        let peers: Vec<ProcessId> = (0..k as u64).map(ProcessId::from_raw).collect();
        let mut net = match engine {
            FedEngine::Rounds => FabricNet::Rounds(RoundNetwork::new(seed)),
            FedEngine::Event => FabricNet::Event(EventNetwork::new(NetConfig::default(), seed)),
        };
        for (slot, &pid) in peers.iter().enumerate() {
            let node = FedNode::new(slot, peers.clone(), map.clone(), cfg.clone());
            let id = net.add(node);
            assert_eq!(id, pid, "broker ids must be slot-sequential");
        }
        Self {
            net,
            peers,
            map,
            cfg,
            clock: 0,
            seq: vec![0; k],
            issued: vec![BTreeMap::new(); k],
            expected: vec![BTreeMap::new(); k],
            subs: BTreeMap::new(),
            next_sub: 0,
            next_event: 0,
            outstanding: BTreeMap::new(),
            completed: Vec::new(),
            checkpoints: (0..k).map(|_| None).collect(),
            down: vec![false; k],
            origin_cursor: 0,
        }
    }

    /// Number of broker instances.
    pub fn brokers(&self) -> usize {
        self.peers.len()
    }

    /// The fabric clock (rounds stepped so far).
    pub fn clock(&self) -> u64 {
        self.clock
    }

    /// The fabric's range map.
    pub fn map(&self) -> &ShardMap<D> {
        &self.map
    }

    /// Whether broker `b` is currently crashed.
    pub fn is_down(&self, b: usize) -> bool {
        self.down[b]
    }

    /// Live subscription count (client-side view).
    pub fn subscriptions(&self) -> usize {
        self.subs.len()
    }

    /// Publications injected but not yet resolved.
    pub fn outstanding_events(&self) -> usize {
        self.outstanding.len()
    }

    /// Every resolved publication so far, in completion order.
    pub fn completed(&self) -> &[CompletedEvent] {
        &self.completed
    }

    /// Aggregate network metrics (message labels, fault counters).
    pub fn metrics(&self) -> &Metrics {
        self.net.metrics()
    }

    /// Sets the inter-broker link fault profile.
    pub fn set_faults(&mut self, faults: FaultProfile) {
        self.net.set_faults(faults);
    }

    /// Partitions the brokers into isolated groups (by slot).
    pub fn partition_slots(&mut self, groups: &[Vec<usize>]) {
        let groups: Vec<Vec<ProcessId>> = groups
            .iter()
            .map(|g| g.iter().map(|&s| self.peers[s]).collect())
            .collect();
        self.net.partition(&groups);
    }

    /// Removes every partition and blocked link.
    pub fn heal(&mut self) {
        self.net.heal();
    }

    /// Read access to broker `b` (None while crashed).
    pub fn node(&self, b: usize) -> Option<&FedNode<D>> {
        self.net.node(self.peers[b])
    }

    /// The first non-crashed holder of `range`, owner preferred.
    fn preferred_holder(&self, range: usize) -> usize {
        holder_slots(&self.map, range, self.cfg.replicas)
            .into_iter()
            .find(|&s| !self.down[s])
            .unwrap_or(range)
    }

    /// Issues one sequenced op: ledger first, then an external
    /// (reliable, unfaulted) send to a live holder. Loss past that
    /// point is repaired by the per-step retry sweep.
    fn issue_op(&mut self, range: usize, op: FedOp<D>) {
        self.seq[range] += 1;
        let seq = self.seq[range];
        self.issued[range].insert(seq, op.clone());
        match &op {
            FedOp::Subscribe { sub, rect } => {
                self.expected[range].insert(*sub, *rect);
            }
            FedOp::Unsubscribe { sub, .. } => {
                self.expected[range].remove(sub);
            }
            FedOp::Move { sub, new, .. } => {
                self.expected[range].insert(*sub, *new);
            }
        }
        let target = self.preferred_holder(range);
        self.net
            .send_external(self.peers[target], FedMessage::ClientOp { range, seq, op });
    }

    /// Registers a new subscription; returns its fabric-global id.
    pub fn subscribe(&mut self, rect: Rect<D>) -> u64 {
        let sub = self.next_sub;
        self.next_sub += 1;
        let range = self.map.shard_of(&rect);
        self.subs.insert(sub, (range, rect));
        self.issue_op(range, FedOp::Subscribe { sub, rect });
        sub
    }

    /// Removes subscription `sub`; `false` if unknown.
    pub fn unsubscribe(&mut self, sub: u64) -> bool {
        let Some((range, rect)) = self.subs.remove(&sub) else {
            return false;
        };
        self.issue_op(range, FedOp::Unsubscribe { sub, rect });
        true
    }

    /// Moves subscription `sub` to filter `new`; `false` if unknown.
    /// A move across a range boundary is scripted as unsubscribe +
    /// subscribe (the two ranges replicate independently).
    pub fn relocate(&mut self, sub: u64, new: Rect<D>) -> bool {
        let Some(&(range, old)) = self.subs.get(&sub) else {
            return false;
        };
        let new_range = self.map.shard_of(&new);
        self.subs.insert(sub, (new_range, new));
        if new_range == range {
            self.issue_op(range, FedOp::Move { sub, old, new });
        } else {
            self.issue_op(range, FedOp::Unsubscribe { sub, rect: old });
            self.issue_op(new_range, FedOp::Subscribe { sub, rect: new });
        }
        true
    }

    /// The next live broker in round-robin order — publication origins
    /// rotate so no single broker becomes the fabric's choke point.
    fn next_origin(&mut self) -> usize {
        let k = self.peers.len();
        for _ in 0..k {
            self.origin_cursor = (self.origin_cursor + 1) % k;
            if !self.down[self.origin_cursor] {
                return self.origin_cursor;
            }
        }
        0
    }

    /// Publishes `point`: pins each range at its current issued
    /// sequence (exactness — see module docs) and injects the event at
    /// a live origin broker. Returns the event id; resolution arrives
    /// through [`FederatedFabric::completed`] after enough steps.
    pub fn publish(&mut self, point: Point<D>) -> u64 {
        let event = self.next_event;
        self.next_event += 1;
        let min_versions: Vec<(usize, u64)> =
            (0..self.peers.len()).map(|r| (r, self.seq[r])).collect();
        let origin = self.next_origin();
        self.outstanding.insert(
            event,
            Outstanding {
                point,
                min_versions: min_versions.clone(),
                injected_at: self.clock,
                origin,
            },
        );
        self.net.send_external(
            self.peers[origin],
            FedMessage::Publish {
                event,
                point,
                min_versions,
            },
        );
        event
    }

    /// Advances the fabric one round: network step, client-ledger
    /// retry sweep, and completion collection.
    pub fn step(&mut self) {
        self.clock += 1;
        self.net.step(self.clock);
        if self.clock.is_multiple_of(self.cfg.retry_interval) {
            self.retry_ops();
        }
        self.collect_completed();
    }

    /// Re-offers issued ops nobody live has applied yet to the
    /// freshest live holder of each range — the client-side guarantee
    /// that an op survives even if the only broker that had applied it
    /// crashed before replicating it.
    fn retry_ops(&mut self) {
        for range in 0..self.peers.len() {
            if self.seq[range] == 0 {
                continue;
            }
            let mut best: Option<(u64, usize)> = None;
            for slot in holder_slots(&self.map, range, self.cfg.replicas) {
                if self.down[slot] {
                    continue;
                }
                let v = self
                    .net
                    .node(self.peers[slot])
                    .and_then(|n| n.range_view(range))
                    .map_or(0, |rv| rv.version);
                if best.is_none_or(|(bv, _)| v > bv) {
                    best = Some((v, slot));
                }
            }
            let Some((vmax, slot)) = best else {
                continue;
            };
            if vmax >= self.seq[range] {
                continue;
            }
            let hi = self.seq[range].min(vmax + 64);
            let ops: Vec<(u64, FedOp<D>)> = self.issued[range]
                .range(vmax + 1..=hi)
                .map(|(&s, op)| (s, op.clone()))
                .collect();
            if !ops.is_empty() {
                self.net
                    .send_external(self.peers[slot], FedMessage::PushOps { range, ops });
            }
        }
    }

    /// Drains resolved publications from every live origin.
    fn collect_completed(&mut self) {
        for slot in 0..self.peers.len() {
            if self.down[slot] {
                continue;
            }
            let done = match self.net.node_mut(self.peers[slot]) {
                Some(node) => node.take_completed(),
                None => continue,
            };
            for (event, subs) in done {
                if let Some(out) = self.outstanding.remove(&event) {
                    self.completed.push(CompletedEvent {
                        event,
                        subs,
                        injected_at: out.injected_at,
                        completed_at: self.clock,
                    });
                }
            }
        }
    }

    /// Whether broker `b` may crash without leaving any of its ranges
    /// holderless — the same "at least one survivor" cap the overlay
    /// schedules apply.
    pub fn can_crash(&self, b: usize) -> bool {
        if self.down[b] {
            return false;
        }
        (0..self.peers.len()).all(|r| {
            let slots = holder_slots(&self.map, r, self.cfg.replicas);
            !slots.contains(&b) || slots.iter().any(|&s| s != b && !self.down[s])
        })
    }

    /// Crashes broker `b` uncontrolled: its process and queued traffic
    /// vanish, and any in-flight publication it originated is
    /// re-injected (same id, same version pins) at a surviving origin.
    /// Refused (`false`) when a range would lose its last holder.
    pub fn crash_broker(&mut self, b: usize) -> bool {
        if !self.can_crash(b) {
            return false;
        }
        self.net.crash(self.peers[b]);
        self.down[b] = true;
        let orphans: Vec<u64> = self
            .outstanding
            .iter()
            .filter(|(_, o)| o.origin == b)
            .map(|(&e, _)| e)
            .collect();
        for event in orphans {
            let origin = self.next_origin();
            let out = self.outstanding.get_mut(&event).expect("tracked");
            out.origin = origin;
            let msg = FedMessage::Publish {
                event,
                point: out.point,
                min_versions: out.min_versions.clone(),
            };
            self.net.send_external(self.peers[origin], msg);
        }
        true
    }

    /// Checkpoints broker `b` for a later warm rejoin: every held
    /// range's snapshot buffer plus the current fabric geometry.
    pub fn checkpoint_broker(&mut self, b: usize) -> bool {
        if self.down[b] {
            return false;
        }
        let Some(node) = self.net.node_mut(self.peers[b]) else {
            return false;
        };
        let ranges = node.checkpoint_ranges();
        self.checkpoints[b] = Some(FedCheckpoint {
            ranges,
            boundaries: self.map.boundaries().to_vec(),
            world: *self.map.world(),
        });
        true
    }

    /// Checkpoints every live broker.
    pub fn checkpoint_all(&mut self) {
        for b in 0..self.peers.len() {
            if !self.down[b] {
                self.checkpoint_broker(b);
            }
        }
    }

    /// Rejoins crashed broker `b`. `warm` restores from its last
    /// checkpoint — each range validated against the boundaries
    /// recorded at checkpoint time ([`ShardedOracle::restore_bytes_checked`])
    /// and refused wholesale if the fabric geometry changed since —
    /// then catches up by pulling the missing suffix; any validation
    /// failure degrades to [`RejoinOutcome::ColdFallback`]. Cold
    /// rejoin starts empty and is rebuilt by peer re-replication.
    pub fn rejoin_broker(&mut self, b: usize, warm: bool) -> RejoinOutcome {
        if !self.down[b] {
            return RejoinOutcome::NotDown;
        }
        let mut node = FedNode::new(b, self.peers.clone(), self.map.clone(), self.cfg.clone());
        let mut outcome = RejoinOutcome::Cold;
        if warm {
            outcome = RejoinOutcome::ColdFallback;
            if let Some(cp) = self.checkpoints[b].take() {
                if cp.boundaries.as_slice() == self.map.boundaries()
                    && cp.world == *self.map.world()
                {
                    let mut restored = Vec::new();
                    let mut ok = true;
                    for (range, raw, version, recorded_map) in cp.ranges {
                        let result = match &recorded_map {
                            Some(m) => ShardedOracle::restore_bytes_checked(raw, m),
                            None => ShardedOracle::restore_bytes(raw),
                        };
                        match result {
                            Ok(oracle) => restored.push((range, oracle, version)),
                            Err(_) => {
                                ok = false;
                                break;
                            }
                        }
                    }
                    if ok {
                        for (range, oracle, version) in restored {
                            node.install_range(range, oracle, version);
                        }
                        outcome = RejoinOutcome::Warm;
                    }
                }
            }
            if outcome != RejoinOutcome::Warm {
                node = FedNode::new(b, self.peers.clone(), self.map.clone(), self.cfg.clone());
            }
        }
        let revived = self.net.revive(self.peers[b], node);
        assert!(revived, "broker {b} failed to revive");
        self.down[b] = false;
        outcome
    }

    /// The fabric's legal predicate: every range has at least one live
    /// holder, and every live holder sits exactly at the issued
    /// version with no buffered gap, the expected entry count, and the
    /// expected XOR fingerprint.
    pub fn check_legal(&self) -> Result<(), String> {
        for range in 0..self.peers.len() {
            let mut live = 0usize;
            for slot in holder_slots(&self.map, range, self.cfg.replicas) {
                if self.down[slot] {
                    continue;
                }
                live += 1;
                let Some(view) = self
                    .net
                    .node(self.peers[slot])
                    .and_then(|n| n.range_view(range))
                else {
                    return Err(format!("broker {slot} lost range {range}"));
                };
                if view.version != self.seq[range] {
                    return Err(format!(
                        "range {range} at broker {slot}: version {} != issued {}",
                        view.version, self.seq[range]
                    ));
                }
                if view.pending != 0 {
                    return Err(format!(
                        "range {range} at broker {slot}: {} ops buffered out of order",
                        view.pending
                    ));
                }
                if view.len != self.expected[range].len() as u64 {
                    return Err(format!(
                        "range {range} at broker {slot}: {} entries != expected {}",
                        view.len,
                        self.expected[range].len()
                    ));
                }
                let want_fp = self.expected[range]
                    .iter()
                    .fold(0u64, |fp, (&sub, rect)| fp ^ entry_fingerprint(sub, rect));
                if view.fingerprint != want_fp {
                    return Err(format!(
                        "range {range} at broker {slot}: fingerprint diverged"
                    ));
                }
            }
            if live == 0 {
                return Err(format!("range {range} has no live holder"));
            }
        }
        Ok(())
    }

    /// Steps until every publication resolved and the legal predicate
    /// holds, up to `max_steps`; `true` on success.
    pub fn settle(&mut self, max_steps: u64) -> bool {
        for _ in 0..max_steps {
            if self.outstanding.is_empty() && self.check_legal().is_ok() {
                return true;
            }
            self.step();
        }
        self.outstanding.is_empty() && self.check_legal().is_ok()
    }

    /// Bulk-registers `rects` through the ledger (each gets a sequence
    /// and an issued [`FedOp::Subscribe`], exactly as if subscribed one
    /// by one) and installs the resulting range states directly on
    /// every live holder — the fast fabric bootstrap for large
    /// workloads. Installing at `version == seq` with the log floor
    /// there means a later puller from below is answered with a
    /// snapshot, never a hole.
    pub fn bulk_populate(&mut self, rects: &[Rect<D>]) {
        for &rect in rects {
            let sub = self.next_sub;
            self.next_sub += 1;
            let range = self.map.shard_of(&rect);
            self.subs.insert(sub, (range, rect));
            self.seq[range] += 1;
            self.issued[range].insert(self.seq[range], FedOp::Subscribe { sub, rect });
            self.expected[range].insert(sub, rect);
        }
        let k = self.peers.len();
        for slot in 0..k {
            if self.down[slot] {
                continue;
            }
            for range in 0..k {
                if !holder_slots(&self.map, range, self.cfg.replicas).contains(&slot) {
                    continue;
                }
                let mut oracle = ShardedOracle::new(self.cfg.oracle_shards);
                for (&sub, rect) in &self.expected[range] {
                    oracle.insert(ProcessId::from_raw(sub), *rect);
                }
                oracle.flush();
                let version = self.seq[range];
                if let Some(node) = self.net.node_mut(self.peers[slot]) {
                    node.install_range(range, oracle, version);
                }
            }
        }
    }

    /// The reference delivery set: every live subscription whose
    /// filter contains `point`, sorted — what a single-broker oracle
    /// over the same ledger would deliver.
    pub fn expected_matches(&self, point: &Point<D>) -> Vec<u64> {
        let mut out: Vec<u64> = self
            .subs
            .iter()
            .filter(|(_, (_, rect))| rect.contains_point(point))
            .map(|(&sub, _)| sub)
            .collect();
        out.sort_unstable();
        out
    }
}

/// Knobs of [`run_federated_convergence`].
#[derive(Debug, Clone)]
pub struct FedConvergenceConfig {
    /// Maximum publications in flight during the faulty phase.
    pub window: usize,
    /// Background subscription ops injected per round.
    pub ops_per_round: usize,
    /// Publications injected per round (window permitting).
    pub events_per_round: usize,
    /// Post-heal rounds granted to drain in-flight publications before
    /// the recovery clock starts.
    pub drain_margin: u64,
    /// Post-recovery probe publications compared against the reference.
    pub probe_events: usize,
    /// Recovery-phase legality checks run every this many rounds.
    pub check_stride: u64,
    /// Live brokers are checkpointed every this many rounds, so a
    /// warm rejoin genuinely restores stale state and must catch up.
    pub checkpoint_stride: u64,
    /// Seed of the harness's own workload RNG.
    pub seed: u64,
}

impl Default for FedConvergenceConfig {
    fn default() -> Self {
        Self {
            window: 8,
            ops_per_round: 2,
            events_per_round: 1,
            drain_margin: 64,
            probe_events: 32,
            check_stride: 4,
            checkpoint_stride: 8,
            seed: 0xfed,
        }
    }
}

/// What [`run_federated_convergence`] measured.
#[derive(Debug, Clone)]
pub struct FedConvergenceReport {
    /// Display name of the schedule driven.
    pub schedule: String,
    /// Fabric size.
    pub brokers: usize,
    /// Broker crashes actually applied.
    pub broker_crashes: u64,
    /// Rejoins restored from a validated checkpoint.
    pub warm_rejoins: u64,
    /// Rejoins started cold by request.
    pub cold_rejoins: u64,
    /// Warm rejoins degraded to cold (missing/stale checkpoint).
    pub cold_fallbacks: u64,
    /// Rounds after heal+drain until the legal predicate held with no
    /// event outstanding; `None` if the budget ran out.
    pub recovery_rounds: Option<u64>,
    /// The schedule's convergence budget.
    pub budget: u64,
    /// Publication spans measured while faults were active.
    pub fault_latency: LatencyDistribution,
    /// Publication spans of the post-recovery probes.
    pub post_latency: LatencyDistribution,
    /// Every post-recovery probe's delivery set equalled the
    /// single-broker reference exactly.
    pub post_matches_reference: bool,
    /// Subscriptions the reference matched but a probe missed.
    pub post_false_negatives: u64,
    /// Inter-broker [`FedMessage::Forward`] messages over the run.
    pub forwarded: u64,
    /// Total subscription deliveries across resolved publications.
    pub delivered_matches: u64,
    /// Publications resolved over the whole run (probes included).
    pub events_completed: u64,
    /// Publications never resolved (should be zero).
    pub events_unresolved: u64,
}

impl FedConvergenceReport {
    /// The schedule's pass criterion: reconverged within budget, every
    /// event resolved, and post-recovery delivery exactly matches the
    /// single-broker reference with zero false negatives.
    pub fn passed(&self) -> bool {
        self.recovery_rounds.is_some()
            && self.post_matches_reference
            && self.post_false_negatives == 0
            && self.events_unresolved == 0
    }
}

/// A random filter rectangle covering ~2–10% of the world per axis.
fn random_rect<const D: usize>(rng: &mut StdRng, world: &Rect<D>) -> Rect<D> {
    let mut lo = [0.0; D];
    let mut hi = [0.0; D];
    for d in 0..D {
        let extent = (world.hi(d) - world.lo(d)).max(1e-9);
        let w = extent * rng.gen_range(0.02..0.10);
        let x = world.lo(d) + rng.gen_range(0.0..(extent - w).max(1e-9));
        lo[d] = x;
        hi[d] = x + w;
    }
    Rect::new(lo, hi)
}

/// A probe point: the center of a random live subscription when one
/// can be found (so probes actually hit), a random world point else.
fn probe_point<const D: usize>(
    rng: &mut StdRng,
    fabric: &FederatedFabric<D>,
    world: &Rect<D>,
) -> Point<D> {
    for _ in 0..8 {
        if fabric.next_sub == 0 {
            break;
        }
        let sub = rng.gen_range(0..fabric.next_sub);
        if let Some((_, rect)) = fabric.subs.get(&sub) {
            return rect.center();
        }
    }
    let mut coords = [0.0; D];
    for (d, c) in coords.iter_mut().enumerate() {
        *c = rng.gen_range(world.lo(d)..=world.hi(d));
    }
    Point::new(coords)
}

/// Maps a schedule's `broker` index (relative to its own `brokers`
/// fabric size) onto this fabric's `k` slots.
fn victim_slot(broker: usize, brokers: usize, k: usize) -> usize {
    let brokers = brokers.max(1);
    ((broker % brokers) * k / brokers).min(k.saturating_sub(1))
}

/// Drives one [`FaultSchedule`] against a federated fabric — the
/// federation-level counterpart of [`drtree_core::run_convergence`].
///
/// Faulty phase: scheduled events are applied under their federated
/// interpretation (broker crash/rejoin directly; partitions and
/// regional crashes resolved through each broker's primary-range
/// expected-entry union; fault windows verbatim on the inter-broker
/// links; corruption as a silent entry drop on a non-authoritative
/// replica), while background subscribe/move/unsubscribe churn and a
/// windowed publication stream keep the fabric busy. Live brokers are
/// checkpointed periodically so warm rejoins restore genuinely stale
/// state. Recovery phase: heal, clear faults, rejoin stragglers cold,
/// drain, then step until [`FederatedFabric::check_legal`] holds —
/// counted against the schedule budget. Finally, probe publications
/// are compared op-for-op against the client-side reference.
pub fn run_federated_convergence<const D: usize>(
    fabric: &mut FederatedFabric<D>,
    schedule: &FaultSchedule<D>,
    cfg: &FedConvergenceConfig,
) -> FedConvergenceReport {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let world = *fabric.map.world();
    let k = fabric.brokers();
    let mut broker_crashes = 0u64;
    let mut warm_rejoins = 0u64;
    let mut cold_rejoins = 0u64;
    let mut cold_fallbacks = 0u64;
    let mut fault_samples: Vec<u64> = Vec::new();
    let mut seen_completed = fabric.completed.len();

    let drain_new = |fabric: &FederatedFabric<D>, seen: &mut usize, samples: &mut Vec<u64>| {
        for ev in &fabric.completed[*seen..] {
            samples.push(ev.completed_at.saturating_sub(ev.injected_at));
        }
        *seen = fabric.completed.len();
    };

    let mut event_idx = 0usize;
    for round in 0..schedule.duration {
        if round % cfg.checkpoint_stride == 0 {
            fabric.checkpoint_all();
        }
        while event_idx < schedule.events.len() && schedule.events[event_idx].at <= round {
            match &schedule.events[event_idx].event {
                FaultEvent::BrokerCrash { broker, brokers } => {
                    let victim = victim_slot(*broker, *brokers, k);
                    if fabric.crash_broker(victim) {
                        broker_crashes += 1;
                    }
                }
                FaultEvent::BrokerRejoin {
                    broker,
                    brokers,
                    warm,
                } => {
                    let victim = victim_slot(*broker, *brokers, k);
                    match fabric.rejoin_broker(victim, *warm) {
                        RejoinOutcome::Warm => warm_rejoins += 1,
                        RejoinOutcome::Cold => cold_rejoins += 1,
                        RejoinOutcome::ColdFallback => cold_fallbacks += 1,
                        RejoinOutcome::NotDown => {}
                    }
                }
                FaultEvent::Partition { region } => {
                    // A broker sides with its owned range's expected
                    // union center (brokers with an empty range stay
                    // outside the cut).
                    let (inside, outside): (Vec<usize>, Vec<usize>) = (0..k).partition(|&b| {
                        fabric.expected[b]
                            .values()
                            .copied()
                            .reduce(|a, c| rect_union(&a, &c))
                            .is_some_and(|u| region.contains_point(&u.center()))
                    });
                    if !inside.is_empty() && !outside.is_empty() {
                        fabric.partition_slots(&[inside, outside]);
                    }
                }
                FaultEvent::Heal => fabric.heal(),
                FaultEvent::RegionalCrash { region, max } => {
                    let mut crashed = 0usize;
                    for b in 0..k {
                        if crashed >= *max {
                            break;
                        }
                        let in_region = fabric.expected[b]
                            .values()
                            .copied()
                            .reduce(|a, c| rect_union(&a, &c))
                            .is_some_and(|u| region.contains_point(&u.center()));
                        if in_region && fabric.crash_broker(b) {
                            broker_crashes += 1;
                            crashed += 1;
                        }
                    }
                }
                FaultEvent::Faults { profile } => fabric.set_faults(*profile),
                FaultEvent::ClearFaults => fabric.set_faults(FaultProfile::default()),
                FaultEvent::Corruption { count, .. } => {
                    // Silent entry drops on non-authoritative live
                    // replicas; anti-entropy must detect and repair.
                    for _ in 0..*count {
                        let range = rng.gen_range(0..k);
                        let slots = holder_slots(&fabric.map, range, fabric.cfg.replicas);
                        let authority = slots.iter().copied().find(|&s| !fabric.down[s]);
                        let victim = slots
                            .iter()
                            .copied()
                            .find(|&s| Some(s) != authority && !fabric.down[s]);
                        if let Some(victim) = victim {
                            if let Some(node) = fabric.net.node_mut(fabric.peers[victim]) {
                                node.drop_one_entry(range);
                            }
                        }
                    }
                }
            }
            event_idx += 1;
        }
        for _ in 0..cfg.ops_per_round {
            let roll: f64 = rng.gen();
            if roll < 0.5 || fabric.subs.is_empty() {
                let rect = random_rect(&mut rng, &world);
                fabric.subscribe(rect);
            } else {
                let sub = rng.gen_range(0..fabric.next_sub);
                if roll < 0.8 {
                    let rect = random_rect(&mut rng, &world);
                    fabric.relocate(sub, rect);
                } else {
                    fabric.unsubscribe(sub);
                }
            }
        }
        if fabric.outstanding.len() < cfg.window {
            for _ in 0..cfg.events_per_round {
                let point = probe_point(&mut rng, fabric, &world);
                fabric.publish(point);
            }
        }
        fabric.step();
        drain_new(fabric, &mut seen_completed, &mut fault_samples);
    }

    // Recovery phase: perfect network, everyone back (stragglers cold).
    fabric.heal();
    fabric.set_faults(FaultProfile::default());
    for b in 0..k {
        if fabric.down[b] {
            match fabric.rejoin_broker(b, false) {
                RejoinOutcome::Cold => cold_rejoins += 1,
                RejoinOutcome::Warm => warm_rejoins += 1,
                RejoinOutcome::ColdFallback => cold_fallbacks += 1,
                RejoinOutcome::NotDown => {}
            }
        }
    }
    let mut drained = 0u64;
    while !fabric.outstanding.is_empty() && drained < cfg.drain_margin {
        fabric.step();
        drained += 1;
    }
    drain_new(fabric, &mut seen_completed, &mut fault_samples);

    let mut recovery_rounds = None;
    let mut spent = 0u64;
    loop {
        if fabric.outstanding.is_empty() && fabric.check_legal().is_ok() {
            recovery_rounds = Some(spent);
            break;
        }
        if spent >= schedule.budget {
            break;
        }
        let chunk = cfg.check_stride.min(schedule.budget - spent);
        for _ in 0..chunk {
            fabric.step();
        }
        spent += chunk;
        drain_new(fabric, &mut seen_completed, &mut fault_samples);
    }
    let events_unresolved = fabric.outstanding.len() as u64;

    // Post-recovery probes: delivery-set equality, op for op.
    let mut post_samples: Vec<u64> = Vec::new();
    let mut post_matches_reference = recovery_rounds.is_some();
    let mut post_false_negatives = 0u64;
    if recovery_rounds.is_some() {
        for _ in 0..cfg.probe_events {
            let point = probe_point(&mut rng, fabric, &world);
            let want = fabric.expected_matches(&point);
            let event = fabric.publish(point);
            let mut resolved = false;
            for _ in 0..cfg.drain_margin.max(16) * 4 {
                fabric.step();
                if let Some(ev) = fabric.completed.iter().rev().find(|e| e.event == event) {
                    post_samples.push(ev.completed_at.saturating_sub(ev.injected_at));
                    post_false_negatives +=
                        want.iter().filter(|s| !ev.subs.contains(s)).count() as u64;
                    if ev.subs != want {
                        post_matches_reference = false;
                    }
                    resolved = true;
                    break;
                }
            }
            if !resolved {
                post_matches_reference = false;
            }
        }
        seen_completed = fabric.completed.len();
        let _ = seen_completed;
    }

    FedConvergenceReport {
        schedule: schedule.to_string(),
        brokers: k,
        broker_crashes,
        warm_rejoins,
        cold_rejoins,
        cold_fallbacks,
        recovery_rounds,
        budget: schedule.budget,
        fault_latency: LatencyDistribution::from_samples(&mut fault_samples),
        post_latency: LatencyDistribution::from_samples(&mut post_samples),
        post_matches_reference,
        post_false_negatives,
        forwarded: fabric.metrics().label_count("fed-forward"),
        delivered_matches: fabric.completed.iter().map(|e| e.subs.len() as u64).sum(),
        events_completed: fabric.completed.len() as u64,
        events_unresolved,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn world() -> Rect<2> {
        Rect::new([0.0, 0.0], [100.0, 100.0])
    }

    fn fabric(k: usize, engine: FedEngine) -> FederatedFabric<2> {
        FederatedFabric::new(k, &world(), 7, engine, FedConfig::default())
    }

    #[test]
    fn quiet_fabric_reaches_legal_and_answers_exactly() {
        for engine in [FedEngine::Rounds, FedEngine::Event] {
            let mut fab = fabric(4, engine);
            let mut subs = Vec::new();
            for i in 0..40u64 {
                let x = (i % 8) as f64 * 12.0;
                let y = (i / 8) as f64 * 18.0;
                subs.push(fab.subscribe(Rect::new([x, y], [x + 10.0, y + 10.0])));
            }
            assert!(
                fab.settle(200),
                "fabric never settled: {:?}",
                fab.check_legal()
            );
            let point = Point::new([5.0, 5.0]);
            let want = fab.expected_matches(&point);
            assert!(!want.is_empty());
            let event = fab.publish(point);
            for _ in 0..50 {
                fab.step();
            }
            let got = fab
                .completed()
                .iter()
                .find(|e| e.event == event)
                .expect("publication resolved");
            assert_eq!(got.subs, want);
        }
    }

    #[test]
    fn crash_takeover_then_cold_rejoin_reconverges() {
        let mut fab = fabric(4, FedEngine::Rounds);
        for i in 0..60u64 {
            let x = (i % 10) as f64 * 9.0;
            let y = (i / 10) as f64 * 15.0;
            fab.subscribe(Rect::new([x, y], [x + 8.0, y + 8.0]));
        }
        assert!(fab.settle(300));
        assert!(fab.crash_broker(1));
        // Matching stays exact while the broker is down: the
        // surviving holder of its range answers.
        let point = Point::new([50.0, 50.0]);
        let want = fab.expected_matches(&point);
        let event = fab.publish(point);
        for _ in 0..60 {
            fab.step();
        }
        let got = fab
            .completed()
            .iter()
            .find(|e| e.event == event)
            .expect("resolved while broker down");
        assert_eq!(got.subs, want, "takeover changed the delivery set");
        assert_eq!(fab.rejoin_broker(1, false), RejoinOutcome::Cold);
        assert!(
            fab.settle(400),
            "cold rejoin never converged: {:?}",
            fab.check_legal()
        );
    }

    #[test]
    fn warm_rejoin_restores_checkpoint_and_catches_up() {
        let mut fab = fabric(4, FedEngine::Rounds);
        for i in 0..50u64 {
            let x = (i % 10) as f64 * 9.0;
            let y = (i / 10) as f64 * 18.0;
            fab.subscribe(Rect::new([x, y], [x + 8.0, y + 8.0]));
        }
        assert!(fab.settle(300));
        fab.checkpoint_all();
        // Ops past the checkpoint: the warm rejoiner must catch these
        // up by delta pull, not just restore the buffer.
        for i in 0..10u64 {
            let x = 3.0 + i as f64 * 9.0;
            fab.subscribe(Rect::new([x, 40.0], [x + 5.0, 46.0]));
        }
        for _ in 0..20 {
            fab.step();
        }
        assert!(fab.crash_broker(2));
        assert_eq!(fab.rejoin_broker(2, true), RejoinOutcome::Warm);
        assert!(
            fab.settle(400),
            "warm rejoin never converged: {:?}",
            fab.check_legal()
        );
    }

    #[test]
    fn warm_rejoin_without_checkpoint_falls_back_cold() {
        let mut fab = fabric(3, FedEngine::Event);
        for i in 0..30u64 {
            let x = (i % 6) as f64 * 16.0;
            let y = (i / 6) as f64 * 19.0;
            fab.subscribe(Rect::new([x, y], [x + 9.0, y + 9.0]));
        }
        assert!(fab.settle(300));
        assert!(fab.crash_broker(0));
        assert_eq!(fab.rejoin_broker(0, true), RejoinOutcome::ColdFallback);
        assert!(fab.settle(400));
    }

    #[test]
    fn broker_churn_schedule_passes_end_to_end() {
        let schedule = FaultSchedule::broker_churn();
        let mut fab = fabric(4, FedEngine::Rounds);
        let mut rng = StdRng::seed_from_u64(99);
        let rects: Vec<Rect<2>> = (0..200).map(|_| random_rect(&mut rng, &world())).collect();
        fab.bulk_populate(&rects);
        let report =
            run_federated_convergence(&mut fab, &schedule, &FedConvergenceConfig::default());
        assert!(report.passed(), "broker-churn failed: {report:?}");
        assert!(report.broker_crashes >= 2, "schedule crashed nobody");
        assert!(
            report.warm_rejoins + report.cold_rejoins + report.cold_fallbacks >= 2,
            "schedule rejoined nobody"
        );
    }
}
