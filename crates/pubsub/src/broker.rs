use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use drtree_core::{DrTreeCluster, DrTreeConfig, ProcessId, PublishReport};
use drtree_rtree::parallel;
use drtree_spatial::filter::FilterError;
use drtree_spatial::{Event, FilterExpr, Point, Rect, Schema};

use crate::shard::{BatchMatches, CompactionMode, OracleSnapshot, ShardedOracle};
use crate::stats::RoutingStats;

/// A lock-free `f64` cell for the adaptive-window EMA.
///
/// The EMA used to be a plain `f64` field, which was fine while
/// exactly one caller owned the broker — but the concurrent ingress
/// path wants the signal readable from *outside* the commit loop
/// (monitoring, the shared stats mirror) while the loop keeps folding
/// new observations in. The cell makes that split explicit:
/// **one** writer (whoever holds `&mut Broker` — the commit loop under
/// [`crate::MultiBroker`]) folds observations, any number of readers
/// load a consistent bit pattern. Loads can never tear or observe a
/// half-written value: the full `f64` is stored as one atomic `u64`.
#[derive(Debug)]
pub(crate) struct EmaCell(AtomicU64);

impl EmaCell {
    pub(crate) fn new(value: f64) -> Self {
        Self(AtomicU64::new(value.to_bits()))
    }

    pub(crate) fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Acquire))
    }

    pub(crate) fn set(&self, value: f64) {
        self.0.store(value.to_bits(), Ordering::Release);
    }
}

/// Errors surfaced by the [`Broker`].
#[derive(Debug, Clone, PartialEq)]
pub enum BrokerError {
    /// A filter or event did not compile against the broker's schema.
    Filter(FilterError),
    /// The named subscriber does not exist (or already left).
    UnknownSubscriber(ProcessId),
    /// The schema's dimensionality does not match the const generic `D`.
    SchemaDimensionMismatch {
        /// Dimensions of the broker (`D`).
        expected: usize,
        /// Dimensions declared by the schema.
        schema: usize,
    },
    /// The subscriber holds a subscription *set*; a set has no single
    /// rectangle to move, so mobility applies to singleton
    /// subscriptions only (resubscribe the set instead).
    SetSubscriberImmobile(ProcessId),
}

impl fmt::Display for BrokerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BrokerError::Filter(e) => write!(f, "filter error: {e}"),
            BrokerError::UnknownSubscriber(id) => write!(f, "unknown subscriber {id}"),
            BrokerError::SchemaDimensionMismatch { expected, schema } => write!(
                f,
                "schema declares {schema} attributes but the broker is {expected}-dimensional"
            ),
            BrokerError::SetSubscriberImmobile(id) => write!(
                f,
                "subscriber {id} holds a subscription set, which cannot be moved as one rectangle"
            ),
        }
    }
}

impl std::error::Error for BrokerError {}

impl From<FilterError> for BrokerError {
    fn from(e: FilterError) -> Self {
        BrokerError::Filter(e)
    }
}

/// A content-based publish/subscribe broker backed by a DR-tree overlay.
///
/// Every subscription becomes a DR-tree subscriber process; every
/// publication is disseminated through the overlay. A sharded packed
/// R-tree mirror ([`ShardedOracle`]) serves as the exact-matching
/// oracle so each delivery can be audited for false
/// positives/negatives, and doubles as the matching engine of the
/// batched publish pipeline ([`Broker::publish_batch`]). See the
/// [crate documentation](crate) for an example.
pub struct Broker<const D: usize> {
    schema: Schema,
    cluster: DrTreeCluster<D>,
    oracle: ShardedOracle<D>,
    subscriptions: BTreeMap<ProcessId, Rect<D>>,
    /// Exact member filters of subscription *sets* (§2.1); subscribers
    /// registered via `subscribe`/`subscribe_rect` are singleton sets
    /// and are not listed here.
    sets: BTreeMap<ProcessId, Vec<Rect<D>>>,
    stats: RoutingStats,
    /// Overlay dissemination window of [`Broker::publish_batch`]: how
    /// many events of a batch disseminate concurrently.
    publish_window: usize,
    /// When set, [`Broker::publish_batch`] re-derives `publish_window`
    /// from `rounds_ema` after every batch instead of holding the
    /// configured constant.
    adaptive_window: bool,
    /// Exponential moving average of observed per-event
    /// injection-to-quiescence rounds (0.0 until the first publish).
    /// Atomic so concurrent-ingress readers can poll the signal
    /// tear-free while the commit loop owns the updates ([`EmaCell`]).
    rounds_ema: EmaCell,
    /// Reused single-publish matching buffer (sorted, deduplicated,
    /// publisher still included).
    match_buf: Vec<ProcessId>,
    /// Reused batched-publish matching arena.
    batch_buf: BatchMatches,
    /// Reused point scratch of [`Broker::publish_batch_multi`] (the
    /// oracle's batched pass takes a plain point slice).
    multi_points: Vec<Point<D>>,
}

impl<const D: usize> Broker<D> {
    /// Creates a broker for `schema` over a fresh overlay, sharding
    /// the oracle across (up to 8) hardware threads.
    ///
    /// # Errors
    ///
    /// Returns [`BrokerError::SchemaDimensionMismatch`] when
    /// `schema.dims() != D`.
    pub fn new(schema: Schema, config: DrTreeConfig, seed: u64) -> Result<Self, BrokerError> {
        Self::with_shards(
            schema,
            config,
            seed,
            parallel::available_threads().clamp(1, 8),
        )
    }

    /// Creates a broker whose oracle is partitioned across `shards`
    /// shards (clamped to ≥ 1). Shard count never changes *what* is
    /// matched — property tests pin every shard count to identical
    /// hit-sets — only how the matching work is laid out and fanned.
    ///
    /// # Errors
    ///
    /// Returns [`BrokerError::SchemaDimensionMismatch`] when
    /// `schema.dims() != D`.
    pub fn with_shards(
        schema: Schema,
        config: DrTreeConfig,
        seed: u64,
        shards: usize,
    ) -> Result<Self, BrokerError> {
        if schema.dims() != D {
            return Err(BrokerError::SchemaDimensionMismatch {
                expected: D,
                schema: schema.dims(),
            });
        }
        Ok(Self {
            schema,
            cluster: DrTreeCluster::new(config, seed),
            oracle: ShardedOracle::new(shards),
            subscriptions: BTreeMap::new(),
            sets: BTreeMap::new(),
            stats: RoutingStats::default(),
            publish_window: Self::DEFAULT_PUBLISH_WINDOW,
            adaptive_window: false,
            rounds_ema: EmaCell::new(0.0),
            match_buf: Vec::new(),
            batch_buf: BatchMatches::new(),
            multi_points: Vec::new(),
        })
    }

    /// Builds a broker over an already-populated overlay in one shot:
    /// the subscribers in `rects` are materialized through
    /// [`DrTreeCluster::build_bulk`] (state injection validated
    /// against the legality checker — seconds instead of the better
    /// part of an hour at benchmark sizes) and mirrored into the
    /// oracle. Returns the broker plus the assigned subscriber ids, in
    /// `rects` order.
    ///
    /// # Errors
    ///
    /// Returns [`BrokerError::SchemaDimensionMismatch`] when
    /// `schema.dims() != D`.
    ///
    /// # Panics
    ///
    /// Panics if the bulk-built overlay fails the legality check
    /// (a bug, not an input condition).
    pub fn build_bulk(
        schema: Schema,
        config: DrTreeConfig,
        seed: u64,
        rects: &[Rect<D>],
    ) -> Result<(Self, Vec<ProcessId>), BrokerError> {
        let mut broker = Self::new(schema, config, seed)?;
        broker.cluster = DrTreeCluster::build_bulk(config, seed, rects);
        let ids = broker.cluster.ids();
        for (&id, &rect) in ids.iter().zip(rects) {
            broker.subscriptions.insert(id, rect);
            broker.oracle.insert(id, rect);
        }
        Ok((broker, ids))
    }

    /// Default overlay dissemination window of
    /// [`Broker::publish_batch`].
    pub const DEFAULT_PUBLISH_WINDOW: usize = 32;

    /// EMA smoothing of the observed rounds-per-event signal driving
    /// the adaptive window: new observations carry a quarter of the
    /// weight, so one anomalous batch cannot whipsaw the window while
    /// a genuine workload shift converges within a handful of batches.
    const WINDOW_EMA_ALPHA: f64 = 0.25;

    /// Adaptive window sizing: events overlapping in flight should
    /// cover a few dissemination depths, so each round is shared by
    /// many events without flooding the network far past the point of
    /// diminishing returns.
    const WINDOW_ROUNDS_FACTOR: f64 = 4.0;

    /// Sets how many events of a batch disseminate through the overlay
    /// concurrently (clamped to
    /// `1..=`[`DrTreeCluster::MAX_PUBLISH_WINDOW`]). `1` restores the
    /// sequential drain-per-event behavior. Also turns adaptive
    /// sizing off — an explicit window is a pin.
    pub fn set_publish_window(&mut self, window: usize) {
        self.publish_window = window.clamp(1, DrTreeCluster::<D>::MAX_PUBLISH_WINDOW);
        self.adaptive_window = false;
    }

    /// The current overlay dissemination window.
    pub fn publish_window(&self) -> usize {
        self.publish_window
    }

    /// Turns adaptive window sizing on or off. When on, every
    /// [`Broker::publish_batch`] re-derives the dissemination window
    /// from an exponential moving average of the observed per-event
    /// rounds ([`Broker::rounds_ema`]) — roughly
    /// `4 × rounds-per-event`, clamped like
    /// [`Broker::set_publish_window`] — instead of holding the fixed
    /// default. Deep overlays (more rounds per event) thus get wider
    /// windows to amortize their rounds across, shallow ones stay
    /// narrow, with no per-deployment tuning.
    pub fn set_adaptive_window(&mut self, adaptive: bool) {
        self.adaptive_window = adaptive;
    }

    /// `true` when the publish window is sized adaptively.
    pub fn adaptive_window(&self) -> bool {
        self.adaptive_window
    }

    /// The exponential moving average of observed per-event
    /// dissemination rounds (0.0 before the first publish) — the
    /// signal behind [`Broker::set_adaptive_window`].
    pub fn rounds_ema(&self) -> f64 {
        self.rounds_ema.get()
    }

    /// Folds one publish's observed per-event rounds into the EMA and,
    /// when adaptive, re-derives the window. The fold is a
    /// read-modify-write on the [`EmaCell`], race-free because updates
    /// only ever happen under `&mut self` — under concurrent ingress
    /// that is the commit loop, the cell's single writer — while
    /// readers go through the atomic [`Broker::rounds_ema`].
    fn observe_rounds(&mut self, reports: &[PublishReport]) {
        if reports.is_empty() {
            return;
        }
        let mean = reports.iter().map(|r| r.rounds).sum::<u64>() as f64 / reports.len() as f64;
        let prev = self.rounds_ema.get();
        let next = if prev == 0.0 {
            mean
        } else {
            Self::WINDOW_EMA_ALPHA * mean + (1.0 - Self::WINDOW_EMA_ALPHA) * prev
        };
        self.rounds_ema.set(next);
        if self.adaptive_window {
            let window = (Self::WINDOW_ROUNDS_FACTOR * next).round() as usize;
            self.publish_window = window.clamp(1, DrTreeCluster::<D>::MAX_PUBLISH_WINDOW);
        }
    }

    /// Number of shards the oracle fans publishes across.
    pub fn shard_count(&self) -> usize {
        self.oracle.shard_count()
    }

    /// The attribute schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of live subscriptions.
    pub fn len(&self) -> usize {
        self.subscriptions.len()
    }

    /// `true` when nobody is subscribed.
    pub fn is_empty(&self) -> bool {
        self.subscriptions.is_empty()
    }

    /// Registers a subscription written in the predicate language of
    /// §2.1 and waits for the subscriber to join the overlay.
    ///
    /// # Errors
    ///
    /// Returns [`BrokerError::Filter`] when the conjunction does not
    /// compile against the schema.
    pub fn subscribe(&mut self, filter: &FilterExpr) -> Result<ProcessId, BrokerError> {
        let rect: Rect<D> = filter.compile(&self.schema)?;
        Ok(self.subscribe_rect(rect))
    }

    /// Registers a subscription directly as a rectangle.
    pub fn subscribe_rect(&mut self, rect: Rect<D>) -> ProcessId {
        let id = self.cluster.add_subscriber_stable(rect);
        self.subscriptions.insert(id, rect);
        self.oracle.insert(id, rect);
        id
    }

    /// Registers one subscriber with a *set* of filters (§2.1: "each
    /// node in the system has associated a set of subscriptions").
    ///
    /// The overlay sees the set's minimum bounding rectangle — the
    /// natural generalization of the paper's single-filter model: no
    /// member event can be missed (the MBR contains every member), and
    /// the subscriber filters locally against the exact set. Delivery
    /// reports from [`Broker::publish`] account matching/false
    /// positives against the *set*, not the MBR.
    ///
    /// # Errors
    ///
    /// Returns [`BrokerError::Filter`] if the set is empty (reported as
    /// an unsatisfiable filter) or any member does not compile.
    pub fn subscribe_set(&mut self, filters: &[FilterExpr]) -> Result<ProcessId, BrokerError> {
        let members: Vec<Rect<D>> = filters
            .iter()
            .map(|f| f.compile(&self.schema))
            .collect::<Result<_, _>>()?;
        let Some(mbr) = Rect::union_all(members.iter()) else {
            return Err(BrokerError::Filter(FilterError::Unsatisfiable(
                "empty subscription set".into(),
            )));
        };
        let id = self.cluster.add_subscriber_stable(mbr);
        self.subscriptions.insert(id, mbr);
        for r in &members {
            self.oracle.insert(id, *r);
        }
        self.sets.insert(id, members);
        Ok(id)
    }

    /// Removes a subscription via a controlled departure (Fig. 9).
    ///
    /// # Errors
    ///
    /// Returns [`BrokerError::UnknownSubscriber`] when `id` is not live.
    pub fn unsubscribe(&mut self, id: ProcessId) -> Result<(), BrokerError> {
        let rect = self
            .subscriptions
            .remove(&id)
            .ok_or(BrokerError::UnknownSubscriber(id))?;
        match self.sets.remove(&id) {
            Some(members) => {
                for r in members {
                    self.oracle.remove(id, &r);
                }
            }
            None => {
                self.oracle.remove(id, &rect);
            }
        }
        self.cluster.controlled_leave(id);
        Ok(())
    }

    /// Replaces an existing subscription with a new filter expression.
    ///
    /// Filters are constant per process in the paper's model (§3.2), so
    /// an update is realized faithfully as a controlled departure
    /// followed by a fresh join; the subscriber receives a **new id**,
    /// which is returned.
    ///
    /// # Errors
    ///
    /// Returns [`BrokerError::UnknownSubscriber`] for dead subscribers
    /// and [`BrokerError::Filter`] for filters that do not compile.
    pub fn resubscribe(
        &mut self,
        id: ProcessId,
        filter: &FilterExpr,
    ) -> Result<ProcessId, BrokerError> {
        let rect: Rect<D> = filter.compile(&self.schema)?;
        self.unsubscribe(id)?;
        Ok(self.subscribe_rect(rect))
    }

    /// Moves an existing subscription to the rectangle a new filter
    /// expression compiles to, **keeping the subscriber's identity** —
    /// the continuous-query counterpart of [`Broker::resubscribe`]
    /// (which models the paper's constant-filter semantics as
    /// leave + rejoin under a fresh id).
    ///
    /// # Errors
    ///
    /// Returns [`BrokerError::Filter`] for filters that do not
    /// compile, plus everything
    /// [`Broker::move_subscription_rect`] returns.
    pub fn move_subscription(
        &mut self,
        id: ProcessId,
        filter: &FilterExpr,
    ) -> Result<(), BrokerError> {
        let rect: Rect<D> = filter.compile(&self.schema)?;
        self.move_subscription_rect(id, rect)
    }

    /// Moves an existing subscription to `rect` in place: same
    /// subscriber id, no departure, no rejoin. The oracle absorbs the
    /// move as a delta patch (or a shard re-key when the Hilbert key
    /// crosses a boundary), the overlay swaps the leaf filter and
    /// repairs its ancestor caches through stabilization — so the move
    /// serializes with publishes exactly like any other command in the
    /// commit loop.
    ///
    /// # Errors
    ///
    /// Returns [`BrokerError::UnknownSubscriber`] for dead subscribers
    /// and [`BrokerError::SetSubscriberImmobile`] for subscription
    /// sets (a set has no single rectangle to move).
    pub fn move_subscription_rect(
        &mut self,
        id: ProcessId,
        rect: Rect<D>,
    ) -> Result<(), BrokerError> {
        if self.sets.contains_key(&id) {
            return Err(BrokerError::SetSubscriberImmobile(id));
        }
        let Some(&old) = self.subscriptions.get(&id) else {
            return Err(BrokerError::UnknownSubscriber(id));
        };
        if old == rect {
            return Ok(());
        }
        let moved = self.oracle.move_entry(id, &old, rect);
        debug_assert!(moved, "subscription map and oracle disagree on {id}");
        self.subscriptions.insert(id, rect);
        let alive = self.cluster.move_subscriber(id, rect);
        debug_assert!(alive, "subscription map lists a dead subscriber {id}");
        // The move invalidates ancestor MBR/filter caches up the leaf's
        // root path; converge the repair before the next publish so
        // delivery stays exact (the per-publish oracle audit enforces
        // this in debug builds).
        let rounds = 8 * (u64::from(self.cluster.height()) + 2);
        self.cluster.stabilize(rounds);
        Ok(())
    }

    /// Publishes `event` from subscriber `publisher`, auditing the
    /// delivery against the oracle.
    ///
    /// # Errors
    ///
    /// Returns [`BrokerError::Filter`] for events that do not compile
    /// and [`BrokerError::UnknownSubscriber`] for dead publishers.
    pub fn publish(
        &mut self,
        publisher: ProcessId,
        event: &Event,
    ) -> Result<PublishReport, BrokerError> {
        let point: Point<D> = event.compile(&self.schema)?;
        self.publish_point(publisher, point)
    }

    /// Publishes a pre-compiled point.
    ///
    /// # Errors
    ///
    /// Returns [`BrokerError::UnknownSubscriber`] for dead publishers.
    pub fn publish_point(
        &mut self,
        publisher: ProcessId,
        point: Point<D>,
    ) -> Result<PublishReport, BrokerError> {
        if !self.subscriptions.contains_key(&publisher) {
            return Err(BrokerError::UnknownSubscriber(publisher));
        }
        self.flush_oracle();
        // The oracle's answer is consumed by set reclassification and
        // by the debug audit; with neither active (release build, no
        // subscription sets) the probe would be computed and thrown
        // away, so skip it.
        let needs_oracle = !self.sets.is_empty() || cfg!(debug_assertions);
        let mut match_buf = std::mem::take(&mut self.match_buf);
        if needs_oracle {
            // One sharded-oracle probe instead of a scan over every
            // subscriber (reused buffer; sorted and deduplicated, so
            // set-subscribers appear once however many members match).
            self.oracle.match_point_into(&point, &mut match_buf);
        }
        let mut report = self.cluster.publish_from(publisher, point);
        if needs_oracle {
            self.classify(publisher, &point, &match_buf, &mut report);
        }
        self.stats.absorb(&report);
        self.observe_rounds(std::slice::from_ref(&report));
        self.match_buf = match_buf;
        Ok(report)
    }

    /// Publishes a batch of pre-compiled points from one publisher,
    /// batched end-to-end: the *oracle* side amortizes a single
    /// matching pass — shard fan-out, joint packed descents, one
    /// counting-sort merge — over the whole batch, and the *overlay*
    /// side disseminates the batch through a sliding window of
    /// [`Broker::publish_window`] concurrent events
    /// ([`DrTreeCluster::publish_pipeline`]) instead of draining the
    /// network once per event. Reports are returned in input order,
    /// each reconciled against the oracle and folded into
    /// [`Broker::stats`], exactly as if published one at a time.
    ///
    /// # Errors
    ///
    /// Returns [`BrokerError::UnknownSubscriber`] for dead publishers.
    pub fn publish_batch(
        &mut self,
        publisher: ProcessId,
        points: &[Point<D>],
    ) -> Result<Vec<PublishReport>, BrokerError> {
        if !self.subscriptions.contains_key(&publisher) {
            return Err(BrokerError::UnknownSubscriber(publisher));
        }
        self.flush_oracle();
        // Same guard as `publish_point`: the batched oracle pass only
        // runs when something consumes its answer.
        let needs_oracle = !self.sets.is_empty() || cfg!(debug_assertions);
        let mut batch_buf = std::mem::take(&mut self.batch_buf);
        if needs_oracle {
            self.oracle.match_batch_into(points, &mut batch_buf);
        }
        let mut reports = self
            .cluster
            .publish_pipeline(publisher, points, self.publish_window);
        for (i, (point, report)) in points.iter().zip(&mut reports).enumerate() {
            if needs_oracle {
                self.classify(publisher, point, batch_buf.matches(i), report);
            }
            self.stats.absorb(report);
        }
        self.observe_rounds(&reports);
        self.batch_buf = batch_buf;
        Ok(reports)
    }

    /// Publishes a batch of pre-compiled points with **per-event
    /// publishers** — the commit primitive of the concurrent
    /// multi-publisher ingress path ([`crate::MultiBroker`]), where one
    /// drained batch interleaves events from many publishers.
    ///
    /// Semantically identical to grouping `events` by publisher and
    /// calling [`Broker::publish_point`] per event in input order:
    /// same delivery sets, same oracle audit, same statistics. The
    /// batching exists for cost, not meaning — one oracle pass and one
    /// windowed overlay dissemination
    /// ([`DrTreeCluster::publish_pipeline_from`]) amortize over the
    /// whole batch, and a deeper aggregated batch means a deeper
    /// effective window, which is where multi-publisher throughput
    /// scaling comes from.
    ///
    /// # Errors
    ///
    /// Returns [`BrokerError::UnknownSubscriber`] if **any** event
    /// names a dead publisher; the batch is then rejected whole, with
    /// nothing published (validation happens before the first
    /// injection).
    pub fn publish_batch_multi(
        &mut self,
        events: &[(ProcessId, Point<D>)],
    ) -> Result<Vec<PublishReport>, BrokerError> {
        for &(publisher, _) in events {
            if !self.subscriptions.contains_key(&publisher) {
                return Err(BrokerError::UnknownSubscriber(publisher));
            }
        }
        if events.is_empty() {
            return Ok(Vec::new());
        }
        self.flush_oracle();
        // Same guard as `publish_point`: the batched oracle pass only
        // runs when something consumes its answer.
        let needs_oracle = !self.sets.is_empty() || cfg!(debug_assertions);
        let mut batch_buf = std::mem::take(&mut self.batch_buf);
        let mut points = std::mem::take(&mut self.multi_points);
        if needs_oracle {
            points.clear();
            points.extend(events.iter().map(|&(_, point)| point));
            self.oracle.match_batch_into(&points, &mut batch_buf);
        }
        let mut reports = self
            .cluster
            .publish_pipeline_from(events, self.publish_window);
        for (i, (&(publisher, point), report)) in events.iter().zip(&mut reports).enumerate() {
            if needs_oracle {
                self.classify(publisher, &point, batch_buf.matches(i), report);
            }
            self.stats.absorb(report);
        }
        self.observe_rounds(&reports);
        self.batch_buf = batch_buf;
        self.multi_points = points;
        Ok(reports)
    }

    /// Compacts any oracle shard whose delta layer outgrew its budget
    /// **now**, charging the cost to the rebuild/compaction columns of
    /// [`Broker::stats`] instead of the next publish. Publishing pays
    /// this lazily anyway; benches call it eagerly so publish timings
    /// measure matching, not maintenance. Returns the wall-clock time
    /// spent (zero when every delta was within budget).
    pub fn flush_oracle(&mut self) -> Duration {
        let flush = self.oracle.flush();
        if flush.rebuilt_shards > 0 {
            self.stats
                .absorb_oracle_rebuild(flush.rebuilt_shards as u64, flush.elapsed);
        }
        if flush.compacted_shards > 0 {
            self.stats.absorb_oracle_compaction(
                flush.compacted_shards as u64,
                flush.staged_absorbed as u64,
                flush.tombstones_reclaimed as u64,
            );
        }
        if flush.rebuilt_shards > 0 || flush.begun_compactions > 0 {
            self.stats
                .absorb_oracle_pause(flush.swap_ns, flush.compact_ns);
        }
        if flush.moved_in_place + flush.rekeyed + flush.leases_expired > 0 {
            self.stats.absorb_oracle_moves(
                flush.moved_in_place as u64,
                flush.rekeyed as u64,
                flush.leases_expired as u64,
            );
        }
        flush.elapsed
    }

    /// A point-in-time [`OracleSnapshot`] of the live subscription
    /// set — the lock-free read side of concurrent ingress. Readers
    /// holding an `Arc` of it answer exact containment queries as of
    /// snapshot time and never block on (or are blocked by) publishes;
    /// see [`ShardedOracle::snapshot`].
    pub fn oracle_snapshot(&self) -> OracleSnapshot<D> {
        self.oracle.snapshot()
    }

    /// Serializes the live subscription oracle into one flat,
    /// versioned, checksummed buffer — the durable counterpart of
    /// [`Broker::oracle_snapshot`]. A serving replica restores it with
    /// [`ShardedOracle::restore_bytes`] (zero-copy, millisecond
    /// cold-start) and answers exact matching queries as of snapshot
    /// time without carrying any of the broker's overlay state. Safe
    /// mid-churn: staged entries and tombstones travel with their
    /// shards.
    pub fn oracle_snapshot_bytes(&self) -> Vec<u8> {
        self.oracle.snapshot_bytes()
    }

    /// Chooses how the oracle realizes over-threshold shard
    /// compactions: inline inside the flush
    /// ([`CompactionMode::Synchronous`], deterministic, the measured
    /// baseline) or frozen-snapshot merges on background workers
    /// swapped in pause-free ([`CompactionMode::Concurrent`]). See
    /// [`ShardedOracle::set_compaction_mode`].
    pub fn set_compaction_mode(&mut self, mode: CompactionMode) {
        self.oracle.set_compaction_mode(mode);
    }

    /// `true` iff subscriber `id` exactly matches `point` (any member of
    /// its set; the plain filter for singleton subscribers).
    fn matches_exactly(&self, id: ProcessId, point: &Point<D>) -> bool {
        match self.sets.get(&id) {
            Some(members) => members.iter().any(|r| r.contains_point(point)),
            None => self
                .subscriptions
                .get(&id)
                .is_some_and(|r| r.contains_point(point)),
        }
    }

    /// Reconciles one report with the oracle's exact matching set
    /// (`oracle_matching`: sorted, deduplicated, publisher possibly
    /// included). With subscription sets live, the overlay classified
    /// deliveries by each node's MBR filter, so matching and false
    /// positives/negatives are re-accounted against the exact sets;
    /// otherwise the overlay's own answer is only audited.
    fn classify(
        &self,
        publisher: ProcessId,
        point: &Point<D>,
        oracle_matching: &[ProcessId],
        report: &mut PublishReport,
    ) {
        if !self.sets.is_empty() {
            report.matching.clear();
            report.matching.extend(
                oracle_matching
                    .iter()
                    .copied()
                    .filter(|&id| id != publisher),
            );
            report.false_positives = report
                .receivers
                .iter()
                .copied()
                .filter(|&id| !self.matches_exactly(id, point))
                .collect();
            report.false_negatives = report
                .matching
                .iter()
                .copied()
                .filter(|id| !report.receivers.contains(id))
                .collect();
        }
        debug_assert!(
            {
                // The overlay's notion of "who should get this event"
                // must equal the oracle's exact answer (publisher
                // excluded).
                let mut got = report.matching.clone();
                got.sort_unstable();
                let want: Vec<ProcessId> = oracle_matching
                    .iter()
                    .copied()
                    .filter(|&id| id != publisher)
                    .collect();
                got == want
            },
            "oracle disagrees with report"
        );
    }

    /// Accumulated routing statistics over all publishes.
    pub fn stats(&self) -> &RoutingStats {
        &self.stats
    }

    /// Resets the accumulated statistics.
    pub fn reset_stats(&mut self) {
        self.stats = RoutingStats::default();
    }

    /// The underlying overlay (escape hatch for experiments).
    pub fn cluster(&self) -> &DrTreeCluster<D> {
        &self.cluster
    }

    /// Mutable access to the underlying overlay.
    pub fn cluster_mut(&mut self) -> &mut DrTreeCluster<D> {
        &mut self.cluster
    }

    /// Runs the overlay until it reaches a legitimate configuration.
    pub fn stabilize(&mut self, max_rounds: u64) -> Option<u64> {
        self.cluster.stabilize(max_rounds)
    }

    /// Subscription rectangles by subscriber id.
    pub fn subscriptions(&self) -> &BTreeMap<ProcessId, Rect<D>> {
        &self.subscriptions
    }
}

impl<const D: usize> fmt::Debug for Broker<D> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Broker")
            .field("subscriptions", &self.subscriptions.len())
            .field("stats", &self.stats)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ema_cell_loads_never_tear_under_a_concurrent_writer() {
        // The regression the cell exists for: a reader polling the EMA
        // while the commit loop folds observations must only ever see
        // values that were actually stored — never an interleaving of
        // two writes' bit halves.
        let cell = std::sync::Arc::new(EmaCell::new(0.0));
        // Values chosen so any torn lo/hi word mix is outside the set.
        let stored: Vec<f64> = (0..1000).map(|i| 1.0 + i as f64 * 1e-3).collect();
        let writer = {
            let cell = std::sync::Arc::clone(&cell);
            let stored = stored.clone();
            std::thread::spawn(move || {
                for &v in &stored {
                    cell.set(v);
                }
            })
        };
        let mut seen = Vec::new();
        loop {
            let v = cell.get();
            seen.push(v);
            if writer.is_finished() {
                break;
            }
        }
        writer.join().unwrap();
        for v in seen {
            assert!(
                v == 0.0
                    || stored
                        .binary_search_by(|s| s.partial_cmp(&v).unwrap())
                        .is_ok(),
                "observed a value never stored: {v}"
            );
        }
    }

    #[test]
    fn ema_fold_is_deterministic_through_the_cell() {
        // The cell must not change the EMA arithmetic: replaying the
        // same per-batch means through a plain f64 gives bit-identical
        // results.
        let cell = EmaCell::new(0.0);
        let mut plain = 0.0f64;
        for mean in [3.0, 5.0, 4.0, 4.0, 7.5, 2.25] {
            let prev = cell.get();
            let next = if prev == 0.0 {
                mean
            } else {
                0.25 * mean + 0.75 * prev
            };
            cell.set(next);
            plain = if plain == 0.0 {
                mean
            } else {
                0.25 * mean + 0.75 * plain
            };
            assert_eq!(cell.get().to_bits(), plain.to_bits());
        }
    }
}
