use std::collections::BTreeMap;
use std::fmt;

use drtree_core::{DrTreeCluster, DrTreeConfig, ProcessId, PublishReport};
use drtree_rtree::PackedRTree;
use drtree_spatial::filter::FilterError;
use drtree_spatial::{Event, FilterExpr, Point, Rect, Schema};

use crate::stats::RoutingStats;

/// The broker's subscription index: the exact member filters of every
/// live subscriber, packed for read-heavy serving.
///
/// Publishes dominate subscription changes by orders of magnitude in
/// the workloads this broker targets, so the index is a
/// [`PackedRTree`] rebuilt lazily: mutations only mark it dirty, and
/// the next publish pays one Hilbert bulk-load (`O(N log N)`, single-
/// digit milliseconds at 100k filters) before queries run
/// allocation-free against flat arrays.
///
/// Declared tradeoffs of this regime: `remove` is a linear scan, and a
/// workload strictly alternating mutation and publish rebuilds on
/// every publish. Both are acceptable *here* because
/// [`DrTreeCluster::publish_from`] simulates `O(height)` protocol
/// rounds across all `N` subscriber processes per publish — the oracle
/// rebuild can never dominate it. A standalone serving index without
/// that backdrop should amortize differently (position map, rebuild
/// thresholds).
#[derive(Debug)]
struct SubscriptionIndex<const D: usize> {
    entries: Vec<(ProcessId, Rect<D>)>,
    packed: PackedRTree<ProcessId, D>,
    dirty: bool,
}

impl<const D: usize> SubscriptionIndex<D> {
    fn new() -> Self {
        Self {
            entries: Vec::new(),
            packed: PackedRTree::bulk_load(Vec::new()),
            dirty: false,
        }
    }

    fn insert(&mut self, id: ProcessId, rect: Rect<D>) {
        self.entries.push((id, rect));
        self.dirty = true;
    }

    /// Removes one `(id, rect)` entry; `true` if found.
    fn remove(&mut self, id: ProcessId, rect: &Rect<D>) -> bool {
        match self
            .entries
            .iter()
            .position(|(eid, er)| *eid == id && er == rect)
        {
            Some(pos) => {
                self.entries.swap_remove(pos);
                self.dirty = true;
                true
            }
            None => false,
        }
    }

    /// Rebuilds the packed tree if mutations happened since the last
    /// query round.
    fn ensure_built(&mut self) {
        if self.dirty {
            self.packed = PackedRTree::bulk_load(self.entries.clone());
            self.dirty = false;
        }
    }

    /// The packed index; call [`SubscriptionIndex::ensure_built`] first.
    fn packed(&self) -> &PackedRTree<ProcessId, D> {
        debug_assert!(!self.dirty, "query against a stale subscription index");
        &self.packed
    }
}

/// Errors surfaced by the [`Broker`].
#[derive(Debug, Clone, PartialEq)]
pub enum BrokerError {
    /// A filter or event did not compile against the broker's schema.
    Filter(FilterError),
    /// The named subscriber does not exist (or already left).
    UnknownSubscriber(ProcessId),
    /// The schema's dimensionality does not match the const generic `D`.
    SchemaDimensionMismatch {
        /// Dimensions of the broker (`D`).
        expected: usize,
        /// Dimensions declared by the schema.
        schema: usize,
    },
}

impl fmt::Display for BrokerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BrokerError::Filter(e) => write!(f, "filter error: {e}"),
            BrokerError::UnknownSubscriber(id) => write!(f, "unknown subscriber {id}"),
            BrokerError::SchemaDimensionMismatch { expected, schema } => write!(
                f,
                "schema declares {schema} attributes but the broker is {expected}-dimensional"
            ),
        }
    }
}

impl std::error::Error for BrokerError {}

impl From<FilterError> for BrokerError {
    fn from(e: FilterError) -> Self {
        BrokerError::Filter(e)
    }
}

/// A content-based publish/subscribe broker backed by a DR-tree overlay.
///
/// Every subscription becomes a DR-tree subscriber process; every
/// publication is disseminated through the overlay. A centralized
/// R-tree mirror serves as the exact-matching oracle so each delivery
/// can be audited for false positives/negatives. See the
/// [crate documentation](crate) for an example.
pub struct Broker<const D: usize> {
    schema: Schema,
    cluster: DrTreeCluster<D>,
    oracle: SubscriptionIndex<D>,
    subscriptions: BTreeMap<ProcessId, Rect<D>>,
    /// Exact member filters of subscription *sets* (§2.1); subscribers
    /// registered via `subscribe`/`subscribe_rect` are singleton sets
    /// and are not listed here.
    sets: BTreeMap<ProcessId, Vec<Rect<D>>>,
    stats: RoutingStats,
}

impl<const D: usize> Broker<D> {
    /// Creates a broker for `schema` over a fresh overlay.
    ///
    /// # Errors
    ///
    /// Returns [`BrokerError::SchemaDimensionMismatch`] when
    /// `schema.dims() != D`.
    pub fn new(schema: Schema, config: DrTreeConfig, seed: u64) -> Result<Self, BrokerError> {
        if schema.dims() != D {
            return Err(BrokerError::SchemaDimensionMismatch {
                expected: D,
                schema: schema.dims(),
            });
        }
        Ok(Self {
            schema,
            cluster: DrTreeCluster::new(config, seed),
            oracle: SubscriptionIndex::new(),
            subscriptions: BTreeMap::new(),
            sets: BTreeMap::new(),
            stats: RoutingStats::default(),
        })
    }

    /// The attribute schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of live subscriptions.
    pub fn len(&self) -> usize {
        self.subscriptions.len()
    }

    /// `true` when nobody is subscribed.
    pub fn is_empty(&self) -> bool {
        self.subscriptions.is_empty()
    }

    /// Registers a subscription written in the predicate language of
    /// §2.1 and waits for the subscriber to join the overlay.
    ///
    /// # Errors
    ///
    /// Returns [`BrokerError::Filter`] when the conjunction does not
    /// compile against the schema.
    pub fn subscribe(&mut self, filter: &FilterExpr) -> Result<ProcessId, BrokerError> {
        let rect: Rect<D> = filter.compile(&self.schema)?;
        Ok(self.subscribe_rect(rect))
    }

    /// Registers a subscription directly as a rectangle.
    pub fn subscribe_rect(&mut self, rect: Rect<D>) -> ProcessId {
        let id = self.cluster.add_subscriber_stable(rect);
        self.subscriptions.insert(id, rect);
        self.oracle.insert(id, rect);
        id
    }

    /// Registers one subscriber with a *set* of filters (§2.1: "each
    /// node in the system has associated a set of subscriptions").
    ///
    /// The overlay sees the set's minimum bounding rectangle — the
    /// natural generalization of the paper's single-filter model: no
    /// member event can be missed (the MBR contains every member), and
    /// the subscriber filters locally against the exact set. Delivery
    /// reports from [`Broker::publish`] account matching/false
    /// positives against the *set*, not the MBR.
    ///
    /// # Errors
    ///
    /// Returns [`BrokerError::Filter`] if the set is empty (reported as
    /// an unsatisfiable filter) or any member does not compile.
    pub fn subscribe_set(&mut self, filters: &[FilterExpr]) -> Result<ProcessId, BrokerError> {
        let members: Vec<Rect<D>> = filters
            .iter()
            .map(|f| f.compile(&self.schema))
            .collect::<Result<_, _>>()?;
        let Some(mbr) = Rect::union_all(members.iter()) else {
            return Err(BrokerError::Filter(FilterError::Unsatisfiable(
                "empty subscription set".into(),
            )));
        };
        let id = self.cluster.add_subscriber_stable(mbr);
        self.subscriptions.insert(id, mbr);
        for r in &members {
            self.oracle.insert(id, *r);
        }
        self.sets.insert(id, members);
        Ok(id)
    }

    /// Removes a subscription via a controlled departure (Fig. 9).
    ///
    /// # Errors
    ///
    /// Returns [`BrokerError::UnknownSubscriber`] when `id` is not live.
    pub fn unsubscribe(&mut self, id: ProcessId) -> Result<(), BrokerError> {
        let rect = self
            .subscriptions
            .remove(&id)
            .ok_or(BrokerError::UnknownSubscriber(id))?;
        match self.sets.remove(&id) {
            Some(members) => {
                for r in members {
                    self.oracle.remove(id, &r);
                }
            }
            None => {
                self.oracle.remove(id, &rect);
            }
        }
        self.cluster.controlled_leave(id);
        Ok(())
    }

    /// Replaces an existing subscription with a new filter expression.
    ///
    /// Filters are constant per process in the paper's model (§3.2), so
    /// an update is realized faithfully as a controlled departure
    /// followed by a fresh join; the subscriber receives a **new id**,
    /// which is returned.
    ///
    /// # Errors
    ///
    /// Returns [`BrokerError::UnknownSubscriber`] for dead subscribers
    /// and [`BrokerError::Filter`] for filters that do not compile.
    pub fn resubscribe(
        &mut self,
        id: ProcessId,
        filter: &FilterExpr,
    ) -> Result<ProcessId, BrokerError> {
        let rect: Rect<D> = filter.compile(&self.schema)?;
        self.unsubscribe(id)?;
        Ok(self.subscribe_rect(rect))
    }

    /// Publishes `event` from subscriber `publisher`, auditing the
    /// delivery against the oracle.
    ///
    /// # Errors
    ///
    /// Returns [`BrokerError::Filter`] for events that do not compile
    /// and [`BrokerError::UnknownSubscriber`] for dead publishers.
    pub fn publish(
        &mut self,
        publisher: ProcessId,
        event: &Event,
    ) -> Result<PublishReport, BrokerError> {
        let point: Point<D> = event.compile(&self.schema)?;
        self.publish_point(publisher, point)
    }

    /// Publishes a pre-compiled point.
    ///
    /// # Errors
    ///
    /// Returns [`BrokerError::UnknownSubscriber`] for dead publishers.
    pub fn publish_point(
        &mut self,
        publisher: ProcessId,
        point: Point<D>,
    ) -> Result<PublishReport, BrokerError> {
        if !self.subscriptions.contains_key(&publisher) {
            return Err(BrokerError::UnknownSubscriber(publisher));
        }
        self.oracle.ensure_built();
        let mut report = self.cluster.publish_from(publisher, point);
        if !self.sets.is_empty() {
            // Re-account against exact subscription sets: the overlay
            // classified deliveries by each node's MBR filter, but a
            // set-subscriber matches only if some member matches.
            self.reclassify(publisher, &point, &mut report);
        }
        debug_assert!(
            self.audit(publisher, &report, &point),
            "oracle disagrees with report"
        );
        self.stats.absorb(&report);
        Ok(report)
    }

    /// `true` iff subscriber `id` exactly matches `point` (any member of
    /// its set; the plain filter for singleton subscribers).
    fn matches_exactly(&self, id: ProcessId, point: &Point<D>) -> bool {
        match self.sets.get(&id) {
            Some(members) => members.iter().any(|r| r.contains_point(point)),
            None => self
                .subscriptions
                .get(&id)
                .is_some_and(|r| r.contains_point(point)),
        }
    }

    fn reclassify(&self, publisher: ProcessId, point: &Point<D>, report: &mut PublishReport) {
        // One packed-index probe instead of a scan over every
        // subscriber; set-subscribers appear once per matching member,
        // hence the dedup.
        let mut matching: Vec<ProcessId> = Vec::new();
        self.oracle.packed().for_each_containing(point, |&id, _| {
            if id != publisher {
                matching.push(id);
            }
        });
        matching.sort_unstable();
        matching.dedup();
        report.matching = matching;
        report.false_positives = report
            .receivers
            .iter()
            .copied()
            .filter(|&id| !self.matches_exactly(id, point))
            .collect();
        report.false_negatives = report
            .matching
            .iter()
            .copied()
            .filter(|id| !report.receivers.contains(id))
            .collect();
    }

    /// Cross-checks a report's matching set against the centralized
    /// R-tree oracle: the overlay's notion of "who should get this
    /// event" must equal the oracle's exact answer (publisher excluded).
    fn audit(&self, publisher: ProcessId, report: &PublishReport, point: &Point<D>) -> bool {
        let mut expected: Vec<ProcessId> = Vec::new();
        self.oracle.packed().for_each_containing(point, |&id, _| {
            if id != publisher {
                expected.push(id);
            }
        });
        expected.sort_unstable();
        expected.dedup(); // set-subscribers appear once per matching member
        let mut matching = report.matching.clone();
        matching.sort_unstable();
        expected == matching
    }

    /// Accumulated routing statistics over all publishes.
    pub fn stats(&self) -> &RoutingStats {
        &self.stats
    }

    /// Resets the accumulated statistics.
    pub fn reset_stats(&mut self) {
        self.stats = RoutingStats::default();
    }

    /// The underlying overlay (escape hatch for experiments).
    pub fn cluster(&self) -> &DrTreeCluster<D> {
        &self.cluster
    }

    /// Mutable access to the underlying overlay.
    pub fn cluster_mut(&mut self) -> &mut DrTreeCluster<D> {
        &mut self.cluster
    }

    /// Runs the overlay until it reaches a legitimate configuration.
    pub fn stabilize(&mut self, max_rounds: u64) -> Option<u64> {
        self.cluster.stabilize(max_rounds)
    }

    /// Subscription rectangles by subscriber id.
    pub fn subscriptions(&self) -> &BTreeMap<ProcessId, Rect<D>> {
        &self.subscriptions
    }
}

impl<const D: usize> fmt::Debug for Broker<D> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Broker")
            .field("subscriptions", &self.subscriptions.len())
            .field("stats", &self.stats)
            .finish()
    }
}
