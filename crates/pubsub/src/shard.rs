//! The sharded, parallel-publish subscription oracle.
//!
//! [`ShardedOracle`] partitions the live subscription set across `K`
//! independent [`PackedRTree`] shards, assigned by the Hilbert key of
//! each filter rectangle's center ([`drtree_spatial::hilbert::ShardMap`],
//! contiguous curve ranges split at count quantiles). Mutations route
//! into the owning shard's **delta layer** — staged inserts and
//! tombstones absorbed in place, with the shard's stab grid patched
//! cell-by-cell so batched probes stay exact between compactions —
//! and [`ShardedOracle::flush`] compacts only the shards whose delta
//! has outgrown the configured fraction
//! ([`ShardedOracle::set_delta_fraction`]; `0.0` reproduces the old
//! rebuild-per-flush behavior and serves as the churn bench's
//! baseline). Publishes fan the probe across shards — through the
//! scoped-thread pool of [`drtree_rtree::parallel`] for batches — and
//! merge visitor hits into reused buffers, so the steady-state
//! matching path performs no allocation.
//!
//! Compaction itself comes in two flavors ([`CompactionMode`]): the
//! **synchronous** path merges an over-threshold shard inline inside
//! `flush` (deterministic, single-core friendly, the measured
//! baseline), while the **concurrent** path freezes the shard's
//! `Arc`-shared packed core ([`drtree_rtree::FrozenShard`]) and hands
//! the merge plus stab-grid rebuild to a background
//! [`drtree_rtree::parallel::Job`]; `flush` becomes a two-phase
//! begin/finish protocol that kicks off merges, keeps serving exact
//! reads from the frozen state overlaid with a second-generation
//! delta, and swaps finished trees in for an
//! `O(mutations-during-merge)` fix-up instead of an `O(shard)` pause.
//! While shards are mid-compaction, imbalance is repaired by
//! *delta-aware* rebalancing: one Hilbert boundary shift between the
//! overloaded shard and its curve neighbor
//! ([`drtree_spatial::hilbert::ShardMap::with_boundary`]) instead of
//! a full redistribute that would void every in-flight merge.

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};
use std::sync::Arc;
use std::time::{Duration, Instant};

use drtree_core::ProcessId;
use drtree_rtree::bytes::{self, AlignedBytes};
use drtree_rtree::{
    parallel, DeltaRemoval, EntryUpdate, FrozenShard, PackedRTree, SnapshotError, SnapshotOptions,
};
use drtree_spatial::hilbert::{GridMapper, ShardMap};
use drtree_spatial::{Point, Rect};

/// Magic number of a serialized [`ShardedOracle`] (`"DRTO"`, little
/// endian), leading the 64-byte oracle header.
const ORACLE_MAGIC: u32 = u32::from_le_bytes(*b"DRTO");

/// Version of the oracle snapshot wire format. Readers reject any
/// other value outright — the format is versioned, not negotiated.
const ORACLE_VERSION: u16 = 1;

/// Header flag: the snapshot carries a [`ShardMap`] (world rectangle
/// plus `K − 1` boundary keys). Absent only when the oracle was
/// snapshotted before its first flush established a map.
const ORACLE_FLAG_HAS_MAP: u16 = 1;

/// Byte length of the oracle snapshot header.
const ORACLE_HEADER_LEN: usize = 64;

/// Rebalance when one shard holds more than
/// `IMBALANCE_FACTOR × ideal + IMBALANCE_SLACK` entries. The slack
/// keeps small oracles (where ±a few entries swamp any ratio) from
/// rebalancing on noise.
const IMBALANCE_FACTOR: usize = 4;
const IMBALANCE_SLACK: usize = 64;

/// An entry is listed in at most this many stab-grid cells; wider
/// rectangles (unbounded filters, world-spanning subscriptions) go to
/// the grid's overflow list, which every probe scans linearly.
const MAX_CELL_SPAN: usize = 256;

/// Tag bit of a per-shard mobility hint: set when the memoized
/// position is a staged-buffer index rather than a packed slot. Slots
/// and staged indexes both stay far below 2^31 (the tree itself caps
/// at 2^32 entries and shards split well before that), so the top bit
/// is free to carry the tier.
const STAGED_HINT: u32 = 1 << 31;

/// Fibonacci-multiply hasher for the oracle's hot interior maps (grid
/// patch lists keyed by cell index, per-shard slot hints keyed by
/// [`ProcessId`]). These maps sit on the per-move mobility path where
/// SipHash was a measurable share of the cost, hold no
/// attacker-controlled keys, and never outlive their shard — the
/// classic case for a trivially mixed hash.
#[derive(Debug, Default, Clone, Copy)]
struct FastHasher(u64);

impl Hasher for FastHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.write_u64(u64::from(b));
        }
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.0 = (self.0 ^ v).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        self.0 ^= self.0 >> 29;
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.write_u64(u64::from(v));
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.write_u64(v as u64);
    }
}

/// The [`std::hash::BuildHasher`] plugging [`FastHasher`] into
/// `HashMap`.
type FastState = BuildHasherDefault<FastHasher>;

/// Per-shard scratch of one batched matching pass: the hit stream in
/// sorted-probe order and the per-sorted-probe hit counts that
/// delimit it.
#[derive(Debug, Default, Clone)]
struct ShardBatchBuf {
    hits: Vec<ProcessId>,
    counts: Vec<u32>,
}

/// A uniform stab grid over one shard's entries — the batched
/// pipeline's refinement structure.
///
/// Cells partition the shard's finite world, ~1 live entry per cell;
/// each cell lists (CSR layout) the *slots* of the packed tree whose
/// rectangle overlaps it. A point stab is then one cell lookup plus a
/// handful of exact rectangle tests — an order of magnitude fewer
/// comparisons than a root-to-leaf tree descent, which is what lets a
/// batched publish beat per-event descents well past 2×. The grid is
/// rebuilt with its shard on flush (same laziness, cost accounted to
/// the same rebuild columns) and answers *exactly* like the tree:
/// candidate cells over-approximate (clamping is conservative), the
/// per-candidate containment test is exact.
///
/// Probes outside the world clamp to rim cells, which is still exact:
/// an entry reaching beyond the world rim is clamped into those same
/// rim cells (or the overflow list), so no candidate is missed and
/// false candidates fail the exact test.
///
/// Between compactions the grid stays exact through **incremental cell
/// patching**: entries staged into the shard's delta layer are listed
/// in a sparse per-cell patch map (`staged_cells`, keyed by the same
/// row-major cell index the CSR arrays use) consulted by every stab
/// alongside the CSR lists, and tombstoned slots are filtered at
/// emission time. The patch map is bounded by the delta layer itself
/// (the compaction fraction), so the CSR arrays are only ever rebuilt
/// wholesale, together with their shard's packed levels.
#[derive(Debug, Clone)]
struct StabGrid<const D: usize> {
    lo: [f64; D],
    /// Cells per unit length per dimension (0.0 collapses the axis to
    /// a single cell).
    inv_cell: [f64; D],
    /// Cells per dimension (row-major flattening).
    dims: [u32; D],
    /// CSR: `refs[offsets[c]..offsets[c+1]]` are the slots overlapping
    /// cell `c`.
    offsets: Vec<u32>,
    refs: Vec<u32>,
    /// Slots spanning more than [`MAX_CELL_SPAN`] cells.
    overflow: Vec<u32>,
    /// Patch layer: staging-buffer indexes per cell, for entries staged
    /// since the CSR arrays were built. Sparse — the delta layer is
    /// bounded by the compaction fraction.
    staged_cells: HashMap<usize, Vec<u32>, FastState>,
    /// Staged indexes spanning more than [`MAX_CELL_SPAN`] cells, or
    /// staged before any grid geometry existed.
    staged_overflow: Vec<u32>,
    /// Moved-slot patch layer: a bitmap over packed slots whose
    /// rectangle moved in place since the CSR arrays were built
    /// (lazily allocated at the first move). A flagged slot is skipped
    /// by the CSR and overflow scans — its stale cell refs stay in
    /// place but never emit — and is found through `moved_cells` /
    /// `moved_overflow` instead. Each flagged slot lives in exactly
    /// one tier, so no probe can emit it twice (the batched merge
    /// skips deduplication whenever no id holds two entries, so
    /// double emission would be an exactness bug, not a slowdown).
    moved: Vec<u64>,
    /// Number of flagged slots — the fast "clean grid" test.
    moved_count: usize,
    /// Current cell lists of the flagged slots (same routing rule as
    /// `staged_cells`).
    moved_cells: HashMap<usize, Vec<u32>, FastState>,
    /// Flagged slots whose current rectangle spans too many cells, or
    /// that moved before any grid geometry existed.
    moved_overflow: Vec<u32>,
}

impl<const D: usize> Default for StabGrid<D> {
    fn default() -> Self {
        Self {
            lo: [0.0; D],
            inv_cell: [0.0; D],
            dims: [1; D],
            offsets: Vec::new(),
            refs: Vec::new(),
            overflow: Vec::new(),
            staged_cells: HashMap::default(),
            staged_overflow: Vec::new(),
            moved: Vec::new(),
            moved_count: 0,
            moved_cells: HashMap::default(),
            moved_overflow: Vec::new(),
        }
    }
}

impl<const D: usize> StabGrid<D> {
    /// Builds the grid for `packed`'s live entries. Tombstoned slots
    /// are left out of the CSR lists; entries staged *after* the build
    /// enter through [`StabGrid::stage`], so callers building over a
    /// tree that already carries staged entries must patch them in
    /// themselves (the oracle always compacts first).
    fn build(packed: &PackedRTree<ProcessId, D>) -> Self {
        debug_assert_eq!(
            packed.staged_len(),
            0,
            "grid build does not index pre-existing staged entries"
        );
        Self::build_csr(packed)
    }

    /// [`StabGrid::build`] over a tree that already carries a delta
    /// layer: the CSR arrays cover the packed slots, then every live
    /// staged entry is patched into the cell lists — the restore
    /// path's builder, where a mid-churn snapshot legitimately wakes
    /// up with staged entries.
    fn build_with_staged(packed: &PackedRTree<ProcessId, D>) -> Self {
        let mut grid = Self::build_csr(packed);
        for (i, rect) in packed.staged_rects().iter().enumerate() {
            if packed.is_staged_live(i) {
                grid.stage(i as u32, rect);
            }
        }
        grid
    }

    /// The CSR build itself, covering packed slots only.
    fn build_csr(packed: &PackedRTree<ProcessId, D>) -> Self {
        let n = packed.len();
        if n == 0 {
            return Self::default();
        }
        let Some(world) = GridMapper::world_of(packed.entries().map(|(_, _, r)| r)) else {
            // No finite coordinate anywhere: every entry is a
            // world-spanning filter; scan them all per probe.
            return Self {
                overflow: packed.entries().map(|(slot, _, _)| slot as u32).collect(),
                ..Self::default()
            };
        };
        // ~1 entry per cell: n^(1/D) cells per axis, so total cells
        // track n for any dimensionality.
        let per_dim = ((n as f64).powf(1.0 / D as f64).ceil() as u32).clamp(1, 4096);
        let mut lo = [0.0; D];
        let mut inv_cell = [0.0; D];
        let mut dims = [1u32; D];
        for d in 0..D {
            lo[d] = world.lo(d);
            let extent = world.hi(d) - world.lo(d);
            if extent > 0.0 {
                dims[d] = per_dim;
                inv_cell[d] = f64::from(per_dim) / extent;
            }
        }
        let cells: usize = dims.iter().map(|&c| c as usize).product();
        let mut grid = Self {
            lo,
            inv_cell,
            dims,
            offsets: vec![0u32; cells + 1],
            ..Self::default()
        };
        let dims = grid.dims;
        // Two CSR passes: count cell populations, then fill. Spans
        // carry their true slot index — `packed.entries()` skips
        // tombstoned slots, so live slots are not necessarily dense.
        let mut spans: Vec<(u32, [u32; D], [u32; D])> = Vec::with_capacity(n);
        for (slot, _, rect) in packed.entries() {
            let (cell_lo, cell_hi) = grid.cell_range(rect);
            let span: usize = (0..D)
                .map(|d| (cell_hi[d] - cell_lo[d] + 1) as usize)
                .product();
            if span > MAX_CELL_SPAN {
                grid.overflow.push(slot as u32);
                continue;
            }
            spans.push((slot as u32, cell_lo, cell_hi));
            for_each_cell(dims, cell_lo, cell_hi, |c| grid.offsets[c + 1] += 1);
        }
        for i in 1..grid.offsets.len() {
            grid.offsets[i] += grid.offsets[i - 1];
        }
        let total = *grid.offsets.last().expect("offsets non-empty") as usize;
        assert!(total <= u32::MAX as usize, "stab grid ref count overflow");
        grid.refs.resize(total, 0);
        // Fill pass: `offsets[c]` serves as the running write cursor
        // for cell `c`; after the pass it has advanced to exactly the
        // next cell's start, so shifting by one slot restores start
        // offsets (standard CSR trick).
        for &(slot, cell_lo, cell_hi) in &spans {
            let (offsets, refs) = (&mut grid.offsets, &mut grid.refs);
            for_each_cell(dims, cell_lo, cell_hi, |c| {
                refs[offsets[c] as usize] = slot;
                offsets[c] += 1;
            });
        }
        for c in (1..grid.offsets.len()).rev() {
            grid.offsets[c] = grid.offsets[c - 1];
        }
        grid.offsets[0] = 0;
        grid
    }

    /// The clamped cell coordinate of `x` along dimension `d`;
    /// non-finite coordinates land on the rim (`-inf → 0`,
    /// `+inf/NaN → last`), matching probe-side clamping.
    fn cell_coord(&self, d: usize, x: f64) -> u32 {
        let last = self.dims[d] - 1;
        if x == f64::NEG_INFINITY {
            return 0;
        }
        if !x.is_finite() {
            return last;
        }
        let c = (x - self.lo[d]) * self.inv_cell[d];
        (c.clamp(0.0, f64::from(last))) as u32
    }

    /// The inclusive cell range covered by `rect` (clamped).
    fn cell_range(&self, rect: &Rect<D>) -> ([u32; D], [u32; D]) {
        let mut cell_lo = [0u32; D];
        let mut cell_hi = [0u32; D];
        for d in 0..D {
            cell_lo[d] = self.cell_coord(d, rect.lo(d));
            cell_hi[d] = self.cell_coord(d, rect.hi(d)).max(cell_lo[d]);
        }
        (cell_lo, cell_hi)
    }

    /// Applies `visit` to every patch list `rect` belongs to: the
    /// staged-overflow list when the grid has no geometry (never built)
    /// or the rectangle spans too many cells, the per-cell lists of its
    /// clamped cell range otherwise — the routing rule shared by
    /// [`StabGrid::stage`], [`StabGrid::unstage`], and
    /// [`StabGrid::restage_moved`], mirroring the CSR build's own.
    fn with_patch_lists(&mut self, rect: &Rect<D>, mut visit: impl FnMut(&mut Vec<u32>)) {
        if self.offsets.is_empty() {
            visit(&mut self.staged_overflow);
            return;
        }
        let (cell_lo, cell_hi) = self.cell_range(rect);
        let span: usize = (0..D)
            .map(|d| (cell_hi[d] - cell_lo[d] + 1) as usize)
            .product();
        if span > MAX_CELL_SPAN {
            visit(&mut self.staged_overflow);
            return;
        }
        let dims = self.dims;
        let cells = &mut self.staged_cells;
        for_each_cell(dims, cell_lo, cell_hi, |c| {
            visit(cells.entry(c).or_default())
        });
    }

    /// Patches staging-buffer index `idx` (rectangle `rect`) into the
    /// grid so stabs see it immediately — the incremental-maintenance
    /// counterpart of a CSR rebuild.
    fn stage(&mut self, idx: u32, rect: &Rect<D>) {
        self.with_patch_lists(rect, |list| list.push(idx));
    }

    /// Removes staging index `idx` (rectangle `rect`) from the patch
    /// layer — the inverse of [`StabGrid::stage`].
    fn unstage(&mut self, idx: u32, rect: &Rect<D>) {
        self.with_patch_lists(rect, |list| {
            if let Some(pos) = list.iter().position(|&x| x == idx) {
                list.swap_remove(pos);
            }
        });
    }

    /// Re-points patch references from staging index `from` to `to`
    /// after the staging buffer swap-removed `to` (moving the entry
    /// with rectangle `rect` down from `from`).
    fn restage_moved(&mut self, from: u32, to: u32, rect: &Rect<D>) {
        self.with_patch_lists(rect, |list| {
            for x in list.iter_mut() {
                if *x == from {
                    *x = to;
                }
            }
        });
    }

    /// `true` when packed slot `slot` carries the moved flag — its
    /// rectangle is indexed by the moved-slot lists, not the CSR
    /// arrays.
    #[inline]
    fn is_moved(&self, slot: usize) -> bool {
        !self.moved.is_empty() && self.moved[slot >> 6] & (1u64 << (slot & 63)) != 0
    }

    /// [`StabGrid::with_patch_lists`] over the moved-slot lists.
    fn with_moved_lists(&mut self, rect: &Rect<D>, mut visit: impl FnMut(&mut Vec<u32>)) {
        if self.offsets.is_empty() {
            visit(&mut self.moved_overflow);
            return;
        }
        let (cell_lo, cell_hi) = self.cell_range(rect);
        let span: usize = (0..D)
            .map(|d| (cell_hi[d] - cell_lo[d] + 1) as usize)
            .product();
        if span > MAX_CELL_SPAN {
            visit(&mut self.moved_overflow);
            return;
        }
        let dims = self.dims;
        let cells = &mut self.moved_cells;
        for_each_cell(dims, cell_lo, cell_hi, |c| {
            visit(cells.entry(c).or_default())
        });
    }

    /// Re-points packed slot `slot` from rectangle `old` to `new`
    /// after an in-place move. The first move flags the slot — its
    /// stale CSR refs stay physically in place but the flag suppresses
    /// them — and lists it under its new rectangle; repeat moves
    /// rewrite the moved lists only. `packed_len` sizes the lazy
    /// bitmap (stable between rebuilds: compaction rebuilds the grid
    /// wholesale, clearing all moved state).
    fn move_slot(&mut self, slot: u32, old: &Rect<D>, new: &Rect<D>, packed_len: usize) {
        if self.offsets.is_empty() {
            // No grid geometry: the slot sits in a linearly scanned
            // tier either way (CSR overflow unflagged, moved overflow
            // flagged) and both apply the exact rectangle test against
            // the packed tree's current rect — nothing to patch.
            return;
        }
        // Small moves usually keep the rectangle inside the exact same
        // cell range, in which case the slot's existing refs — CSR refs
        // for a never-moved slot (whose `old` *is* its build-time
        // rectangle), moved lists otherwise — already route every probe
        // correctly and the exact test reads the updated rect. Skipping
        // the rewrite makes the steady jitter of a mobile subscription
        // nearly free.
        let (old_lo, old_hi) = self.cell_range(old);
        let (new_lo, new_hi) = self.cell_range(new);
        let old_span: usize = (0..D)
            .map(|d| (old_hi[d] - old_lo[d] + 1) as usize)
            .product();
        let new_span: usize = (0..D)
            .map(|d| (new_hi[d] - new_lo[d] + 1) as usize)
            .product();
        let old_over = old_span > MAX_CELL_SPAN;
        let new_over = new_span > MAX_CELL_SPAN;
        if old_over == new_over && (old_over || (old_lo == new_lo && old_hi == new_hi)) {
            return;
        }
        if self.is_moved(slot as usize) {
            if !old_over && !new_over {
                // Repeat move staying on the cell grid: the moved
                // lists hold the slot exactly over its old range, so
                // only the symmetric difference needs touching — a
                // thin strip when the shift is a fraction of a cell.
                let dims = self.dims;
                let cells = &mut self.moved_cells;
                for_each_cell_excluding(dims, old_lo, old_hi, new_lo, new_hi, |c| {
                    if let Some(list) = cells.get_mut(&c) {
                        if let Some(pos) = list.iter().position(|&x| x == slot) {
                            list.swap_remove(pos);
                        }
                    }
                });
                for_each_cell_excluding(dims, new_lo, new_hi, old_lo, old_hi, |c| {
                    cells.entry(c).or_default().push(slot)
                });
                return;
            }
            // Overflow transition: wholesale re-listing across tiers.
            self.with_moved_lists(old, |list| {
                if let Some(pos) = list.iter().position(|&x| x == slot) {
                    list.swap_remove(pos);
                }
            });
        } else {
            if self.moved.is_empty() {
                self.moved = vec![0u64; packed_len.div_ceil(64)];
            }
            self.moved[slot as usize >> 6] |= 1u64 << (slot as usize & 63);
            self.moved_count += 1;
        }
        self.with_moved_lists(new, |list| list.push(slot));
    }

    /// Emits the id of every live entry containing `point`: overflow
    /// scan, one exact-tested cell list, the delta tier (staged
    /// overflow plus the probe cell's patch list), and the moved-slot
    /// tier (slots updated in place since the CSR build); tombstoned
    /// slots are filtered at emission time.
    #[inline]
    fn stab(
        &self,
        packed: &PackedRTree<ProcessId, D>,
        point: &Point<D>,
        mut emit: impl FnMut(ProcessId),
    ) {
        let keys = packed.keys();
        let rects = packed.rects();
        let check_live = packed.tombstone_count() > 0;
        let check_moved = self.moved_count > 0;
        for &slot in &self.overflow {
            if (check_moved && self.is_moved(slot as usize))
                || (check_live && !packed.is_live(slot as usize))
            {
                continue;
            }
            if rects[slot as usize].contains_point_branchless(point) {
                emit(keys[slot as usize]);
            }
        }
        if check_moved {
            // Moved-slot overflow tier: flagged slots whose current
            // rectangle spans too many cells (or moved before the grid
            // had geometry). Exact test plus liveness, like overflow.
            for &slot in &self.moved_overflow {
                if rects[slot as usize].contains_point_branchless(point)
                    && (!check_live || packed.is_live(slot as usize))
                {
                    emit(keys[slot as usize]);
                }
            }
        }
        let staged_keys = packed.staged_keys();
        let staged_rects = packed.staged_rects();
        for &i in &self.staged_overflow {
            if staged_rects[i as usize].contains_point_branchless(point) {
                emit(staged_keys[i as usize]);
            }
        }
        if self.offsets.is_empty() {
            return;
        }
        let mut idx = 0usize;
        for d in 0..D {
            idx = idx * self.dims[d] as usize + self.cell_coord(d, point.coord(d)) as usize;
        }
        if !self.staged_cells.is_empty() {
            if let Some(list) = self.staged_cells.get(&idx) {
                for &i in list {
                    if staged_rects[i as usize].contains_point_branchless(point) {
                        emit(staged_keys[i as usize]);
                    }
                }
            }
        }
        if !self.moved_cells.is_empty() {
            if let Some(list) = self.moved_cells.get(&idx) {
                for &slot in list {
                    if rects[slot as usize].contains_point_branchless(point)
                        && (!check_live || packed.is_live(slot as usize))
                    {
                        emit(keys[slot as usize]);
                    }
                }
            }
        }
        let lo = self.offsets[idx] as usize;
        let hi = self.offsets[idx + 1] as usize;
        // Chunked bitmask scan (the packed tree's trick): with cell
        // hit rates around 50%, a per-candidate `if` is a mispredict
        // machine — building the mask branchlessly and popping set
        // bits keeps the pipeline full. The tombstone and moved-slot
        // filters join the mask only when tombstones / moves exist at
        // all, so the common clean path pays nothing for them.
        for chunk in self.refs[lo..hi].chunks(32) {
            let mut mask = 0u32;
            if check_moved {
                for (i, &slot) in chunk.iter().enumerate() {
                    let hit = rects[slot as usize].contains_point_branchless(point)
                        & !self.is_moved(slot as usize)
                        & (!check_live || packed.is_live(slot as usize));
                    mask |= u32::from(hit) << i;
                }
            } else if check_live {
                for (i, &slot) in chunk.iter().enumerate() {
                    let hit = rects[slot as usize].contains_point_branchless(point)
                        & packed.is_live(slot as usize);
                    mask |= u32::from(hit) << i;
                }
            } else {
                for (i, &slot) in chunk.iter().enumerate() {
                    mask |= u32::from(rects[slot as usize].contains_point_branchless(point)) << i;
                }
            }
            while mask != 0 {
                emit(keys[chunk[mask.trailing_zeros() as usize] as usize]);
                mask &= mask - 1;
            }
        }
    }
}

/// Visits every row-major cell index in the inclusive `D`-dimensional
/// range (odometer over the minor-most dimension last), for the CSR
/// build passes of [`StabGrid`].
/// [`for_each_cell`] restricted to cells of `[cell_lo, cell_hi]` that
/// fall *outside* `[skip_lo, skip_hi]` — the two one-sided halves of a
/// symmetric-difference traversal for incremental moved-slot rewrites.
fn for_each_cell_excluding<const D: usize>(
    dims: [u32; D],
    cell_lo: [u32; D],
    cell_hi: [u32; D],
    skip_lo: [u32; D],
    skip_hi: [u32; D],
    mut visit: impl FnMut(usize),
) {
    let mut cur = cell_lo;
    loop {
        if (0..D).any(|d| cur[d] < skip_lo[d] || cur[d] > skip_hi[d]) {
            let mut idx = 0usize;
            for d in 0..D {
                idx = idx * dims[d] as usize + cur[d] as usize;
            }
            visit(idx);
        }
        let mut d = D;
        let mut done = true;
        while d > 0 {
            d -= 1;
            if cur[d] < cell_hi[d] {
                cur[d] += 1;
                done = false;
                break;
            }
            cur[d] = cell_lo[d];
        }
        if done {
            break;
        }
    }
}

fn for_each_cell<const D: usize>(
    dims: [u32; D],
    cell_lo: [u32; D],
    cell_hi: [u32; D],
    mut visit: impl FnMut(usize),
) {
    let mut cur = cell_lo;
    loop {
        let mut idx = 0usize;
        for d in 0..D {
            idx = idx * dims[d] as usize + cur[d] as usize;
        }
        visit(idx);
        let mut d = D;
        let mut done = true;
        while d > 0 {
            d -= 1;
            if cur[d] < cell_hi[d] {
                cur[d] += 1;
                done = false;
                break;
            }
            cur[d] = cell_lo[d];
        }
        if done {
            break;
        }
    }
}

/// What a concurrent-compaction worker hands back: the merged packed
/// tree, the stab grid rebuilt over it, and how long the merge took
/// (off the publish path — reported for the pause accounting).
#[derive(Debug)]
struct MergedShard<const D: usize> {
    tree: PackedRTree<ProcessId, D>,
    grid: StabGrid<D>,
    merge_ns: u64,
}

/// One shard: the delta-bearing packed tree holding its slice of the
/// subscription set (live entries = packed slots − tombstones +
/// staged), the incrementally patched stab grid accelerating batched
/// probes, and — while a concurrent compaction is in flight — the
/// background job merging the shard's frozen snapshot. The packed
/// tree *is* the entry store — there is no separate entry list to
/// clone on rebuild.
#[derive(Debug)]
struct Shard<const D: usize> {
    packed: PackedRTree<ProcessId, D>,
    grid: StabGrid<D>,
    job: Option<parallel::Job<MergedShard<D>>>,
    /// Last known position per mover id — the mobility fast path's
    /// memo: a packed slot, or a staged-buffer index tagged with
    /// [`STAGED_HINT`]. A hint is only ever *suggested*:
    /// [`PackedRTree::update_slot`] / [`PackedRTree::update_staged`]
    /// re-verify `(id, rect)` at the position before acting, so a
    /// stale hint (slots reshuffled by a compaction or redistribute,
    /// staged buffer swap-removed) degrades to a regular lookup, never
    /// a wrong move. Cleared whenever the shard is rebuilt wholesale,
    /// purely to skip doomed probes.
    hints: HashMap<ProcessId, u32, FastState>,
}

impl<const D: usize> Shard<D> {
    fn new(delta_fraction: f64) -> Self {
        let mut packed = PackedRTree::bulk_load(Vec::new());
        packed.set_delta_fraction(delta_fraction);
        Self {
            packed,
            grid: StabGrid::default(),
            job: None,
            hints: HashMap::default(),
        }
    }

    /// Completes this shard's two-phase compaction: swaps the merged
    /// tree and worker-built grid in, then re-stages the surviving
    /// second-generation delta entries (re-indexed from zero by the
    /// install) into the fresh grid's patch layer. Everything here is
    /// `O(mutations since the freeze)` — the publish-path cost of a
    /// concurrent compaction.
    fn install(&mut self, merged: MergedShard<D>) -> drtree_rtree::DeltaCompaction {
        let stats = self.packed.install(merged.tree);
        self.grid = merged.grid;
        self.hints.clear();
        for (i, rect) in self.packed.staged_rects().iter().enumerate() {
            self.grid.stage(i as u32, rect);
        }
        stats
    }

    /// Freezes this shard and hands the merge plus grid rebuild to a
    /// background job.
    fn begin_compaction(&mut self) {
        debug_assert!(self.job.is_none(), "compaction already in flight");
        let frozen = self.packed.freeze();
        self.job = Some(parallel::Job::spawn(move || {
            let t0 = Instant::now();
            let tree = frozen.merge();
            let grid = StabGrid::build(&tree);
            MergedShard {
                tree,
                grid,
                merge_ns: t0.elapsed().as_nanos() as u64,
            }
        }));
    }
}

/// How [`ShardedOracle::flush`] realizes over-threshold compactions.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum CompactionMode {
    /// Merge inline inside `flush` — the deterministic single-core
    /// path, and the measured baseline of the churn bench. Every
    /// over-threshold shard stalls the flush for a full Hilbert
    /// re-sort.
    #[default]
    Synchronous,
    /// Two-phase: `flush` freezes over-threshold shards and hands the
    /// merges to background [`drtree_rtree::parallel::Job`]s, then
    /// swaps finished trees in on a later flush (or
    /// [`ShardedOracle::finish_compactions`]). The publish path pays
    /// only the freeze and the `O(mutations-during-merge)` install
    /// fix-up — never the merge itself.
    Concurrent,
}

/// What one [`ShardedOracle::flush`] call did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OracleFlush {
    /// Shards whose packed tree was swapped for a fresh bulk-load
    /// (inline compactions, installed concurrent merges, rebalance
    /// redistributions).
    pub rebuilt_shards: usize,
    /// Shards whose delta layer was folded into the packed levels
    /// (inline, or installed from a finished background merge).
    pub compacted_shards: usize,
    /// Concurrent compactions kicked off by this flush (frozen
    /// snapshots handed to background workers).
    pub begun_compactions: usize,
    /// Staged entries absorbed into packed levels across all shards.
    pub staged_absorbed: usize,
    /// Tombstoned slots reclaimed across all shards.
    pub tombstones_reclaimed: usize,
    /// Whether entries were fully redistributed (world growth, or
    /// imbalance with no compaction in flight).
    pub rebalanced: bool,
    /// Whether imbalance was repaired by a single Hilbert boundary
    /// shift between the overloaded shard and its curve neighbor
    /// (delta-aware rebalancing: only the entries crossing the shifted
    /// boundary migrate between the pair's delta layers — no shard
    /// rebuilds, and every in-flight compaction is left undisturbed).
    pub split_rebalanced: bool,
    /// Entries handed across the shifted boundary by a split
    /// rebalance: tombstoned or unstaged out of their old shard and
    /// staged into the delta layer of the new one, with both packed
    /// cores left in place.
    pub migrated_entries: usize,
    /// Moves absorbed by their owning shard as delta patches since the
    /// previous flush — in-place packed-slot updates and staged
    /// rewrites, no shard crossing ([`ShardedOracle::move_entry`]).
    pub moved_in_place: usize,
    /// Moves whose new rectangle crossed a Hilbert shard boundary
    /// since the previous flush: the entry was removed from its old
    /// shard and re-staged (re-keyed) into the gainer's delta layer.
    pub rekeyed: usize,
    /// Leased entries evicted by [`ShardedOracle::expire_leases`]
    /// since the previous flush.
    pub leases_expired: usize,
    /// Publish-path stall: nanoseconds this flush spent freezing,
    /// swapping and fixing up — everything *except* inline merge work.
    pub swap_ns: u64,
    /// Nanoseconds spent merging delta layers into fresh bulk-loads,
    /// wherever the merge ran (inline here in
    /// [`CompactionMode::Synchronous`]; on background workers, summed
    /// at install, in [`CompactionMode::Concurrent`]).
    pub compact_ns: u64,
    /// Wall-clock time of the flush call itself — the whole
    /// publish-path pause, inline merges included.
    pub elapsed: Duration,
}

/// Per-probe match sets of one batched publish, in one flat arena.
///
/// `matches(i)` is the sorted, deduplicated set of subscribers whose
/// filter contains probe `i`. The arena is reused across calls to
/// [`ShardedOracle::match_batch_into`]; holding one per pipeline stage
/// keeps batched matching allocation-free after warm-up.
#[derive(Debug, Clone, Default)]
pub struct BatchMatches {
    /// Probe `i`'s matches live at
    /// `hits[spans[i].0..spans[i].0 + spans[i].1]`. (The arena is laid
    /// out in curve order, not probe order, so slices are addressed
    /// explicitly rather than by prefix offsets; one tuple per probe
    /// keeps the scattered merge write to a single location.)
    spans: Vec<(u32, u32)>,
    hits: Vec<ProcessId>,
}

impl BatchMatches {
    /// An empty arena (zero probes).
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of probes answered by the last fill.
    pub fn probes(&self) -> usize {
        self.spans.len()
    }

    /// The sorted, deduplicated match set of probe `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.probes()`.
    pub fn matches(&self, i: usize) -> &[ProcessId] {
        let (start, len) = self.spans[i];
        &self.hits[start as usize..(start + len) as usize]
    }

    /// Total hits across all probes (sum of span lengths — the arena
    /// itself may hold dead gaps and staging copies).
    pub fn total_hits(&self) -> usize {
        self.spans.iter().map(|&(_, len)| len as usize).sum()
    }
}

/// A subscription oracle sharded across `K` packed R-trees for
/// parallel and batched publishes.
///
/// # Sharding regime
///
/// * **Assignment** — a subscription lives in the shard owning the
///   Hilbert key of its rectangle's center. Assignment is a pure
///   function of the rectangle and the current [`ShardMap`], so
///   removal needs no id→shard bookkeeping.
/// * **Incremental maintenance** — `insert` stages the entry into the
///   owning shard's delta layer (and patches the shard's stab grid
///   cell-by-cell); `remove` unstages or tombstones in place. No shard
///   is marked dirty by small deltas: the next
///   [`flush`](ShardedOracle::flush) (or query, which flushes
///   implicitly) compacts *only* shards whose delta exceeds the
///   configured fraction
///   ([`set_delta_fraction`](ShardedOracle::set_delta_fraction);
///   `0.0` restores rebuild-per-flush, the churn bench's baseline
///   mode).
/// * **Rebalancing** — when an entry lands outside the mapped world,
///   the next flush recomputes the world, re-splits the key population
///   at its count quantiles, and redistributes (rebuilding everything
///   once). When only *imbalance* needs repair (one shard past
///   `4× ideal + 64` entries), the flush is delta-aware instead: it
///   shifts the single Hilbert boundary between the overloaded shard
///   and its lighter curve neighbor to their combined count median and
///   migrates only the crossing entries by delta handoff (tombstone
///   out, stage in) — no shard rebuilds, and every other shard —
///   compacting or not — is untouched.
/// * **Correctness under interleaving** — any assignment whatsoever
///   yields exact matching (every shard is probed), so the shard map
///   only affects performance; property tests pin the hit-sets to the
///   unsharded [`PackedRTree`] under random interleaved
///   subscribe/unsubscribe/publish sequences.
///
/// # Single vs batched probes
///
/// [`match_point_into`](ShardedOracle::match_point_into) answers one
/// probe by descending each shard's packed tree inline: a single
/// probe cannot amortize a thread spawn (the fan degrades to the
/// calling thread) and needs no auxiliary structure.
/// [`match_batch_into`](ShardedOracle::match_batch_into) is the
/// batched pipeline: probes are sorted along a space-filling curve,
/// fanned across shards (one scoped worker per shard chunk via
/// [`drtree_rtree::parallel::fan`] when threads are available, a
/// fused merge-free pass otherwise), and answered against each
/// shard's flush-built stab grid (`StabGrid` in the source) — one
/// cell lookup and a few exact rectangle tests per probe instead of a
/// root-to-leaf descent.
/// Batching amortizes the sort, keeps every structure cache-resident
/// across curve-adjacent probes, and collapses result assembly into
/// reused arenas — that is what makes it ≥ 2× faster per event than
/// single-probe matching even on one core, before shard parallelism
/// multiplies it further.
///
/// # Example
///
/// ```
/// use drtree_core::ProcessId;
/// use drtree_pubsub::ShardedOracle;
/// use drtree_spatial::{Point, Rect};
///
/// let mut oracle: ShardedOracle<2> = ShardedOracle::new(4);
/// for i in 0..100u64 {
///     let x = (i % 10) as f64 * 10.0;
///     let y = (i / 10) as f64 * 10.0;
///     oracle.insert(ProcessId::from_raw(i), Rect::new([x, y], [x + 9.0, y + 9.0]));
/// }
/// let flush = oracle.flush();
/// assert!(flush.rebuilt_shards > 0);
///
/// let mut hits = Vec::new();
/// oracle.match_point_into(&Point::new([5.0, 5.0]), &mut hits);
/// assert_eq!(hits, vec![ProcessId::from_raw(0)]);
///
/// let mut batch = drtree_pubsub::BatchMatches::new();
/// oracle.match_batch_into(&[Point::new([5.0, 5.0]), Point::new([95.0, 95.0])], &mut batch);
/// assert_eq!(batch.matches(0), &[ProcessId::from_raw(0)]);
/// assert_eq!(batch.matches(1), &[ProcessId::from_raw(99)]);
/// ```
#[derive(Debug)]
pub struct ShardedOracle<const D: usize> {
    shards: Vec<Shard<D>>,
    map: Option<ShardMap<D>>,
    len: usize,
    threads: usize,
    /// An insert landed outside the mapped world; rebalance next flush.
    stale_world: bool,
    /// The derived read-side structures (per-shard stab grids, the
    /// id-count dedup table) have not been built yet — the state a
    /// freshly restored oracle wakes up in. The first flush rebuilds
    /// them; until then single-point matching works off the packed
    /// trees alone, so restore itself stays `O(header)` per shard.
    derived_stale: bool,
    /// Compaction trigger forwarded to every shard's packed tree.
    delta_fraction: f64,
    /// Whether over-threshold compactions run inline or on workers.
    mode: CompactionMode,
    rebuilds: u64,
    rebalances: u64,
    split_rebalances: u64,
    compactions: u64,
    staged_absorbed: u64,
    tombstones_reclaimed: u64,
    moves_in_place: u64,
    rekeys: u64,
    leases_expired: u64,
    /// Move / lease work since the last flush, drained into the next
    /// [`OracleFlush`] (early-return path included) so every flush
    /// reports the motion it absorbed.
    pending_moved_in_place: usize,
    pending_rekeyed: usize,
    pending_leases_expired: usize,
    // Reused scratch: per-shard hit buffers, the curve-sorted probe
    // permutation, and the per-shard merge cursors.
    point_bufs: Vec<Vec<ProcessId>>,
    batch_bufs: Vec<ShardBatchBuf>,
    /// Live entry count per id, and how many ids have more than one
    /// entry (subscription sets). While zero, per-probe deduplication
    /// is provably a no-op and the batched merge skips it.
    id_counts: HashMap<u64, u32>,
    duplicate_ids: usize,
    sorted_idx: Vec<u32>,
    key_scratch: Vec<u64>,
    sorted_points: Vec<Point<D>>,
    cursors: Vec<u32>,
    /// Arena offset of each shard's bulk-copied hit stream.
    stream_bases: Vec<u32>,
}

impl<const D: usize> ShardedOracle<D> {
    /// An empty oracle with `shards` shards (clamped to ≥ 1) and a
    /// worker budget of [`parallel::available_threads`].
    pub fn new(shards: usize) -> Self {
        let shards = shards.max(1);
        let delta_fraction = drtree_rtree::DEFAULT_DELTA_FRACTION;
        Self {
            shards: (0..shards).map(|_| Shard::new(delta_fraction)).collect(),
            map: None,
            len: 0,
            threads: parallel::available_threads(),
            stale_world: false,
            derived_stale: false,
            delta_fraction,
            mode: CompactionMode::default(),
            rebuilds: 0,
            rebalances: 0,
            split_rebalances: 0,
            compactions: 0,
            staged_absorbed: 0,
            tombstones_reclaimed: 0,
            moves_in_place: 0,
            rekeys: 0,
            leases_expired: 0,
            pending_moved_in_place: 0,
            pending_rekeyed: 0,
            pending_leases_expired: 0,
            point_bufs: vec![Vec::new(); shards],
            batch_bufs: vec![ShardBatchBuf::default(); shards],
            id_counts: HashMap::new(),
            duplicate_ids: 0,
            sorted_idx: Vec::new(),
            key_scratch: Vec::new(),
            sorted_points: Vec::new(),
            cursors: Vec::new(),
            stream_bases: Vec::new(),
        }
    }

    /// Caps the worker budget (clamped to ≥ 1): how many scoped
    /// threads a batched fan may use, and how many background merges
    /// [`CompactionMode::Concurrent`] keeps in flight at once.
    /// Defaults to the hardware parallelism.
    pub fn set_threads(&mut self, threads: usize) {
        self.threads = threads.max(1);
    }

    /// Sets the compaction trigger of every shard: a shard's delta
    /// layer is folded back into its packed levels by the next flush
    /// once it exceeds `fraction ×` the shard's packed slot count.
    /// `0.0` compacts any delta on every flush — the pre-delta
    /// rebuild-per-flush behavior, kept as the churn bench's baseline
    /// mode. Defaults to [`drtree_rtree::DEFAULT_DELTA_FRACTION`].
    pub fn set_delta_fraction(&mut self, fraction: f64) {
        self.delta_fraction = fraction.max(0.0);
        for shard in &mut self.shards {
            shard.packed.set_delta_fraction(self.delta_fraction);
        }
    }

    /// The configured compaction trigger fraction.
    pub fn delta_fraction(&self) -> f64 {
        self.delta_fraction
    }

    /// Chooses whether over-threshold compactions run inline inside
    /// [`ShardedOracle::flush`] ([`CompactionMode::Synchronous`], the
    /// default — deterministic, the measured baseline) or on
    /// background workers with a pause-free two-phase swap
    /// ([`CompactionMode::Concurrent`]). Switching modes mid-run is
    /// safe: the next synchronous flush first installs whatever the
    /// workers finished.
    pub fn set_compaction_mode(&mut self, mode: CompactionMode) {
        self.mode = mode;
    }

    /// The configured compaction mode.
    pub fn compaction_mode(&self) -> CompactionMode {
        self.mode
    }

    /// Shards with a background merge currently in flight.
    pub fn compacting_shards(&self) -> usize {
        self.shards.iter().filter(|s| s.job.is_some()).count()
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Number of live `(id, rect)` entries across all shards.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when no entry is stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Live entries currently held by shard `s` (staged ones included,
    /// tombstoned ones not).
    ///
    /// # Panics
    ///
    /// Panics if `s >= self.shard_count()`.
    pub fn shard_len(&self, s: usize) -> usize {
        self.shards[s].packed.len()
    }

    /// Un-compacted delta entries (staged + tombstones) across all
    /// shards — what the next over-threshold flush would absorb.
    pub fn delta_len(&self) -> usize {
        self.shards.iter().map(|s| s.packed.delta_len()).sum()
    }

    /// A point-in-time [`OracleSnapshot`] of the live subscription
    /// set, built from every shard's epoch-free
    /// [`PackedRTree::snapshot`] — `Arc`-shared packed cores plus
    /// copied delta layers, `O(total delta)`, no flush, no pause.
    ///
    /// The snapshot is `Send + Sync` and immutable: hand it to reader
    /// threads behind an `Arc` and they answer exact containment
    /// queries (as of snapshot time) while this oracle keeps absorbing
    /// mutations — the lock-free read side of the concurrent ingress
    /// path.
    pub fn snapshot(&self) -> OracleSnapshot<D> {
        OracleSnapshot {
            shards: self.shards.iter().map(|s| s.packed.snapshot()).collect(),
            len: self.len,
        }
    }

    /// Serializes the whole oracle — every shard's packed core, delta
    /// layer and tombstones, plus the [`ShardMap`] boundaries — into
    /// one flat, versioned, checksummed buffer in the default (exact
    /// `f64`) layout. See [`ShardedOracle::restore_bytes`] for the
    /// wire format and the restore path.
    pub fn snapshot_bytes(&self) -> Vec<u8> {
        self.snapshot_bytes_with(SnapshotOptions::default())
    }

    /// [`ShardedOracle::snapshot_bytes`] with an explicit hot-layout
    /// choice for the per-shard tree buffers (`f32`-quantized interior
    /// MBRs, cache-line-aligned fanout — see
    /// [`drtree_rtree::SnapshotOptions`]).
    ///
    /// Safe at any point in the mutation stream: mid-churn deltas and
    /// tombstones serialize with their shards, and mid-compaction
    /// shards serialize their *live logical view* (the frozen core
    /// plus surviving staged entries).
    pub fn snapshot_bytes_with(&self, options: SnapshotOptions) -> Vec<u8> {
        let k = self.shards.len();
        let shard_bufs: Vec<Vec<u8>> = self
            .shards
            .iter()
            .map(|s| s.packed.save_with(options, |id| id.raw()))
            .collect();
        let mut out = vec![0u8; ORACLE_HEADER_LEN];
        // Meta section: world + boundaries (when a map exists), then
        // the per-shard buffer lengths.
        if let Some(map) = &self.map {
            let world = map.world();
            for d in 0..D {
                out.extend_from_slice(&world.lo(d).to_bits().to_le_bytes());
            }
            for d in 0..D {
                out.extend_from_slice(&world.hi(d).to_bits().to_le_bytes());
            }
            for &b in map.boundaries() {
                out.extend_from_slice(&(b as u64).to_le_bytes());
                out.extend_from_slice(&((b >> 64) as u64).to_le_bytes());
            }
        }
        for buf in &shard_bufs {
            out.extend_from_slice(&(buf.len() as u64).to_le_bytes());
        }
        let meta_checksum = bytes::checksum(&out[ORACLE_HEADER_LEN..]);
        bytes::pad_to_section(&mut out);
        // Shard buffers back to back; each is already a 64-byte
        // multiple, so every one starts section-aligned — the
        // precondition of the zero-copy shared-buffer load.
        for buf in &shard_bufs {
            out.extend_from_slice(buf);
            bytes::pad_to_section(&mut out);
        }
        let flags = if self.map.is_some() {
            ORACLE_FLAG_HAS_MAP
        } else {
            0
        };
        out[0..4].copy_from_slice(&ORACLE_MAGIC.to_le_bytes());
        out[4..6].copy_from_slice(&ORACLE_VERSION.to_le_bytes());
        out[6..8].copy_from_slice(&flags.to_le_bytes());
        out[8..12].copy_from_slice(&(D as u32).to_le_bytes());
        out[12..16].copy_from_slice(&(k as u32).to_le_bytes());
        out[16..24].copy_from_slice(&(self.len as u64).to_le_bytes());
        out[24..32].copy_from_slice(&self.delta_fraction.to_bits().to_le_bytes());
        out[32..40].copy_from_slice(&meta_checksum.to_le_bytes());
        let total = out.len() as u64;
        out[40..48].copy_from_slice(&total.to_le_bytes());
        out
    }

    /// Restores an oracle from a [`ShardedOracle::snapshot_bytes`]
    /// buffer — the cold-start path.
    ///
    /// The buffer is adopted zero-copy (one allocation check, no
    /// memcpy) and every shard's packed core serves queries directly
    /// off the shared buffer; per-shard work is header validation plus
    /// an `O(meta)` checksum, so a multi-hundred-thousand-entry oracle
    /// restores in ~a millisecond. Wire format, all little-endian:
    ///
    /// * 64-byte header: magic `"DRTO"`, version, flags, dims, shard
    ///   count `K`, live length, delta fraction, meta checksum, total
    ///   length;
    /// * meta section: world rectangle (`2·D` f64) and `K − 1`
    ///   boundary keys (two `u64` words each) when a map exists, then
    ///   `K` per-shard buffer lengths (`u64`);
    /// * `K` [`drtree_rtree::PackedRTree::save_with`] tree buffers at
    ///   consecutive 64-byte-aligned offsets, all backed by the one
    ///   adopted allocation.
    ///
    /// The stab grids and the id-count dedup table are *not*
    /// serialized: the first [`ShardedOracle::flush`] (explicit, or
    /// implicit in the first query) rebuilds both from the restored
    /// shards, keeping restore itself off the `O(entries)` path.
    /// Single-point matching works before that rebuild — it descends
    /// the packed trees directly.
    ///
    /// # Errors
    ///
    /// Corrupted, truncated, wrong-version, wrong-dimension or
    /// checksum-failing buffers are rejected with the matching
    /// [`SnapshotError`]; no input panics.
    pub fn restore_bytes(raw: Vec<u8>) -> Result<Self, SnapshotError> {
        let buf = AlignedBytes::adopt(raw);
        let data = buf.as_slice();
        if data.len() < ORACLE_HEADER_LEN {
            return Err(SnapshotError::Truncated {
                needed: ORACLE_HEADER_LEN,
                have: data.len(),
            });
        }
        let magic = bytes::read_u32(data, 0).expect("header bounds checked");
        if magic != ORACLE_MAGIC {
            return Err(SnapshotError::BadMagic { found: magic });
        }
        let version = bytes::read_u16(data, 4).expect("header bounds checked");
        if version != ORACLE_VERSION {
            return Err(SnapshotError::WrongVersion {
                found: version,
                supported: ORACLE_VERSION,
            });
        }
        let flags = bytes::read_u16(data, 6).expect("header bounds checked");
        if flags & !ORACLE_FLAG_HAS_MAP != 0 {
            return Err(SnapshotError::Corrupt("unknown oracle flags"));
        }
        let has_map = flags & ORACLE_FLAG_HAS_MAP != 0;
        let dims = bytes::read_u32(data, 8).expect("header bounds checked");
        if dims as usize != D {
            return Err(SnapshotError::WrongDims {
                found: dims,
                expected: D as u32,
            });
        }
        let k = bytes::read_u32(data, 12).expect("header bounds checked") as usize;
        if k == 0 {
            return Err(SnapshotError::Corrupt("oracle has zero shards"));
        }
        // The meta section alone needs 8 bytes per shard, so this
        // bound rejects absurd counts before any multiplication or
        // allocation scales with them.
        if k > data.len() / 8 {
            return Err(SnapshotError::Corrupt("shard count exceeds buffer"));
        }
        let len = usize::try_from(bytes::read_u64(data, 16).expect("header bounds checked"))
            .map_err(|_| SnapshotError::Corrupt("oracle length exceeds address space"))?;
        let delta_fraction =
            f64::from_bits(bytes::read_u64(data, 24).expect("header bounds checked"));
        if delta_fraction.is_nan() || delta_fraction < 0.0 {
            return Err(SnapshotError::Corrupt("invalid delta fraction"));
        }
        let meta_checksum = bytes::read_u64(data, 32).expect("header bounds checked");
        let payload_len =
            usize::try_from(bytes::read_u64(data, 40).expect("header bounds checked"))
                .map_err(|_| SnapshotError::Corrupt("payload length exceeds address space"))?;
        if payload_len > data.len() {
            return Err(SnapshotError::Truncated {
                needed: payload_len,
                have: data.len(),
            });
        }
        if payload_len != data.len() {
            return Err(SnapshotError::Corrupt("trailing bytes after the snapshot"));
        }
        let map_meta = if has_map { 16 * D + (k - 1) * 16 } else { 0 };
        let meta_end = ORACLE_HEADER_LEN + map_meta + k * 8;
        if meta_end > data.len() {
            return Err(SnapshotError::Truncated {
                needed: meta_end,
                have: data.len(),
            });
        }
        if bytes::checksum(&data[ORACLE_HEADER_LEN..meta_end]) != meta_checksum {
            return Err(SnapshotError::ChecksumMismatch);
        }
        let map = if has_map {
            let mut lo = [0.0; D];
            let mut hi = [0.0; D];
            for d in 0..D {
                lo[d] =
                    bytes::read_f64(data, ORACLE_HEADER_LEN + 8 * d).expect("meta bounds checked");
                hi[d] = bytes::read_f64(data, ORACLE_HEADER_LEN + 8 * (D + d))
                    .expect("meta bounds checked");
            }
            let world = Rect::try_new(lo, hi)
                .map_err(|_| SnapshotError::Corrupt("invalid world rectangle"))?;
            let mut boundaries = Vec::with_capacity(k - 1);
            for i in 0..k - 1 {
                let at = ORACLE_HEADER_LEN + 16 * D + 16 * i;
                let lo_word = bytes::read_u64(data, at).expect("meta bounds checked");
                let hi_word = bytes::read_u64(data, at + 8).expect("meta bounds checked");
                boundaries.push((u128::from(hi_word) << 64) | u128::from(lo_word));
            }
            if !boundaries.windows(2).all(|w| w[0] <= w[1]) {
                return Err(SnapshotError::Corrupt("shard boundaries not ascending"));
            }
            Some(ShardMap::from_boundaries(&world, boundaries))
        } else {
            None
        };
        let lens_at = ORACLE_HEADER_LEN + map_meta;
        let from_raw: Arc<dyn Fn(u64) -> ProcessId + Send + Sync> = Arc::new(ProcessId::from_raw);
        let mut shards = Vec::with_capacity(k);
        let mut off = bytes::align_up(meta_end);
        for i in 0..k {
            let shard_len =
                usize::try_from(bytes::read_u64(data, lens_at + 8 * i).expect("meta bounds"))
                    .map_err(|_| SnapshotError::Corrupt("shard length exceeds address space"))?;
            let mut packed = PackedRTree::load_shared(&buf, off, shard_len, Arc::clone(&from_raw))?;
            packed.set_delta_fraction(delta_fraction);
            shards.push(Shard {
                packed,
                grid: StabGrid::default(),
                job: None,
                hints: HashMap::default(),
            });
            off = bytes::align_up(
                off.checked_add(shard_len)
                    .ok_or(SnapshotError::Corrupt("shard range overflows"))?,
            );
        }
        if off != data.len() {
            return Err(SnapshotError::Corrupt(
                "trailing bytes after the last shard",
            ));
        }
        let computed: usize = shards.iter().map(|s| s.packed.len()).sum();
        if computed != len {
            return Err(SnapshotError::Corrupt(
                "oracle length disagrees with shards",
            ));
        }
        Ok(Self {
            shards,
            map,
            len,
            threads: parallel::available_threads(),
            stale_world: false,
            derived_stale: true,
            delta_fraction,
            mode: CompactionMode::default(),
            rebuilds: 0,
            rebalances: 0,
            split_rebalances: 0,
            compactions: 0,
            staged_absorbed: 0,
            tombstones_reclaimed: 0,
            moves_in_place: 0,
            rekeys: 0,
            leases_expired: 0,
            pending_moved_in_place: 0,
            pending_rekeyed: 0,
            pending_leases_expired: 0,
            point_bufs: vec![Vec::new(); k],
            batch_bufs: vec![ShardBatchBuf::default(); k],
            id_counts: HashMap::new(),
            duplicate_ids: 0,
            sorted_idx: Vec::new(),
            key_scratch: Vec::new(),
            sorted_points: Vec::new(),
            cursors: Vec::new(),
            stream_bases: Vec::new(),
        })
    }

    /// [`ShardedOracle::restore_bytes`] with a staleness gate for the
    /// federated warm-restart path: the snapshot's embedded
    /// [`ShardMap`] (world rectangle and Hilbert range boundaries)
    /// must agree *exactly* with `expected` — the assignment the
    /// restoring owner currently prescribes (for a federated broker:
    /// the oracle map its fabric recorded when the checkpoint was cut,
    /// which the fabric re-derives whenever its own broker boundaries
    /// move). A snapshot cut under a different assignment would
    /// silently file entries into the wrong shards — or, one level up,
    /// claim curve ranges that now belong to another broker — so it is
    /// rejected with [`SnapshotError::StaleBoundaries`] and the caller
    /// must fall back to a cold rebuild from its peers.
    ///
    /// A snapshot carrying no map at all (never flushed before the
    /// checkpoint) cannot prove its assignment and is likewise
    /// rejected.
    ///
    /// # Errors
    ///
    /// Everything [`ShardedOracle::restore_bytes`] rejects, plus
    /// [`SnapshotError::StaleBoundaries`] when the embedded map
    /// diverges from `expected` in world bits, shard count, or any
    /// boundary key.
    pub fn restore_bytes_checked(
        raw: Vec<u8>,
        expected: &ShardMap<D>,
    ) -> Result<Self, SnapshotError> {
        let oracle = Self::restore_bytes(raw)?;
        let stale = |found: u32| SnapshotError::StaleBoundaries {
            found,
            expected: expected.shards() as u32,
        };
        let Some(map) = &oracle.map else {
            return Err(stale(0));
        };
        let same_world = (0..D).all(|d| {
            map.world().lo(d).to_bits() == expected.world().lo(d).to_bits()
                && map.world().hi(d).to_bits() == expected.world().hi(d).to_bits()
        });
        if !same_world || map.boundaries() != expected.boundaries() {
            return Err(stale(map.shards() as u32));
        }
        Ok(oracle)
    }

    /// The live Hilbert shard assignment, if one has been established
    /// (the first flush builds it; a restored oracle carries the
    /// snapshot's). The federation layer records this when cutting a
    /// warm-restart checkpoint, so
    /// [`ShardedOracle::restore_bytes_checked`] can later prove the
    /// buffer is not stale.
    pub fn shard_map(&self) -> Option<&ShardMap<D>> {
        self.map.as_ref()
    }

    /// Drains every pending mutation (one [`ShardedOracle::flush`])
    /// and returns all live `(id, rect)` entries, staged ones
    /// included, in unspecified order. This is the peer-re-replication
    /// source of the federation layer: a broker cold-rebuilding a
    /// crashed neighbor's range receives exactly this enumeration.
    /// `O(len)`; allocates the returned vector only.
    pub fn entries(&mut self) -> Vec<(ProcessId, Rect<D>)> {
        self.flush();
        let mut out = Vec::with_capacity(self.len);
        for shard in &self.shards {
            let packed = &shard.packed;
            out.extend(packed.entries().map(|(_, id, rect)| (*id, *rect)));
            out.extend(
                packed
                    .staged_keys()
                    .iter()
                    .zip(packed.staged_rects())
                    .enumerate()
                    .filter(|&(i, _)| packed.is_staged_live(i))
                    .map(|(_, (id, rect))| (*id, *rect)),
            );
        }
        out
    }

    /// Verifies the deferred bulk checksum of every restored shard —
    /// the full-integrity pass [`ShardedOracle::restore_bytes`] skips
    /// to keep cold-start in the millisecond range. `Ok(())` for
    /// shards that were never restored from a buffer.
    pub fn verify_snapshot(&self) -> Result<(), SnapshotError> {
        for shard in &self.shards {
            shard.packed.verify_snapshot()?;
        }
        Ok(())
    }

    /// Packed-tree rebuilds performed over the oracle's lifetime.
    pub fn rebuild_count(&self) -> u64 {
        self.rebuilds
    }

    /// Full redistributions performed over the oracle's lifetime.
    pub fn rebalance_count(&self) -> u64 {
        self.rebalances
    }

    /// Delta-aware split rebalances (single boundary shifts between an
    /// overloaded shard and its curve neighbor) performed over the
    /// oracle's lifetime.
    pub fn split_rebalance_count(&self) -> u64 {
        self.split_rebalances
    }

    /// Delta-layer merges performed over the oracle's lifetime.
    pub fn compaction_count(&self) -> u64 {
        self.compactions
    }

    /// Staged entries absorbed into packed levels over the oracle's
    /// lifetime.
    pub fn staged_absorbed_total(&self) -> u64 {
        self.staged_absorbed
    }

    /// Tombstoned slots reclaimed over the oracle's lifetime.
    pub fn tombstones_reclaimed_total(&self) -> u64 {
        self.tombstones_reclaimed
    }

    /// Moves absorbed as same-shard delta patches over the oracle's
    /// lifetime ([`ShardedOracle::move_entry`], flushed or not).
    pub fn moved_in_place_total(&self) -> u64 {
        self.moves_in_place + self.pending_moved_in_place as u64
    }

    /// Moves re-keyed across a Hilbert shard boundary over the
    /// oracle's lifetime (flushed or not).
    pub fn rekeyed_total(&self) -> u64 {
        self.rekeys + self.pending_rekeyed as u64
    }

    /// Leased entries evicted over the oracle's lifetime (flushed or
    /// not).
    pub fn leases_expired_total(&self) -> u64 {
        self.leases_expired + self.pending_leases_expired as u64
    }

    /// Armed lease records across all shards (dangling records
    /// awaiting a compaction sweep included).
    pub fn lease_count(&self) -> usize {
        self.shards.iter().map(|s| s.packed.lease_count()).sum()
    }

    /// The shard `rect` is currently assigned to (`None` before the
    /// first flush establishes a shard map).
    pub fn shard_of(&self, rect: &Rect<D>) -> Option<usize> {
        self.map.as_ref().map(|m| m.shard_of(rect))
    }

    /// Registers `(id, rect)`. Duplicate ids are allowed (subscription
    /// *sets* register one entry per member filter). The entry is
    /// staged into the owning shard's delta layer and patched into its
    /// stab grid — no shard goes dirty, and the entry is matchable
    /// immediately.
    pub fn insert(&mut self, id: ProcessId, rect: Rect<D>) {
        let s = match &self.map {
            Some(map) => {
                if !map.covers(&rect) {
                    self.stale_world = true;
                }
                map.shard_of(&rect)
            }
            // No map yet: park in shard 0; the first flush
            // redistributes.
            None => 0,
        };
        let shard = &mut self.shards[s];
        let idx = shard.packed.staged_len() as u32;
        shard.packed.stage_insert(id, rect);
        shard.grid.stage(idx, &rect);
        self.len += 1;
        let count = self.id_counts.entry(id.raw()).or_insert(0);
        *count += 1;
        if *count == 2 {
            self.duplicate_ids += 1;
        }
    }

    /// Removes one `(id, rect)` entry; `true` if found. Looks in the
    /// assigned shard first (assignment is stable, so that lookup
    /// virtually always succeeds) with a full scan as a safety net.
    /// Staged entries are unstaged outright; packed entries are
    /// tombstoned in place. Either way the stab grid is patched to
    /// match and no rebuild is scheduled.
    pub fn remove(&mut self, id: ProcessId, rect: &Rect<D>) -> bool {
        let guess = self.map.as_ref().map_or(0, |m| m.shard_of(rect));
        let found = self.remove_from(guess, id, rect)
            || (0..self.shards.len()).any(|s| s != guess && self.remove_from(s, id, rect));
        if found {
            if let Some(count) = self.id_counts.get_mut(&id.raw()) {
                if *count == 2 {
                    self.duplicate_ids -= 1;
                }
                *count -= 1;
                if *count == 0 {
                    self.id_counts.remove(&id.raw());
                }
            }
        }
        found
    }

    fn remove_from(&mut self, s: usize, id: ProcessId, rect: &Rect<D>) -> bool {
        let shard = &mut self.shards[s];
        match shard.packed.remove_entry(&id, rect) {
            Some(DeltaRemoval::Unstaged { index, moved }) => {
                shard.grid.unstage(index as u32, rect);
                if let Some(moved_rect) = moved {
                    // The former last staged entry now lives at
                    // `index`; its old index equals the post-removal
                    // staging length.
                    let from = shard.packed.staged_len() as u32;
                    shard.grid.restage_moved(from, index as u32, &moved_rect);
                }
                self.len -= 1;
                true
            }
            Some(DeltaRemoval::Tombstoned { .. }) => {
                // Stabs filter dead slots at emission time; nothing to
                // patch.
                self.len -= 1;
                true
            }
            Some(DeltaRemoval::Retired { index }) => {
                // A frozen staged entry died mid-compaction: the
                // buffer keeps its (index-stable) slot, so only the
                // grid's patch lists need to forget it — the install
                // will re-remove it from the merged core.
                shard.grid.unstage(index as u32, rect);
                self.len -= 1;
                true
            }
            None => false,
        }
    }

    /// Moves one live `(id, old)` entry to rectangle `new` — the
    /// mobility command. While the new rectangle's curve key stays on
    /// the old shard, the move is absorbed **as a delta patch**: an
    /// in-place packed-slot update (with the stab grid re-pointed
    /// through its moved-slot patch layer) or a staged rewrite, no
    /// remove/reinsert, no flush, no compaction pressure beyond what
    /// the fallback tombstone+stage path adds. Only when the key
    /// actually crosses a shard boundary is the entry re-keyed —
    /// removed from its old shard and staged into the gainer's delta
    /// layer, the split-rebalance handoff machinery in miniature. An
    /// armed lease follows the entry either way. Returns `false` when
    /// no live entry matches.
    pub fn move_entry(&mut self, id: ProcessId, old: &Rect<D>, new: Rect<D>) -> bool {
        if let Some(map) = &self.map {
            if !map.covers(&new) {
                self.stale_world = true;
            }
        }
        let target = self.map.as_ref().map_or(0, |m| m.shard_of(&new));
        // Hinted fast path: a steady mover's entry lives in the shard
        // its rect routes to, so try the verified memo there before
        // paying for the old rect's routing key. A hit proves the
        // entry already sits in the target shard — no boundary was
        // crossed; a miss falls through to the full two-key route.
        if self.move_hinted(target, id, old, new) {
            self.pending_moved_in_place += 1;
            return true;
        }
        let guess = self.map.as_ref().map_or(0, |m| m.shard_of(old));
        if guess == target {
            // Same-shard move. The assigned shard virtually always
            // holds the entry; scan the rest as the safety net
            // `remove` uses (entries park in shard 0 pre-map, or sit
            // misassigned after world growth).
            if self.move_in_shard(guess, id, old, new)
                || (0..self.shards.len()).any(|s| s != guess && self.move_in_shard(s, id, old, new))
            {
                self.pending_moved_in_place += 1;
                return true;
            }
            return false;
        }
        // Boundary handoff: locate the holder, take the lease out,
        // remove through the delta layer, re-stage into the target.
        let holder = if self.shards[guess].packed.contains_entry(&id, old) {
            Some(guess)
        } else {
            (0..self.shards.len())
                .find(|&s| s != guess && self.shards[s].packed.contains_entry(&id, old))
        };
        let Some(s) = holder else {
            return false;
        };
        let deadline = self.shards[s].packed.take_lease(&id, old);
        let removed = self.remove_from(s, id, old);
        debug_assert!(removed, "contains_entry found a live entry");
        let gainer = &mut self.shards[target];
        let idx = gainer.packed.staged_len() as u32;
        gainer.packed.stage_insert(id, new);
        gainer.grid.stage(idx, &new);
        gainer.hints.insert(id, idx | STAGED_HINT);
        if let Some(deadline) = deadline {
            gainer.packed.set_lease(id, new, deadline);
        }
        // `remove_from` decremented for the departure; the arrival
        // restores it. Identity is preserved, so the id-count dedup
        // table is untouched.
        self.len += 1;
        self.pending_rekeyed += 1;
        true
    }

    /// One shard's slice of [`ShardedOracle::move_entry`]: runs the
    /// packed tree's update and patches the stab grid to match.
    /// `false` when the shard holds no live `(id, old)` entry.
    fn move_in_shard(&mut self, s: usize, id: ProcessId, old: &Rect<D>, new: Rect<D>) -> bool {
        let shard = &mut self.shards[s];
        // Hinted fast path first: a mover that relocates every tick
        // keeps hitting its own packed slot (or staged index — the
        // tag bit), turning the per-move tree traversal or staged
        // linear scan into one verified array read. Both verify
        // `(id, old)` at the memoized position, so a stale hint is
        // just a miss that falls through to the full lookup.
        let prior = shard.hints.get(&id).copied();
        let hinted = prior.and_then(|h| {
            if h & STAGED_HINT != 0 {
                shard
                    .packed
                    .update_staged((h & !STAGED_HINT) as usize, &id, old, new)
            } else {
                shard.packed.update_slot(h as usize, &id, old, new)
            }
        });
        let update = match hinted.or_else(|| shard.packed.update_entry(&id, old, new)) {
            Some(update) => update,
            None => {
                if prior.is_some() {
                    shard.hints.remove(&id);
                }
                return false;
            }
        };
        Self::apply_update(shard, id, prior, update, old, &new);
        true
    }

    /// Hint-only slice of [`ShardedOracle::move_in_shard`]: succeeds
    /// only when shard `s` holds a hint for `id` that verifies against
    /// `(id, old)`. Never falls back to a tree lookup — a stale hint is
    /// left for the full path to repair.
    fn move_hinted(&mut self, s: usize, id: ProcessId, old: &Rect<D>, new: Rect<D>) -> bool {
        let shard = &mut self.shards[s];
        let Some(h) = shard.hints.get(&id).copied() else {
            return false;
        };
        let hinted = if h & STAGED_HINT != 0 {
            shard
                .packed
                .update_staged((h & !STAGED_HINT) as usize, &id, old, new)
        } else {
            shard.packed.update_slot(h as usize, &id, old, new)
        };
        let Some(update) = hinted else {
            return false;
        };
        Self::apply_update(shard, id, Some(h), update, old, &new);
        true
    }

    /// Applies a completed packed-tree move to one shard's stab grid
    /// and hint memo.
    fn apply_update(
        shard: &mut Shard<D>,
        id: ProcessId,
        prior: Option<u32>,
        update: EntryUpdate<D>,
        old: &Rect<D>,
        new: &Rect<D>,
    ) {
        match update {
            EntryUpdate::InPlace { slot } => {
                if prior != Some(slot as u32) {
                    shard.hints.insert(id, slot as u32);
                }
                shard
                    .grid
                    .move_slot(slot as u32, old, new, shard.packed.packed_len());
            }
            EntryUpdate::Staged { index } => {
                if prior != Some(index as u32 | STAGED_HINT) {
                    shard.hints.insert(id, index as u32 | STAGED_HINT);
                }
                shard.grid.unstage(index as u32, old);
                shard.grid.stage(index as u32, new);
            }
            EntryUpdate::Restaged { removal, index } => {
                // The entry left its old position for a fresh staged
                // index; re-point the memo there.
                shard.hints.insert(id, index as u32 | STAGED_HINT);
                match removal {
                    // Tombstoned slots are filtered at emission time.
                    DeltaRemoval::Tombstoned { .. } => {}
                    DeltaRemoval::Retired { index: retired } => {
                        shard.grid.unstage(retired as u32, old);
                    }
                    DeltaRemoval::Unstaged { .. } => {
                        unreachable!("update_entry rewrites staged entries in place")
                    }
                }
                shard.grid.stage(index as u32, new);
            }
        }
    }

    /// Arms a TTL lease on the live entry `(id, rect)`:
    /// [`ShardedOracle::expire_leases`] evicts the entry once the
    /// caller's logical clock reaches `deadline`. Re-arming replaces
    /// the deadline; the lease follows the entry through
    /// [`ShardedOracle::move_entry`] moves and shard migrations.
    /// Returns `false` when no live entry matches.
    pub fn set_lease(&mut self, id: ProcessId, rect: &Rect<D>, deadline: u64) -> bool {
        let guess = self.map.as_ref().map_or(0, |m| m.shard_of(rect));
        let s = if self.shards[guess].packed.contains_entry(&id, rect) {
            guess
        } else {
            match (0..self.shards.len())
                .find(|&s| s != guess && self.shards[s].packed.contains_entry(&id, rect))
            {
                Some(s) => s,
                None => return false,
            }
        };
        self.shards[s].packed.set_lease(id, *rect, deadline);
        true
    }

    /// Evicts every leased entry whose deadline is `<= now`, through
    /// the regular removal path (stab grids patched, id counts
    /// maintained), returning how many entries went away. Safe on a
    /// freshly restored oracle before its first flush: removal on a
    /// derived-stale shard patches an empty grid harmlessly, and the
    /// deferred rebuild sees the entry already gone. Dangling lease
    /// records (entry removed out-of-band) are dropped silently.
    pub fn expire_leases(&mut self, now: u64) -> usize {
        let mut expired = 0usize;
        for s in 0..self.shards.len() {
            while let Some((id, rect)) = self.shards[s].packed.pop_expired_lease(now) {
                if self.remove(id, &rect) {
                    expired += 1;
                }
            }
        }
        self.pending_leases_expired += expired;
        expired
    }

    /// Brings maintenance up to date **now**, so subsequent publishes
    /// pay matching cost only: installs any finished background
    /// merges, redistributes when the shard map went stale (or shifts
    /// one Hilbert boundary when only imbalance needs repair — the
    /// delta-aware path), and realizes over-threshold compactions — inline in
    /// [`CompactionMode::Synchronous`], or by freezing the shard and
    /// handing the merge to a worker in [`CompactionMode::Concurrent`]
    /// (a later flush swaps the result in). Queries call this
    /// implicitly; benches and brokers call it eagerly so their
    /// publish timings never include a merge. Under-threshold deltas
    /// are left in place — that is the point of incremental
    /// maintenance.
    pub fn flush(&mut self) -> OracleFlush {
        if self.derived_stale {
            self.rebuild_derived();
        }
        let any_jobs = self.shards.iter().any(|s| s.job.is_some());
        let needs_work = any_jobs
            || self.needs_rebalance()
            || self
                .shards
                .iter()
                .any(|s| !s.packed.is_compacting() && s.packed.needs_compaction());
        if !needs_work {
            // Even a no-op flush reports (and banks) the mobility
            // work absorbed since the last one.
            let flush = self.drain_pending_moves();
            self.absorb_flush_counters(&flush);
            return flush;
        }
        let t0 = Instant::now();
        let mut flush = self.drain_pending_moves();
        let mut inline_merge_ns = 0u64;

        // Phase 1 — finish: swap in whatever the workers completed.
        // (In synchronous mode jobs only exist after a mode switch;
        // block so the switch leaves no merge behind.)
        self.install_finished(self.mode == CompactionMode::Synchronous, &mut flush);

        // Phase 2 — rebalance, if due. A stale world (or a missing
        // map) voids every assignment, so in-flight merges are
        // abandoned and everything redistributes. Pure imbalance is
        // repaired delta-aware instead: one boundary shift between the
        // overloaded shard and its curve neighbor, which never
        // disturbs another shard's in-flight compaction.
        if self.needs_rebalance() {
            let full = self.map.is_none() || self.stale_world || self.shards.len() < 2;
            if full {
                for shard in &mut self.shards {
                    if let Some(job) = shard.job.take() {
                        // The redistribute rebuilds everything anyway;
                        // the merge result is worthless. Dropping the
                        // job detaches the worker; aborting the epoch
                        // eagerly keeps the accounting below exact.
                        drop(job);
                    }
                    shard.packed.abort_compaction();
                }
                for shard in &self.shards {
                    if shard.packed.delta_len() > 0 {
                        flush.compacted_shards += 1;
                    }
                    flush.staged_absorbed += shard.packed.staged_len();
                    flush.tombstones_reclaimed += shard.packed.tombstone_count();
                }
                self.rebalance();
                flush.rebalanced = true;
                flush.rebuilt_shards += self.shards.len();
            } else {
                self.split_rebalance(&mut flush);
            }
        }

        // Phase 3 — begin: realize over-threshold compactions.
        if !flush.rebalanced {
            match self.mode {
                CompactionMode::Synchronous => {
                    for shard in &mut self.shards {
                        if !shard.packed.needs_compaction() {
                            continue;
                        }
                        let t_merge = Instant::now();
                        let stats = shard.packed.compact();
                        shard.grid = StabGrid::build(&shard.packed);
                        shard.hints.clear();
                        inline_merge_ns += t_merge.elapsed().as_nanos() as u64;
                        flush.rebuilt_shards += 1;
                        flush.compacted_shards += 1;
                        flush.staged_absorbed += stats.staged_absorbed;
                        flush.tombstones_reclaimed += stats.tombstones_reclaimed;
                    }
                }
                CompactionMode::Concurrent => {
                    // Stagger merges: at most `threads` in flight, so
                    // a burst of over-threshold shards (uniform churn
                    // pushes every shard past the fraction in the same
                    // window) spreads across flushes instead of
                    // spawning one worker per shard to fight over the
                    // same cores. Shards left over wait one flush.
                    let mut in_flight = self.shards.iter().filter(|s| s.job.is_some()).count();
                    for shard in &mut self.shards {
                        if in_flight >= self.threads {
                            break;
                        }
                        if shard.job.is_some()
                            || shard.packed.is_compacting()
                            || !shard.packed.needs_compaction()
                        {
                            continue;
                        }
                        shard.begin_compaction();
                        flush.begun_compactions += 1;
                        in_flight += 1;
                    }
                }
            }
        }

        flush.compact_ns += inline_merge_ns;
        self.absorb_flush_counters(&flush);
        flush.elapsed = t0.elapsed();
        flush.swap_ns = (flush.elapsed.as_nanos() as u64).saturating_sub(inline_merge_ns);
        flush
    }

    /// Blocks until every in-flight background merge is installed —
    /// the drain counterpart of the two-phase flush, for shutdown,
    /// mode switches, and benches that must not leave work dangling
    /// outside the timed window. A no-op without in-flight merges.
    pub fn finish_compactions(&mut self) -> OracleFlush {
        if self.shards.iter().all(|s| s.job.is_none()) {
            return OracleFlush::default();
        }
        let t0 = Instant::now();
        let mut flush = OracleFlush::default();
        self.install_finished(true, &mut flush);
        self.absorb_flush_counters(&flush);
        flush.elapsed = t0.elapsed();
        flush.swap_ns = flush.elapsed.as_nanos() as u64;
        flush
    }

    /// Installs every background merge that is finished (or all of
    /// them, blocking, with `block`), folding the results into
    /// `flush`.
    fn install_finished(&mut self, block: bool, flush: &mut OracleFlush) {
        for shard in &mut self.shards {
            let ready = shard
                .job
                .as_ref()
                .is_some_and(|job| block || job.is_finished());
            if !ready {
                continue;
            }
            let merged = shard.job.take().expect("job presence checked").join();
            flush.compact_ns += merged.merge_ns;
            let stats = shard.install(merged);
            flush.rebuilt_shards += 1;
            flush.compacted_shards += 1;
            flush.staged_absorbed += stats.staged_absorbed;
            flush.tombstones_reclaimed += stats.tombstones_reclaimed;
        }
    }

    /// Builds the read-side structures a restore deliberately defers:
    /// every shard's stab grid (CSR over its packed slots plus patch
    /// lists for whatever delta the snapshot carried) and the id-count
    /// table that lets the batched merge skip deduplication while no
    /// id holds more than one entry. `O(total entries)` — the cost the
    /// zero-copy restore moved off the cold-start path and onto the
    /// first flush.
    fn rebuild_derived(&mut self) {
        self.derived_stale = false;
        self.id_counts.clear();
        self.duplicate_ids = 0;
        let (shards, id_counts) = (&mut self.shards, &mut self.id_counts);
        let mut duplicate_ids = 0usize;
        for shard in shards.iter_mut() {
            shard.grid = StabGrid::build_with_staged(&shard.packed);
            shard.hints.clear();
            let packed = &shard.packed;
            let staged = packed
                .staged_keys()
                .iter()
                .enumerate()
                .filter(|&(i, _)| packed.is_staged_live(i))
                .map(|(_, id)| id);
            for id in packed.entries().map(|(_, id, _)| id).chain(staged) {
                let count = id_counts.entry(id.raw()).or_insert(0);
                *count += 1;
                if *count == 2 {
                    duplicate_ids += 1;
                }
            }
        }
        self.duplicate_ids = duplicate_ids;
    }

    /// Seeds a fresh [`OracleFlush`] with the mobility counters
    /// accumulated since the previous flush, zeroing the pending
    /// buckets. Every flush path (including the no-work early return)
    /// goes through here so move/lease activity is reported exactly
    /// once.
    fn drain_pending_moves(&mut self) -> OracleFlush {
        OracleFlush {
            moved_in_place: std::mem::take(&mut self.pending_moved_in_place),
            rekeyed: std::mem::take(&mut self.pending_rekeyed),
            leases_expired: std::mem::take(&mut self.pending_leases_expired),
            ..OracleFlush::default()
        }
    }

    /// Folds one flush's work into the lifetime counters.
    fn absorb_flush_counters(&mut self, flush: &OracleFlush) {
        self.rebuilds += flush.rebuilt_shards as u64;
        self.compactions += flush.compacted_shards as u64;
        self.staged_absorbed += flush.staged_absorbed as u64;
        self.tombstones_reclaimed += flush.tombstones_reclaimed as u64;
        self.moves_in_place += flush.moved_in_place as u64;
        self.rekeys += flush.rekeyed as u64;
        self.leases_expired += flush.leases_expired as u64;
        if flush.split_rebalanced {
            self.split_rebalances += 1;
        }
    }

    /// Delta-aware rebalancing: repairs imbalance by shifting the one
    /// Hilbert boundary between the overloaded shard and its lighter
    /// curve neighbor to the count median of their combined key
    /// population, then **handing off** only the entries that cross
    /// the shifted boundary — tombstoned or unstaged out of their old
    /// shard, staged into the delta layer of the new one. Neither
    /// shard rebuilds (their packed cores stay in place, flat buffers
    /// and all), no other shard is touched, and in-flight background
    /// merges — the pair's included — stay valid: mid-compaction
    /// removals go through the epoch machinery and are reconciled at
    /// install time. Falls back to a full redistribute when the shift
    /// cannot move anything (a degenerate key distribution).
    fn split_rebalance(&mut self, flush: &mut OracleFlush) {
        let heavy = self
            .shards
            .iter()
            .enumerate()
            .max_by_key(|(_, s)| s.packed.len())
            .map(|(i, _)| i)
            .expect("oracle has at least one shard");
        let neighbor = if heavy == 0 {
            1
        } else if heavy == self.shards.len() - 1
            || self.shards[heavy - 1].packed.len() <= self.shards[heavy + 1].packed.len()
        {
            heavy - 1
        } else {
            heavy + 1
        };
        let map = self.map.as_ref().expect("split requires a shard map");
        let mapper = map.mapper().clone();
        let boundary = heavy.min(neighbor);
        let pair = [boundary, boundary + 1];
        // The pair's live key population, delta layers included —
        // read-only: nothing is drained, both packed cores stay put.
        let mut keys: Vec<u128> = Vec::new();
        for s in pair {
            let packed = &self.shards[s].packed;
            keys.extend(packed.entries().map(|(_, _, r)| mapper.key(r)));
            keys.extend(
                packed
                    .staged_rects()
                    .iter()
                    .enumerate()
                    .filter(|&(i, _)| packed.is_staged_live(i))
                    .map(|(_, r)| mapper.key(r)),
            );
        }
        // Only the count median matters — O(n) selection, not a sort;
        // this runs on the publish path, whose whole point is a small
        // stall.
        let mid = keys.len() / 2;
        let (_, &mut new_key, _) = keys.select_nth_unstable(mid);
        if new_key == map.boundaries()[boundary] {
            // The median *is* the current boundary: the shift would
            // move nothing. Full redistribute instead — which voids
            // every assignment, so in-flight merges are abandoned.
            for shard in &mut self.shards {
                drop(shard.job.take());
            }
            let leases = self.collect_leases();
            let mut entries: Vec<(ProcessId, Rect<D>)> = Vec::new();
            for shard in &mut self.shards {
                entries.append(&mut shard.packed.drain_live());
            }
            self.rebalance_entries(entries);
            self.rearm_leases(leases);
            flush.rebalanced = true;
            flush.rebuilt_shards += self.shards.len();
            return;
        }
        let new_map = map.with_boundary(boundary, new_key);
        // Handoff: collect each pair member's crossing entries, then
        // migrate them one by one. Assignment is a pure function of
        // the map, so a crossing entry of one pair member always lands
        // on the other.
        for s in pair {
            let packed = &self.shards[s].packed;
            let staged = packed
                .staged_keys()
                .iter()
                .zip(packed.staged_rects())
                .enumerate()
                .filter(|&(i, _)| packed.is_staged_live(i))
                .map(|(_, (id, r))| (*id, *r));
            let crossing: Vec<(ProcessId, Rect<D>)> = packed
                .entries()
                .map(|(_, id, r)| (*id, *r))
                .chain(staged)
                .filter(|(_, r)| new_map.shard_of(r) != s)
                .collect();
            for (id, rect) in crossing {
                let to = new_map.shard_of(&rect);
                let deadline = self.shards[s].packed.take_lease(&id, &rect);
                let removed = self.remove_from(s, id, &rect);
                debug_assert!(removed, "crossing entry was live");
                let gainer = &mut self.shards[to];
                let idx = gainer.packed.staged_len() as u32;
                gainer.packed.stage_insert(id, rect);
                gainer.grid.stage(idx, &rect);
                if let Some(deadline) = deadline {
                    gainer.packed.set_lease(id, rect, deadline);
                }
                self.len += 1;
                flush.migrated_entries += 1;
            }
        }
        self.map = Some(new_map);
        flush.split_rebalanced = true;
    }

    fn needs_rebalance(&self) -> bool {
        if self.len == 0 {
            return false;
        }
        if self.map.is_none() || self.stale_world {
            return true;
        }
        if self.shards.len() == 1 {
            return false;
        }
        let ideal = self.len / self.shards.len();
        let cap = IMBALANCE_FACTOR * ideal + IMBALANCE_SLACK;
        self.shards.iter().any(|s| s.packed.len() > cap)
    }

    /// Recomputes the world from the live entries, re-splits the key
    /// population at its count quantiles, and redistributes every
    /// entry, bulk-loading every shard fresh (deltas are absorbed in
    /// the same pass).
    fn rebalance(&mut self) {
        let leases = self.collect_leases();
        let mut all: Vec<(ProcessId, Rect<D>)> = Vec::with_capacity(self.len);
        for shard in &mut self.shards {
            all.append(&mut shard.packed.drain_live());
        }
        self.rebalance_entries(all);
        self.rearm_leases(leases);
    }

    /// Pulls every armed lease out of every shard, ahead of a full
    /// redistribution ([`PackedRTree::drain_live`] drops lease records
    /// with the rest of the delta state). Dangling records are dropped
    /// here: re-arming checks liveness.
    fn collect_leases(&mut self) -> Vec<(ProcessId, Rect<D>, u64)> {
        let mut leases = Vec::new();
        for shard in &mut self.shards {
            leases.extend(shard.packed.take_leases());
        }
        leases
    }

    /// Re-arms collected leases on whichever shard the redistribution
    /// assigned each entry to. Entries that vanished in between (a
    /// dangling record swept along) are skipped —
    /// [`PackedRTree::set_lease`] on a missing entry arms a record the
    /// next compaction sweeps, so filter on liveness here.
    fn rearm_leases(&mut self, leases: Vec<(ProcessId, Rect<D>, u64)>) {
        for (id, rect, deadline) in leases {
            let s = self.map.as_ref().map_or(0, |m| m.shard_of(&rect));
            if self.shards[s].packed.contains_entry(&id, &rect) {
                self.shards[s].packed.set_lease(id, rect, deadline);
            }
        }
    }

    /// The redistribution tail of [`ShardedOracle::rebalance`], over
    /// an already-drained entry set.
    fn rebalance_entries(&mut self, all: Vec<(ProcessId, Rect<D>)>) {
        let world = GridMapper::world_of(all.iter().map(|(_, r)| r))
            .unwrap_or_else(|| Rect::new([0.0; D], [1.0; D]));
        let mapper = GridMapper::new(&world);
        let mut keys: Vec<u128> = all.iter().map(|(_, r)| mapper.key(r)).collect();
        keys.sort_unstable();
        let map = ShardMap::from_sorted_keys(self.shards.len(), &world, &keys);
        let mut parts: Vec<Vec<(ProcessId, Rect<D>)>> = vec![Vec::new(); self.shards.len()];
        for (id, rect) in all {
            parts[map.shard_of(&rect)].push((id, rect));
        }
        for (shard, part) in self.shards.iter_mut().zip(parts) {
            shard.packed = PackedRTree::bulk_load(part);
            shard.packed.set_delta_fraction(self.delta_fraction);
            shard.grid = StabGrid::build(&shard.packed);
            shard.hints.clear();
        }
        self.map = Some(map);
        self.stale_world = false;
        self.rebalances += 1;
    }

    /// Fills `out` with the sorted, deduplicated set of subscribers
    /// whose filter contains `point` — the exact matching set of one
    /// published event. Flushes implicitly; allocation-free once `out`
    /// and the per-shard buffers are warm.
    pub fn match_point_into(&mut self, point: &Point<D>, out: &mut Vec<ProcessId>) {
        self.flush();
        out.clear();
        // One probe cannot amortize a thread spawn, so this fan runs
        // inline (worker budget 1); the batched path is the parallel
        // one.
        parallel::fan(&self.shards, &mut self.point_bufs, 1, |_, shard, buf| {
            buf.clear();
            shard
                .packed
                .for_each_containing(point, |&id, _| buf.push(id));
        });
        for buf in &self.point_bufs {
            out.extend_from_slice(buf);
        }
        out.sort_unstable();
        out.dedup();
    }

    /// Answers a whole batch of probes in one shard pass — the
    /// matching engine of the batched publish pipeline.
    ///
    /// The pass amortizes everything a per-event probe pays over the
    /// whole batch:
    ///
    /// 1. **Sort** — probes are ordered along the Hilbert curve of the
    ///    mapped world, so consecutive probes are spatial neighbors
    ///    and every structure touched below stays cache-resident
    ///    between probes.
    /// 2. **Fan** — scoped workers ([`parallel::fan`]) take shards;
    ///    each worker answers the whole sorted batch against its
    ///    shard, skipping probes outside the shard's MBR (shards are
    ///    contiguous curve ranges, so most probes are owned by one
    ///    shard).
    /// 3. **Stab** — per probe, the shard's flush-built stab grid
    ///    turns matching into one cell lookup plus a few exact
    ///    rectangle tests, instead of a root-to-leaf descent of the
    ///    packed tree.
    /// 4. **Merge** — one sequential pass gathers each probe's hits
    ///    from the per-shard streams into `out`'s reused arena,
    ///    sorted and deduplicated.
    ///
    /// Single-probe matching ([`ShardedOracle::match_point_into`])
    /// stays on the packed tree: it needs no flush-built side
    /// structure and serves arbitrary one-off probes well. The batched
    /// path is what the ≥ 2×-per-event speedup of the publish
    /// pipeline comes from, and it parallelizes across shards on many
    /// cores.
    ///
    /// # Panics
    ///
    /// Panics if `points.len() > u32::MAX`.
    pub fn match_batch_into(&mut self, points: &[Point<D>], out: &mut BatchMatches) {
        self.flush();
        out.spans.clear();
        out.hits.clear();
        if points.is_empty() {
            return;
        }
        assert!(
            points.len() <= u32::MAX as usize,
            "batch is limited to 2^32 probes"
        );

        // Curve-sort the probes (key, original index), then gather the
        // points into sorted order so the refinement loops stream
        // memory forward.
        let mapper = self
            .map
            .as_ref()
            .map(|m| m.mapper().clone())
            .unwrap_or_else(|| GridMapper::new(&Rect::new([0.0; D], [1.0; D])));
        self.sorted_idx.clear();
        if D <= 2 {
            // Keys fit 32 bits: pack (key, index) into one machine
            // word so the dominant sort moves u64s, mirroring the
            // packed tree's own bulk-load sort.
            self.key_scratch.clear();
            self.key_scratch.extend(
                points
                    .iter()
                    .enumerate()
                    .map(|(i, p)| ((mapper.morton_key_of_point(p) as u64) << 32) | i as u64),
            );
            self.key_scratch.sort_unstable();
            self.sorted_idx
                .extend(self.key_scratch.iter().map(|&t| t as u32));
        } else {
            let mut tagged: Vec<(u128, u32)> = points
                .iter()
                .enumerate()
                .map(|(i, p)| (mapper.morton_key_of_point(p), i as u32))
                .collect();
            tagged.sort_unstable();
            self.sorted_idx.extend(tagged.iter().map(|&(_, i)| i));
        }
        self.sorted_points.clear();
        self.sorted_points
            .extend(self.sorted_idx.iter().map(|&i| points[i as usize]));

        let n = points.len();
        out.spans.resize(n, (0, 0));
        let dedup_needed = self.duplicate_ids > 0;

        // One worker (or one shard) cannot win anything from the
        // fan-and-merge plumbing: stab every shard per probe and
        // write each span straight into the arena instead — no
        // per-shard streams, no cursors, no merge pass at all.
        if self.threads <= 1 || self.shards.len() == 1 {
            let mbrs: Vec<Option<Rect<D>>> = self.shards.iter().map(|s| s.packed.mbr()).collect();
            for (&orig, p) in self.sorted_idx.iter().zip(&self.sorted_points) {
                let start = out.hits.len();
                let mut prev = ProcessId::from_raw(0);
                let mut sorted = true;
                for (shard, mbr) in self.shards.iter().zip(&mbrs) {
                    match mbr {
                        Some(mbr) if mbr.contains_point_branchless(p) => {
                            shard.grid.stab(&shard.packed, p, |id| {
                                sorted &= prev <= id;
                                prev = id;
                                out.hits.push(id);
                            });
                        }
                        _ => {}
                    }
                }
                if !sorted {
                    out.hits[start..].sort_unstable();
                }
                if dedup_needed {
                    let mut w = start;
                    for r in start..out.hits.len() {
                        if w == start || out.hits[r] != out.hits[w - 1] {
                            out.hits[w] = out.hits[r];
                            w += 1;
                        }
                    }
                    out.hits.truncate(w);
                }
                out.spans[orig as usize] = (start as u32, (out.hits.len() - start) as u32);
            }
            return;
        }

        let threads = self.threads;
        let sorted_points = &self.sorted_points;
        parallel::fan(
            &self.shards,
            &mut self.batch_bufs,
            threads,
            |_, shard, buf| {
                buf.hits.clear();
                buf.counts.clear();
                buf.counts.resize(sorted_points.len(), 0);
                if shard.packed.is_empty() {
                    return;
                }
                let mbr = shard.packed.mbr().expect("non-empty shard has an MBR");
                for (s, p) in sorted_points.iter().enumerate() {
                    if !mbr.contains_point_branchless(p) {
                        continue; // counts[s] stays 0
                    }
                    let before = buf.hits.len();
                    shard.grid.stab(&shard.packed, p, |id| buf.hits.push(id));
                    buf.counts[s] = (buf.hits.len() - before) as u32;
                }
            },
        );

        // Merge: bulk-copy every shard's hit stream into the arena
        // once, then walk the probes in curve order with one cursor
        // per shard. A probe whose hits all come from one shard — the
        // overwhelmingly common case, since shards tile the curve —
        // gets a span pointing straight into that shard's copied
        // stream (no per-probe copy at all); only probes straddling
        // shards gather at the arena tail. Every span is then sorted
        // (and deduplicated when subscription sets exist) in place:
        // spans are disjoint, so in-place mutation is safe, and a
        // dedup just shortens the span, leaving a dead gap in the
        // arena.
        let total: usize = self.batch_bufs.iter().map(|b| b.hits.len()).sum();
        out.hits.reserve(2 * total);
        self.stream_bases.clear();
        for buf in &self.batch_bufs {
            self.stream_bases.push(out.hits.len() as u32);
            out.hits.extend_from_slice(&buf.hits);
        }
        self.cursors.clear();
        self.cursors.resize(self.batch_bufs.len(), 0);
        for (s, &orig) in self.sorted_idx.iter().enumerate() {
            let mut owners = 0usize;
            let mut owner = 0usize;
            let mut owner_take = 0usize;
            for (k, buf) in self.batch_bufs.iter().enumerate() {
                if buf.counts.is_empty() {
                    continue; // empty shard produced no stream
                }
                let take = buf.counts[s] as usize;
                if take > 0 {
                    owners += 1;
                    owner = k;
                    owner_take = take;
                }
            }
            let (start, mut len) = if owners <= 1 {
                let start = (self.stream_bases[owner] + self.cursors[owner]) as usize;
                self.cursors[owner] += owner_take as u32;
                (start, owner_take)
            } else {
                // Straddling probe: gather its slices at the tail.
                let start = out.hits.len();
                let mut gathered = 0usize;
                for (k, buf) in self.batch_bufs.iter().enumerate() {
                    if buf.counts.is_empty() {
                        continue;
                    }
                    let take = buf.counts[s] as usize;
                    let cursor = self.cursors[k] as usize;
                    out.hits.extend_from_slice(&buf.hits[cursor..cursor + take]);
                    self.cursors[k] = (cursor + take) as u32;
                    gathered += take;
                }
                (start, gathered)
            };
            let span = &mut out.hits[start..start + len];
            if span.windows(2).any(|w| w[0] > w[1]) {
                span.sort_unstable();
            }
            if dedup_needed {
                let mut w = 1usize.min(len);
                for r in 1..len {
                    if out.hits[start + r] != out.hits[start + w - 1] {
                        out.hits[start + w] = out.hits[start + r];
                        w += 1;
                    }
                }
                len = w;
            }
            out.spans[orig as usize] = (start as u32, len as u32);
        }
    }
}

/// An immutable point-in-time view of a [`ShardedOracle`]'s live
/// subscription set, produced by [`ShardedOracle::snapshot`].
///
/// Internally one epoch-free [`FrozenShard`] per oracle shard: the
/// packed tiers are `Arc`-shared with the live oracle (snapshotting is
/// a reference-count bump plus a delta-layer copy), and queries run
/// the same pruned packed descent the live oracle uses. Because the
/// view is `&self`-only and owns everything it needs, an
/// `Arc<OracleSnapshot>` serves any number of concurrent readers
/// without ever blocking — or being blocked by — the writer that keeps
/// mutating the source oracle.
#[derive(Debug, Clone)]
pub struct OracleSnapshot<const D: usize> {
    shards: Vec<FrozenShard<ProcessId, D>>,
    len: usize,
}

impl<const D: usize> OracleSnapshot<D> {
    /// Live `(id, rect)` entries captured by the snapshot.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when the snapshot holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Fills `out` with the sorted, deduplicated set of subscribers
    /// whose filter contained `point` at snapshot time — the immutable
    /// counterpart of [`ShardedOracle::match_point_into`].
    pub fn match_point_into(&self, point: &Point<D>, out: &mut Vec<ProcessId>) {
        out.clear();
        for shard in &self.shards {
            shard.for_each_containing(point, |&id, _| out.push(id));
        }
        out.sort_unstable();
        out.dedup();
    }

    /// [`OracleSnapshot::match_point_into`] into a fresh vector.
    pub fn match_point(&self, point: &Point<D>) -> Vec<ProcessId> {
        let mut out = Vec::new();
        self.match_point_into(point, &mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pid(i: u64) -> ProcessId {
        ProcessId::from_raw(i)
    }

    fn grid_rect(i: u64) -> Rect<2> {
        let x = (i % 16) as f64 * 10.0;
        let y = (i / 16) as f64 * 10.0;
        Rect::new([x, y], [x + 8.0, y + 8.0])
    }

    #[test]
    fn small_deltas_stay_incremental() {
        let mut oracle: ShardedOracle<2> = ShardedOracle::new(4);
        for i in 0..256 {
            oracle.insert(pid(i), grid_rect(i));
        }
        let first = oracle.flush();
        assert!(first.rebalanced, "first flush establishes the map");
        assert_eq!(first.rebuilt_shards, 4);
        assert_eq!(first.staged_absorbed, 256, "initial load was all staged");
        let baseline = oracle.rebuild_count();

        // A clean oracle flushes as a no-op.
        assert_eq!(oracle.flush(), OracleFlush::default());
        assert_eq!(oracle.rebuild_count(), baseline);

        // A few in-world mutations stay in the delta layer: no shard
        // rebuilds, matching is exact anyway.
        let rect = grid_rect(37);
        assert!(oracle.remove(pid(37), &rect));
        oracle.insert(pid(999), grid_rect(40));
        assert_eq!(oracle.delta_len(), 2, "one tombstone + one staged");
        assert_eq!(
            oracle.flush(),
            OracleFlush::default(),
            "delta within budget"
        );
        assert_eq!(oracle.rebuild_count(), baseline);
        let mut hits = Vec::new();
        oracle.match_point_into(&rect.center(), &mut hits);
        assert!(!hits.contains(&pid(37)), "tombstoned entry not matched");
        oracle.match_point_into(&grid_rect(40).center(), &mut hits);
        assert!(hits.contains(&pid(999)), "staged entry matched");
        assert!(hits.contains(&pid(40)));
    }

    #[test]
    fn snapshot_answers_exactly_and_ignores_later_mutations() {
        let mut oracle: ShardedOracle<2> = ShardedOracle::new(4);
        for i in 0..256 {
            oracle.insert(pid(i), grid_rect(i));
        }
        oracle.flush();
        // Leave some un-flushed delta so the snapshot covers both
        // tiers: a staged insert and a tombstoned removal.
        assert!(oracle.remove(pid(7), &grid_rect(7)));
        oracle.insert(pid(500), grid_rect(7));
        let snap = oracle.snapshot();
        assert_eq!(snap.len(), oracle.len());

        // Reference answers before mutating further.
        let mut want = Vec::new();
        let probes: Vec<Point<2>> = (0..256)
            .step_by(17)
            .map(|i| grid_rect(i).center())
            .collect();
        let expected: Vec<Vec<ProcessId>> = probes
            .iter()
            .map(|p| {
                oracle.match_point_into(p, &mut want);
                want.clone()
            })
            .collect();

        // Mutate the live oracle heavily; the snapshot must not move.
        for i in 0..128 {
            oracle.remove(pid(i), &grid_rect(i));
        }
        oracle.flush();
        for (p, want) in probes.iter().zip(&expected) {
            assert_eq!(&snap.match_point(p), want, "at {p:?}");
        }
        // And it really reflects the pre-snapshot delta.
        let seven = grid_rect(7).center();
        let at_seven = snap.match_point(&seven);
        assert!(!at_seven.contains(&pid(7)), "tombstone visible");
        assert!(at_seven.contains(&pid(500)), "staged insert visible");
    }

    #[test]
    fn snapshot_serves_concurrent_readers_lock_free() {
        let mut oracle: ShardedOracle<2> = ShardedOracle::new(4);
        for i in 0..128 {
            oracle.insert(pid(i), grid_rect(i));
        }
        oracle.flush();
        let probes: Vec<Point<2>> = (0..128).map(|i| grid_rect(i).center()).collect();
        let mut buf = Vec::new();
        let expected: Vec<Vec<ProcessId>> = probes
            .iter()
            .map(|p| {
                oracle.match_point_into(p, &mut buf);
                buf.clone()
            })
            .collect();
        let snap = std::sync::Arc::new(oracle.snapshot());
        std::thread::scope(|scope| {
            for _ in 0..3 {
                let snap = std::sync::Arc::clone(&snap);
                let probes = &probes;
                let expected = &expected;
                scope.spawn(move || {
                    let mut out = Vec::new();
                    for (p, want) in probes.iter().zip(expected) {
                        snap.match_point_into(p, &mut out);
                        assert_eq!(&out, want);
                    }
                });
            }
            // Writer keeps churning while readers run.
            for i in 0..64 {
                oracle.remove(pid(i), &grid_rect(i));
                oracle.insert(pid(1000 + i), grid_rect(i));
            }
            oracle.flush();
        });
    }

    #[test]
    fn zero_fraction_compacts_only_the_owning_shard() {
        let mut oracle: ShardedOracle<2> = ShardedOracle::new(4);
        oracle.set_delta_fraction(0.0);
        for i in 0..256 {
            oracle.insert(pid(i), grid_rect(i));
        }
        oracle.flush();
        let baseline = oracle.rebuild_count();

        // Rebuild-per-flush mode: one mutation compacts exactly the
        // owning shard (the pre-delta dirty-shard behavior).
        let rect = grid_rect(37);
        let owner = oracle.shard_of(&rect).expect("map exists");
        assert!(oracle.remove(pid(37), &rect));
        let flush = oracle.flush();
        assert!(!flush.rebalanced);
        assert_eq!(flush.rebuilt_shards, 1, "only the owning shard rebuilds");
        assert_eq!(flush.compacted_shards, 1);
        assert_eq!(flush.tombstones_reclaimed, 1);
        assert_eq!(flush.staged_absorbed, 0);
        assert_eq!(oracle.rebuild_count(), baseline + 1);
        assert_eq!(oracle.shard_of(&rect), Some(owner), "assignment is stable");
    }

    #[test]
    fn compaction_triggers_once_the_delta_outgrows_the_fraction() {
        let mut oracle: ShardedOracle<2> = ShardedOracle::new(1);
        oracle.set_delta_fraction(0.1);
        for i in 0..200 {
            oracle.insert(pid(i), grid_rect(i % 256));
        }
        oracle.flush();
        let compactions = oracle.compaction_count();
        // Stay under 10%: no compaction.
        for i in 0..20 {
            oracle.insert(pid(1000 + i), grid_rect(i));
        }
        assert_eq!(oracle.flush(), OracleFlush::default());
        assert_eq!(oracle.compaction_count(), compactions);
        // Push past the fraction: the shard compacts and the
        // accounting reports what was absorbed.
        oracle.insert(pid(2000), grid_rect(3));
        let flush = oracle.flush();
        assert_eq!(flush.compacted_shards, 1);
        assert_eq!(flush.staged_absorbed, 21);
        assert_eq!(oracle.compaction_count(), compactions + 1);
        assert!(oracle.staged_absorbed_total() >= 21);
        assert_eq!(oracle.delta_len(), 0);
    }

    #[test]
    fn staged_and_tombstoned_entries_answer_batches_exactly() {
        // Mutations between flushes must be visible to the batched
        // (stab-grid) path through the patch layer, including staged
        // removals that swap-remove into vacated indexes.
        for threads in [1usize, 3] {
            let mut oracle: ShardedOracle<2> = ShardedOracle::new(4);
            oracle.set_threads(threads);
            for i in 0..128 {
                oracle.insert(pid(i), grid_rect(i));
            }
            oracle.flush();
            // Stage three entries at the same spot, remove the first
            // (forcing a swap-remove), tombstone a packed one.
            oracle.insert(pid(500), grid_rect(10));
            oracle.insert(pid(501), grid_rect(10));
            oracle.insert(pid(502), grid_rect(10));
            assert!(oracle.remove(pid(500), &grid_rect(10)));
            assert!(oracle.remove(pid(10), &grid_rect(10)));
            let probe = grid_rect(10).center();
            let mut batch = BatchMatches::new();
            oracle.match_batch_into(&[probe], &mut batch);
            assert_eq!(batch.matches(0), &[pid(501), pid(502)], "threads={threads}");
            let mut single = Vec::new();
            oracle.match_point_into(&probe, &mut single);
            assert_eq!(batch.matches(0), single.as_slice(), "threads={threads}");
        }
    }

    #[test]
    fn concurrent_flush_is_two_phase_and_stays_exact() {
        let mut oracle: ShardedOracle<2> = ShardedOracle::new(4);
        oracle.set_compaction_mode(CompactionMode::Concurrent);
        oracle.set_delta_fraction(0.05);
        for i in 0..512 {
            oracle.insert(pid(i), grid_rect(i % 256));
        }
        oracle.flush();
        assert_eq!(oracle.compacting_shards(), 0);

        // Push one shard's delta over the fraction: the flush *begins*
        // a background merge instead of stalling on it.
        for i in 0..64 {
            oracle.insert(pid(5000 + i), grid_rect(7));
        }
        let begin = oracle.flush();
        assert!(begin.begun_compactions >= 1, "{begin:?}");
        assert_eq!(begin.compact_ns, 0, "no inline merge on the begin phase");
        assert!(oracle.compacting_shards() >= 1, "merge in flight");
        let compactions_before = oracle.compaction_count();

        // Mid-compaction the oracle keeps answering exactly, absorbing
        // further mutations into the second-generation delta.
        oracle.insert(pid(9000), grid_rect(7));
        assert!(oracle.remove(pid(5000), &grid_rect(7)));
        let probe = grid_rect(7).center();
        let mut batch = BatchMatches::new();
        oracle.match_batch_into(&[probe], &mut batch);
        let mut single = Vec::new();
        oracle.match_point_into(&probe, &mut single);
        assert_eq!(batch.matches(0), single.as_slice());
        assert!(single.contains(&pid(9000)), "gen-2 insert visible");
        assert!(
            !single.contains(&pid(5000)),
            "mid-compaction removal visible"
        );
        assert!(single.contains(&pid(5042)), "frozen staged entry visible");

        // Finish: the merged tree swaps in (here, or already on one of
        // the implicit query flushes above) and the delta folds away.
        oracle.finish_compactions();
        assert_eq!(oracle.compacting_shards(), 0);
        oracle.match_point_into(&probe, &mut single);
        assert_eq!(
            batch.matches(0),
            single.as_slice(),
            "answers unchanged by install"
        );
        // The lifetime counters saw the concurrent merge.
        assert!(oracle.compaction_count() > compactions_before);
        assert!(oracle.staged_absorbed_total() >= 64);
    }

    #[test]
    fn imbalance_is_repaired_by_a_boundary_shift() {
        for mode in [CompactionMode::Synchronous, CompactionMode::Concurrent] {
            let mut oracle: ShardedOracle<2> = ShardedOracle::new(8);
            // A huge fraction so compaction never kicks in and the
            // rebalance path is isolated.
            oracle.set_delta_fraction(1e9);
            for i in 0..2048 {
                oracle.insert(pid(i), grid_rect(i % 256));
            }
            oracle.flush();
            assert_eq!(oracle.rebalance_count(), 1, "initial full rebalance");

            // Pile ~2000 in-world entries onto one spot: the owning
            // shard blows past 4x ideal + 64.
            let hot = grid_rect(3);
            let hot_shard = oracle.shard_of(&hot).expect("map exists");
            for i in 0..2000 {
                oracle.insert(pid(10_000 + i), hot);
            }
            let before = oracle.shard_len(hot_shard);
            let flush = oracle.flush();
            assert!(flush.split_rebalanced, "mode {mode:?}: {flush:?}");
            assert!(!flush.rebalanced, "no full redistribute, mode {mode:?}");
            assert_eq!(
                flush.rebuilt_shards, 0,
                "handoff migration rebuilds nothing"
            );
            assert!(
                flush.migrated_entries > 0,
                "crossing entries migrated: {flush:?}"
            );
            assert_eq!(oracle.rebalance_count(), 1, "full count unchanged");
            assert_eq!(oracle.split_rebalance_count(), 1);
            // The overloaded shard shed entries to its neighbor.
            let after = oracle.shard_len(hot_shard);
            assert!(after < before, "hot shard {before} -> {after}");
            // Matching stays exact across the shifted boundary.
            let mut hits = Vec::new();
            oracle.match_point_into(&hot.center(), &mut hits);
            // 2000 piled plus the 2048/256 = 8 original copies of slot 3.
            assert_eq!(
                hits.len(),
                2008,
                "matching exact across the shifted boundary"
            );
        }
    }

    #[test]
    fn out_of_world_insert_forces_rebalance() {
        let mut oracle: ShardedOracle<2> = ShardedOracle::new(2);
        for i in 0..64 {
            oracle.insert(pid(i), grid_rect(i));
        }
        oracle.flush();
        let before = oracle.rebalance_count();
        oracle.insert(pid(999), Rect::new([5000.0, 5000.0], [5001.0, 5001.0]));
        let flush = oracle.flush();
        assert!(flush.rebalanced);
        assert_eq!(oracle.rebalance_count(), before + 1);
        // The outlier is findable afterwards.
        let mut hits = Vec::new();
        oracle.match_point_into(&Point::new([5000.5, 5000.5]), &mut hits);
        assert_eq!(hits, vec![pid(999)]);
    }

    #[test]
    fn empty_oracle_answers_empty() {
        let mut oracle: ShardedOracle<2> = ShardedOracle::new(3);
        let mut hits = vec![pid(7)];
        oracle.match_point_into(&Point::new([1.0, 1.0]), &mut hits);
        assert!(hits.is_empty());
        let mut batch = BatchMatches::new();
        oracle.match_batch_into(&[Point::new([1.0, 1.0])], &mut batch);
        assert_eq!(batch.probes(), 1);
        assert!(batch.matches(0).is_empty());
        oracle.match_batch_into(&[], &mut batch);
        assert_eq!(batch.probes(), 0);
    }

    #[test]
    fn many_shards_and_fan_path_stay_correct() {
        // Shard counts past any internal buffer width, on both the
        // fused and the fan batch path (regression: a fixed 64-wide
        // stream-base array once made > 64 shards panic).
        for threads in [1usize, 3] {
            let mut oracle: ShardedOracle<2> = ShardedOracle::new(70);
            oracle.set_threads(threads);
            for i in 0..512 {
                oracle.insert(pid(i), grid_rect(i % 256));
            }
            let probe = grid_rect(37).center();
            let mut batch = BatchMatches::new();
            oracle.match_batch_into(&[probe], &mut batch);
            let mut single = Vec::new();
            oracle.match_point_into(&probe, &mut single);
            assert!(!single.is_empty());
            assert_eq!(batch.matches(0), single.as_slice(), "threads={threads}");
        }
    }

    /// Single-point and batched answers over a probe sweep, for
    /// comparing a restored oracle against its source.
    fn answers(oracle: &mut ShardedOracle<2>, probes: &[Point<2>]) -> Vec<Vec<ProcessId>> {
        let mut buf = Vec::new();
        let mut batch = BatchMatches::new();
        oracle.match_batch_into(probes, &mut batch);
        probes
            .iter()
            .enumerate()
            .map(|(i, p)| {
                oracle.match_point_into(p, &mut buf);
                assert_eq!(batch.matches(i), buf.as_slice(), "paths agree at {p:?}");
                buf.clone()
            })
            .collect()
    }

    #[test]
    fn oracle_snapshot_bytes_round_trips_mid_churn() {
        let mut oracle: ShardedOracle<2> = ShardedOracle::new(4);
        for i in 0..256 {
            oracle.insert(pid(i), grid_rect(i));
        }
        oracle.flush();
        // Leave a live delta: staged inserts (one a duplicate id, so
        // the restored id-count rebuild is exercised), a staged
        // removal, and a tombstone.
        oracle.insert(pid(500), grid_rect(7));
        oracle.insert(pid(40), grid_rect(7));
        oracle.insert(pid(501), grid_rect(9));
        assert!(oracle.remove(pid(501), &grid_rect(9)));
        assert!(oracle.remove(pid(3), &grid_rect(3)));

        let probes: Vec<Point<2>> = (0..256).map(|i| grid_rect(i).center()).collect();
        let want = answers(&mut oracle, &probes);
        for options in [
            SnapshotOptions::default(),
            SnapshotOptions {
                quantize_interior: true,
                aligned_fanout: true,
            },
        ] {
            let bytes = oracle.snapshot_bytes_with(options);
            let mut restored = ShardedOracle::restore_bytes(bytes).expect("restores");
            assert_eq!(restored.len(), oracle.len());
            assert_eq!(restored.shard_count(), oracle.shard_count());
            restored.verify_snapshot().expect("bulk checksums hold");
            assert_eq!(answers(&mut restored, &probes), want, "{options:?}");
            // The restored oracle keeps mutating like the original.
            restored.insert(pid(900), grid_rect(11));
            assert!(restored.remove(pid(40), &grid_rect(40)));
            let mut hits = Vec::new();
            restored.match_point_into(&grid_rect(11).center(), &mut hits);
            assert!(hits.contains(&pid(900)), "{options:?}");
        }
    }

    #[test]
    fn oracle_snapshot_before_first_flush_round_trips() {
        // No map yet: everything parked in shard 0, HAS_MAP clear.
        let mut oracle: ShardedOracle<2> = ShardedOracle::new(3);
        for i in 0..32 {
            oracle.insert(pid(i), grid_rect(i));
        }
        let bytes = oracle.snapshot_bytes();
        let mut restored = ShardedOracle::restore_bytes(bytes).expect("restores");
        assert_eq!(restored.len(), 32);
        assert!(restored.shard_of(&grid_rect(5)).is_none(), "no map yet");
        let flush = restored.flush();
        assert!(flush.rebalanced, "first flush establishes the map");
        let mut hits = Vec::new();
        restored.match_point_into(&grid_rect(5).center(), &mut hits);
        assert_eq!(hits, vec![pid(5)]);
    }

    #[test]
    fn oracle_restore_rejects_corruption_without_panicking() {
        let mut oracle: ShardedOracle<2> = ShardedOracle::new(4);
        for i in 0..256 {
            oracle.insert(pid(i), grid_rect(i));
        }
        oracle.flush();
        oracle.insert(pid(500), grid_rect(7));
        let good = oracle.snapshot_bytes();

        let mut bad = good.clone();
        bad[0] ^= 0xff;
        assert!(matches!(
            ShardedOracle::<2>::restore_bytes(bad),
            Err(SnapshotError::BadMagic { .. })
        ));

        let mut bad = good.clone();
        bad[4] = 99;
        assert!(matches!(
            ShardedOracle::<2>::restore_bytes(bad),
            Err(SnapshotError::WrongVersion { found: 99, .. })
        ));

        assert!(matches!(
            ShardedOracle::<3>::restore_bytes(good.clone()),
            Err(SnapshotError::WrongDims {
                found: 2,
                expected: 3
            })
        ));

        // A flipped meta byte (first boundary word) fails the eager
        // meta checksum.
        let mut bad = good.clone();
        bad[ORACLE_HEADER_LEN + 1] ^= 0x01;
        assert!(matches!(
            ShardedOracle::<2>::restore_bytes(bad),
            Err(SnapshotError::ChecksumMismatch)
        ));

        // Truncations at every structural boundary return errors.
        for cut in [0, 5, 63, 64, 200, good.len() / 2, good.len() - 1] {
            let err = ShardedOracle::<2>::restore_bytes(good[..cut].to_vec())
                .err()
                .unwrap_or_else(|| panic!("truncation to {cut} accepted"));
            let _ = err.to_string();
        }

        // Deterministic fuzz over the header and meta region: no flip
        // may panic, and any accepted buffer must answer queries.
        for pos in 0..good.len().min(320) {
            for flip in [0x01u8, 0x80, 0xff] {
                let mut fuzzed = good.clone();
                fuzzed[pos] ^= flip;
                if let Ok(mut restored) = ShardedOracle::<2>::restore_bytes(fuzzed) {
                    let mut hits = Vec::new();
                    restored.match_point_into(&grid_rect(7).center(), &mut hits);
                }
            }
        }
    }

    #[test]
    fn duplicate_ids_dedup_in_both_paths() {
        // A subscription set: one id, three member rects in different
        // places, two containing the probe.
        let mut oracle: ShardedOracle<2> = ShardedOracle::new(4);
        oracle.insert(pid(1), Rect::new([0.0, 0.0], [10.0, 10.0]));
        oracle.insert(pid(1), Rect::new([5.0, 5.0], [20.0, 20.0]));
        oracle.insert(pid(1), Rect::new([100.0, 100.0], [110.0, 110.0]));
        oracle.insert(pid(2), Rect::new([0.0, 0.0], [50.0, 50.0]));
        let probe = Point::new([7.0, 7.0]);
        let mut hits = Vec::new();
        oracle.match_point_into(&probe, &mut hits);
        assert_eq!(hits, vec![pid(1), pid(2)]);
        let mut batch = BatchMatches::new();
        oracle.match_batch_into(&[probe], &mut batch);
        assert_eq!(batch.matches(0), &[pid(1), pid(2)]);
        assert_eq!(batch.total_hits(), 2);
    }
}
