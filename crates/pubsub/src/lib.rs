//! Content-based publish/subscribe over the DR-tree overlay.
//!
//! This crate is the application layer of the reproduced paper: it puts
//! the attribute-based filter language of §2.1 ([`drtree_spatial::filter`])
//! on top of the DR-tree overlay (`drtree-core`), adds an exact-matching
//! oracle to audit deliveries, and aggregates the routing-accuracy
//! statistics that the paper reports ("the false positive rate is in
//! the order of 2–3% with most workloads", §4).
//!
//! The oracle is a [`ShardedOracle`]: the live subscription set
//! partitioned across `K` packed R-tree shards by the Hilbert key of
//! each filter's center, maintained incrementally under churn (each
//! shard absorbs mutations into a staged/tombstone delta layer,
//! compacted only when it outgrows a configured fraction), and probed
//! by fanning queries across shards. It serves double duty as the
//! matching engine of the batched publish pipeline
//! ([`Broker::publish_batch`]), which amortizes one shard pass —
//! scoped-thread fan-out, joint packed descents, one counting-sort
//! merge — over a whole batch of events.
//!
//! # Example
//!
//! ```
//! use drtree_pubsub::Broker;
//! use drtree_core::DrTreeConfig;
//! use drtree_spatial::{Event, FilterExpr, Op, Schema};
//!
//! let schema = Schema::new(["price", "qty"]);
//! let mut broker: Broker<2> = Broker::new(schema, DrTreeConfig::default(), 7)?;
//!
//! let cheap = broker.subscribe(
//!     &FilterExpr::new().and("price", Op::Le, 10.0).and("qty", Op::Ge, 0.0).and("qty", Op::Le, 1e6))?;
//! let _bulk = broker.subscribe(
//!     &FilterExpr::new().and("qty", Op::Ge, 1000.0).and("qty", Op::Le, 1e6).and("price", Op::Ge, 0.0).and("price", Op::Le, 1e6))?;
//!
//! let delivery = broker.publish(cheap, &Event::new().with("price", 5.0).with("qty", 10.0))?;
//! assert!(delivery.false_negatives.is_empty());
//! assert!(broker.stats().false_negative_rate() == 0.0);
//! # Ok::<(), drtree_pubsub::BrokerError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod broker;
pub mod federation;
mod ingress;
mod shard;
mod stats;

pub use broker::{Broker, BrokerError};
pub use federation::{
    run_federated_convergence, CompletedEvent, FedConfig, FedConvergenceConfig,
    FedConvergenceReport, FedEngine, FedNode, FederatedFabric, RangeView, RejoinOutcome,
};
pub use ingress::{
    AuditRecord, IngressConfig, IngressError, LatencyHistogram, LatencySummary, MultiBroker,
    PublisherHandle, RateMeter, RateSnapshot,
};
pub use shard::{BatchMatches, CompactionMode, OracleFlush, OracleSnapshot, ShardedOracle};
pub use stats::RoutingStats;
