use std::fmt;
use std::time::Duration;

use drtree_core::PublishReport;

/// Routing-accuracy statistics aggregated over many publications.
///
/// This is the quantity behind the paper's headline experimental claim:
/// "the false positive rate is in the order of 2–3% with most
/// workloads" while false negatives are eradicated (§4).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RoutingStats {
    events: u64,
    deliveries: u64,
    matching: u64,
    false_positives: u64,
    false_negatives: u64,
    messages: u64,
    oracle_rebuilds: u64,
    oracle_rebuild_ns: u64,
    oracle_compactions: u64,
    oracle_staged_absorbed: u64,
    oracle_tombstones_reclaimed: u64,
    oracle_swap_ns_total: u64,
    oracle_swap_ns_max: u64,
    oracle_compact_ns_total: u64,
    oracle_compact_ns_max: u64,
    oracle_moved_in_place: u64,
    oracle_rekeyed: u64,
    oracle_leases_expired: u64,
    ingress_submitted: u64,
    ingress_committed: u64,
    ingress_rejected: u64,
    ingress_p50_ns: u64,
    ingress_p99_ns: u64,
    ingress_p999_ns: u64,
    ingress_max_ns: u64,
}

impl RoutingStats {
    /// Zeroed statistics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Folds one publish outcome into the aggregate.
    pub fn absorb(&mut self, report: &PublishReport) {
        self.events += 1;
        self.deliveries += report.receivers.len() as u64;
        self.matching += report.matching.len() as u64;
        self.false_positives += report.false_positives.len() as u64;
        self.false_negatives += report.false_negatives.len() as u64;
        self.messages += report.messages;
    }

    /// Number of published events.
    pub fn events(&self) -> u64 {
        self.events
    }

    /// Total deliveries (processes that received an event).
    pub fn deliveries(&self) -> u64 {
        self.deliveries
    }

    /// Total subscribers that should have received events.
    pub fn matching(&self) -> u64 {
        self.matching
    }

    /// Total false positives.
    pub fn false_positives(&self) -> u64 {
        self.false_positives
    }

    /// Total false negatives.
    pub fn false_negatives(&self) -> u64 {
        self.false_negatives
    }

    /// Total `PubDown`/`PubUp` messages.
    pub fn messages(&self) -> u64 {
        self.messages
    }

    /// Folds one oracle maintenance pass into the aggregate:
    /// `shards` packed-tree rebuilds taking `elapsed` wall-clock time.
    /// Keeping this out of the publish columns is what lets benches
    /// separate matching cost from (re)build cost.
    pub fn absorb_oracle_rebuild(&mut self, shards: u64, elapsed: Duration) {
        self.oracle_rebuilds += shards;
        self.oracle_rebuild_ns += elapsed.as_nanos() as u64;
    }

    /// Total oracle shard rebuilds paid (lazily on publish, or eagerly
    /// via `Broker::flush_oracle`).
    pub fn oracle_rebuilds(&self) -> u64 {
        self.oracle_rebuilds
    }

    /// Total wall-clock nanoseconds spent rebuilding the oracle.
    pub fn oracle_rebuild_ns(&self) -> u64 {
        self.oracle_rebuild_ns
    }

    /// Folds one delta-layer maintenance pass into the aggregate:
    /// `merges` shard compactions absorbing `staged` staged entries
    /// and reclaiming `tombstones` dead slots. Kept separate from the
    /// publish columns for the same reason as the rebuild columns —
    /// publish timings must isolate matching.
    pub fn absorb_oracle_compaction(&mut self, merges: u64, staged: u64, tombstones: u64) {
        self.oracle_compactions += merges;
        self.oracle_staged_absorbed += staged;
        self.oracle_tombstones_reclaimed += tombstones;
    }

    /// Total delta-layer merges (shard compactions) performed.
    pub fn oracle_compactions(&self) -> u64 {
        self.oracle_compactions
    }

    /// Total staged entries absorbed into packed levels by compactions.
    pub fn oracle_staged_absorbed(&self) -> u64 {
        self.oracle_staged_absorbed
    }

    /// Total tombstoned slots reclaimed by compactions.
    pub fn oracle_tombstones_reclaimed(&self) -> u64 {
        self.oracle_tombstones_reclaimed
    }

    /// Folds one flush's pause profile into the aggregate: `swap_ns`
    /// is the publish-path stall (freezing, swapping, fixing up — for
    /// a concurrent flush, everything; for a synchronous flush,
    /// everything but the inline merge) and `compact_ns` the merge
    /// work wherever it ran. Tracking max alongside total is what
    /// exposes stop-the-world behavior: a synchronous compaction shows
    /// up as one giant `swap`-side pause, a concurrent one as many
    /// tiny swaps plus off-path compact time.
    pub fn absorb_oracle_pause(&mut self, swap_ns: u64, compact_ns: u64) {
        self.oracle_swap_ns_total += swap_ns;
        self.oracle_swap_ns_max = self.oracle_swap_ns_max.max(swap_ns);
        self.oracle_compact_ns_total += compact_ns;
        self.oracle_compact_ns_max = self.oracle_compact_ns_max.max(compact_ns);
    }

    /// Total publish-path nanoseconds spent swapping (non-merge flush
    /// work) across all flushes.
    pub fn oracle_swap_ns_total(&self) -> u64 {
        self.oracle_swap_ns_total
    }

    /// Largest single-flush publish-path swap pause, in nanoseconds.
    pub fn oracle_swap_ns_max(&self) -> u64 {
        self.oracle_swap_ns_max
    }

    /// Total nanoseconds spent merging delta layers (inline or on
    /// background workers) across all flushes.
    pub fn oracle_compact_ns_total(&self) -> u64 {
        self.oracle_compact_ns_total
    }

    /// Largest single-flush merge time, in nanoseconds.
    pub fn oracle_compact_ns_max(&self) -> u64 {
        self.oracle_compact_ns_max
    }

    /// Folds one flush's mobility counters into the aggregate:
    /// subscription moves absorbed as same-shard delta patches, moves
    /// re-keyed across a Hilbert shard boundary, and entries evicted
    /// by TTL lease expiry.
    pub fn absorb_oracle_moves(&mut self, moved_in_place: u64, rekeyed: u64, leases_expired: u64) {
        self.oracle_moved_in_place += moved_in_place;
        self.oracle_rekeyed += rekeyed;
        self.oracle_leases_expired += leases_expired;
    }

    /// Subscription moves absorbed without leaving their shard (an
    /// in-place packed-slot refit or a staged rewrite).
    pub fn oracle_moved_in_place(&self) -> u64 {
        self.oracle_moved_in_place
    }

    /// Subscription moves whose curve key crossed a shard boundary,
    /// forcing a remove/re-stage handoff.
    pub fn oracle_rekeyed(&self) -> u64 {
        self.oracle_rekeyed
    }

    /// Subscriptions evicted because their TTL lease expired.
    pub fn oracle_leases_expired(&self) -> u64 {
        self.oracle_leases_expired
    }

    /// Folds the concurrent-ingress counters into the aggregate:
    /// `submitted`/`committed`/`rejected` publication counts from the
    /// ingress rate meter, and the open-loop ingress latency quantiles
    /// (nanoseconds, billed from *scheduled arrival* so queue wait is
    /// never hidden — no coordinated omission). Quantiles are
    /// point-in-time values, so re-absorbing replaces rather than
    /// sums them (maxima still fold with `max`).
    #[allow(clippy::too_many_arguments)]
    pub fn absorb_ingress(
        &mut self,
        submitted: u64,
        committed: u64,
        rejected: u64,
        p50_ns: u64,
        p99_ns: u64,
        p999_ns: u64,
        max_ns: u64,
    ) {
        self.ingress_submitted += submitted;
        self.ingress_committed += committed;
        self.ingress_rejected += rejected;
        self.ingress_p50_ns = p50_ns;
        self.ingress_p99_ns = p99_ns;
        self.ingress_p999_ns = p999_ns;
        self.ingress_max_ns = self.ingress_max_ns.max(max_ns);
    }

    /// Publications accepted into an ingress queue.
    pub fn ingress_submitted(&self) -> u64 {
        self.ingress_submitted
    }

    /// Publications committed through the overlay by the ingress loop.
    pub fn ingress_committed(&self) -> u64 {
        self.ingress_committed
    }

    /// Publications rejected by admission control (queue full on a
    /// non-blocking submit, or a closed queue).
    pub fn ingress_rejected(&self) -> u64 {
        self.ingress_rejected
    }

    /// Median ingress latency in nanoseconds (scheduled arrival →
    /// commit).
    pub fn ingress_p50_ns(&self) -> u64 {
        self.ingress_p50_ns
    }

    /// 99th-percentile ingress latency in nanoseconds.
    pub fn ingress_p99_ns(&self) -> u64 {
        self.ingress_p99_ns
    }

    /// 99.9th-percentile ingress latency in nanoseconds.
    pub fn ingress_p999_ns(&self) -> u64 {
        self.ingress_p999_ns
    }

    /// Worst observed ingress latency in nanoseconds.
    pub fn ingress_max_ns(&self) -> u64 {
        self.ingress_max_ns
    }

    /// Share of deliveries that were false positives.
    pub fn false_positive_rate(&self) -> f64 {
        if self.deliveries == 0 {
            return 0.0;
        }
        self.false_positives as f64 / self.deliveries as f64
    }

    /// Share of interested subscribers that were missed.
    pub fn false_negative_rate(&self) -> f64 {
        if self.matching == 0 {
            return 0.0;
        }
        self.false_negatives as f64 / self.matching as f64
    }

    /// Mean messages spent per event.
    pub fn messages_per_event(&self) -> f64 {
        if self.events == 0 {
            return 0.0;
        }
        self.messages as f64 / self.events as f64
    }
}

impl fmt::Display for RoutingStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "events={} deliveries={} fp={} ({:.2}%) fn={} ({:.2}%) msgs/event={:.1} \
             oracle-rebuilds={} ({:.1}ms) compactions={} (staged={} tombstones={}) \
             pause: swap={:.2}ms (max {:.2}ms) compact={:.2}ms (max {:.2}ms)",
            self.events,
            self.deliveries,
            self.false_positives,
            100.0 * self.false_positive_rate(),
            self.false_negatives,
            100.0 * self.false_negative_rate(),
            self.messages_per_event(),
            self.oracle_rebuilds,
            self.oracle_rebuild_ns as f64 / 1e6,
            self.oracle_compactions,
            self.oracle_staged_absorbed,
            self.oracle_tombstones_reclaimed,
            self.oracle_swap_ns_total as f64 / 1e6,
            self.oracle_swap_ns_max as f64 / 1e6,
            self.oracle_compact_ns_total as f64 / 1e6,
            self.oracle_compact_ns_max as f64 / 1e6,
        )?;
        if self.oracle_moved_in_place + self.oracle_rekeyed + self.oracle_leases_expired > 0 {
            write!(
                f,
                " mobility: moved-in-place={} rekeyed={} leases-expired={}",
                self.oracle_moved_in_place, self.oracle_rekeyed, self.oracle_leases_expired,
            )?;
        }
        if self.ingress_submitted > 0 {
            write!(
                f,
                " ingress: submitted={} committed={} rejected={} \
                 lat p50={:.3}ms p99={:.3}ms p999={:.3}ms max={:.3}ms",
                self.ingress_submitted,
                self.ingress_committed,
                self.ingress_rejected,
                self.ingress_p50_ns as f64 / 1e6,
                self.ingress_p99_ns as f64 / 1e6,
                self.ingress_p999_ns as f64 / 1e6,
                self.ingress_max_ns as f64 / 1e6,
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use drtree_core::ProcessId;

    fn report(receivers: u64, fps: u64, fns: u64, msgs: u64) -> PublishReport {
        let ids = |n: u64, base: u64| -> Vec<ProcessId> {
            (0..n).map(|i| ProcessId::from_raw(base + i)).collect()
        };
        PublishReport {
            event_id: 0,
            receivers: ids(receivers, 0),
            matching: ids(receivers - fps + fns, 100),
            false_positives: ids(fps, 200),
            false_negatives: ids(fns, 300),
            messages: msgs,
            rounds: 5,
        }
    }

    #[test]
    fn rates_accumulate() {
        let mut s = RoutingStats::new();
        s.absorb(&report(10, 1, 0, 12));
        s.absorb(&report(10, 0, 2, 8));
        assert_eq!(s.events(), 2);
        assert_eq!(s.deliveries(), 20);
        assert_eq!(s.false_positives(), 1);
        assert_eq!(s.false_negatives(), 2);
        assert!((s.false_positive_rate() - 0.05).abs() < 1e-12);
        assert!((s.messages_per_event() - 10.0).abs() < 1e-12);
        let shown = s.to_string();
        assert!(shown.contains("events=2"));
    }

    #[test]
    fn empty_stats_have_zero_rates() {
        let s = RoutingStats::new();
        assert_eq!(s.false_positive_rate(), 0.0);
        assert_eq!(s.false_negative_rate(), 0.0);
        assert_eq!(s.messages_per_event(), 0.0);
    }

    #[test]
    fn ingress_accounting_sums_counts_and_replaces_quantiles() {
        let mut s = RoutingStats::new();
        assert!(!s.to_string().contains("ingress:"), "hidden until used");
        s.absorb_ingress(100, 90, 10, 1_000, 5_000, 9_000, 12_000);
        s.absorb_ingress(50, 50, 0, 2_000, 4_000, 8_000, 9_000);
        assert_eq!(s.ingress_submitted(), 150);
        assert_eq!(s.ingress_committed(), 140);
        assert_eq!(s.ingress_rejected(), 10);
        assert_eq!(s.ingress_p50_ns(), 2_000, "quantiles are point-in-time");
        assert_eq!(s.ingress_p99_ns(), 4_000);
        assert_eq!(s.ingress_p999_ns(), 8_000);
        assert_eq!(s.ingress_max_ns(), 12_000, "max folds with max");
        assert!(s.to_string().contains("ingress: submitted=150"));
    }

    #[test]
    fn pause_accounting_tracks_totals_and_maxima() {
        let mut s = RoutingStats::new();
        s.absorb_oracle_pause(100, 5_000);
        s.absorb_oracle_pause(40, 9_000);
        s.absorb_oracle_pause(250, 0);
        assert_eq!(s.oracle_swap_ns_total(), 390);
        assert_eq!(s.oracle_swap_ns_max(), 250);
        assert_eq!(s.oracle_compact_ns_total(), 14_000);
        assert_eq!(s.oracle_compact_ns_max(), 9_000);
        assert!(s.to_string().contains("pause:"));
    }
}
