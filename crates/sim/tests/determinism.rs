//! Determinism guarantees of both engines: identical seeds produce
//! identical traces regardless of jitter/loss configuration, which is
//! what makes every experiment in this reproduction replayable.

use drtree_sim::{
    Context, EventNetwork, FaultProfile, LatencyModel, MessageLabel, NetConfig, Process, ProcessId,
    RoundNetwork,
};
use proptest::prelude::*;
use rand::Rng;

#[derive(Clone, Debug)]
struct Gossip(u64);

impl MessageLabel for Gossip {
    fn label(&self) -> &'static str {
        "gossip"
    }
}

/// Forwards a decremented token to a pseudo-random peer each time.
struct Forwarder {
    peers: Vec<ProcessId>,
    received: u64,
}

impl Process for Forwarder {
    type Msg = Gossip;
    type Timer = ();

    fn on_message(&mut self, _from: ProcessId, msg: Gossip, ctx: &mut Context<'_, Gossip, ()>) {
        self.received += 1;
        if msg.0 > 0 && !self.peers.is_empty() {
            let next = self.peers[ctx.rng().gen_range(0..self.peers.len())];
            ctx.send(next, Gossip(msg.0 - 1));
        }
    }

    fn on_timer(&mut self, _t: (), _ctx: &mut Context<'_, Gossip, ()>) {}
}

fn event_trace(seed: u64, faults: FaultProfile, jitter: bool) -> (u64, u64, u64, Vec<u64>) {
    let net_config = NetConfig {
        latency: if jitter {
            LatencyModel::Uniform { min: 1, max: 7 }
        } else {
            LatencyModel::Fixed(1)
        },
        faults,
    };
    let mut net: EventNetwork<Forwarder> = EventNetwork::new(net_config, seed);
    let ids: Vec<ProcessId> = (0..8)
        .map(|_| {
            net.add_process(Forwarder {
                peers: Vec::new(),
                received: 0,
            })
        })
        .collect();
    for &id in &ids {
        net.process_mut(id).unwrap().peers = ids.clone();
    }
    for &id in &ids {
        net.send_external(id, Gossip(30));
    }
    net.run_to_quiescence(100_000);
    let per_node = ids
        .iter()
        .map(|&id| net.process(id).unwrap().received)
        .collect();
    (
        net.metrics().sent(),
        net.metrics().delivered(),
        net.now(),
        per_node,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn event_engine_is_deterministic(seed in any::<u64>(), drop in 0.0f64..0.3) {
        let a = event_trace(seed, FaultProfile::lossy(drop), true);
        let b = event_trace(seed, FaultProfile::lossy(drop), true);
        prop_assert_eq!(a, b);
    }

    #[test]
    fn event_engine_is_deterministic_under_full_fault_profile(
        seed in any::<u64>(),
        drop in 0.0f64..0.2,
        dup in 0.0f64..0.3,
        reorder in 0.0f64..0.3,
    ) {
        // Duplication and reordering draw extra randomness; the trace
        // must still replay exactly from the seed.
        let faults = FaultProfile {
            drop_probability: drop,
            duplicate_probability: dup,
            reorder_probability: reorder,
            reorder_extra: 4,
        };
        let a = event_trace(seed, faults, true);
        let b = event_trace(seed, faults, true);
        prop_assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_diverge(seed in any::<u64>()) {
        // With jitter and drops, two different seeds virtually always
        // produce different traces; equality would indicate the RNG is
        // not actually wired through.
        let a = event_trace(seed, FaultProfile::lossy(0.2), true);
        let b = event_trace(seed.wrapping_add(1), FaultProfile::lossy(0.2), true);
        prop_assert_ne!(a, b);
    }
}

#[test]
fn round_engine_is_deterministic() {
    let run = |seed: u64| {
        let mut net: RoundNetwork<Forwarder> = RoundNetwork::new(seed);
        let ids: Vec<ProcessId> = (0..6)
            .map(|_| {
                net.add_process(Forwarder {
                    peers: Vec::new(),
                    received: 0,
                })
            })
            .collect();
        for &id in &ids {
            net.process_mut(id).unwrap().peers = ids.clone();
        }
        net.send_external(ids[0], Gossip(64));
        net.run_rounds(100);
        let counts: Vec<u64> = ids
            .iter()
            .map(|&id| net.process(id).unwrap().received)
            .collect();
        (net.metrics().sent(), counts)
    };
    assert_eq!(run(7), run(7));
    assert_ne!(run(7), run(8));
}

#[test]
fn round_engine_is_deterministic_under_faults() {
    let run = |seed: u64| {
        let mut net: RoundNetwork<Forwarder> = RoundNetwork::new(seed);
        net.set_faults(FaultProfile {
            drop_probability: 0.1,
            duplicate_probability: 0.2,
            reorder_probability: 0.2,
            reorder_extra: 3,
        });
        let ids: Vec<ProcessId> = (0..6)
            .map(|_| {
                net.add_process(Forwarder {
                    peers: Vec::new(),
                    received: 0,
                })
            })
            .collect();
        for &id in &ids {
            net.process_mut(id).unwrap().peers = ids.clone();
        }
        net.partition(&[vec![ids[0], ids[1]], vec![ids[4], ids[5]]]);
        net.send_external(ids[0], Gossip(64));
        net.run_rounds(50);
        net.heal();
        net.run_rounds(50);
        let counts: Vec<u64> = ids
            .iter()
            .map(|&id| net.process(id).unwrap().received)
            .collect();
        (
            net.metrics().sent(),
            net.metrics().duplicated(),
            net.metrics().reordered(),
            net.metrics().partitioned_drops(),
            counts,
        )
    };
    assert_eq!(run(7), run(7));
    assert_ne!(run(7), run(8));
}
