use std::collections::BTreeMap;
use std::fmt;

use crate::process::MsgTag;

/// Message-level counters collected by both engines.
///
/// Used by the experiments to report the paper's message-cost figures
/// (e.g. "necessitating only 2 messages" for the §3 dissemination
/// example) and to compare overlays.
///
/// Besides the label aggregates, tagged messages (see
/// [`MsgTag`](crate::MsgTag)) are accounted per tag: `tag_count` is the
/// tag's billed message total and `tag_inflight` the number of its
/// messages currently in the network — the quiescence signal the
/// pipelined publish harness polls instead of draining everything.
#[derive(Debug, Clone, Default)]
pub struct Metrics {
    sent: u64,
    delivered: u64,
    dropped: u64,
    to_dead: u64,
    duplicated: u64,
    reordered: u64,
    partitioned_drops: u64,
    per_label: BTreeMap<&'static str, u64>,
    /// Billed sends per tag (the per-operation message bill).
    tag_sent: BTreeMap<u64, u64>,
    /// Tagged messages currently in the network, per tag.
    tag_inflight: BTreeMap<u64, u64>,
    /// Tags below this are retired (see [`Metrics::retire_tags_below`]):
    /// their counters are purged and late traffic is not re-tracked.
    tag_floor: u64,
}

impl Metrics {
    /// Creates zeroed metrics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total messages handed to the network.
    pub fn sent(&self) -> u64 {
        self.sent
    }

    /// Messages delivered to a live process.
    pub fn delivered(&self) -> u64 {
        self.delivered
    }

    /// Messages lost to simulated link loss or blocked links.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Messages addressed to a crashed/departed process.
    pub fn to_dead(&self) -> u64 {
        self.to_dead
    }

    /// Extra copies injected by the duplication fault knob. Each copy is
    /// tracked in flight (and settles) individually, but is never billed
    /// to its tag.
    pub fn duplicated(&self) -> u64 {
        self.duplicated
    }

    /// Messages delayed by the reordering fault knob. A reordered
    /// message stays in flight until its deferred delivery, so per-tag
    /// quiescence still waits for it.
    pub fn reordered(&self) -> u64 {
        self.reordered
    }

    /// Messages lost to a partition cut specifically (a subset of
    /// [`Metrics::dropped`]).
    pub fn partitioned_drops(&self) -> u64 {
        self.partitioned_drops
    }

    /// Sent-message counts per message label.
    pub fn per_label(&self) -> &BTreeMap<&'static str, u64> {
        &self.per_label
    }

    /// Count for one label (0 if never seen).
    pub fn label_count(&self, label: &str) -> u64 {
        self.per_label.get(label).copied().unwrap_or(0)
    }

    /// Billed messages charged to `tag` so far (0 for unknown tags).
    pub fn tag_count(&self, tag: u64) -> u64 {
        self.tag_sent.get(&tag).copied().unwrap_or(0)
    }

    /// Messages of `tag` currently in flight (0 = the tagged operation
    /// is quiescent).
    pub fn tag_inflight(&self, tag: u64) -> u64 {
        self.tag_inflight.get(&tag).copied().unwrap_or(0)
    }

    /// Forgets a tag's counters once its report is finalized, so maps
    /// do not grow with the event history.
    pub fn clear_tag(&mut self, tag: u64) {
        self.tag_sent.remove(&tag);
        self.tag_inflight.remove(&tag);
    }

    /// Retires every tag below `floor` (tags are allocated
    /// monotonically): their counters are purged *and* their late
    /// traffic is ignored by future tagged sends. Without the floor,
    /// an operation finalized while its messages still circulate (a
    /// corrupted overlay outliving the pipeline's deadline guard)
    /// would keep re-creating counter entries that nobody clears.
    pub fn retire_tags_below(&mut self, floor: u64) {
        if floor <= self.tag_floor {
            return;
        }
        self.tag_floor = floor;
        self.tag_sent = self.tag_sent.split_off(&floor);
        self.tag_inflight = self.tag_inflight.split_off(&floor);
    }

    /// Resets all counters; used between experiment phases to isolate
    /// the cost of one operation. Also forgets tag counters — callers
    /// must not reset while tagged operations are still in flight.
    pub fn reset(&mut self) {
        *self = Self::default();
    }

    pub(crate) fn record_sent(&mut self, label: &'static str) {
        self.sent += 1;
        *self.per_label.entry(label).or_insert(0) += 1;
    }

    pub(crate) fn record_tag_sent(&mut self, tag: MsgTag) {
        if tag.id < self.tag_floor {
            return;
        }
        if tag.billed {
            *self.tag_sent.entry(tag.id).or_insert(0) += 1;
        }
        *self.tag_inflight.entry(tag.id).or_insert(0) += 1;
    }

    /// One tagged message left the network (delivered, dropped, lost,
    /// or discarded with a dead process). Saturates so a tag cleared
    /// mid-flight cannot underflow.
    pub(crate) fn record_tag_settled(&mut self, tag: MsgTag) {
        if let Some(n) = self.tag_inflight.get_mut(&tag.id) {
            *n -= 1;
            if *n == 0 {
                self.tag_inflight.remove(&tag.id);
            }
        }
    }

    pub(crate) fn record_delivered(&mut self) {
        self.delivered += 1;
    }

    pub(crate) fn record_dropped(&mut self) {
        self.dropped += 1;
    }

    pub(crate) fn record_to_dead(&mut self) {
        self.to_dead += 1;
    }

    pub(crate) fn record_duplicated(&mut self) {
        self.duplicated += 1;
    }

    pub(crate) fn record_reordered(&mut self) {
        self.reordered += 1;
    }

    /// A partition cut lost this message. Callers also record the drop
    /// itself: `partitioned_drops` is a sub-count of `dropped`.
    pub(crate) fn record_partition_drop(&mut self) {
        self.partitioned_drops += 1;
    }
}

impl fmt::Display for Metrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "sent={} delivered={} dropped={} to_dead={} duplicated={} reordered={} partitioned_drops={}",
            self.sent,
            self.delivered,
            self.dropped,
            self.to_dead,
            self.duplicated,
            self.reordered,
            self.partitioned_drops
        )?;
        for (label, count) in &self.per_label {
            write!(f, " {label}={count}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut m = Metrics::new();
        m.record_sent("join");
        m.record_sent("join");
        m.record_sent("leave");
        m.record_delivered();
        m.record_dropped();
        m.record_to_dead();
        assert_eq!(m.sent(), 3);
        assert_eq!(m.delivered(), 1);
        assert_eq!(m.dropped(), 1);
        assert_eq!(m.to_dead(), 1);
        assert_eq!(m.label_count("join"), 2);
        assert_eq!(m.label_count("leave"), 1);
        assert_eq!(m.label_count("nope"), 0);
        let shown = m.to_string();
        assert!(shown.contains("join=2"));
        m.reset();
        assert_eq!(m.sent(), 0);
    }

    #[test]
    fn fault_counters_accumulate_and_display() {
        let mut m = Metrics::new();
        m.record_duplicated();
        m.record_duplicated();
        m.record_reordered();
        m.record_dropped();
        m.record_partition_drop();
        assert_eq!(m.duplicated(), 2);
        assert_eq!(m.reordered(), 1);
        assert_eq!(m.partitioned_drops(), 1);
        assert_eq!(m.dropped(), 1, "partition drops are also plain drops");
        let shown = m.to_string();
        assert!(shown.contains("duplicated=2"));
        assert!(shown.contains("reordered=1"));
        assert!(shown.contains("partitioned_drops=1"));
        m.reset();
        assert_eq!(m.duplicated(), 0);
        assert_eq!(m.reordered(), 0);
        assert_eq!(m.partitioned_drops(), 0);
    }

    #[test]
    fn tag_counters_bill_and_settle_independently() {
        let mut m = Metrics::new();
        m.record_tag_sent(MsgTag::billed(7));
        m.record_tag_sent(MsgTag::billed(7));
        m.record_tag_sent(MsgTag::unbilled(7));
        m.record_tag_sent(MsgTag::billed(9));
        assert_eq!(m.tag_count(7), 2, "unbilled sends are not charged");
        assert_eq!(m.tag_inflight(7), 3, "unbilled sends are tracked");
        assert_eq!(m.tag_count(9), 1);
        for _ in 0..3 {
            m.record_tag_settled(MsgTag::billed(7));
        }
        assert_eq!(m.tag_inflight(7), 0);
        assert_eq!(m.tag_inflight(9), 1, "other tags unaffected");
        assert_eq!(m.tag_count(7), 2, "the bill survives settlement");
        m.clear_tag(7);
        assert_eq!(m.tag_count(7), 0);
        // Settling a cleared/unknown tag must not underflow or panic.
        m.record_tag_settled(MsgTag::billed(7));
        assert_eq!(m.tag_inflight(7), 0);
    }

    #[test]
    fn retired_tags_are_purged_and_ignore_late_traffic() {
        let mut m = Metrics::new();
        m.record_tag_sent(MsgTag::billed(3));
        m.record_tag_sent(MsgTag::billed(10));
        m.retire_tags_below(10);
        assert_eq!(m.tag_count(3), 0, "retired counters purged");
        assert_eq!(m.tag_inflight(3), 0);
        assert_eq!(m.tag_count(10), 1, "tags at the floor survive");
        // Late traffic of a retired tag re-creates nothing.
        m.record_tag_sent(MsgTag::billed(3));
        assert_eq!(m.tag_count(3), 0);
        assert_eq!(m.tag_inflight(3), 0);
        // The floor never moves backwards.
        m.retire_tags_below(5);
        assert_eq!(m.tag_count(10), 1);
    }
}
