use std::collections::BTreeMap;
use std::fmt;

/// Message-level counters collected by both engines.
///
/// Used by the experiments to report the paper's message-cost figures
/// (e.g. "necessitating only 2 messages" for the §3 dissemination
/// example) and to compare overlays.
#[derive(Debug, Clone, Default)]
pub struct Metrics {
    sent: u64,
    delivered: u64,
    dropped: u64,
    to_dead: u64,
    per_label: BTreeMap<&'static str, u64>,
}

impl Metrics {
    /// Creates zeroed metrics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total messages handed to the network.
    pub fn sent(&self) -> u64 {
        self.sent
    }

    /// Messages delivered to a live process.
    pub fn delivered(&self) -> u64 {
        self.delivered
    }

    /// Messages lost to simulated link loss or blocked links.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Messages addressed to a crashed/departed process.
    pub fn to_dead(&self) -> u64 {
        self.to_dead
    }

    /// Sent-message counts per message label.
    pub fn per_label(&self) -> &BTreeMap<&'static str, u64> {
        &self.per_label
    }

    /// Count for one label (0 if never seen).
    pub fn label_count(&self, label: &str) -> u64 {
        self.per_label.get(label).copied().unwrap_or(0)
    }

    /// Resets all counters; used between experiment phases to isolate
    /// the cost of one operation.
    pub fn reset(&mut self) {
        *self = Self::default();
    }

    pub(crate) fn record_sent(&mut self, label: &'static str) {
        self.sent += 1;
        *self.per_label.entry(label).or_insert(0) += 1;
    }

    pub(crate) fn record_delivered(&mut self) {
        self.delivered += 1;
    }

    pub(crate) fn record_dropped(&mut self) {
        self.dropped += 1;
    }

    pub(crate) fn record_to_dead(&mut self) {
        self.to_dead += 1;
    }
}

impl fmt::Display for Metrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "sent={} delivered={} dropped={} to_dead={}",
            self.sent, self.delivered, self.dropped, self.to_dead
        )?;
        for (label, count) in &self.per_label {
            write!(f, " {label}={count}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut m = Metrics::new();
        m.record_sent("join");
        m.record_sent("join");
        m.record_sent("leave");
        m.record_delivered();
        m.record_dropped();
        m.record_to_dead();
        assert_eq!(m.sent(), 3);
        assert_eq!(m.delivered(), 1);
        assert_eq!(m.dropped(), 1);
        assert_eq!(m.to_dead(), 1);
        assert_eq!(m.label_count("join"), 2);
        assert_eq!(m.label_count("leave"), 1);
        assert_eq!(m.label_count("nope"), 0);
        let shown = m.to_string();
        assert!(shown.contains("join=2"));
        m.reset();
        assert_eq!(m.sent(), 0);
    }
}
