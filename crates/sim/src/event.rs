use std::cmp::Reverse;
use std::collections::{BTreeMap, BTreeSet, BinaryHeap};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::process::MessageLabel;
use crate::{Context, Metrics, Process, ProcessId};

/// Link latency model for the event-driven engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LatencyModel {
    /// Every message takes exactly this many time units.
    Fixed(u64),
    /// Uniformly random latency in `[min, max]` (inclusive).
    Uniform {
        /// Minimum latency (promoted to at least 1).
        min: u64,
        /// Maximum latency.
        max: u64,
    },
}

impl LatencyModel {
    fn sample(&self, rng: &mut StdRng) -> u64 {
        match *self {
            LatencyModel::Fixed(l) => l.max(1),
            LatencyModel::Uniform { min, max } => rng.gen_range(min.max(1)..=max.max(min).max(1)),
        }
    }
}

/// Per-message fault knobs shared by both engines.
///
/// Every probability is an independent Bernoulli draw per *process*
/// send (external harness injections are never faulted). All knobs
/// default to zero — a default profile is a perfect network. The
/// profile can be swapped at runtime ([`EventNetwork::set_faults`],
/// [`crate::RoundNetwork::set_faults`]), which is how scripted fault
/// *windows* open and close.
///
/// Tag accounting stays exact on every fault path:
///
/// * a **dropped** message settles its tag at drop time;
/// * a **duplicated** message's extra copy is tracked in flight as an
///   *unbilled* tagged send, so both copies settle individually without
///   double-billing the operation;
/// * a **reordered** message merely arrives later — it stays in flight
///   until its deferred delivery, never leaking the count.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct FaultProfile {
    /// Probability that a message is silently lost.
    pub drop_probability: f64,
    /// Probability that a message is delivered twice (the copy takes an
    /// independently sampled latency / extra round).
    pub duplicate_probability: f64,
    /// Probability that a message is delayed by extra latency, letting
    /// later traffic overtake it.
    pub reorder_probability: f64,
    /// Maximum extra delay of a reordered message, in time units
    /// (event engine) or rounds (round engine); the actual delay is
    /// uniform in `1..=reorder_extra` (minimum 1).
    pub reorder_extra: u64,
}

impl FaultProfile {
    /// A profile that only loses messages with probability `p`.
    pub fn lossy(p: f64) -> Self {
        Self {
            drop_probability: p,
            ..Self::default()
        }
    }

    /// A profile that only duplicates messages with probability `p`.
    pub fn duplicating(p: f64) -> Self {
        Self {
            duplicate_probability: p,
            ..Self::default()
        }
    }

    /// A profile that only reorders messages: with probability `p` a
    /// message is delayed by up to `extra` units.
    pub fn reordering(p: f64, extra: u64) -> Self {
        Self {
            reorder_probability: p,
            reorder_extra: extra,
            ..Self::default()
        }
    }

    /// `true` when no knob is active (the default perfect network).
    pub fn is_quiet(&self) -> bool {
        self.drop_probability <= 0.0
            && self.duplicate_probability <= 0.0
            && self.reorder_probability <= 0.0
    }
}

/// Configuration of the asynchronous network.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NetConfig {
    /// Link latency model (default: `Fixed(1)`).
    pub latency: LatencyModel,
    /// Message fault knobs (default: none — see [`FaultProfile`]).
    pub faults: FaultProfile,
}

impl Default for NetConfig {
    fn default() -> Self {
        Self {
            latency: LatencyModel::Fixed(1),
            faults: FaultProfile::default(),
        }
    }
}

impl NetConfig {
    /// A config with the given latency model and loss probability — the
    /// common shape of the asynchronous robustness tests.
    pub fn lossy(latency: LatencyModel, drop_probability: f64) -> Self {
        Self {
            latency,
            faults: FaultProfile::lossy(drop_probability),
        }
    }
}

enum EventKind<M, T> {
    Deliver {
        from: ProcessId,
        to: ProcessId,
        msg: M,
    },
    Fire {
        at: ProcessId,
        timer: T,
    },
}

struct Scheduled<M, T> {
    at: u64,
    seq: u64,
    kind: EventKind<M, T>,
}

impl<M, T> PartialEq for Scheduled<M, T> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<M, T> Eq for Scheduled<M, T> {}
impl<M, T> PartialOrd for Scheduled<M, T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<M, T> Ord for Scheduled<M, T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// Asynchronous discrete-event network engine.
///
/// Deterministic for a given seed: events are ordered by `(time, seq)`
/// where `seq` is allocation order. See the [crate docs](crate) for an
/// end-to-end example.
pub struct EventNetwork<P: Process> {
    config: NetConfig,
    procs: BTreeMap<ProcessId, P>,
    queue: BinaryHeap<Reverse<Scheduled<P::Msg, P::Timer>>>,
    blocked: BTreeSet<(ProcessId, ProcessId)>,
    /// Links cut by [`EventNetwork::partition`], kept apart from the
    /// manual `blocked` set so [`EventNetwork::heal`] removes exactly
    /// the partition's cuts and composes with manual blocks.
    partition_links: BTreeSet<(ProcessId, ProcessId)>,
    time: u64,
    seq: u64,
    next_id: u64,
    rng: StdRng,
    metrics: Metrics,
}

impl<P: Process> EventNetwork<P> {
    /// Creates an empty network with the given config and RNG seed.
    pub fn new(config: NetConfig, seed: u64) -> Self {
        Self {
            config,
            procs: BTreeMap::new(),
            queue: BinaryHeap::new(),
            blocked: BTreeSet::new(),
            partition_links: BTreeSet::new(),
            time: 0,
            seq: 0,
            next_id: 0,
            rng: StdRng::seed_from_u64(seed),
            metrics: Metrics::new(),
        }
    }

    /// Adds a process, assigns it a fresh id, and invokes
    /// [`Process::on_start`].
    pub fn add_process(&mut self, mut process: P) -> ProcessId {
        let id = ProcessId::from_raw(self.next_id);
        self.next_id += 1;
        let mut ctx = Context::new(id, self.time, &mut self.rng);
        process.on_start(&mut ctx);
        self.procs.insert(id, process);
        let (outbox, timers) = ctx.into_effects();
        self.apply_effects(id, outbox, timers);
        id
    }

    /// Current simulation time.
    pub fn now(&self) -> u64 {
        self.time
    }

    /// Ids of all live processes, in id order.
    pub fn ids(&self) -> Vec<ProcessId> {
        self.procs.keys().copied().collect()
    }

    /// Number of live processes.
    pub fn len(&self) -> usize {
        self.procs.len()
    }

    /// `true` if no process is alive.
    pub fn is_empty(&self) -> bool {
        self.procs.is_empty()
    }

    /// `true` if `id` refers to a live process.
    pub fn is_alive(&self, id: ProcessId) -> bool {
        self.procs.contains_key(&id)
    }

    /// Shared view of a live process's state.
    pub fn process(&self, id: ProcessId) -> Option<&P> {
        self.procs.get(&id)
    }

    /// Mutable access to a live process's state. Intended for harness
    /// bookkeeping; for *adversarial* state mutation use
    /// [`EventNetwork::corrupt`], which also records the fault.
    pub fn process_mut(&mut self, id: ProcessId) -> Option<&mut P> {
        self.procs.get_mut(&id)
    }

    /// Message metrics collected so far.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Resets message metrics (e.g. between experiment phases).
    pub fn reset_metrics(&mut self) {
        self.metrics.reset();
    }

    /// Deterministic per-network randomness for harness decisions.
    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.rng
    }

    /// Crashes `id`: the process vanishes silently (the paper's
    /// *uncontrolled departure*). In-flight messages to it are counted
    /// as [`Metrics::to_dead`] on delivery. Returns the final state, if
    /// the process was alive.
    pub fn crash(&mut self, id: ProcessId) -> Option<P> {
        self.procs.remove(&id)
    }

    /// Reinstalls a process at a previously crashed id — the rejoin
    /// half of the broker crash/rejoin fault pair. The caller supplies
    /// the restarted state (warm: restored from a checkpoint; cold:
    /// fresh and empty). [`Process::on_start`] runs again at the
    /// current simulation time; in-flight messages addressed to the id
    /// deliver normally once it is alive again. Returns `false` if the
    /// id is still alive or was never allocated.
    pub fn revive(&mut self, id: ProcessId, mut process: P) -> bool {
        if id.raw() >= self.next_id || self.procs.contains_key(&id) {
            return false;
        }
        let mut ctx = Context::new(id, self.time, &mut self.rng);
        process.on_start(&mut ctx);
        self.procs.insert(id, process);
        let (outbox, timers) = ctx.into_effects();
        self.apply_effects(id, outbox, timers);
        true
    }

    /// Applies an adversarial mutation to a live process's memory (the
    /// paper's *transient fault* / memory corruption). Returns `false`
    /// if the process is not alive.
    pub fn corrupt(&mut self, id: ProcessId, mutate: impl FnOnce(&mut P, &mut StdRng)) -> bool {
        match self.procs.get_mut(&id) {
            Some(p) => {
                mutate(p, &mut self.rng);
                true
            }
            None => false,
        }
    }

    /// Blocks the directed link `from → to` (messages silently dropped).
    pub fn block_link(&mut self, from: ProcessId, to: ProcessId) {
        self.blocked.insert((from, to));
    }

    /// Unblocks the directed link `from → to` — the inverse of a single
    /// [`EventNetwork::block_link`]. Also removes any partition cut on
    /// that link, so a manual repair overrides an installed partition.
    pub fn unblock_link(&mut self, from: ProcessId, to: ProcessId) {
        self.blocked.remove(&(from, to));
        self.partition_links.remove(&(from, to));
    }

    /// Removes all link blocks, manual and partition-installed.
    pub fn unblock_all(&mut self) {
        self.blocked.clear();
        self.partition_links.clear();
    }

    /// Installs a network partition: every link between processes of
    /// different `groups` is cut (both directions). Messages crossing a
    /// cut are dropped, counted as [`Metrics::partitioned_drops`], and
    /// settle their tags at drop time. Successive calls accumulate, so
    /// overlapping partitions compose; [`EventNetwork::heal`] removes
    /// every partition cut while manual [`EventNetwork::block_link`]
    /// blocks survive.
    pub fn partition(&mut self, groups: &[Vec<ProcessId>]) {
        for (i, a) in groups.iter().enumerate() {
            for b in groups.iter().skip(i + 1) {
                for &x in a {
                    for &y in b {
                        self.partition_links.insert((x, y));
                        self.partition_links.insert((y, x));
                    }
                }
            }
        }
    }

    /// Heals every partition cut (the inverse of all
    /// [`EventNetwork::partition`] calls so far). Manual link blocks
    /// are untouched — even on links that were *also* partition-cut —
    /// so partitions compose with [`EventNetwork::block_link`] /
    /// [`EventNetwork::unblock_link`] experiments.
    pub fn heal(&mut self) {
        self.partition_links.clear();
    }

    /// Replaces the message fault profile at runtime — how scripted
    /// fault windows (loss bursts, duplication/reorder windows) open
    /// and close mid-run.
    pub fn set_faults(&mut self, faults: FaultProfile) {
        self.config.faults = faults;
    }

    /// The active message fault profile.
    pub fn faults(&self) -> &FaultProfile {
        &self.config.faults
    }

    /// Injects a message from outside the system (delivered with normal
    /// latency; `from` is the destination itself, which protocols treat
    /// as an external stimulus).
    pub fn send_external(&mut self, to: ProcessId, msg: P::Msg) {
        self.metrics.record_sent(msg.label());
        if let Some(tag) = msg.tag() {
            self.metrics.record_tag_sent(tag);
        }
        let latency = self.config.latency.sample(&mut self.rng);
        self.push(
            self.time + latency,
            EventKind::Deliver { from: to, to, msg },
        );
    }

    /// Forgets a tag's message counters (see [`Metrics::clear_tag`]).
    pub fn clear_tag(&mut self, tag: u64) {
        self.metrics.clear_tag(tag);
    }

    /// Retires every tag below `floor` (see
    /// [`Metrics::retire_tags_below`]).
    pub fn retire_tags_below(&mut self, floor: u64) {
        self.metrics.retire_tags_below(floor);
    }

    /// Arms a timer on `id` from outside (e.g. kicking off periodic
    /// stabilization on a fresh process).
    pub fn set_timer_external(&mut self, id: ProcessId, delay: u64, timer: P::Timer) {
        self.push(self.time + delay.max(1), EventKind::Fire { at: id, timer });
    }

    /// Executes the next event. Returns `false` when the queue is empty.
    pub fn step(&mut self) -> bool {
        let Some(Reverse(event)) = self.queue.pop() else {
            return false;
        };
        self.time = self.time.max(event.at);
        match event.kind {
            EventKind::Deliver { from, to, msg } => {
                if let Some(tag) = msg.tag() {
                    self.metrics.record_tag_settled(tag);
                }
                if !self.procs.contains_key(&to) {
                    self.metrics.record_to_dead();
                    return true;
                }
                self.metrics.record_delivered();
                let mut ctx = Context::new(to, self.time, &mut self.rng);
                let proc = self.procs.get_mut(&to).expect("checked above");
                proc.on_message(from, msg, &mut ctx);
                let (outbox, timers) = ctx.into_effects();
                self.apply_effects(to, outbox, timers);
            }
            EventKind::Fire { at, timer } => {
                if let Some(proc) = self.procs.get_mut(&at) {
                    let mut ctx = Context::new(at, self.time, &mut self.rng);
                    proc.on_timer(timer, &mut ctx);
                    let (outbox, timers) = ctx.into_effects();
                    self.apply_effects(at, outbox, timers);
                }
            }
        }
        true
    }

    /// Runs until simulated time reaches `deadline` or the queue drains.
    pub fn run_until(&mut self, deadline: u64) {
        while let Some(Reverse(head)) = self.queue.peek() {
            if head.at > deadline {
                break;
            }
            self.step();
        }
        self.time = self.time.max(deadline);
    }

    /// Runs until no events remain, up to `max_events` steps. Returns
    /// the number of events executed.
    ///
    /// Protocols with periodic timers never go quiescent; use
    /// [`EventNetwork::run_until`] for those.
    pub fn run_to_quiescence(&mut self, max_events: u64) -> u64 {
        let mut executed = 0;
        while executed < max_events && self.step() {
            executed += 1;
        }
        executed
    }

    fn apply_effects(
        &mut self,
        from: ProcessId,
        outbox: Vec<(ProcessId, P::Msg)>,
        timer_requests: Vec<(u64, P::Timer)>,
    ) {
        for (to, msg) in outbox {
            self.metrics.record_sent(msg.label());
            if let Some(tag) = msg.tag() {
                self.metrics.record_tag_sent(tag);
            }
            let blocked = self.blocked.contains(&(from, to));
            let cut = self.partition_links.contains(&(from, to));
            if blocked || cut || self.roll(self.config.faults.drop_probability) {
                if cut && !blocked {
                    self.metrics.record_partition_drop();
                }
                self.metrics.record_dropped();
                if let Some(tag) = msg.tag() {
                    self.metrics.record_tag_settled(tag);
                }
                continue;
            }
            // The duplicate is an extra in-flight copy of the same
            // message: tracked (unbilled) so both copies settle on
            // their own deliveries without double-billing the tag.
            if self.roll(self.config.faults.duplicate_probability) {
                self.metrics.record_duplicated();
                if let Some(tag) = msg.tag() {
                    self.metrics
                        .record_tag_sent(crate::MsgTag::unbilled(tag.id));
                }
                let latency = self.config.latency.sample(&mut self.rng);
                self.push(
                    self.time + latency,
                    EventKind::Deliver {
                        from,
                        to,
                        msg: msg.clone(),
                    },
                );
            }
            let mut latency = self.config.latency.sample(&mut self.rng);
            if self.roll(self.config.faults.reorder_probability) {
                self.metrics.record_reordered();
                latency += self
                    .rng
                    .gen_range(1..=self.config.faults.reorder_extra.max(1));
            }
            self.push(self.time + latency, EventKind::Deliver { from, to, msg });
        }
        for (delay, timer) in timer_requests {
            self.push(self.time + delay, EventKind::Fire { at: from, timer });
        }
    }

    /// One fault-knob Bernoulli draw; never touches the RNG for an
    /// inactive knob, so enabling a knob is the only thing that changes
    /// a seeded trace.
    fn roll(&mut self, p: f64) -> bool {
        p > 0.0 && self.rng.gen_bool(p.min(1.0))
    }

    fn push(&mut self, at: u64, kind: EventKind<P::Msg, P::Timer>) {
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(Reverse(Scheduled { at, seq, kind }));
    }
}

impl<P: Process> std::fmt::Debug for EventNetwork<P> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventNetwork")
            .field("time", &self.time)
            .field("processes", &self.procs.len())
            .field("pending_events", &self.queue.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Clone, Debug)]
    enum Ping {
        Ping(u32),
        Pong(#[allow(dead_code)] u32),
    }

    impl MessageLabel for Ping {
        fn label(&self) -> &'static str {
            match self {
                Ping::Ping(_) => "ping",
                Ping::Pong(_) => "pong",
            }
        }
    }

    #[derive(Default)]
    struct Node {
        pings: u32,
        pongs: u32,
        timer_fired: bool,
    }

    impl Process for Node {
        type Msg = Ping;
        type Timer = &'static str;

        fn on_message(
            &mut self,
            from: ProcessId,
            msg: Ping,
            ctx: &mut Context<'_, Ping, &'static str>,
        ) {
            match msg {
                Ping::Ping(n) => {
                    self.pings += 1;
                    ctx.send(from, Ping::Pong(n));
                }
                Ping::Pong(_) => self.pongs += 1,
            }
        }

        fn on_timer(&mut self, _t: &'static str, _ctx: &mut Context<'_, Ping, &'static str>) {
            self.timer_fired = true;
        }
    }

    #[test]
    fn ping_pong_round_trip() {
        let mut net: EventNetwork<Node> = EventNetwork::new(NetConfig::default(), 1);
        let a = net.add_process(Node::default());
        let b = net.add_process(Node::default());
        // external "ping" to b appears to come from b itself; have b ping a
        net.send_external(b, Ping::Ping(7)); // b replies Pong to itself
        net.send_external(a, Ping::Ping(1));
        net.run_to_quiescence(100);
        assert_eq!(net.process(a).unwrap().pings, 1);
        assert!(net.metrics().delivered() >= 4);
        assert_eq!(net.metrics().label_count("ping"), 2);
        assert_eq!(net.metrics().label_count("pong"), 2);
    }

    #[test]
    fn timers_fire_in_order() {
        let mut net: EventNetwork<Node> = EventNetwork::new(NetConfig::default(), 1);
        let a = net.add_process(Node::default());
        net.set_timer_external(a, 10, "t");
        net.run_until(5);
        assert!(!net.process(a).unwrap().timer_fired);
        net.run_until(10);
        assert!(net.process(a).unwrap().timer_fired);
        assert_eq!(net.now(), 10);
    }

    #[test]
    fn crash_swallows_messages() {
        let mut net: EventNetwork<Node> = EventNetwork::new(NetConfig::default(), 1);
        let a = net.add_process(Node::default());
        let _ = net.crash(a);
        assert!(!net.is_alive(a));
        net.send_external(a, Ping::Ping(0));
        net.run_to_quiescence(10);
        assert_eq!(net.metrics().to_dead(), 1);
    }

    #[test]
    fn blocked_links_drop() {
        let mut net: EventNetwork<Node> = EventNetwork::new(NetConfig::default(), 1);
        let a = net.add_process(Node::default());
        let b = net.add_process(Node::default());
        net.block_link(a, b);
        // a receives an external ping "from b"; its pong to b is blocked.
        net.send_external(a, Ping::Ping(0));
        // external messages carry from == to, so craft via a's handler:
        net.run_to_quiescence(10);
        let _ = b;
        assert!(net.metrics().dropped() <= 1);
    }

    #[test]
    fn deterministic_given_seed() {
        let run = |seed| {
            let mut net: EventNetwork<Node> = EventNetwork::new(
                NetConfig::lossy(LatencyModel::Uniform { min: 1, max: 9 }, 0.2),
                seed,
            );
            let a = net.add_process(Node::default());
            for _ in 0..50 {
                net.send_external(a, Ping::Ping(1));
            }
            net.run_to_quiescence(1_000);
            (
                net.metrics().delivered(),
                net.metrics().dropped(),
                net.now(),
            )
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42), run(43)); // different seed, different trace
    }

    #[derive(Clone, Debug)]
    struct Tagged(u64);

    impl MessageLabel for Tagged {
        fn label(&self) -> &'static str {
            "tagged"
        }
        fn tag(&self) -> Option<crate::MsgTag> {
            Some(crate::MsgTag::billed(self.0))
        }
    }

    /// Echoes every message back to its sender once.
    struct Echo;

    impl Process for Echo {
        type Msg = Tagged;
        type Timer = ();

        fn on_message(&mut self, from: ProcessId, msg: Tagged, ctx: &mut Context<'_, Tagged, ()>) {
            ctx.send(from, msg);
        }

        fn on_timer(&mut self, _t: (), _ctx: &mut Context<'_, Tagged, ()>) {}
    }

    #[test]
    fn lost_tagged_messages_settle_at_drop_time() {
        // Every *process* send is lost.
        let mut net: EventNetwork<Echo> =
            EventNetwork::new(NetConfig::lossy(LatencyModel::Fixed(1), 1.0), 9);
        let a = net.add_process(Echo);
        net.send_external(a, Tagged(4)); // external sends are never dropped
        assert_eq!(net.metrics().tag_inflight(4), 1);
        net.run_to_quiescence(100);
        // Delivered to `a`, whose echo was dropped — and settled.
        assert_eq!(net.metrics().tag_inflight(4), 0);
        assert_eq!(net.metrics().tag_count(4), 2, "the lost echo is billed");
        assert_eq!(net.metrics().dropped(), 1);
    }

    #[test]
    fn tagged_messages_to_dead_processes_settle() {
        let mut net: EventNetwork<Echo> = EventNetwork::new(NetConfig::default(), 9);
        let a = net.add_process(Echo);
        net.crash(a);
        net.send_external(a, Tagged(8));
        assert_eq!(net.metrics().tag_inflight(8), 1);
        net.run_to_quiescence(100);
        assert_eq!(net.metrics().tag_inflight(8), 0);
        assert_eq!(net.metrics().to_dead(), 1);
    }

    /// Forwards one incoming message to a fixed target, once.
    struct Forwarder {
        target: Option<ProcessId>,
    }

    impl Process for Forwarder {
        type Msg = Tagged;
        type Timer = ();

        fn on_message(&mut self, _from: ProcessId, msg: Tagged, ctx: &mut Context<'_, Tagged, ()>) {
            if let Some(target) = self.target.take() {
                ctx.send(target, msg);
            }
        }

        fn on_timer(&mut self, _t: (), _ctx: &mut Context<'_, Tagged, ()>) {}
    }

    #[test]
    fn duplicated_tagged_messages_track_but_never_double_bill() {
        let mut net: EventNetwork<Forwarder> = EventNetwork::new(NetConfig::default(), 5);
        net.set_faults(FaultProfile::duplicating(1.0));
        let b = ProcessId::from_raw(1);
        let a = net.add_process(Forwarder { target: Some(b) });
        let _b = net.add_process(Forwarder { target: None });
        net.send_external(a, Tagged(4)); // external sends are never faulted
        net.run_to_quiescence(100);
        // Injection + a's forward are billed; the duplicate copy is not.
        assert_eq!(net.metrics().tag_count(4), 2, "duplicate is unbilled");
        assert_eq!(net.metrics().tag_inflight(4), 0, "all copies settled");
        assert_eq!(net.metrics().duplicated(), 1);
        assert_eq!(net.metrics().delivered(), 3, "b received both copies");
    }

    #[test]
    fn reordered_tagged_messages_stay_in_flight_until_late_delivery() {
        let mut net: EventNetwork<Forwarder> = EventNetwork::new(NetConfig::default(), 5);
        net.set_faults(FaultProfile::reordering(1.0, 5));
        let b = ProcessId::from_raw(1);
        let a = net.add_process(Forwarder { target: Some(b) });
        let _b = net.add_process(Forwarder { target: None });
        net.send_external(a, Tagged(6));
        net.run_to_quiescence(100);
        assert_eq!(net.metrics().reordered(), 1, "a's forward was delayed");
        assert_eq!(net.metrics().tag_inflight(6), 0, "settled at late delivery");
        assert_eq!(net.metrics().delivered(), 2);
        assert!(net.now() >= 3, "extra delay beyond the two fixed hops");
    }

    #[test]
    fn partition_drops_settle_and_heal_restores_links() {
        let mut net: EventNetwork<Forwarder> = EventNetwork::new(NetConfig::default(), 5);
        let b = ProcessId::from_raw(1);
        let a = net.add_process(Forwarder { target: Some(b) });
        let _b = net.add_process(Forwarder { target: None });
        net.partition(&[vec![a], vec![b]]);
        net.send_external(a, Tagged(1));
        net.run_to_quiescence(100);
        assert_eq!(net.metrics().partitioned_drops(), 1);
        assert_eq!(net.metrics().dropped(), 1, "partition drops count as drops");
        assert_eq!(net.metrics().tag_inflight(1), 0, "cut message settled");
        net.heal();
        net.process_mut(a).unwrap().target = Some(b);
        net.send_external(a, Tagged(2));
        net.run_to_quiescence(100);
        assert_eq!(net.metrics().partitioned_drops(), 1, "no drop after heal");
        assert_eq!(net.metrics().delivered(), 3, "both externals + the forward");
    }

    #[test]
    fn heal_preserves_manual_blocks_and_unblock_link_repairs() {
        let mut net: EventNetwork<Forwarder> = EventNetwork::new(NetConfig::default(), 5);
        let b = ProcessId::from_raw(1);
        let a = net.add_process(Forwarder { target: Some(b) });
        let _b = net.add_process(Forwarder { target: None });
        // Overlapping faults: a manual block plus a partition cut on
        // the same link. Healing removes only the partition.
        net.block_link(a, b);
        net.partition(&[vec![a], vec![b]]);
        net.heal();
        net.send_external(a, Tagged(1));
        net.run_to_quiescence(100);
        assert_eq!(net.metrics().dropped(), 1, "manual block survives heal");
        assert_eq!(net.metrics().partitioned_drops(), 0);
        // unblock_link is the single-link inverse of block_link.
        net.unblock_link(a, b);
        net.process_mut(a).unwrap().target = Some(b);
        net.send_external(a, Tagged(2));
        net.run_to_quiescence(100);
        assert_eq!(net.metrics().dropped(), 1, "link repaired");
        assert_eq!(net.metrics().delivered(), 3, "both externals + the forward");
    }

    #[test]
    fn corrupt_mutates_state() {
        let mut net: EventNetwork<Node> = EventNetwork::new(NetConfig::default(), 1);
        let a = net.add_process(Node::default());
        assert!(net.corrupt(a, |p, _| p.pings = 999));
        assert_eq!(net.process(a).unwrap().pings, 999);
        assert!(!net.corrupt(ProcessId::from_raw(404), |_, _| {}));
    }
}
