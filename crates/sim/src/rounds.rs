use std::collections::BTreeMap;

use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::process::MessageLabel;
use crate::{Context, Metrics, Process, ProcessId};

/// Synchronous round-based engine.
///
/// Each round, in process-id order, every live process first handles the
/// messages sent to it during the *previous* round, then any due one-shot
/// timers, then the periodic *tick* (if configured). The paper's
/// stabilization lemmas bound convergence in "steps"; a round here is the
/// usual synchronous-daemon step of the self-stabilization literature,
/// in which every periodic check module fires once.
///
/// # Example
///
/// ```
/// use drtree_sim::{Context, Process, ProcessId, RoundNetwork};
///
/// /// Counts ticks.
/// struct Clock { ticks: u64 }
/// impl Process for Clock {
///     type Msg = ();
///     type Timer = ();
///     fn on_message(&mut self, _: ProcessId, _: (), _: &mut Context<'_, (), ()>) {}
///     fn on_timer(&mut self, _: (), _: &mut Context<'_, (), ()>) { self.ticks += 1; }
/// }
///
/// let mut net = RoundNetwork::with_tick(7, ());
/// let id = net.add_process(Clock { ticks: 0 });
/// net.run_rounds(5);
/// assert_eq!(net.process(id).unwrap().ticks, 5);
/// ```
pub struct RoundNetwork<P: Process> {
    procs: BTreeMap<ProcessId, P>,
    inboxes: BTreeMap<ProcessId, Vec<(ProcessId, P::Msg)>>,
    timers: BTreeMap<u64, Vec<(ProcessId, P::Timer)>>,
    tick: Option<P::Timer>,
    round: u64,
    next_id: u64,
    rng: StdRng,
    metrics: Metrics,
}

impl<P: Process> RoundNetwork<P> {
    /// Creates an engine with no periodic tick.
    pub fn new(seed: u64) -> Self {
        Self {
            procs: BTreeMap::new(),
            inboxes: BTreeMap::new(),
            timers: BTreeMap::new(),
            tick: None,
            round: 0,
            next_id: 0,
            rng: StdRng::seed_from_u64(seed),
            metrics: Metrics::new(),
        }
    }

    /// Creates an engine that fires `tick` on every process each round —
    /// the synchronous daemon driving the periodic CHECK_* modules.
    pub fn with_tick(seed: u64, tick: P::Timer) -> Self {
        let mut net = Self::new(seed);
        net.tick = Some(tick);
        net
    }

    /// Adds a process, assigns a fresh id, and calls
    /// [`Process::on_start`].
    pub fn add_process(&mut self, mut process: P) -> ProcessId {
        let id = ProcessId::from_raw(self.next_id);
        self.next_id += 1;
        let mut ctx = Context::new(id, self.round, &mut self.rng);
        process.on_start(&mut ctx);
        self.procs.insert(id, process);
        let (outbox, timers) = ctx.into_effects();
        self.apply_effects(id, outbox, timers);
        id
    }

    /// Replaces (or removes) the periodic tick. Used by experiments
    /// that must suspend stabilization for a window (Lemma 3.7's ∆).
    pub fn set_tick(&mut self, tick: Option<P::Timer>) {
        self.tick = tick;
    }

    /// Rounds completed so far.
    pub fn round(&self) -> u64 {
        self.round
    }

    /// Ids of live processes, in id order.
    pub fn ids(&self) -> Vec<ProcessId> {
        self.procs.keys().copied().collect()
    }

    /// Number of live processes.
    pub fn len(&self) -> usize {
        self.procs.len()
    }

    /// `true` if no process is alive.
    pub fn is_empty(&self) -> bool {
        self.procs.is_empty()
    }

    /// `true` if `id` refers to a live process.
    pub fn is_alive(&self, id: ProcessId) -> bool {
        self.procs.contains_key(&id)
    }

    /// Shared view of a live process.
    pub fn process(&self, id: ProcessId) -> Option<&P> {
        self.procs.get(&id)
    }

    /// Mutable access to a live process (harness bookkeeping).
    pub fn process_mut(&mut self, id: ProcessId) -> Option<&mut P> {
        self.procs.get_mut(&id)
    }

    /// Iterates over `(id, process)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (ProcessId, &P)> {
        self.procs.iter().map(|(id, p)| (*id, p))
    }

    /// Message metrics collected so far.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Resets metrics between experiment phases.
    pub fn reset_metrics(&mut self) {
        self.metrics.reset();
    }

    /// Deterministic randomness for harness decisions.
    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.rng
    }

    /// Crashes `id` (uncontrolled departure): the process and its queued
    /// messages vanish.
    pub fn crash(&mut self, id: ProcessId) -> Option<P> {
        self.inboxes.remove(&id);
        self.procs.remove(&id)
    }

    /// Applies an adversarial mutation to a live process's memory.
    pub fn corrupt(&mut self, id: ProcessId, mutate: impl FnOnce(&mut P, &mut StdRng)) -> bool {
        match self.procs.get_mut(&id) {
            Some(p) => {
                mutate(p, &mut self.rng);
                true
            }
            None => false,
        }
    }

    /// Queues a message for delivery at the start of the next round.
    pub fn send_external(&mut self, to: ProcessId, msg: P::Msg) {
        self.metrics.record_sent(msg.label());
        self.inboxes.entry(to).or_default().push((to, msg));
    }

    /// Executes one synchronous round.
    pub fn run_round(&mut self) {
        self.round += 1;
        let inboxes = std::mem::take(&mut self.inboxes);
        let due_timers = self.timers.remove(&self.round).unwrap_or_default();
        let ids: Vec<ProcessId> = self.procs.keys().copied().collect();
        for id in ids {
            // Deliver last round's messages.
            if let Some(msgs) = inboxes.get(&id) {
                for (from, msg) in msgs {
                    if !self.procs.contains_key(&id) {
                        self.metrics.record_to_dead();
                        continue;
                    }
                    self.metrics.record_delivered();
                    let mut ctx = Context::new(id, self.round, &mut self.rng);
                    let proc = self.procs.get_mut(&id).expect("checked above");
                    proc.on_message(*from, msg.clone(), &mut ctx);
                    let (outbox, timers) = ctx.into_effects();
                    self.apply_effects(id, outbox, timers);
                }
            }
            // One-shot timers due this round.
            for (at, timer) in due_timers.iter().filter(|(at, _)| *at == id) {
                if let Some(proc) = self.procs.get_mut(at) {
                    let mut ctx = Context::new(id, self.round, &mut self.rng);
                    proc.on_timer(timer.clone(), &mut ctx);
                    let (outbox, timers) = ctx.into_effects();
                    self.apply_effects(id, outbox, timers);
                }
            }
            // Periodic tick (the synchronous daemon).
            if let Some(tick) = self.tick.clone() {
                if let Some(proc) = self.procs.get_mut(&id) {
                    let mut ctx = Context::new(id, self.round, &mut self.rng);
                    proc.on_timer(tick, &mut ctx);
                    let (outbox, timers) = ctx.into_effects();
                    self.apply_effects(id, outbox, timers);
                }
            }
        }
        // Messages addressed to processes that died mid-round are dropped
        // with the inbox map (they were never delivered).
    }

    /// Runs `n` rounds.
    pub fn run_rounds(&mut self, n: u64) {
        for _ in 0..n {
            self.run_round();
        }
    }

    /// Runs rounds until `predicate(self)` holds, up to `max_rounds`.
    /// Returns the number of rounds executed if the predicate held, or
    /// `None` on timeout.
    pub fn run_until(
        &mut self,
        max_rounds: u64,
        mut predicate: impl FnMut(&Self) -> bool,
    ) -> Option<u64> {
        for executed in 0..=max_rounds {
            if predicate(self) {
                return Some(executed);
            }
            if executed == max_rounds {
                break;
            }
            self.run_round();
        }
        None
    }

    fn apply_effects(
        &mut self,
        from: ProcessId,
        outbox: Vec<(ProcessId, P::Msg)>,
        timer_requests: Vec<(u64, P::Timer)>,
    ) {
        for (to, msg) in outbox {
            self.metrics.record_sent(msg.label());
            self.inboxes.entry(to).or_default().push((from, msg));
        }
        for (delay, timer) in timer_requests {
            self.timers
                .entry(self.round + delay)
                .or_default()
                .push((from, timer));
        }
    }
}

impl<P: Process + Clone> Clone for RoundNetwork<P> {
    fn clone(&self) -> Self {
        Self {
            procs: self.procs.clone(),
            inboxes: self.inboxes.clone(),
            timers: self.timers.clone(),
            tick: self.tick.clone(),
            round: self.round,
            next_id: self.next_id,
            rng: self.rng.clone(),
            metrics: self.metrics.clone(),
        }
    }
}

impl<P: Process> std::fmt::Debug for RoundNetwork<P> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RoundNetwork")
            .field("round", &self.round)
            .field("processes", &self.procs.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Clone, Debug)]
    struct Gossip(u64);

    impl MessageLabel for Gossip {
        fn label(&self) -> &'static str {
            "gossip"
        }
    }

    /// Floods the max value seen to the next process in a ring.
    struct RingNode {
        next: Option<ProcessId>,
        best: u64,
    }

    impl Process for RingNode {
        type Msg = Gossip;
        type Timer = ();

        fn on_message(
            &mut self,
            _from: ProcessId,
            msg: Gossip,
            _ctx: &mut Context<'_, Gossip, ()>,
        ) {
            self.best = self.best.max(msg.0);
        }

        fn on_timer(&mut self, _t: (), ctx: &mut Context<'_, Gossip, ()>) {
            if let Some(next) = self.next {
                ctx.send(next, Gossip(self.best));
            }
        }
    }

    fn ring(n: u64) -> (RoundNetwork<RingNode>, Vec<ProcessId>) {
        let mut net = RoundNetwork::with_tick(9, ());
        let ids: Vec<ProcessId> = (0..n)
            .map(|i| {
                net.add_process(RingNode {
                    next: None,
                    best: i,
                })
            })
            .collect();
        for (i, &id) in ids.iter().enumerate() {
            let next = ids[(i + 1) % ids.len()];
            net.process_mut(id).unwrap().next = Some(next);
        }
        (net, ids)
    }

    #[test]
    fn max_propagates_one_hop_per_round() {
        let (mut net, ids) = ring(5);
        // After k rounds the max has traveled k hops (tick sends, next
        // round delivers).
        net.run_rounds(1);
        // value 4 sent by p4 during round 1 arrives at p0 in round 2
        assert_eq!(net.process(ids[0]).unwrap().best, 0);
        net.run_rounds(1);
        assert_eq!(net.process(ids[0]).unwrap().best, 4);
        net.run_rounds(4);
        for &id in &ids {
            assert_eq!(net.process(id).unwrap().best, 4);
        }
    }

    #[test]
    fn run_until_counts_rounds() {
        let (mut net, ids) = ring(8);
        let last = ids[3];
        let converged = net.run_until(100, |n| n.iter().all(|(_, p)| p.best == 7));
        assert!(converged.is_some());
        assert!(converged.unwrap() <= 9, "rounds: {converged:?}");
        let _ = last;
    }

    #[test]
    fn run_until_times_out() {
        let mut net: RoundNetwork<RingNode> = RoundNetwork::new(0);
        let id = net.add_process(RingNode {
            next: None,
            best: 0,
        });
        let r = net.run_until(3, |n| n.process(id).unwrap().best == 99);
        assert_eq!(r, None);
        assert_eq!(net.round(), 3);
    }

    #[test]
    fn crash_removes_pending_inbox() {
        let (mut net, ids) = ring(3);
        net.run_rounds(1); // messages in flight
        net.crash(ids[1]);
        net.run_rounds(2); // must not panic; p1's inbox discarded
        assert!(!net.is_alive(ids[1]));
        assert_eq!(net.len(), 2);
    }

    #[test]
    fn one_shot_timers() {
        struct OneShot {
            fired_at: Option<u64>,
        }
        impl Process for OneShot {
            type Msg = ();
            type Timer = &'static str;
            fn on_message(&mut self, _: ProcessId, _: (), _: &mut Context<'_, (), &'static str>) {}
            fn on_timer(&mut self, t: &'static str, ctx: &mut Context<'_, (), &'static str>) {
                if t == "later" {
                    self.fired_at = Some(ctx.now());
                }
            }
            fn on_start(&mut self, ctx: &mut Context<'_, (), &'static str>) {
                ctx.set_timer(5, "later");
            }
        }
        let mut net: RoundNetwork<OneShot> = RoundNetwork::new(1);
        let id = net.add_process(OneShot { fired_at: None });
        net.run_rounds(4);
        assert_eq!(net.process(id).unwrap().fired_at, None);
        net.run_rounds(1);
        assert_eq!(net.process(id).unwrap().fired_at, Some(5));
    }
}
