use std::collections::{BTreeMap, BTreeSet};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::process::MessageLabel;
use crate::{Context, FaultProfile, Metrics, MsgTag, Process, ProcessId};

/// Synchronous round-based engine.
///
/// Each round, in process-id order, every live process first handles the
/// messages sent to it during the *previous* round, then any due one-shot
/// timers, then the periodic *tick* (if configured). The paper's
/// stabilization lemmas bound convergence in "steps"; a round here is the
/// usual synchronous-daemon step of the self-stabilization literature,
/// in which every periodic check module fires once.
///
/// Ids are assigned densely from 0, so processes and inboxes live in
/// flat `Vec`s indexed by raw id (a crashed process leaves a `None`
/// slot). Inbox buffers are double-buffered and reused round over
/// round: steady-state rounds allocate nothing for message plumbing.
/// Messages addressed outside the allocated id range (the protocol
/// under corruption forges references to nonexistent processes) are
/// parked in a side map with the same one-round lifetime they had
/// before.
///
/// # Example
///
/// ```
/// use drtree_sim::{Context, Process, ProcessId, RoundNetwork};
///
/// /// Counts ticks.
/// struct Clock { ticks: u64 }
/// impl Process for Clock {
///     type Msg = ();
///     type Timer = ();
///     fn on_message(&mut self, _: ProcessId, _: (), _: &mut Context<'_, (), ()>) {}
///     fn on_timer(&mut self, _: (), _: &mut Context<'_, (), ()>) { self.ticks += 1; }
/// }
///
/// let mut net = RoundNetwork::with_tick(7, ());
/// let id = net.add_process(Clock { ticks: 0 });
/// net.run_rounds(5);
/// assert_eq!(net.process(id).unwrap().ticks, 5);
/// ```
pub struct RoundNetwork<P: Process> {
    /// `procs[raw_id]`; `None` after a crash (ids are never reused).
    procs: Vec<Option<P>>,
    /// Live-process count (`procs` slots that are `Some`).
    live: usize,
    /// `inboxes[raw_id]`: messages accumulated for delivery next round.
    inboxes: Vec<Vec<(ProcessId, P::Msg)>>,
    /// Last round's buffers, drained this round and then reused as the
    /// next `inboxes` (capacity retained).
    scratch: Vec<Vec<(ProcessId, P::Msg)>>,
    /// Messages to ids outside the allocated range (forged references);
    /// dropped after one round exactly like map-backed inboxes were.
    overflow: BTreeMap<ProcessId, Vec<(ProcessId, P::Msg)>>,
    timers: BTreeMap<u64, Vec<(ProcessId, P::Timer)>>,
    tick: Option<P::Timer>,
    round: u64,
    rng: StdRng,
    metrics: Metrics,
    /// Manually blocked directed links ([`RoundNetwork::block_link`]).
    blocked: BTreeSet<(ProcessId, ProcessId)>,
    /// Links cut by [`RoundNetwork::partition`]; kept apart from
    /// `blocked` so [`RoundNetwork::heal`] removes exactly the
    /// partition's cuts.
    partition_links: BTreeSet<(ProcessId, ProcessId)>,
    /// Active message fault knobs ([`RoundNetwork::set_faults`]).
    faults: FaultProfile,
    /// Reordered messages parked until their (later) delivery round.
    delayed: BTreeMap<u64, Vec<(ProcessId, ProcessId, P::Msg)>>,
}

impl<P: Process> RoundNetwork<P> {
    /// Creates an engine with no periodic tick.
    pub fn new(seed: u64) -> Self {
        Self {
            procs: Vec::new(),
            live: 0,
            inboxes: Vec::new(),
            scratch: Vec::new(),
            overflow: BTreeMap::new(),
            timers: BTreeMap::new(),
            tick: None,
            round: 0,
            rng: StdRng::seed_from_u64(seed),
            metrics: Metrics::new(),
            blocked: BTreeSet::new(),
            partition_links: BTreeSet::new(),
            faults: FaultProfile::default(),
            delayed: BTreeMap::new(),
        }
    }

    /// Creates an engine that fires `tick` on every process each round —
    /// the synchronous daemon driving the periodic CHECK_* modules.
    pub fn with_tick(seed: u64, tick: P::Timer) -> Self {
        let mut net = Self::new(seed);
        net.tick = Some(tick);
        net
    }

    /// Adds a process, assigns a fresh id, and calls
    /// [`Process::on_start`].
    pub fn add_process(&mut self, mut process: P) -> ProcessId {
        let id = ProcessId::from_raw(self.procs.len() as u64);
        let mut ctx = Context::new(id, self.round, &mut self.rng);
        process.on_start(&mut ctx);
        self.procs.push(Some(process));
        self.live += 1;
        self.inboxes.push(Vec::new());
        self.scratch.push(Vec::new());
        // Messages sent to this id before it existed now have a home.
        if let Some(pending) = self.overflow.remove(&id) {
            self.inboxes[id.raw() as usize] = pending;
        }
        let (outbox, timers) = ctx.into_effects();
        self.apply_effects(id, outbox, timers);
        id
    }

    /// Replaces (or removes) the periodic tick. Used by experiments
    /// that must suspend stabilization for a window (Lemma 3.7's ∆).
    pub fn set_tick(&mut self, tick: Option<P::Timer>) {
        self.tick = tick;
    }

    /// Rounds completed so far.
    pub fn round(&self) -> u64 {
        self.round
    }

    /// Ids of live processes, in id order.
    pub fn ids(&self) -> Vec<ProcessId> {
        self.procs
            .iter()
            .enumerate()
            .filter_map(|(i, p)| p.as_ref().map(|_| ProcessId::from_raw(i as u64)))
            .collect()
    }

    /// Number of live processes.
    pub fn len(&self) -> usize {
        self.live
    }

    /// `true` if no process is alive.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// `true` if `id` refers to a live process.
    pub fn is_alive(&self, id: ProcessId) -> bool {
        self.slot(id).is_some()
    }

    /// Shared view of a live process.
    pub fn process(&self, id: ProcessId) -> Option<&P> {
        self.slot(id)
    }

    /// Mutable access to a live process (harness bookkeeping).
    pub fn process_mut(&mut self, id: ProcessId) -> Option<&mut P> {
        self.procs
            .get_mut(id.raw() as usize)
            .and_then(Option::as_mut)
    }

    /// Iterates over `(id, process)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (ProcessId, &P)> {
        self.procs
            .iter()
            .enumerate()
            .filter_map(|(i, p)| p.as_ref().map(|p| (ProcessId::from_raw(i as u64), p)))
    }

    /// Message metrics collected so far.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Resets metrics between experiment phases.
    pub fn reset_metrics(&mut self) {
        self.metrics.reset();
    }

    /// Deterministic randomness for harness decisions.
    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.rng
    }

    /// Crashes `id` (uncontrolled departure): the process and its queued
    /// messages vanish.
    pub fn crash(&mut self, id: ProcessId) -> Option<P> {
        let slot = self.procs.get_mut(id.raw() as usize)?;
        let departed = slot.take();
        if departed.is_some() {
            self.live -= 1;
            for (_, msg) in self.inboxes[id.raw() as usize].drain(..) {
                Self::settle_tag(&mut self.metrics, &msg);
            }
        }
        departed
    }

    /// Reinstalls a process at a previously crashed id slot — the
    /// rejoin half of the broker crash/rejoin fault pair. The caller
    /// supplies the restarted state (warm: restored from a checkpoint;
    /// cold: fresh and empty — the engine does not keep crashed
    /// state). [`Process::on_start`] runs again, messages queued for
    /// the id since the crash stay queued (the id was dangling, not
    /// retired), and the id keeps its place in [`RoundNetwork::ids`].
    /// Returns `false` if the slot is still alive or was never
    /// allocated.
    pub fn revive(&mut self, id: ProcessId, mut process: P) -> bool {
        match self.procs.get_mut(id.raw() as usize) {
            Some(slot @ None) => {
                let mut ctx = Context::new(id, self.round, &mut self.rng);
                process.on_start(&mut ctx);
                *slot = Some(process);
                self.live += 1;
                let (outbox, timers) = ctx.into_effects();
                self.apply_effects(id, outbox, timers);
                true
            }
            _ => false,
        }
    }

    /// Blocks the directed link `from → to`: messages crossing it are
    /// dropped (settling their tags) until
    /// [`RoundNetwork::unblock_link`] or [`RoundNetwork::unblock_all`].
    pub fn block_link(&mut self, from: ProcessId, to: ProcessId) {
        self.blocked.insert((from, to));
    }

    /// Unblocks the directed link `from → to` — the single-link inverse
    /// of [`RoundNetwork::block_link`]. Also removes any partition cut
    /// on that link.
    pub fn unblock_link(&mut self, from: ProcessId, to: ProcessId) {
        self.blocked.remove(&(from, to));
        self.partition_links.remove(&(from, to));
    }

    /// Removes all link blocks, manual and partition-installed.
    pub fn unblock_all(&mut self) {
        self.blocked.clear();
        self.partition_links.clear();
    }

    /// Installs a network partition: every link between processes of
    /// different `groups` is cut in both directions. Messages crossing
    /// a cut are dropped (counted as [`Metrics::partitioned_drops`])
    /// and settle their tags at drop time. Successive calls accumulate;
    /// [`RoundNetwork::heal`] removes every partition cut while manual
    /// [`RoundNetwork::block_link`] blocks survive.
    pub fn partition(&mut self, groups: &[Vec<ProcessId>]) {
        for (i, a) in groups.iter().enumerate() {
            for b in groups.iter().skip(i + 1) {
                for &x in a {
                    for &y in b {
                        self.partition_links.insert((x, y));
                        self.partition_links.insert((y, x));
                    }
                }
            }
        }
    }

    /// Heals every partition cut. Manual link blocks survive, even on
    /// links that were also partition-cut.
    pub fn heal(&mut self) {
        self.partition_links.clear();
    }

    /// Replaces the message fault profile ([`FaultProfile`]) at
    /// runtime — how scripted fault windows open and close between
    /// rounds.
    pub fn set_faults(&mut self, faults: FaultProfile) {
        self.faults = faults;
    }

    /// The active message fault profile.
    pub fn faults(&self) -> &FaultProfile {
        &self.faults
    }

    /// Applies an adversarial mutation to a live process's memory.
    pub fn corrupt(&mut self, id: ProcessId, mutate: impl FnOnce(&mut P, &mut StdRng)) -> bool {
        match self
            .procs
            .get_mut(id.raw() as usize)
            .and_then(Option::as_mut)
        {
            Some(p) => {
                mutate(p, &mut self.rng);
                true
            }
            None => false,
        }
    }

    /// Queues a message for delivery at the start of the next round.
    pub fn send_external(&mut self, to: ProcessId, msg: P::Msg) {
        self.metrics.record_sent(msg.label());
        if let Some(tag) = msg.tag() {
            self.metrics.record_tag_sent(tag);
        }
        self.enqueue(to, to, msg);
    }

    /// Forgets a tag's message counters (see [`Metrics::clear_tag`]).
    pub fn clear_tag(&mut self, tag: u64) {
        self.metrics.clear_tag(tag);
    }

    /// Retires every tag below `floor` (see
    /// [`Metrics::retire_tags_below`]).
    pub fn retire_tags_below(&mut self, floor: u64) {
        self.metrics.retire_tags_below(floor);
    }

    /// Executes one synchronous round.
    pub fn run_round(&mut self) {
        self.round += 1;
        // The accumulating buffers become this round's deliveries; the
        // drained buffers from last round (already empty, capacity
        // intact) start accumulating the next round's messages.
        std::mem::swap(&mut self.inboxes, &mut self.scratch);
        // Forged-destination messages never find a process: drop them
        // with this round, as the map-backed engine did.
        for msgs in std::mem::take(&mut self.overflow).into_values() {
            for (_, msg) in msgs {
                Self::settle_tag(&mut self.metrics, &msg);
            }
        }
        // Reordered messages due this round join the delivery buffers;
        // later traffic already overtook them in earlier rounds. Ones
        // addressed outside the allocated range settle like overflow.
        if let Some(due) = self.delayed.remove(&self.round) {
            for (from, to, msg) in due {
                match self.scratch.get_mut(to.raw() as usize) {
                    Some(buf) => buf.push((from, msg)),
                    None => Self::settle_tag(&mut self.metrics, &msg),
                }
            }
        }
        let due_timers = self.timers.remove(&self.round).unwrap_or_default();
        let ids: Vec<ProcessId> = self.ids();
        for id in ids {
            let slot = id.raw() as usize;
            // Deliver last round's messages. The buffer is swapped out
            // locally so effects can enqueue into `self` while
            // delivery walks it; it returns cleared, capacity intact.
            if !self.scratch[slot].is_empty() {
                let mut deliveries = std::mem::take(&mut self.scratch[slot]);
                for (from, msg) in deliveries.drain(..) {
                    Self::settle_tag(&mut self.metrics, &msg);
                    if !self.is_alive(id) {
                        self.metrics.record_to_dead();
                        continue;
                    }
                    self.metrics.record_delivered();
                    let mut ctx = Context::new(id, self.round, &mut self.rng);
                    let proc = self.procs[slot].as_mut().expect("checked above");
                    proc.on_message(from, msg, &mut ctx);
                    let (outbox, timers) = ctx.into_effects();
                    self.apply_effects(id, outbox, timers);
                }
                self.scratch[slot] = deliveries;
            }
            // One-shot timers due this round.
            for (at, timer) in due_timers.iter().filter(|(at, _)| *at == id) {
                if let Some(proc) = self.procs[slot].as_mut() {
                    let mut ctx = Context::new(id, self.round, &mut self.rng);
                    proc.on_timer(timer.clone(), &mut ctx);
                    let (outbox, timers) = ctx.into_effects();
                    self.apply_effects(*at, outbox, timers);
                }
            }
            // Periodic tick (the synchronous daemon).
            if let Some(tick) = self.tick.clone() {
                if let Some(proc) = self.procs[slot].as_mut() {
                    let mut ctx = Context::new(id, self.round, &mut self.rng);
                    proc.on_timer(tick, &mut ctx);
                    let (outbox, timers) = ctx.into_effects();
                    self.apply_effects(id, outbox, timers);
                }
            }
        }
        // Anything still sitting in the delivery buffers was addressed
        // to a dead process; drop it but keep the buffer capacity.
        for buf in &mut self.scratch {
            for (_, msg) in buf.drain(..) {
                Self::settle_tag(&mut self.metrics, &msg);
            }
        }
    }

    /// Runs `n` rounds.
    pub fn run_rounds(&mut self, n: u64) {
        for _ in 0..n {
            self.run_round();
        }
    }

    /// Runs rounds until `predicate(self)` holds, up to `max_rounds`.
    /// Returns the number of rounds executed if the predicate held, or
    /// `None` on timeout.
    pub fn run_until(
        &mut self,
        max_rounds: u64,
        mut predicate: impl FnMut(&Self) -> bool,
    ) -> Option<u64> {
        for executed in 0..=max_rounds {
            if predicate(self) {
                return Some(executed);
            }
            if executed == max_rounds {
                break;
            }
            self.run_round();
        }
        None
    }

    fn slot(&self, id: ProcessId) -> Option<&P> {
        self.procs.get(id.raw() as usize).and_then(Option::as_ref)
    }

    /// A tagged message left the network (delivered or discarded).
    fn settle_tag(metrics: &mut Metrics, msg: &P::Msg) {
        if let Some(tag) = msg.tag() {
            metrics.record_tag_settled(tag);
        }
    }

    fn enqueue(&mut self, from: ProcessId, to: ProcessId, msg: P::Msg) {
        match self.inboxes.get_mut(to.raw() as usize) {
            Some(inbox) => inbox.push((from, msg)),
            None => self.overflow.entry(to).or_default().push((from, msg)),
        }
    }

    /// Routes a surviving message: normally into next round's inbox,
    /// or — under the reorder knob — parked for a later round while the
    /// tag stays in flight.
    fn route(&mut self, from: ProcessId, to: ProcessId, msg: P::Msg) {
        if self.roll(self.faults.reorder_probability) {
            self.metrics.record_reordered();
            let extra = self.rng.gen_range(1..=self.faults.reorder_extra.max(1));
            self.delayed
                .entry(self.round + 1 + extra)
                .or_default()
                .push((from, to, msg));
        } else {
            self.enqueue(from, to, msg);
        }
    }

    /// One fault-knob Bernoulli draw; never touches the RNG for an
    /// inactive knob, so enabling a knob is the only thing that changes
    /// a seeded trace.
    fn roll(&mut self, p: f64) -> bool {
        p > 0.0 && self.rng.gen_bool(p.min(1.0))
    }

    fn apply_effects(
        &mut self,
        from: ProcessId,
        outbox: Vec<(ProcessId, P::Msg)>,
        timer_requests: Vec<(u64, P::Timer)>,
    ) {
        for (to, msg) in outbox {
            self.metrics.record_sent(msg.label());
            if let Some(tag) = msg.tag() {
                self.metrics.record_tag_sent(tag);
            }
            let blocked = self.blocked.contains(&(from, to));
            let cut = self.partition_links.contains(&(from, to));
            if blocked || cut || self.roll(self.faults.drop_probability) {
                if cut && !blocked {
                    self.metrics.record_partition_drop();
                }
                self.metrics.record_dropped();
                Self::settle_tag(&mut self.metrics, &msg);
                continue;
            }
            // The duplicate is an extra in-flight copy: tracked as an
            // unbilled tagged send so both copies settle individually
            // without double-billing the operation.
            if self.roll(self.faults.duplicate_probability) {
                self.metrics.record_duplicated();
                if let Some(tag) = msg.tag() {
                    self.metrics.record_tag_sent(MsgTag::unbilled(tag.id));
                }
                let copy = msg.clone();
                self.route(from, to, copy);
            }
            self.route(from, to, msg);
        }
        for (delay, timer) in timer_requests {
            self.timers
                .entry(self.round + delay)
                .or_default()
                .push((from, timer));
        }
    }
}

impl<P: Process + Clone> Clone for RoundNetwork<P> {
    fn clone(&self) -> Self {
        Self {
            procs: self.procs.clone(),
            live: self.live,
            inboxes: self.inboxes.clone(),
            scratch: self.scratch.clone(),
            overflow: self.overflow.clone(),
            timers: self.timers.clone(),
            tick: self.tick.clone(),
            round: self.round,
            rng: self.rng.clone(),
            metrics: self.metrics.clone(),
            blocked: self.blocked.clone(),
            partition_links: self.partition_links.clone(),
            faults: self.faults,
            delayed: self.delayed.clone(),
        }
    }
}

impl<P: Process> std::fmt::Debug for RoundNetwork<P> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RoundNetwork")
            .field("round", &self.round)
            .field("processes", &self.live)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Clone, Debug)]
    struct Gossip(u64);

    impl MessageLabel for Gossip {
        fn label(&self) -> &'static str {
            "gossip"
        }
    }

    /// Floods the max value seen to the next process in a ring.
    struct RingNode {
        next: Option<ProcessId>,
        best: u64,
    }

    impl Process for RingNode {
        type Msg = Gossip;
        type Timer = ();

        fn on_message(
            &mut self,
            _from: ProcessId,
            msg: Gossip,
            _ctx: &mut Context<'_, Gossip, ()>,
        ) {
            self.best = self.best.max(msg.0);
        }

        fn on_timer(&mut self, _t: (), ctx: &mut Context<'_, Gossip, ()>) {
            if let Some(next) = self.next {
                ctx.send(next, Gossip(self.best));
            }
        }
    }

    fn ring(n: u64) -> (RoundNetwork<RingNode>, Vec<ProcessId>) {
        let mut net = RoundNetwork::with_tick(9, ());
        let ids: Vec<ProcessId> = (0..n)
            .map(|i| {
                net.add_process(RingNode {
                    next: None,
                    best: i,
                })
            })
            .collect();
        for (i, &id) in ids.iter().enumerate() {
            let next = ids[(i + 1) % ids.len()];
            net.process_mut(id).unwrap().next = Some(next);
        }
        (net, ids)
    }

    #[test]
    fn max_propagates_one_hop_per_round() {
        let (mut net, ids) = ring(5);
        // After k rounds the max has traveled k hops (tick sends, next
        // round delivers).
        net.run_rounds(1);
        // value 4 sent by p4 during round 1 arrives at p0 in round 2
        assert_eq!(net.process(ids[0]).unwrap().best, 0);
        net.run_rounds(1);
        assert_eq!(net.process(ids[0]).unwrap().best, 4);
        net.run_rounds(4);
        for &id in &ids {
            assert_eq!(net.process(id).unwrap().best, 4);
        }
    }

    #[test]
    fn run_until_counts_rounds() {
        let (mut net, ids) = ring(8);
        let last = ids[3];
        let converged = net.run_until(100, |n| n.iter().all(|(_, p)| p.best == 7));
        assert!(converged.is_some());
        assert!(converged.unwrap() <= 9, "rounds: {converged:?}");
        let _ = last;
    }

    #[test]
    fn run_until_times_out() {
        let mut net: RoundNetwork<RingNode> = RoundNetwork::new(0);
        let id = net.add_process(RingNode {
            next: None,
            best: 0,
        });
        let r = net.run_until(3, |n| n.process(id).unwrap().best == 99);
        assert_eq!(r, None);
        assert_eq!(net.round(), 3);
    }

    #[test]
    fn crash_removes_pending_inbox() {
        let (mut net, ids) = ring(3);
        net.run_rounds(1); // messages in flight
        net.crash(ids[1]);
        net.run_rounds(2); // must not panic; p1's inbox discarded
        assert!(!net.is_alive(ids[1]));
        assert_eq!(net.len(), 2);
    }

    #[test]
    fn crash_is_idempotent_and_keeps_count() {
        let (mut net, ids) = ring(4);
        assert!(net.crash(ids[2]).is_some());
        assert!(net.crash(ids[2]).is_none());
        assert!(net.crash(ProcessId::from_raw(999)).is_none());
        assert_eq!(net.len(), 3);
        assert_eq!(net.ids(), vec![ids[0], ids[1], ids[3]]);
    }

    #[test]
    fn messages_to_forged_ids_are_dropped_after_one_round() {
        let (mut net, _ids) = ring(2);
        // Far outside the allocated range (corruption forges these).
        net.send_external(ProcessId::from_raw(1_000_000), Gossip(7));
        net.send_external(ProcessId::from_raw(u64::MAX), Gossip(8));
        net.run_rounds(3); // must neither panic nor leak
        assert_eq!(net.len(), 2);
    }

    #[test]
    fn message_to_future_id_is_delivered_once_it_joins() {
        let mut net: RoundNetwork<RingNode> = RoundNetwork::new(5);
        let a = net.add_process(RingNode {
            next: None,
            best: 1,
        });
        // Address the process that will be created next (id 1).
        net.send_external(ProcessId::from_raw(1), Gossip(42));
        let b = net.add_process(RingNode {
            next: None,
            best: 0,
        });
        net.run_rounds(1);
        assert_eq!(net.process(b).unwrap().best, 42);
        let _ = a;
    }

    #[derive(Clone, Debug)]
    struct Hop {
        tag: u64,
        hops: u32,
    }

    impl MessageLabel for Hop {
        fn label(&self) -> &'static str {
            "hop"
        }
        fn tag(&self) -> Option<crate::MsgTag> {
            Some(crate::MsgTag::billed(self.tag))
        }
    }

    /// Forwards a message `hops` more times along a ring.
    struct Relay {
        next: Option<ProcessId>,
    }

    impl Process for Relay {
        type Msg = Hop;
        type Timer = ();

        fn on_message(&mut self, _from: ProcessId, msg: Hop, ctx: &mut Context<'_, Hop, ()>) {
            if msg.hops > 0 {
                if let Some(next) = self.next {
                    ctx.send(
                        next,
                        Hop {
                            tag: msg.tag,
                            hops: msg.hops - 1,
                        },
                    );
                }
            }
        }

        fn on_timer(&mut self, _t: (), _ctx: &mut Context<'_, Hop, ()>) {}
    }

    fn relay_pair() -> (RoundNetwork<Relay>, ProcessId, ProcessId) {
        let mut net: RoundNetwork<Relay> = RoundNetwork::new(3);
        let a = net.add_process(Relay { next: None });
        let b = net.add_process(Relay { next: None });
        net.process_mut(a).unwrap().next = Some(b);
        net.process_mut(b).unwrap().next = Some(a);
        (net, a, b)
    }

    #[test]
    fn tags_are_billed_and_reach_quiescence_independently() {
        let (mut net, a, _b) = relay_pair();
        net.send_external(a, Hop { tag: 1, hops: 3 });
        net.send_external(a, Hop { tag: 2, hops: 1 });
        // Both tags in flight from the moment of injection.
        assert_eq!(net.metrics().tag_inflight(1), 1);
        assert_eq!(net.metrics().tag_inflight(2), 1);
        net.run_rounds(2);
        // Tag 2 finished (injection + one relay); tag 1 still hopping.
        assert_eq!(net.metrics().tag_inflight(2), 0);
        assert_eq!(net.metrics().tag_count(2), 2);
        assert_eq!(net.metrics().tag_inflight(1), 1);
        net.run_rounds(2);
        assert_eq!(net.metrics().tag_inflight(1), 0);
        assert_eq!(net.metrics().tag_count(1), 4, "injection + 3 relays");
        net.clear_tag(1);
        assert_eq!(net.metrics().tag_count(1), 0);
    }

    #[test]
    fn crash_settles_queued_tagged_messages() {
        let (mut net, a, b) = relay_pair();
        net.send_external(b, Hop { tag: 5, hops: 9 });
        assert_eq!(net.metrics().tag_inflight(5), 1);
        net.crash(b); // inbox discarded before delivery
        assert_eq!(net.metrics().tag_inflight(5), 0);
        // Messages addressed to the dead process later also settle.
        net.send_external(b, Hop { tag: 6, hops: 9 });
        net.run_rounds(1);
        assert_eq!(net.metrics().tag_inflight(6), 0);
        let _ = a;
    }

    #[test]
    fn forged_destination_settles_after_one_round() {
        let (mut net, _a, _b) = relay_pair();
        net.send_external(ProcessId::from_raw(77_000), Hop { tag: 9, hops: 2 });
        assert_eq!(net.metrics().tag_inflight(9), 1);
        net.run_rounds(1);
        assert_eq!(net.metrics().tag_inflight(9), 0);
        assert_eq!(net.metrics().tag_count(9), 1, "the send is still billed");
    }

    #[test]
    fn duplicated_hops_track_unbilled_and_settle() {
        let (mut net, a, _b) = relay_pair();
        net.set_faults(FaultProfile::duplicating(1.0));
        net.send_external(a, Hop { tag: 4, hops: 1 });
        net.run_rounds(4);
        assert_eq!(net.metrics().duplicated(), 1, "a's relay was duplicated");
        assert_eq!(
            net.metrics().tag_count(4),
            2,
            "injection + relay; copy unbilled"
        );
        assert_eq!(net.metrics().tag_inflight(4), 0, "both copies settled");
        assert_eq!(net.metrics().delivered(), 3, "b received the relay twice");
    }

    #[test]
    fn reordered_hops_defer_delivery_without_leaking_inflight() {
        let (mut net, a, _b) = relay_pair();
        net.set_faults(FaultProfile::reordering(1.0, 3));
        net.send_external(a, Hop { tag: 7, hops: 1 });
        // The external injection is never faulted: a handles it in
        // round 1 and relays; the relay is parked for 1..=3 extra
        // rounds and stays in flight the whole time.
        net.run_rounds(2);
        assert_eq!(net.metrics().reordered(), 1);
        assert_eq!(
            net.metrics().tag_inflight(7),
            1,
            "parked relay still in flight"
        );
        net.run_rounds(4);
        assert_eq!(net.metrics().tag_inflight(7), 0, "settled at late delivery");
        assert_eq!(net.metrics().delivered(), 2);
        assert_eq!(net.metrics().tag_count(7), 2);
    }

    #[test]
    fn reordered_message_to_crashed_process_still_settles() {
        let (mut net, a, b) = relay_pair();
        net.set_faults(FaultProfile::reordering(1.0, 2));
        net.send_external(a, Hop { tag: 5, hops: 1 });
        net.run_rounds(1); // relay to b now parked
        net.crash(b);
        net.run_rounds(5); // due delivery finds b dead; must settle
        assert_eq!(net.metrics().tag_inflight(5), 0);
    }

    #[test]
    fn partition_and_heal_compose_with_manual_blocks() {
        let (mut net, a, b) = relay_pair();
        net.partition(&[vec![a], vec![b]]);
        net.send_external(a, Hop { tag: 1, hops: 1 });
        net.run_rounds(3);
        assert_eq!(net.metrics().partitioned_drops(), 1);
        assert_eq!(net.metrics().dropped(), 1);
        assert_eq!(net.metrics().tag_inflight(1), 0, "cut relay settled");
        // A manual block on the same link survives healing.
        net.block_link(a, b);
        net.heal();
        net.send_external(a, Hop { tag: 2, hops: 1 });
        net.run_rounds(3);
        assert_eq!(net.metrics().dropped(), 2, "manual block still active");
        assert_eq!(
            net.metrics().partitioned_drops(),
            1,
            "but not a partition drop"
        );
        net.unblock_link(a, b);
        net.send_external(a, Hop { tag: 3, hops: 1 });
        net.run_rounds(3);
        assert_eq!(net.metrics().dropped(), 2, "link repaired");
        assert_eq!(net.metrics().tag_count(3), 2, "relay went through");
    }

    #[test]
    fn lossy_profile_drops_and_settles_round_traffic() {
        let (mut net, a, _b) = relay_pair();
        net.set_faults(FaultProfile::lossy(1.0));
        net.send_external(a, Hop { tag: 9, hops: 5 });
        net.run_rounds(3);
        assert_eq!(net.metrics().dropped(), 1, "first relay lost");
        assert_eq!(net.metrics().tag_inflight(9), 0);
        assert_eq!(
            net.metrics().tag_count(9),
            2,
            "the lost relay is still billed"
        );
    }

    #[test]
    fn one_shot_timers() {
        struct OneShot {
            fired_at: Option<u64>,
        }
        impl Process for OneShot {
            type Msg = ();
            type Timer = &'static str;
            fn on_message(&mut self, _: ProcessId, _: (), _: &mut Context<'_, (), &'static str>) {}
            fn on_timer(&mut self, t: &'static str, ctx: &mut Context<'_, (), &'static str>) {
                if t == "later" {
                    self.fired_at = Some(ctx.now());
                }
            }
            fn on_start(&mut self, ctx: &mut Context<'_, (), &'static str>) {
                ctx.set_timer(5, "later");
            }
        }
        let mut net: RoundNetwork<OneShot> = RoundNetwork::new(1);
        let id = net.add_process(OneShot { fired_at: None });
        net.run_rounds(4);
        assert_eq!(net.process(id).unwrap().fired_at, None);
        net.run_rounds(1);
        assert_eq!(net.process(id).unwrap().fired_at, Some(5));
    }
}
