//! Deterministic simulation substrate for the DR-tree reproduction.
//!
//! The paper assumes "a distributed dynamic system composed of a finite
//! yet unbounded set of processes" communicating over links, subject to
//! joins, leaves, crash failures and transient memory corruption (§2.1).
//! This crate provides that substrate as a *deterministic* discrete-event
//! simulation, so that the convergence-step counts of the paper's
//! stabilization lemmas are exactly reproducible from a seed:
//!
//! * [`Process`] — the protocol trait: react to messages and timers via a
//!   [`Context`] that can send messages, arm timers and draw randomness.
//! * [`EventNetwork`] — an asynchronous discrete-event engine with
//!   configurable link latency and message loss.
//! * [`RoundNetwork`] — a synchronous round engine: messages sent in
//!   round *r* are delivered in round *r+1*, and every process fires its
//!   periodic tick each round. Self-stabilization experiments count
//!   rounds with it (the paper's "steps").
//! * Fault injection on both engines: [`EventNetwork::crash`],
//!   [`EventNetwork::corrupt`], link blocking, first-class partitions
//!   ([`EventNetwork::partition`] / [`EventNetwork::heal`]), and a
//!   runtime-swappable [`FaultProfile`] of message loss, duplication
//!   and reordering knobs — all with exact per-tag settlement
//!   ([`MsgTag`]) on every fault path.
//!
//! # Example
//!
//! ```
//! use drtree_sim::{Context, EventNetwork, MessageLabel, NetConfig, Process, ProcessId};
//!
//! /// Each process forwards a token `hops` more times.
//! struct Relay { received: u32 }
//!
//! #[derive(Clone, Debug)]
//! struct Token { hops: u32, to: ProcessId }
//!
//! impl MessageLabel for Token {
//!     fn label(&self) -> &'static str { "token" }
//! }
//!
//! impl Process for Relay {
//!     type Msg = Token;
//!     type Timer = ();
//!     fn on_message(&mut self, _from: ProcessId, msg: Token,
//!                   ctx: &mut Context<'_, Token, ()>) {
//!         self.received += 1;
//!         if msg.hops > 0 {
//!             ctx.send(msg.to, Token { hops: msg.hops - 1, to: ctx.id() });
//!         }
//!     }
//!     fn on_timer(&mut self, _t: (), _ctx: &mut Context<'_, Token, ()>) {}
//! }
//!
//! let mut net = EventNetwork::new(NetConfig::default(), 42);
//! let a = net.add_process(Relay { received: 0 });
//! let b = net.add_process(Relay { received: 0 });
//! net.send_external(a, Token { hops: 3, to: b });
//! net.run_to_quiescence(10_000);
//! assert_eq!(net.process(a).unwrap().received + net.process(b).unwrap().received, 4);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod context;
mod event;
mod metrics;
mod process;
mod rounds;

pub use context::Context;
pub use event::{EventNetwork, FaultProfile, LatencyModel, NetConfig};
pub use metrics::Metrics;
pub use process::{MessageLabel, MsgTag, Process, ProcessId};
pub use rounds::RoundNetwork;
