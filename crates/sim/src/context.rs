use rand::rngs::StdRng;

use crate::ProcessId;

/// Buffered effects released by [`Context::into_effects`]: messages to
/// send and timers to arm.
pub(crate) type Effects<M, T> = (Vec<(ProcessId, M)>, Vec<(u64, T)>);

/// The interface a [`Process`](crate::Process) uses to act on the world
/// from inside a callback.
///
/// Effects (sends, timers) are buffered and applied by the engine after
/// the callback returns; the engine decides latency, loss and delivery
/// order, keeping runs deterministic for a given seed.
#[derive(Debug)]
pub struct Context<'a, M, T> {
    id: ProcessId,
    now: u64,
    rng: &'a mut StdRng,
    pub(crate) outbox: Vec<(ProcessId, M)>,
    pub(crate) timer_requests: Vec<(u64, T)>,
}

impl<'a, M, T> Context<'a, M, T> {
    pub(crate) fn new(id: ProcessId, now: u64, rng: &'a mut StdRng) -> Self {
        Self {
            id,
            now,
            rng,
            outbox: Vec::new(),
            timer_requests: Vec::new(),
        }
    }

    /// The id of the process being called.
    pub fn id(&self) -> ProcessId {
        self.id
    }

    /// Current simulation time (event engine: abstract time units; round
    /// engine: the round number).
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Sends `msg` to `to`. Delivery is asynchronous and may be dropped
    /// or delayed depending on the engine's [`NetConfig`](crate::NetConfig).
    pub fn send(&mut self, to: ProcessId, msg: M) {
        self.outbox.push((to, msg));
    }

    /// Arms a one-shot timer to fire after `delay` time units (at least
    /// 1; a zero delay is promoted to 1 so a process cannot starve the
    /// engine).
    pub fn set_timer(&mut self, delay: u64, timer: T) {
        self.timer_requests.push((delay.max(1), timer));
    }

    /// Deterministic per-network randomness.
    pub fn rng(&mut self) -> &mut StdRng {
        self.rng
    }

    /// Consumes the context, releasing the buffered effects (and the
    /// borrow of the network RNG) so the engine can apply them.
    pub(crate) fn into_effects(self) -> Effects<M, T> {
        (self.outbox, self.timer_requests)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};

    #[test]
    fn buffers_effects() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut ctx: Context<'_, &str, u8> = Context::new(ProcessId::from_raw(3), 99, &mut rng);
        assert_eq!(ctx.id(), ProcessId::from_raw(3));
        assert_eq!(ctx.now(), 99);
        ctx.send(ProcessId::from_raw(4), "hello");
        ctx.set_timer(0, 1); // promoted to 1
        ctx.set_timer(5, 2);
        let _: u32 = ctx.rng().gen();
        assert_eq!(ctx.outbox.len(), 1);
        assert_eq!(ctx.timer_requests, vec![(1, 1), (5, 2)]);
    }
}
