use std::fmt;

use crate::Context;

/// Identifier of a simulated process.
///
/// Ids are assigned by the network engines in creation order and are
/// never reused, so a crashed process's id stays dangling — exactly the
/// situation the stabilization modules must cope with.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ProcessId(u64);

impl ProcessId {
    /// Creates an id from a raw value. Intended for tests and for
    /// adversarial corruption (forging references to nonexistent
    /// processes).
    pub fn from_raw(raw: u64) -> Self {
        ProcessId(raw)
    }

    /// The raw numeric value.
    pub fn raw(&self) -> u64 {
        self.0
    }
}

impl fmt::Display for ProcessId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// A per-operation tag carried by a message, for exact per-operation
/// accounting while traffic of several operations interleaves in the
/// same inboxes (e.g. the pipelined publish path, where PubUp/PubDown
/// messages of consecutive events share dissemination rounds).
///
/// The engines use tags for two things:
///
/// * **In-flight tracking** — every tagged send increments the tag's
///   in-flight count; every settlement (delivery, drop, loss, crash
///   cleanup) decrements it. [`crate::Metrics::tag_inflight`] reaching
///   zero means the tagged operation has gone quiescent, *without*
///   draining the whole network.
/// * **Billing** — tagged sends with `billed == true` accumulate in
///   [`crate::Metrics::tag_count`], the per-operation message bill.
///   Harness plumbing (e.g. the external publish injection) sets
///   `billed: false`: it is tracked for quiescence but not charged.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MsgTag {
    /// The operation this message belongs to (e.g. an event id).
    pub id: u64,
    /// Whether this message counts toward the operation's message bill.
    pub billed: bool,
}

impl MsgTag {
    /// A billed tag (counts toward the operation's message bill).
    pub fn billed(id: u64) -> Self {
        Self { id, billed: true }
    }

    /// An unbilled tag (tracked for quiescence only).
    pub fn unbilled(id: u64) -> Self {
        Self { id, billed: false }
    }
}

/// Classifies messages for per-kind metrics.
///
/// Implementations return a small static set of labels (one per protocol
/// message type); [`crate::Metrics`] aggregates counts per label.
pub trait MessageLabel {
    /// A short static name for this message's kind.
    fn label(&self) -> &'static str;

    /// The per-operation tag of this message, if it belongs to a tagged
    /// operation (see [`MsgTag`]). Default: untagged.
    fn tag(&self) -> Option<MsgTag> {
        None
    }
}

impl MessageLabel for () {
    fn label(&self) -> &'static str {
        "unit"
    }
}

/// A simulated protocol participant.
///
/// Both engines ([`crate::EventNetwork`], [`crate::RoundNetwork`]) drive
/// implementations through these two callbacks. All interaction with the
/// outside world goes through the [`Context`]: sending messages, arming
/// timers, drawing deterministic randomness.
pub trait Process {
    /// Protocol message type.
    type Msg: Clone + MessageLabel;
    /// Timer token type (periodic or one-shot alarms).
    type Timer: Clone;

    /// Handles a message delivered from `from`.
    fn on_message(
        &mut self,
        from: ProcessId,
        msg: Self::Msg,
        ctx: &mut Context<'_, Self::Msg, Self::Timer>,
    );

    /// Handles an armed timer firing.
    fn on_timer(&mut self, timer: Self::Timer, ctx: &mut Context<'_, Self::Msg, Self::Timer>);

    /// Called once when the process is added to a network, with its
    /// assigned id. Default: no-op.
    fn on_start(&mut self, ctx: &mut Context<'_, Self::Msg, Self::Timer>) {
        let _ = ctx;
    }
}

impl<M: Clone + MessageLabel> MessageLabel for Box<M> {
    fn label(&self) -> &'static str {
        (**self).label()
    }

    fn tag(&self) -> Option<MsgTag> {
        (**self).tag()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn process_id_roundtrip_and_order() {
        let a = ProcessId::from_raw(1);
        let b = ProcessId::from_raw(2);
        assert!(a < b);
        assert_eq!(a.raw(), 1);
        assert_eq!(a.to_string(), "p1");
    }

    #[test]
    fn unit_label() {
        assert_eq!(().label(), "unit");
    }
}
