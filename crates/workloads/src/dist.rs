//! Minimal samplers: Zipf (inverse CDF over a finite support) and
//! Gaussian (Box–Muller). Implemented locally so the workspace needs no
//! distribution crates.

use rand::rngs::StdRng;
use rand::Rng;

/// A Zipf distribution over ranks `1..=n` with exponent `s`.
///
/// Used to skew cluster popularity and event hotspots. Sampling is
/// inverse-CDF over the precomputed cumulative weights, `O(log n)` per
/// draw.
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Builds the distribution for `n` ranks and exponent `s`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `s < 0`.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "support must be non-empty");
        assert!(s >= 0.0, "exponent must be non-negative");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 1..=n {
            acc += 1.0 / (k as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        Self { cdf }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// `true` when the support has a single rank.
    pub fn is_empty(&self) -> bool {
        false // new() rejects n == 0
    }

    /// Draws a rank in `0..n` (0 = most popular).
    pub fn sample(&self, rng: &mut StdRng) -> usize {
        let u: f64 = rng.gen_range(0.0..1.0);
        match self
            .cdf
            .binary_search_by(|c| c.partial_cmp(&u).expect("finite"))
        {
            Ok(i) => i,
            Err(i) => i.min(self.cdf.len() - 1),
        }
    }
}

/// One standard-normal draw via Box–Muller.
pub fn standard_normal(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// A normal draw with the given mean and standard deviation.
pub fn normal(rng: &mut StdRng, mean: f64, std_dev: f64) -> f64 {
    mean + std_dev * standard_normal(rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn zipf_prefers_low_ranks() {
        let z = Zipf::new(50, 1.2);
        let mut rng = StdRng::seed_from_u64(3);
        let mut counts = [0u32; 50];
        for _ in 0..20_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        assert!(counts[0] > counts[10]);
        assert!(counts[10] > counts[40]);
    }

    #[test]
    fn zipf_uniform_when_s_zero() {
        let z = Zipf::new(10, 0.0);
        let mut rng = StdRng::seed_from_u64(4);
        let mut counts = vec![0u32; 10];
        for _ in 0..50_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        let min = *counts.iter().min().unwrap() as f64;
        let max = *counts.iter().max().unwrap() as f64;
        assert!(max / min < 1.3, "not uniform: {counts:?}");
    }

    #[test]
    #[should_panic(expected = "support")]
    fn zipf_rejects_empty() {
        let _ = Zipf::new(0, 1.0);
    }

    #[test]
    fn normal_moments() {
        let mut rng = StdRng::seed_from_u64(5);
        let n = 50_000;
        let samples: Vec<f64> = (0..n).map(|_| normal(&mut rng, 10.0, 2.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!((mean - 10.0).abs() < 0.1, "mean {mean}");
        assert!((var - 4.0).abs() < 0.25, "var {var}");
    }
}
