//! Open-loop arrival schedules for ingress latency experiments.
//!
//! A closed-loop load generator waits for each publication to complete
//! before issuing the next, so whenever the system stalls the
//! generator politely stops offering load — and the stall never shows
//! up in the measured latencies (*coordinated omission*). An
//! **open-loop** generator instead fixes the arrival times up front:
//! event `i` is *scheduled* at `t_i` regardless of how the system is
//! doing, and its latency is billed from `t_i` even when it spent most
//! of that time queued behind a backlog.
//!
//! [`ArrivalSchedule`] generates those `t_i` as nanosecond offsets
//! from an epoch (the `MultiBroker` ingress clock in `drtree-pubsub`):
//! deterministic for a given seed, nondecreasing, one timestamp per
//! event. Feed them to `PublisherHandle::publish_at`.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A generator of per-event scheduled arrival times (ns offsets).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ArrivalSchedule {
    /// Constant-rate arrivals: event `i` at `i * period_ns` exactly —
    /// the classic open-loop fixed-throughput clock.
    Uniform {
        /// Gap between consecutive arrivals, in nanoseconds.
        period_ns: u64,
    },
    /// Poisson arrivals: exponential inter-arrival gaps with the given
    /// mean, the memoryless model matching the paper's churn schedule
    /// (footnote 4) applied to publications.
    Poisson {
        /// Mean inter-arrival gap, in nanoseconds.
        mean_gap_ns: u64,
    },
    /// Bursty arrivals: bursts of `burst` back-to-back events (0 ns
    /// apart), bursts separated by `gap_ns` — the worst case for a
    /// bounded ingress queue's admission control.
    Bursty {
        /// Events per burst (at least 1).
        burst: usize,
        /// Gap between bursts, in nanoseconds.
        gap_ns: u64,
    },
}

impl ArrivalSchedule {
    /// Generates `n` scheduled arrival times starting at offset 0,
    /// nondecreasing, deterministic for a given `seed`.
    pub fn generate(&self, n: usize, seed: u64) -> Vec<u64> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut at: u64 = 0;
        let mut out = Vec::with_capacity(n);
        for i in 0..n {
            out.push(at);
            at = at.saturating_add(self.gap_after(i, &mut rng));
        }
        out
    }

    fn gap_after(&self, i: usize, rng: &mut StdRng) -> u64 {
        match *self {
            ArrivalSchedule::Uniform { period_ns } => period_ns,
            ArrivalSchedule::Poisson { mean_gap_ns } => {
                // Inverse-CDF exponential sample; clamp the uniform
                // draw away from 0 so ln stays finite.
                let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
                let gap = -u.ln() * mean_gap_ns as f64;
                gap.min(u64::MAX as f64) as u64
            }
            ArrivalSchedule::Bursty { burst, gap_ns } => {
                if (i + 1).is_multiple_of(burst.max(1)) {
                    gap_ns
                } else {
                    0
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_schedule_is_an_exact_grid() {
        let at = ArrivalSchedule::Uniform { period_ns: 250 }.generate(5, 1);
        assert_eq!(at, vec![0, 250, 500, 750, 1000]);
    }

    #[test]
    fn poisson_schedule_is_seeded_nondecreasing_and_near_rate() {
        let sched = ArrivalSchedule::Poisson { mean_gap_ns: 1_000 };
        let a = sched.generate(10_000, 42);
        let b = sched.generate(10_000, 42);
        assert_eq!(a, b, "same seed, same schedule");
        assert!(a.windows(2).all(|w| w[0] <= w[1]), "nondecreasing");
        // Mean gap within 10% of nominal over 10k samples.
        let mean = *a.last().unwrap() as f64 / (a.len() - 1) as f64;
        assert!((900.0..1_100.0).contains(&mean), "mean gap {mean}");
        // A different seed gives a different draw.
        assert_ne!(a, sched.generate(10_000, 43));
    }

    #[test]
    fn bursty_schedule_groups_back_to_back() {
        let at = ArrivalSchedule::Bursty {
            burst: 3,
            gap_ns: 100,
        }
        .generate(7, 9);
        assert_eq!(at, vec![0, 0, 0, 100, 100, 100, 200]);
    }
}
