//! Subscription-set generators.
//!
//! Three families cover the space the paper's discussion spans:
//!
//! * [`SubscriptionWorkload::Uniform`] — independent random rectangles;
//!   the adversarial case for containment awareness (few containments
//!   exist at all).
//! * [`SubscriptionWorkload::Clustered`] — "semantic communities"
//!   (§1: "gathering consumers with similar interests"): interests
//!   cluster around popular centers with Zipf-distributed popularity.
//! * [`SubscriptionWorkload::Containment`] — nested filter chains, the
//!   regime the DR-tree's containment-awareness properties (§3.1) are
//!   designed for, and the regime behind the 2–3% false-positive
//!   claim.

use rand::rngs::StdRng;
use rand::Rng;

use drtree_spatial::Rect;

use crate::dist::{normal, Zipf};

/// The unit universe is `[0, SPACE]^D`.
pub const SPACE: f64 = 100.0;

/// A generator of subscription rectangles in `[0, 100]^D`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SubscriptionWorkload {
    /// Independent uniform rectangles with extents in `[min_extent,
    /// max_extent]`.
    Uniform {
        /// Smallest side length.
        min_extent: f64,
        /// Largest side length.
        max_extent: f64,
    },
    /// `clusters` interest communities; cluster popularity is
    /// Zipf(`skew`), members scatter around the cluster center with the
    /// given standard deviation.
    Clustered {
        /// Number of communities.
        clusters: usize,
        /// Zipf exponent of community popularity.
        skew: f64,
        /// Scatter of member rectangles around the center.
        spread: f64,
        /// Smallest side length.
        min_extent: f64,
        /// Largest side length.
        max_extent: f64,
    },
    /// Nested chains: `chains` root rectangles, each containing a chain
    /// of progressively shrunken copies (factor `shrink` per step).
    Containment {
        /// Number of independent chains.
        chains: usize,
        /// Per-step shrink factor in `(0, 1)`.
        shrink: f64,
    },
}

impl SubscriptionWorkload {
    /// The three standard instances used by the experiment harness.
    pub fn standard() -> [(&'static str, SubscriptionWorkload); 3] {
        [
            (
                "uniform",
                SubscriptionWorkload::Uniform {
                    min_extent: 2.0,
                    max_extent: 20.0,
                },
            ),
            (
                "clustered",
                SubscriptionWorkload::Clustered {
                    clusters: 8,
                    skew: 0.9,
                    spread: 4.0,
                    min_extent: 2.0,
                    max_extent: 18.0,
                },
            ),
            (
                "containment",
                SubscriptionWorkload::Containment {
                    chains: 8,
                    shrink: 0.75,
                },
            ),
        ]
    }

    /// Generates `n` subscription rectangles.
    pub fn generate<const D: usize>(&self, n: usize, rng: &mut StdRng) -> Vec<Rect<D>> {
        match *self {
            SubscriptionWorkload::Uniform {
                min_extent,
                max_extent,
            } => (0..n)
                .map(|_| random_rect(rng, min_extent, max_extent))
                .collect(),
            SubscriptionWorkload::Clustered {
                clusters,
                skew,
                spread,
                min_extent,
                max_extent,
            } => {
                let zipf = Zipf::new(clusters.max(1), skew);
                let centers: Vec<[f64; D]> = (0..clusters.max(1))
                    .map(|_| {
                        let mut c = [0.0; D];
                        for x in &mut c {
                            *x = rng.gen_range(0.15 * SPACE..0.85 * SPACE);
                        }
                        c
                    })
                    .collect();
                (0..n)
                    .map(|_| {
                        let center = centers[zipf.sample(rng)];
                        let mut lo = [0.0; D];
                        let mut hi = [0.0; D];
                        for i in 0..D {
                            let mid = normal(rng, center[i], spread).clamp(0.0, SPACE);
                            let ext = rng.gen_range(min_extent..=max_extent);
                            lo[i] = (mid - ext / 2.0).clamp(0.0, SPACE);
                            hi[i] = (mid + ext / 2.0).clamp(lo[i], SPACE);
                        }
                        Rect::new(lo, hi)
                    })
                    .collect()
            }
            SubscriptionWorkload::Containment { chains, shrink } => {
                assert!(
                    shrink > 0.0 && shrink < 1.0,
                    "shrink factor must be in (0, 1)"
                );
                let chains = chains.max(1);
                let roots: Vec<Rect<D>> = (0..chains)
                    .map(|_| random_rect(rng, 0.25 * SPACE, 0.45 * SPACE))
                    .collect();
                let mut out = Vec::with_capacity(n);
                let mut current: Vec<Rect<D>> = roots.clone();
                let mut i = 0usize;
                while out.len() < n {
                    let chain = i % chains;
                    let outer = current[chain];
                    out.push(outer);
                    // Shrink toward a random interior anchor so siblings
                    // of different chains stay distinguishable.
                    let mut lo = [0.0; D];
                    let mut hi = [0.0; D];
                    for d in 0..D {
                        let ext = (outer.hi(d) - outer.lo(d)) * shrink;
                        let slack = (outer.hi(d) - outer.lo(d)) - ext;
                        let off = rng.gen_range(0.0..=slack.max(f64::MIN_POSITIVE));
                        lo[d] = outer.lo(d) + off;
                        hi[d] = lo[d] + ext;
                    }
                    current[chain] = Rect::new(lo, hi);
                    i += 1;
                }
                out
            }
        }
    }
}

fn random_rect<const D: usize>(rng: &mut StdRng, min_extent: f64, max_extent: f64) -> Rect<D> {
    let mut lo = [0.0; D];
    let mut hi = [0.0; D];
    for i in 0..D {
        let ext = rng.gen_range(min_extent..=max_extent);
        let start = rng.gen_range(0.0..=(SPACE - ext).max(f64::MIN_POSITIVE));
        lo[i] = start;
        hi[i] = start + ext;
    }
    Rect::new(lo, hi)
}

#[cfg(test)]
mod tests {
    use super::*;
    use drtree_spatial::ContainmentGraph;
    use rand::SeedableRng;

    #[test]
    fn uniform_rects_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        let w = SubscriptionWorkload::Uniform {
            min_extent: 2.0,
            max_extent: 20.0,
        };
        let rects: Vec<Rect<2>> = w.generate(200, &mut rng);
        assert_eq!(rects.len(), 200);
        for r in rects {
            for d in 0..2 {
                assert!(r.lo(d) >= 0.0 && r.hi(d) <= SPACE);
                assert!(r.extent(d) >= 2.0 - 1e-9 && r.extent(d) <= 20.0 + 1e-9);
            }
        }
    }

    #[test]
    fn clustered_rects_cluster() {
        let mut rng = StdRng::seed_from_u64(2);
        let w = SubscriptionWorkload::Clustered {
            clusters: 3,
            skew: 1.0,
            spread: 2.0,
            min_extent: 2.0,
            max_extent: 6.0,
        };
        let rects: Vec<Rect<2>> = w.generate(150, &mut rng);
        // Clustering ⇒ much more pairwise overlap than uniform.
        let overlapping = rects
            .iter()
            .enumerate()
            .flat_map(|(i, a)| rects[i + 1..].iter().map(move |b| a.intersects(b)))
            .filter(|x| *x)
            .count();
        let total_pairs = 150 * 149 / 2;
        assert!(
            overlapping as f64 / total_pairs as f64 > 0.05,
            "clusters produced too little overlap"
        );
    }

    #[test]
    fn containment_chains_nest() {
        let mut rng = StdRng::seed_from_u64(3);
        let w = SubscriptionWorkload::Containment {
            chains: 4,
            shrink: 0.7,
        };
        let rects: Vec<Rect<2>> = w.generate(40, &mut rng);
        let g = ContainmentGraph::build(&rects);
        // 40 filters in 4 chains of 10 ⇒ depth 10 chains.
        assert!(g.max_depth() >= 8, "depth {} too shallow", g.max_depth());
        assert!(g.roots().len() <= 4 + 1);
    }

    #[test]
    fn standard_workloads_generate() {
        let mut rng = StdRng::seed_from_u64(4);
        for (name, w) in SubscriptionWorkload::standard() {
            let rects: Vec<Rect<2>> = w.generate(64, &mut rng);
            assert_eq!(rects.len(), 64, "{name}");
        }
    }
}
