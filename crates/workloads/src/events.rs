//! Event-stream generators.
//!
//! * [`EventWorkload::Uniform`] — points uniform over the universe;
//! * [`EventWorkload::Hotspot`] — a fraction of the stream concentrates
//!   in a small region ("bias event workloads … small false positive
//!   regions are hit by many events while larger areas see none",
//!   §3.2) — the trigger for the FP-driven reorganization;
//! * [`EventWorkload::Following`] — events drawn inside randomly chosen
//!   subscriptions, modeling traffic that interests somebody.

use rand::rngs::StdRng;
use rand::Rng;

use drtree_spatial::{Point, Rect};

use crate::subscriptions::SPACE;

/// A generator of event points in `[0, 100]^D`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EventWorkload {
    /// Uniform points over the whole universe.
    Uniform,
    /// With probability `bias`, a point falls uniformly inside the
    /// hotspot box `[center − radius, center + radius]^D`; otherwise
    /// uniform over the universe.
    Hotspot {
        /// Center coordinate of the hotspot (same in every dimension).
        center: f64,
        /// Half-extent of the hotspot box.
        radius: f64,
        /// Fraction of the stream that hits the hotspot.
        bias: f64,
    },
    /// Events land inside a subscription chosen uniformly from the
    /// provided set (pass the subscriptions to
    /// [`EventWorkload::generate_with`]).
    Following,
}

impl EventWorkload {
    /// Generates `n` events with no subscription set — the common call
    /// for [`EventWorkload::Uniform`] and [`EventWorkload::Hotspot`]
    /// ([`EventWorkload::Following`] falls back to uniform).
    pub fn generate<const D: usize>(&self, n: usize, rng: &mut StdRng) -> Vec<Point<D>> {
        self.generate_with(n, &[], rng)
    }

    /// Generates `n` events. `subscriptions` is consulted only by
    /// [`EventWorkload::Following`]; pass `&[]` otherwise.
    pub fn generate_with<const D: usize>(
        &self,
        n: usize,
        subscriptions: &[Rect<D>],
        rng: &mut StdRng,
    ) -> Vec<Point<D>> {
        (0..n)
            .map(|_| match *self {
                EventWorkload::Uniform => uniform_point(rng),
                EventWorkload::Hotspot {
                    center,
                    radius,
                    bias,
                } => {
                    if rng.gen_bool(bias.clamp(0.0, 1.0)) {
                        let mut c = [0.0; D];
                        for x in &mut c {
                            *x = rng.gen_range(
                                (center - radius).max(0.0)..=(center + radius).min(SPACE),
                            );
                        }
                        Point::new(c)
                    } else {
                        uniform_point(rng)
                    }
                }
                EventWorkload::Following => {
                    if subscriptions.is_empty() {
                        uniform_point(rng)
                    } else {
                        let sub = subscriptions[rng.gen_range(0..subscriptions.len())];
                        let mut c = [0.0; D];
                        for (d, x) in c.iter_mut().enumerate() {
                            let lo = sub.lo(d).max(0.0);
                            let hi = sub.hi(d).min(SPACE).max(lo);
                            *x = if hi > lo { rng.gen_range(lo..=hi) } else { lo };
                        }
                        Point::new(c)
                    }
                }
            })
            .collect()
    }
}

fn uniform_point<const D: usize>(rng: &mut StdRng) -> Point<D> {
    let mut c = [0.0; D];
    for x in &mut c {
        *x = rng.gen_range(0.0..SPACE);
    }
    Point::new(c)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn uniform_points_cover_space() {
        let mut rng = StdRng::seed_from_u64(1);
        let pts: Vec<Point<2>> = EventWorkload::Uniform.generate_with(1000, &[], &mut rng);
        let left = pts.iter().filter(|p| p.coord(0) < SPACE / 2.0).count();
        assert!(left > 350 && left < 650, "skewed: {left}");
    }

    #[test]
    fn hotspot_concentrates() {
        let mut rng = StdRng::seed_from_u64(2);
        let w = EventWorkload::Hotspot {
            center: 20.0,
            radius: 5.0,
            bias: 0.8,
        };
        let pts: Vec<Point<2>> = w.generate_with(1000, &[], &mut rng);
        let hot = Rect::new([15.0, 15.0], [25.0, 25.0]);
        let inside = pts.iter().filter(|p| hot.contains_point(p)).count();
        assert!(inside > 700, "only {inside} in hotspot");
    }

    #[test]
    fn following_points_land_inside_subscriptions() {
        let mut rng = StdRng::seed_from_u64(3);
        let subs = vec![
            Rect::new([0.0, 0.0], [10.0, 10.0]),
            Rect::new([50.0, 50.0], [60.0, 60.0]),
        ];
        let pts: Vec<Point<2>> = EventWorkload::Following.generate_with(200, &subs, &mut rng);
        for p in pts {
            assert!(
                subs.iter().any(|s| s.contains_point(&p)),
                "{p} outside all subscriptions"
            );
        }
    }

    #[test]
    fn following_without_subscriptions_falls_back_to_uniform() {
        let mut rng = StdRng::seed_from_u64(4);
        let pts: Vec<Point<2>> = EventWorkload::Following.generate_with(10, &[], &mut rng);
        assert_eq!(pts.len(), 10);
    }
}
